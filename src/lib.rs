//! # pramsim — Deterministic P-RAM Simulation with Constant Redundancy
//!
//! A full reproduction of Hornick & Preparata, *"Deterministic P-RAM
//! Simulation with Constant Redundancy"* (SPAA 1989; Information and
//! Computation 92:81–96, 1991), as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`machine`] — the P-RAM abstract machine (ISA, executor, conflict
//!   modes, classic programs);
//! * [`models`] — the MPC / DMMPC / BDN / DMBDN machine-model descriptors;
//! * [`memdist`] — replicated memory maps, majority rule, expansion checks;
//! * [`netsim`] — the cycle-level network engine;
//! * [`mot`] — the two-dimensional mesh of trees;
//! * [`galois`] / [`ida`] — GF(2^16) and Rabin's information dispersal
//!   (Schuster's alternative scheme);
//! * [`core`] — the simulation schemes themselves (the paper's
//!   contribution plus all baselines), unified behind the object-safe
//!   [`core::Scheme`] trait and constructed via [`core::SimBuilder`];
//! * [`faults`] — deterministic fault injection ([`faults::FaultPlan`] /
//!   [`faults::FaultyBuilder`]): every scheme under module, processor,
//!   link, and message faults, measured against a fault-free twin;
//! * [`serve`] — the sharded session service: thousands of concurrent
//!   simulations multiplexed across worker shards, in-process
//!   ([`serve::Service`]) or over TCP ([`serve::tcp::Server`]);
//! * [`workloads`] / [`metrics`] — experiment support.
//!
//! See `DESIGN.md` for the crate inventory and the experiment index, and
//! `README.md` for the tour.
//!
//! ## Quickstart
//!
//! Every scheme in the zoo is built through one validated path —
//! [`core::SimBuilder`] — and driven through `Box<dyn Scheme>`:
//!
//! ```
//! use pramsim::core::{Scheme, SchemeKind, SimBuilder};
//! use pramsim::machine::{programs, Mode, Pram};
//!
//! // An 8-processor EREW P-RAM program (tree-sum), executed through the
//! // paper's constant-redundancy DMMPC scheme (Theorem 2).
//! let n = 8;
//! let m = programs::parallel_sum_layout(n);
//! let mut shared = SimBuilder::new(n, m)
//!     .kind(SchemeKind::HpDmmpc)
//!     .build()
//!     .expect("default fine-grain regime is feasible");
//! for i in 0..n {
//!     shared.poke(i, (i + 1) as i64);
//! }
//! Pram::new(n, Mode::Erew)
//!     .run(&programs::parallel_sum(n), shared.as_mut())
//!     .unwrap();
//! assert_eq!(shared.peek(0), 36);
//!
//! // The same loop runs the whole zoo — that is the point of the trait.
//! for kind in SchemeKind::ALL {
//!     let mut s = SimBuilder::new(n, 64).kind(kind).build().unwrap();
//!     s.access(&[], &[(0, 7)]);
//!     assert_eq!(s.access(&[0], &[]).read_values, vec![7], "{kind}");
//! }
//! ```
//!
//! Power users who need knobs the builder does not expose (e.g.
//! `stage1_phases` ablations) can validate a config through
//! [`core::SimBuilder::fine_config`] and hand it to a concrete type such
//! as [`core::HpDmmpc::new`] — see `examples/quickstart.rs`.

pub use cr_core as core;
pub use cr_faults as faults;
pub use cr_serve as serve;
pub use galois;
pub use ida;
pub use memdist;
pub use metrics;
pub use models;
pub use mot;
pub use netsim;
pub use pram_machine as machine;
pub use simrng;
pub use workloads;
