//! # pramsim — Deterministic P-RAM Simulation with Constant Redundancy
//!
//! A full reproduction of Hornick & Preparata, *"Deterministic P-RAM
//! Simulation with Constant Redundancy"* (SPAA 1989; Information and
//! Computation 92:81–96, 1991), as a Rust workspace.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`machine`] — the P-RAM abstract machine (ISA, executor, conflict
//!   modes, classic programs);
//! * [`models`] — the MPC / DMMPC / BDN / DMBDN machine-model descriptors;
//! * [`memdist`] — replicated memory maps, majority rule, expansion checks;
//! * [`netsim`] — the cycle-level network engine;
//! * [`mot`] — the two-dimensional mesh of trees;
//! * [`galois`] / [`ida`] — GF(2^16) and Rabin's information dispersal
//!   (Schuster's alternative scheme);
//! * [`core`] — the simulation schemes themselves (the paper's
//!   contribution plus all baselines);
//! * [`workloads`] / [`metrics`] — experiment support.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.
//!
//! ## Quickstart
//!
//! ```
//! use pramsim::machine::{Mode, Pram, SharedMemory, programs};
//! use pramsim::core::{SchemeConfig, HpDmmpc};
//!
//! // An 8-processor EREW P-RAM program (tree-sum), executed through the
//! // paper's constant-redundancy DMMPC scheme (Theorem 2).
//! let n = 8;
//! let cfg = SchemeConfig::for_pram(n, programs::parallel_sum_layout(n));
//! let mut shared = HpDmmpc::new(&cfg);
//! for i in 0..n {
//!     shared.poke(i, (i + 1) as i64);
//! }
//! Pram::new(n, Mode::Erew)
//!     .run(&programs::parallel_sum(n), &mut shared)
//!     .unwrap();
//! assert_eq!(shared.peek(0), 36);
//! ```

pub use cr_core as core;
pub use galois;
pub use ida;
pub use memdist;
pub use metrics;
pub use models;
pub use mot;
pub use netsim;
pub use pram_machine as machine;
pub use simrng;
pub use workloads;
