//! SIMD slice kernels for GF(2¹⁶) constant-times-vector products.
//!
//! The scalar field multiply in [`crate::Gf16::mul`] walks the 384 KiB
//! log/exp tables with data-dependent indices — fine for one product,
//! hostile to a decode loop that performs hundreds of thousands of them
//! per simulated step. These kernels use the classic byte-shuffle
//! decomposition instead: for a *fixed* multiplicand `c`, split the other
//! operand into four nibbles, so
//!
//! ```text
//! c · x  =  c·(n0) ^ c·(n1 << 4) ^ c·(n2 << 8) ^ c·(n3 << 12)
//! ```
//!
//! and each term is a lookup in a 16-entry table built once per `c` from
//! the `xtimes` chain ([`MulTable`]). Sixteen entries fit one 128-bit
//! shuffle register, so SSSE3 `pshufb` (or NEON `tbl`) evaluates eight
//! field elements per instruction group.
//!
//! Determinism: GF(2¹⁶) addition is XOR — exact, associative and
//! commutative — so any regrouping or vectorization of the accumulation
//! is *bit-identical* to the scalar result. Every kernel here is
//! differentially tested against the scalar path, and the
//! `forced-scalar` cargo feature pins the dispatch to the scalar
//! fallback so CI can prove golden outputs match under both builds.
//!
//! Dispatch: x86_64 checks `ssse3` at runtime (cached by `std`); on
//! aarch64 NEON is baseline so no check is needed; everything else (and
//! `forced-scalar` builds) runs the scalar loop.

use crate::{xtimes, Gf16};

/// Which kernel implementation slice calls will dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Portable scalar loop (also the differential-test oracle).
    Scalar,
    /// x86_64 `pshufb` nibble shuffles.
    Ssse3,
    /// aarch64 `tbl` nibble shuffles.
    Neon,
}

impl KernelPath {
    /// Stable label for bench output and diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            KernelPath::Scalar => "scalar",
            KernelPath::Ssse3 => "ssse3",
            KernelPath::Neon => "neon",
        }
    }
}

/// The path [`gf_mul_slice`]/[`gf_mulacc_slice`] take on this machine.
pub fn active_path() -> KernelPath {
    #[cfg(all(target_arch = "x86_64", not(feature = "forced-scalar")))]
    if std::arch::is_x86_feature_detected!("ssse3") {
        return KernelPath::Ssse3;
    }
    #[cfg(all(target_arch = "aarch64", not(feature = "forced-scalar")))]
    return KernelPath::Neon;
    #[allow(unreachable_code)]
    KernelPath::Scalar
}

/// Nibble-product tables for one fixed multiplicand `c`.
///
/// `products()[p][x] = c · (x << 4p)` for nibble `x` at position `p`.
/// Built from 16 `xtimes` steps plus subset XORs — no log/exp traffic —
/// so a table costs roughly a dozen scalar multiplies and pays for
/// itself on any slice of comparable length.
#[derive(Debug, Clone)]
pub struct MulTable {
    /// t[p][x] = c·(x << 4p).
    t: [[u16; 16]; 4],
    /// Low product bytes of `t`, pre-split for the byte shuffles (unused
    /// when no SIMD path is compiled in).
    #[cfg_attr(
        not(all(
            any(target_arch = "x86_64", target_arch = "aarch64"),
            not(feature = "forced-scalar")
        )),
        allow(dead_code)
    )]
    lo: [[u8; 16]; 4],
    /// High product bytes of `t`.
    #[cfg_attr(
        not(all(
            any(target_arch = "x86_64", target_arch = "aarch64"),
            not(feature = "forced-scalar")
        )),
        allow(dead_code)
    )]
    hi: [[u8; 16]; 4],
}

impl MulTable {
    /// Tables for multiplication by `c`.
    pub fn new(c: Gf16) -> MulTable {
        // pw[k] = c · x^k via the xtimes chain.
        let mut pw = [0u16; 16];
        pw[0] = c.0;
        for k in 1..16 {
            pw[k] = xtimes(pw[k - 1]);
        }
        let mut t = [[0u16; 16]; 4];
        for (p, plane) in t.iter_mut().enumerate() {
            for (x, slot) in plane.iter_mut().enumerate().skip(1) {
                let mut acc = 0u16;
                for (k, &pk) in pw[4 * p..4 * p + 4].iter().enumerate() {
                    if x >> k & 1 == 1 {
                        acc ^= pk;
                    }
                }
                *slot = acc;
            }
        }
        let mut lo = [[0u8; 16]; 4];
        let mut hi = [[0u8; 16]; 4];
        for (plane, (plo, phi)) in t.iter().zip(lo.iter_mut().zip(hi.iter_mut())) {
            for (&v, (l, h)) in plane.iter().zip(plo.iter_mut().zip(phi.iter_mut())) {
                *l = v as u8;
                *h = (v >> 8) as u8;
            }
        }
        MulTable { t, lo, hi }
    }

    /// `c · x` by four nibble lookups (no log/exp traffic).
    // lint: hot
    #[inline]
    pub fn mul(&self, x: Gf16) -> Gf16 {
        let v = x.0 as usize;
        Gf16(
            self.t[0][v & 15]
                ^ self.t[1][v >> 4 & 15]
                ^ self.t[2][v >> 8 & 15]
                ^ self.t[3][v >> 12],
        )
    }

    /// The u16 product tables (for prepared-matrix construction).
    pub(crate) fn products(&self) -> &[[u16; 16]; 4] {
        &self.t
    }
}

/// In-place `dst[i] = c · dst[i]` over a slice, dispatching to the best
/// available kernel.
// lint: hot
#[inline]
pub fn gf_mul_slice(dst: &mut [Gf16], tbl: &MulTable) {
    #[cfg(all(target_arch = "x86_64", not(feature = "forced-scalar")))]
    if std::arch::is_x86_feature_detected!("ssse3") {
        // SAFETY: ssse3 support was just confirmed at runtime.
        unsafe { x86::mul_slice_ssse3(dst, tbl) };
        return;
    }
    #[cfg(all(target_arch = "aarch64", not(feature = "forced-scalar")))]
    {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { neon::mul_slice_neon(dst, tbl) };
        return;
    }
    #[allow(unreachable_code)]
    gf_mul_slice_scalar(dst, tbl)
}

/// `dst[i] ^= c · src[i]` over equal-length slices — the elimination-row
/// primitive of Gauss–Jordan, dispatched like [`gf_mul_slice`].
// lint: hot
#[inline]
pub fn gf_mulacc_slice(dst: &mut [Gf16], src: &[Gf16], tbl: &MulTable) {
    assert_eq!(dst.len(), src.len());
    #[cfg(all(target_arch = "x86_64", not(feature = "forced-scalar")))]
    if std::arch::is_x86_feature_detected!("ssse3") {
        // SAFETY: ssse3 support was just confirmed at runtime.
        unsafe { x86::mulacc_slice_ssse3(dst, src, tbl) };
        return;
    }
    #[cfg(all(target_arch = "aarch64", not(feature = "forced-scalar")))]
    {
        // SAFETY: NEON is part of the aarch64 baseline.
        unsafe { neon::mulacc_slice_neon(dst, src, tbl) };
        return;
    }
    #[allow(unreachable_code)]
    gf_mulacc_slice_scalar(dst, src, tbl)
}

/// Scalar `dst[i] = c · dst[i]` — the oracle the SIMD paths are tested
/// against, and the fallback they dispatch to.
// lint: hot
pub fn gf_mul_slice_scalar(dst: &mut [Gf16], tbl: &MulTable) {
    for d in dst {
        *d = tbl.mul(*d);
    }
}

/// Scalar `dst[i] ^= c · src[i]` oracle/fallback.
// lint: hot
pub fn gf_mulacc_slice_scalar(dst: &mut [Gf16], src: &[Gf16], tbl: &MulTable) {
    assert_eq!(dst.len(), src.len());
    for (d, s) in dst.iter_mut().zip(src) {
        *d = Gf16(d.0 ^ tbl.mul(*s).0);
    }
}

#[cfg(all(target_arch = "x86_64", not(feature = "forced-scalar")))]
mod x86 {
    //! SSSE3 nibble-shuffle kernels. Eight `Gf16` per 128-bit vector:
    //! extract the four nibble planes as per-u16 byte indices (odd bytes
    //! zero — table entry 0 is `c·0 = 0`, so they contribute nothing),
    //! shuffle the pre-split low/high product bytes, and XOR-accumulate.

    use super::{Gf16, MulTable};
    #[allow(clippy::wildcard_imports)] // the intrinsics namespace is the API
    use std::arch::x86_64::*;

    /// One table position's contribution to the accumulator: low product
    /// bytes land in the low byte of each u16 lane, high bytes are
    /// shifted up into the high byte.
    ///
    /// # Safety
    /// Caller must have verified `ssse3`.
    #[target_feature(enable = "ssse3")]
    #[inline]
    unsafe fn contrib(acc: __m128i, idx: __m128i, lo: __m128i, hi: __m128i) -> __m128i {
        let l = _mm_shuffle_epi8(lo, idx);
        let h = _mm_slli_epi16(_mm_shuffle_epi8(hi, idx), 8);
        _mm_xor_si128(acc, _mm_xor_si128(l, h))
    }

    /// `c · v` for one vector of eight `Gf16`.
    ///
    /// # Safety
    /// Caller must have verified `ssse3`.
    #[target_feature(enable = "ssse3")]
    #[inline]
    unsafe fn mul_vec(v: __m128i, t: &Tables) -> __m128i {
        let nib = _mm_set1_epi16(0x000f);
        let n0 = _mm_and_si128(v, nib);
        let n1 = _mm_and_si128(_mm_srli_epi16(v, 4), nib);
        let n2 = _mm_and_si128(_mm_srli_epi16(v, 8), nib);
        let n3 = _mm_srli_epi16(v, 12);
        let mut acc = _mm_setzero_si128();
        acc = contrib(acc, n0, t.lo[0], t.hi[0]);
        acc = contrib(acc, n1, t.lo[1], t.hi[1]);
        acc = contrib(acc, n2, t.lo[2], t.hi[2]);
        contrib(acc, n3, t.lo[3], t.hi[3])
    }

    struct Tables {
        lo: [__m128i; 4],
        hi: [__m128i; 4],
    }

    /// # Safety
    /// Caller must have verified `ssse3`.
    #[target_feature(enable = "ssse3")]
    #[inline]
    unsafe fn load_tables(tbl: &MulTable) -> Tables {
        Tables {
            lo: std::array::from_fn(|p| _mm_loadu_si128(tbl.lo[p].as_ptr() as *const __m128i)),
            hi: std::array::from_fn(|p| _mm_loadu_si128(tbl.hi[p].as_ptr() as *const __m128i)),
        }
    }

    /// # Safety
    /// Caller must have verified `ssse3`.
    // lint: hot
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mul_slice_ssse3(dst: &mut [Gf16], tbl: &MulTable) {
        let t = load_tables(tbl);
        let mut chunks = dst.chunks_exact_mut(8);
        for c in &mut chunks {
            let p = c.as_mut_ptr() as *mut __m128i;
            _mm_storeu_si128(p, mul_vec(_mm_loadu_si128(p), &t));
        }
        super::gf_mul_slice_scalar(chunks.into_remainder(), tbl);
    }

    /// # Safety
    /// Caller must have verified `ssse3`.
    // lint: hot
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn mulacc_slice_ssse3(dst: &mut [Gf16], src: &[Gf16], tbl: &MulTable) {
        let t = load_tables(tbl);
        let mut d = dst.chunks_exact_mut(8);
        let mut s = src.chunks_exact(8);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let dp = dc.as_mut_ptr() as *mut __m128i;
            let sv = _mm_loadu_si128(sc.as_ptr() as *const __m128i);
            _mm_storeu_si128(dp, _mm_xor_si128(_mm_loadu_si128(dp), mul_vec(sv, &t)));
        }
        super::gf_mulacc_slice_scalar(d.into_remainder(), s.remainder(), tbl);
    }
}

#[cfg(all(target_arch = "aarch64", not(feature = "forced-scalar")))]
mod neon {
    //! NEON mirror of the SSSE3 kernels: `vqtbl1q_u8` is the byte
    //! shuffle, and NEON is baseline on aarch64 so there is no runtime
    //! check. Structured identically to `x86` above.

    use super::{Gf16, MulTable};
    #[allow(clippy::wildcard_imports)] // the intrinsics namespace is the API
    use std::arch::aarch64::*;

    struct Tables {
        lo: [uint8x16_t; 4],
        hi: [uint8x16_t; 4],
    }

    /// # Safety
    /// NEON (baseline on aarch64).
    #[inline]
    unsafe fn load_tables(tbl: &MulTable) -> Tables {
        Tables {
            lo: std::array::from_fn(|p| vld1q_u8(tbl.lo[p].as_ptr())),
            hi: std::array::from_fn(|p| vld1q_u8(tbl.hi[p].as_ptr())),
        }
    }

    /// # Safety
    /// NEON (baseline on aarch64).
    #[inline]
    unsafe fn contrib(
        acc: uint16x8_t,
        idx: uint8x16_t,
        lo: uint8x16_t,
        hi: uint8x16_t,
    ) -> uint16x8_t {
        let l = vreinterpretq_u16_u8(vqtbl1q_u8(lo, idx));
        let h = vshlq_n_u16::<8>(vreinterpretq_u16_u8(vqtbl1q_u8(hi, idx)));
        veorq_u16(acc, veorq_u16(l, h))
    }

    /// # Safety
    /// NEON (baseline on aarch64).
    #[inline]
    unsafe fn mul_vec(v: uint16x8_t, t: &Tables) -> uint16x8_t {
        let nib = vdupq_n_u16(0x000f);
        let n0 = vreinterpretq_u8_u16(vandq_u16(v, nib));
        let n1 = vreinterpretq_u8_u16(vandq_u16(vshrq_n_u16::<4>(v), nib));
        let n2 = vreinterpretq_u8_u16(vandq_u16(vshrq_n_u16::<8>(v), nib));
        let n3 = vreinterpretq_u8_u16(vshrq_n_u16::<12>(v));
        let mut acc = vdupq_n_u16(0);
        acc = contrib(acc, n0, t.lo[0], t.hi[0]);
        acc = contrib(acc, n1, t.lo[1], t.hi[1]);
        acc = contrib(acc, n2, t.lo[2], t.hi[2]);
        contrib(acc, n3, t.lo[3], t.hi[3])
    }

    /// # Safety
    /// NEON (baseline on aarch64).
    // lint: hot
    pub(super) unsafe fn mul_slice_neon(dst: &mut [Gf16], tbl: &MulTable) {
        let t = load_tables(tbl);
        let mut chunks = dst.chunks_exact_mut(8);
        for c in &mut chunks {
            let p = c.as_mut_ptr() as *mut u16;
            vst1q_u16(p, mul_vec(vld1q_u16(p), &t));
        }
        super::gf_mul_slice_scalar(chunks.into_remainder(), tbl);
    }

    /// # Safety
    /// NEON (baseline on aarch64).
    // lint: hot
    pub(super) unsafe fn mulacc_slice_neon(dst: &mut [Gf16], src: &[Gf16], tbl: &MulTable) {
        let t = load_tables(tbl);
        let mut d = dst.chunks_exact_mut(8);
        let mut s = src.chunks_exact(8);
        for (dc, sc) in (&mut d).zip(&mut s) {
            let dp = dc.as_mut_ptr() as *mut u16;
            let sv = vld1q_u16(sc.as_ptr() as *const u16);
            vst1q_u16(dp, veorq_u16(vld1q_u16(dp), mul_vec(sv, &t)));
        }
        super::gf_mulacc_slice_scalar(d.into_remainder(), s.remainder(), tbl);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rng_from_seed, Rng};

    #[test]
    fn table_mul_matches_field_mul() {
        let mut rng = rng_from_seed(0x7AB1E);
        for _ in 0..64 {
            let c = Gf16(rng.next_u64() as u16);
            let tbl = MulTable::new(c);
            for x in [0u16, 1, 2, 0x00ff, 0x0f0f, 0xffff] {
                assert_eq!(tbl.mul(Gf16(x)), c.mul(Gf16(x)), "c={c} x={x:#x}");
            }
            for _ in 0..64 {
                let x = Gf16(rng.next_u64() as u16);
                assert_eq!(tbl.mul(x), c.mul(x), "c={c} x={x}");
            }
        }
    }

    #[test]
    fn slice_kernels_match_scalar_oracle() {
        // Lengths straddling the 8-lane vector width, including the
        // empty slice and pure-tail cases.
        let mut rng = rng_from_seed(0x51135);
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 64, 100] {
            let c = Gf16(rng.next_u64() as u16);
            let tbl = MulTable::new(c);
            let src: Vec<Gf16> = (0..len).map(|_| Gf16(rng.next_u64() as u16)).collect();
            let base: Vec<Gf16> = (0..len).map(|_| Gf16(rng.next_u64() as u16)).collect();

            let mut got = src.clone();
            gf_mul_slice(&mut got, &tbl);
            let mut want = src.clone();
            gf_mul_slice_scalar(&mut want, &tbl);
            assert_eq!(got, want, "mul len={len}");

            let mut got = base.clone();
            gf_mulacc_slice(&mut got, &src, &tbl);
            let mut want = base.clone();
            gf_mulacc_slice_scalar(&mut want, &src, &tbl);
            assert_eq!(got, want, "mulacc len={len}");
        }
    }

    #[test]
    fn zero_and_one_constants() {
        let src: Vec<Gf16> = (0..24).map(|i| Gf16(i * 37 + 1)).collect();
        let mut by_zero = src.clone();
        gf_mul_slice(&mut by_zero, &MulTable::new(Gf16::ZERO));
        assert!(by_zero.iter().all(|&v| v == Gf16::ZERO));
        let mut by_one = src.clone();
        gf_mul_slice(&mut by_one, &MulTable::new(Gf16::ONE));
        assert_eq!(by_one, src);
    }

    #[test]
    fn active_path_is_consistent_with_features() {
        let path = active_path();
        if cfg!(feature = "forced-scalar") {
            assert_eq!(path, KernelPath::Scalar);
        }
        // Smoke the label mapping either way.
        assert!(["scalar", "ssse3", "neon"].contains(&path.label()));
    }
}
