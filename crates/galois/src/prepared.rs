//! [`PreparedMatrix`]: a matrix pre-expanded into nibble-product tables
//! for repeated matrix–vector products against *changing* vectors.
//!
//! [`MulTable`](crate::MulTable) amortizes table construction over one
//! slice; a decode matrix is reused across millions of products, so here
//! the whole matrix is expanded once at construction. Layout is
//! *chunk-major*: output rows are grouped eight at a time (one 128-bit
//! register), and for each chunk, column `j`, nibble position `t` and
//! nibble value `x` the table stores the eight products
//! `M[chunk·8+lane][j] · (x << 4t)` packed as two `u64` words. A product
//! is then, per chunk: four table lookups per column, XOR-accumulated in
//! two registers, with one store at the end — no scratch, no allocation,
//! and no log/exp traffic.
//!
//! The two-`u64` SWAR accumulator is written so LLVM's SLP vectorizer
//! fuses it into 128-bit XORs on x86_64/aarch64; the code itself is
//! portable safe Rust, so `forced-scalar` builds run the identical
//! statements (XOR is exact and order-insensitive, so results are
//! bit-identical on every path — see the determinism argument in
//! [`crate::kernels`]).
//!
//! Partial products: a reader that needs only rows `r..r+k` of the
//! decode can ask for just those via [`PreparedMatrix::mul_rows_into`],
//! paying only for the 8-row chunks the range overlaps — the win that
//! makes IDA reads (one word = 4 symbols of a 12-symbol block) cheap.

use crate::{Gf16, Matrix, MulTable};

/// Words per (chunk, column, position, nibble) table row: 8 u16 lanes.
const LANE_WORDS: usize = 2;
/// Table rows per (chunk, column): 4 nibble positions × 16 values.
const COL_STRIDE: usize = 4 * 16 * LANE_WORDS;

/// A matrix expanded into chunk-major nibble tables (see module docs).
#[derive(Debug, Clone)]
pub struct PreparedMatrix {
    rows: usize,
    cols: usize,
    chunks: usize,
    /// Indexed `((chunk·cols + j)·4 + t)·16·2 + x·2 + word`.
    tables: Vec<u64>,
}

impl PreparedMatrix {
    /// Expand `m` into nibble tables (`rows.div_ceil(8) · cols` KiB-scale;
    /// tail-chunk lanes beyond `rows` stay zero and are never stored).
    pub fn from_matrix(m: &Matrix) -> PreparedMatrix {
        let (rows, cols) = (m.rows(), m.cols());
        let chunks = rows.div_ceil(8);
        let mut tables = vec![0u64; chunks * cols * COL_STRIDE];
        for i in 0..rows {
            let (chunk, lane) = (i / 8, i % 8);
            let (word, shift) = (lane / 4, (lane % 4) * 16);
            for j in 0..cols {
                let prods = MulTable::new(m[(i, j)]);
                for (t, plane) in prods.products().iter().enumerate() {
                    for (x, &v) in plane.iter().enumerate() {
                        let base =
                            (chunk * cols + j) * COL_STRIDE + (t * 16 + x) * LANE_WORDS + word;
                        tables[base] |= (v as u64) << shift;
                    }
                }
            }
        }
        PreparedMatrix {
            rows,
            cols,
            chunks,
            tables,
        }
    }

    /// Row count of the underlying matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count of the underlying matrix.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The 8-row chunk product: two packed u64 words of output lanes.
    // lint: hot
    #[inline]
    fn chunk_product(&self, v: &[Gf16], chunk: usize) -> (u64, u64) {
        let mut a0 = 0u64;
        let mut a1 = 0u64;
        let mut base = chunk * self.cols * COL_STRIDE;
        for &x in v {
            let x = x.0 as usize;
            let i0 = base + (x & 15) * LANE_WORDS;
            let i1 = base + 32 + (x >> 4 & 15) * LANE_WORDS;
            let i2 = base + 64 + (x >> 8 & 15) * LANE_WORDS;
            let i3 = base + 96 + (x >> 12) * LANE_WORDS;
            a0 ^= self.tables[i0] ^ self.tables[i1] ^ self.tables[i2] ^ self.tables[i3];
            a1 ^= self.tables[i0 + 1]
                ^ self.tables[i1 + 1]
                ^ self.tables[i2 + 1]
                ^ self.tables[i3 + 1];
            base += COL_STRIDE;
        }
        (a0, a1)
    }

    /// `M · v` into caller-owned `out` (length `rows`), allocation-free.
    /// Bit-identical to [`Matrix::mul_vec_into`] on the same operands.
    // lint: hot
    pub fn mul_vec_into(&self, v: &[Gf16], out: &mut [Gf16]) {
        assert_eq!(v.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        for chunk in 0..self.chunks {
            let (a0, a1) = self.chunk_product(v, chunk);
            let rows = &mut out[chunk * 8..self.rows.min(chunk * 8 + 8)];
            for (lane, o) in rows.iter_mut().enumerate() {
                let w = if lane < 4 { a0 } else { a1 };
                *o = Gf16((w >> ((lane & 3) * 16)) as u16);
            }
        }
    }

    /// Rows `row_start..row_start + out.len()` of `M · v`, paying only
    /// for the 8-row chunks that range overlaps.
    // lint: hot
    pub fn mul_rows_into(&self, v: &[Gf16], row_start: usize, out: &mut [Gf16]) {
        assert_eq!(v.len(), self.cols);
        assert!(row_start + out.len() <= self.rows);
        if out.is_empty() {
            return;
        }
        let first = row_start / 8;
        let last = (row_start + out.len() - 1) / 8;
        for chunk in first..=last {
            let (a0, a1) = self.chunk_product(v, chunk);
            let lo = row_start.max(chunk * 8);
            let hi = (row_start + out.len()).min(chunk * 8 + 8);
            for row in lo..hi {
                let lane = row & 7;
                let w = if lane < 4 { a0 } else { a1 };
                out[row - row_start] = Gf16((w >> ((lane & 3) * 16)) as u16);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rng_from_seed, Rng};

    fn random_matrix(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = Gf16(rng.next_u64() as u16);
            }
        }
        m
    }

    #[test]
    fn prepared_product_matches_scalar_oracle() {
        let mut rng = rng_from_seed(0x9E9A);
        // Shapes straddling the 8-row chunk boundary, incl. IDA's 12×12
        // decode and 18×12 encode.
        for (rows, cols) in [(1, 1), (4, 3), (8, 8), (9, 2), (12, 12), (18, 12), (31, 5)] {
            let m = random_matrix(&mut rng, rows, cols);
            let p = PreparedMatrix::from_matrix(&m);
            assert_eq!((p.rows(), p.cols()), (rows, cols));
            for case in 0..32 {
                let v: Vec<Gf16> = (0..cols).map(|_| Gf16(rng.next_u64() as u16)).collect();
                let mut want = vec![Gf16::ZERO; rows];
                m.mul_vec_into(&v, &mut want);
                let mut got = vec![Gf16::ZERO; rows];
                p.mul_vec_into(&v, &mut got);
                assert_eq!(got, want, "{rows}x{cols} case {case}");
            }
        }
    }

    #[test]
    fn partial_rows_match_full_product() {
        let mut rng = rng_from_seed(0xA11);
        let m = random_matrix(&mut rng, 12, 12);
        let p = PreparedMatrix::from_matrix(&m);
        let v: Vec<Gf16> = (0..12).map(|_| Gf16(rng.next_u64() as u16)).collect();
        let mut full = vec![Gf16::ZERO; 12];
        p.mul_vec_into(&v, &mut full);
        for start in 0..12 {
            for len in 0..=(12 - start) {
                let mut part = vec![Gf16::ZERO; len];
                p.mul_rows_into(&v, start, &mut part);
                assert_eq!(part, &full[start..start + len], "start={start} len={len}");
            }
        }
    }

    #[test]
    fn vandermonde_roundtrip_through_prepared() {
        let mut rng = rng_from_seed(0xBEE);
        let enc = Matrix::vandermonde(9, 4);
        let p_enc = PreparedMatrix::from_matrix(&enc);
        for _ in 0..32 {
            let data: Vec<Gf16> = (0..4).map(|_| Gf16(rng.next_u64() as u16)).collect();
            let mut shares = vec![Gf16::ZERO; 9];
            p_enc.mul_vec_into(&data, &mut shares);
            assert_eq!(shares, enc.mul_vec(&data));
            let idx: Vec<usize> = rng
                .sample_distinct(9, 4)
                .into_iter()
                .map(|i| i as usize)
                .collect();
            let inv = enc.select_rows(&idx).inverse().unwrap();
            let p_inv = PreparedMatrix::from_matrix(&inv);
            let picked: Vec<Gf16> = idx.iter().map(|&i| shares[i]).collect();
            let mut back = vec![Gf16::ZERO; 4];
            p_inv.mul_vec_into(&picked, &mut back);
            assert_eq!(back, data);
        }
    }
}
