//! GF(2¹⁶) arithmetic and linear algebra — the finite-field substrate for
//! Rabin's information dispersal (the paper's §1 "alternative scheme"
//! attributed to Schuster).
//!
//! Elements are 16-bit polynomials over GF(2) modulo the primitive
//! polynomial `x¹⁶ + x¹² + x³ + x + 1` (0x1100B). Multiplication and
//! inversion go through log/antilog tables built once per process
//! (128 KiB + 256 KiB), giving O(1) field ops — the right trade for the
//! codec benchmarks.

pub mod kernels;
pub mod matrix;
pub mod prepared;

pub use kernels::{active_path, gf_mul_slice, gf_mulacc_slice, KernelPath, MulTable};
pub use matrix::Matrix;
pub use prepared::PreparedMatrix;

use std::sync::OnceLock;

/// The primitive polynomial: x^16 + x^12 + x^3 + x + 1.
pub(crate) const POLY: u32 = 0x1100B;
/// Multiplicative group order.
const ORDER: usize = 65535;

/// Multiply by the generator `x` (i.e. 2): one shift plus a conditional
/// reduction. The seed of every nibble-table build — table construction
/// never touches the log/exp tables, so the SIMD kernels are independent
/// of (and differentially testable against) the scalar path.
#[inline]
pub(crate) fn xtimes(v: u16) -> u16 {
    let wide = (v as u32) << 1;
    if wide & 0x10000 != 0 {
        (wide ^ POLY) as u16
    } else {
        wide as u16
    }
}

struct Tables {
    /// exp[i] = g^i for i in 0..2·ORDER (doubled to skip a mod in mul).
    exp: Vec<u16>,
    /// log[x] for x in 1..=ORDER; log[0] is a sentinel (unused).
    log: Vec<u16>,
}

fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 2 * ORDER];
        let mut log = vec![0u16; ORDER + 1];
        let mut x: u32 = 1;
        #[allow(clippy::needless_range_loop)] // i indexes exp and log by coupled values
        for i in 0..ORDER {
            exp[i] = x as u16;
            log[x as usize] = i as u16;
            // multiply by the generator g = x (i.e. 2)
            x <<= 1;
            if x & 0x10000 != 0 {
                x ^= POLY;
            }
        }
        for i in ORDER..2 * ORDER {
            exp[i] = exp[i - ORDER];
        }
        Tables { exp, log }
    })
}

/// An element of GF(2¹⁶).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf16(pub u16);

#[allow(clippy::should_implement_trait)] // inherent names mirror the field operations
impl Gf16 {
    /// Additive identity.
    pub const ZERO: Gf16 = Gf16(0);
    /// Multiplicative identity.
    pub const ONE: Gf16 = Gf16(1);

    /// Field addition = XOR (characteristic 2).
    #[inline]
    pub fn add(self, other: Gf16) -> Gf16 {
        Gf16(self.0 ^ other.0)
    }

    /// Subtraction coincides with addition in characteristic 2.
    #[inline]
    pub fn sub(self, other: Gf16) -> Gf16 {
        self.add(other)
    }

    /// Field multiplication via log tables.
    #[inline]
    pub fn mul(self, other: Gf16) -> Gf16 {
        if self.0 == 0 || other.0 == 0 {
            return Gf16::ZERO;
        }
        let t = tables();
        let l = t.log[self.0 as usize] as usize + t.log[other.0 as usize] as usize;
        Gf16(t.exp[l])
    }

    /// Multiplicative inverse. Panics on zero.
    #[inline]
    pub fn inv(self) -> Gf16 {
        assert!(self.0 != 0, "zero has no inverse");
        let t = tables();
        Gf16(t.exp[ORDER - t.log[self.0 as usize] as usize])
    }

    /// Field division. Panics if `other` is zero.
    #[inline]
    pub fn div(self, other: Gf16) -> Gf16 {
        self.mul(other.inv())
    }

    /// `self^e` by table arithmetic (`0^0 = 1`).
    pub fn pow(self, e: u64) -> Gf16 {
        if e == 0 {
            return Gf16::ONE;
        }
        if self.0 == 0 {
            return Gf16::ZERO;
        }
        let t = tables();
        let l = (t.log[self.0 as usize] as u64 * (e % ORDER as u64)) % ORDER as u64;
        Gf16(t.exp[l as usize])
    }
}

impl std::ops::Add for Gf16 {
    type Output = Gf16;
    fn add(self, rhs: Gf16) -> Gf16 {
        Gf16::add(self, rhs)
    }
}

impl std::ops::Sub for Gf16 {
    type Output = Gf16;
    fn sub(self, rhs: Gf16) -> Gf16 {
        Gf16::sub(self, rhs)
    }
}

impl std::ops::Mul for Gf16 {
    type Output = Gf16;
    fn mul(self, rhs: Gf16) -> Gf16 {
        Gf16::mul(self, rhs)
    }
}

impl std::fmt::Display for Gf16 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:04x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rng_from_seed, Rng};

    #[test]
    fn identities() {
        let a = Gf16(0x1234);
        assert_eq!(a + Gf16::ZERO, a);
        assert_eq!(a.mul(Gf16::ONE), a);
        assert_eq!(a + a, Gf16::ZERO); // char 2
        assert_eq!(a.mul(Gf16::ZERO), Gf16::ZERO);
    }

    #[test]
    fn known_products() {
        // x * x = x^2
        assert_eq!(Gf16(2).mul(Gf16(2)), Gf16(4));
        // x^15 * x = x^16 = x^12 + x^3 + x + 1 (mod POLY)
        assert_eq!(Gf16(1 << 15).mul(Gf16(2)), Gf16(0x100B));
    }

    #[test]
    fn inverse_roundtrip_spot() {
        for v in [1u16, 2, 3, 0x1234, 0xFFFF, 0x8000] {
            let a = Gf16(v);
            assert_eq!(a.mul(a.inv()), Gf16::ONE, "v={v:#x}");
        }
    }

    #[test]
    #[should_panic(expected = "no inverse")]
    fn zero_inverse_panics() {
        let _ = Gf16::ZERO.inv();
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let g = Gf16(7);
        let mut acc = Gf16::ONE;
        for e in 0..20u64 {
            assert_eq!(g.pow(e), acc, "e={e}");
            acc = acc.mul(g);
        }
    }

    #[test]
    fn generator_has_full_order() {
        // g = 2 generates the multiplicative group: g^ORDER = 1 and
        // g^(ORDER/p) != 1 for prime factors p of 65535 = 3·5·17·257.
        let g = Gf16(2);
        assert_eq!(g.pow(ORDER as u64), Gf16::ONE);
        for p in [3u64, 5, 17, 257] {
            assert_ne!(g.pow(ORDER as u64 / p), Gf16::ONE, "p={p}");
        }
    }

    #[test]
    fn field_axioms_randomized() {
        // Commutativity, associativity, distributivity, invertibility on
        // reproducible random samples.
        let mut rng = rng_from_seed(0xF1E1D);
        for case in 0..512 {
            let (a, b, c) = (
                Gf16(rng.next_u64() as u16),
                Gf16(rng.next_u64() as u16),
                Gf16(rng.next_u64() as u16),
            );
            assert_eq!(a.mul(b), b.mul(a), "case {case}: commutativity");
            assert_eq!(
                a.mul(b).mul(c),
                a.mul(b.mul(c)),
                "case {case}: associativity"
            );
            assert_eq!(
                a.mul(b + c),
                a.mul(b) + a.mul(c),
                "case {case}: distributivity"
            );
            if a != Gf16::ZERO {
                assert_eq!(a.mul(a.inv()), Gf16::ONE, "case {case}: inverse");
                assert_eq!(a.div(a), Gf16::ONE, "case {case}: self-division");
            }
        }
    }
}
