//! Dense matrices over GF(2¹⁶): just enough linear algebra for information
//! dispersal — Vandermonde construction, matrix–vector products, and
//! Gaussian inversion.

use crate::kernels::{gf_mul_slice, gf_mulacc_slice, MulTable};
use crate::Gf16;

/// A dense row-major matrix over GF(2¹⁶).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf16>,
}

impl Default for Matrix {
    /// The empty `0 × 0` matrix — the natural seed for `*_into` scratch
    /// buffers, which reshape in place on first use.
    fn default() -> Self {
        Matrix::zero(0, 0)
    }
}

impl Matrix {
    /// Zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Gf16::ZERO; rows * cols],
        }
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf16::ONE;
        }
        m
    }

    /// Vandermonde matrix: row `i` is `[1, xᵢ, xᵢ², …, xᵢ^{cols−1}]` with
    /// `xᵢ = i + 1` (distinct and nonzero, so any `cols` rows are linearly
    /// independent — the property information dispersal rests on).
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(rows <= 65535, "need distinct nonzero evaluation points");
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            let x = Gf16((i + 1) as u16);
            let mut p = Gf16::ONE;
            for j in 0..cols {
                m[(i, j)] = p;
                p = p.mul(x);
            }
        }
        m
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `self · v` for a column vector `v`.
    pub fn mul_vec(&self, v: &[Gf16]) -> Vec<Gf16> {
        let mut out = vec![Gf16::ZERO; self.rows];
        self.mul_vec_into(v, &mut out);
        out
    }

    /// `self · v` written into caller-owned `out` (length `rows`) — the
    /// allocation-free product the hot decode/encode paths run on.
    pub fn mul_vec_into(&self, v: &[Gf16], out: &mut [Gf16]) {
        assert_eq!(v.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        for (o, row) in out.iter_mut().zip(self.data.chunks_exact(self.cols)) {
            let mut acc = Gf16::ZERO;
            for (a, b) in row.iter().zip(v) {
                acc = acc + a.mul(*b);
            }
            *o = acc;
        }
    }

    /// Reuse this matrix's storage for new dimensions (capacity kept).
    fn reshape(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, Gf16::ZERO);
    }

    /// A new matrix from a subset of this one's rows.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut m = Matrix::zero(idx.len(), self.cols);
        self.select_rows_into(idx, &mut m);
        m
    }

    /// Row selection into caller-owned `out` (reshaped in place, so a
    /// warm `out` never reallocates).
    pub fn select_rows_into(&self, idx: &[usize], out: &mut Matrix) {
        out.reshape(idx.len(), self.cols);
        for (new_i, &old_i) in idx.iter().enumerate() {
            assert!(old_i < self.rows);
            let src = &self.data[old_i * self.cols..(old_i + 1) * self.cols];
            out.data[new_i * self.cols..(new_i + 1) * self.cols].copy_from_slice(src);
        }
    }

    /// Inverse by Gauss–Jordan elimination with partial pivoting; `None`
    /// if singular.
    pub fn inverse(&self) -> Option<Matrix> {
        let mut scratch = Matrix::zero(0, 0);
        let mut inv = Matrix::zero(0, 0);
        self.invert_into(&mut scratch, &mut inv).then_some(inv)
    }

    /// Gauss–Jordan inversion over caller scratch: `scratch` receives a
    /// working copy of `self`, `inv` the inverse. Returns `false` (with
    /// both buffers in an unspecified state) if singular. Warm buffers
    /// make this allocation-free — the decode-matrix cache's cold path.
    pub fn invert_into(&self, scratch: &mut Matrix, inv: &mut Matrix) -> bool {
        assert_eq!(self.rows, self.cols, "inverse of a square matrix only");
        let n = self.rows;
        scratch.reshape(n, n);
        scratch.data.copy_from_slice(&self.data);
        inv.reshape(n, n);
        for i in 0..n {
            inv[(i, i)] = Gf16::ONE;
        }
        let a = scratch;
        for col in 0..n {
            // Find a pivot.
            let Some(pivot) = (col..n).find(|&r| a[(r, col)] != Gf16::ZERO) else {
                return false;
            };
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Row ops run on whole-row slices through the dispatched
            // kernels (SIMD when available, scalar otherwise) — XOR
            // accumulation makes either path bit-identical.
            let ptbl = MulTable::new(a[(col, col)].inv());
            gf_mul_slice(a.row_mut(col), &ptbl);
            gf_mul_slice(inv.row_mut(col), &ptbl);
            for r in 0..n {
                if r == col || a[(r, col)] == Gf16::ZERO {
                    continue;
                }
                let ftbl = MulTable::new(a[(r, col)]);
                let (src, dst) = a.two_rows_mut(col, r);
                gf_mulacc_slice(dst, src, &ftbl);
                let (src, dst) = inv.two_rows_mut(col, r);
                gf_mulacc_slice(dst, src, &ftbl);
            }
        }
        true
    }

    /// Row `i` as a mutable slice.
    fn row_mut(&mut self, i: usize) -> &mut [Gf16] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Disjoint borrows of row `src` (shared) and row `dst` (mutable);
    /// the two must differ.
    fn two_rows_mut(&mut self, src: usize, dst: usize) -> (&[Gf16], &mut [Gf16]) {
        assert_ne!(src, dst);
        let c = self.cols;
        if src < dst {
            let (head, tail) = self.data.split_at_mut(dst * c);
            (&head[src * c..(src + 1) * c], &mut tail[..c])
        } else {
            let (head, tail) = self.data.split_at_mut(src * c);
            (&tail[..c], &mut head[dst * c..(dst + 1) * c])
        }
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let c = self.cols;
        let (head, tail) = self.data.split_at_mut(hi * c);
        head[lo * c..(lo + 1) * c].swap_with_slice(&mut tail[..c]);
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf16;
    fn index(&self, (i, j): (usize, usize)) -> &Gf16 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Gf16 {
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rng_from_seed, Rng};

    #[test]
    fn identity_mul() {
        let i = Matrix::identity(4);
        let v: Vec<Gf16> = (1..=4).map(Gf16).collect();
        assert_eq!(i.mul_vec(&v), v);
    }

    #[test]
    fn vandermonde_any_square_submatrix_invertible() {
        let m = Matrix::vandermonde(8, 4);
        // Several row subsets, including adjacent and spread ones.
        for idx in [[0usize, 1, 2, 3], [4, 5, 6, 7], [0, 2, 5, 7], [1, 3, 4, 6]] {
            let sub = m.select_rows(&idx);
            assert!(
                sub.inverse().is_some(),
                "rows {idx:?} should be independent"
            );
        }
    }

    #[test]
    fn singular_detected() {
        let mut m = Matrix::zero(2, 2);
        m[(0, 0)] = Gf16(3);
        m[(0, 1)] = Gf16(5);
        m[(1, 0)] = Gf16(3);
        m[(1, 1)] = Gf16(5);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn inverse_roundtrip() {
        let m = Matrix::vandermonde(5, 5);
        let inv = m.inverse().unwrap();
        let v: Vec<Gf16> = [9u16, 99, 999, 9999, members()]
            .iter()
            .map(|&x| Gf16(x))
            .collect();
        let round = inv.mul_vec(&m.mul_vec(&v));
        assert_eq!(round, v);
    }

    fn members() -> u16 {
        0x4242
    }

    #[test]
    fn into_variants_match_allocating_ones() {
        let m = Matrix::vandermonde(9, 4);
        let v: Vec<Gf16> = (1u16..=4).map(Gf16).collect();
        let mut out = vec![Gf16::ZERO; 9];
        m.mul_vec_into(&v, &mut out);
        assert_eq!(out, m.mul_vec(&v));

        let idx = [0usize, 3, 5, 8];
        let mut sub = Matrix::zero(0, 0);
        m.select_rows_into(&idx, &mut sub);
        assert_eq!(sub, m.select_rows(&idx));

        let mut scratch = Matrix::zero(0, 0);
        let mut inv = Matrix::zero(0, 0);
        assert!(sub.invert_into(&mut scratch, &mut inv));
        assert_eq!(inv, sub.inverse().unwrap());
        // Reusing warm buffers (including for a singular input) is fine.
        let mut sing = Matrix::zero(2, 2);
        sing[(0, 0)] = Gf16(3);
        sing[(1, 0)] = Gf16(3);
        assert!(!sing.invert_into(&mut scratch, &mut inv));
        assert!(sub.invert_into(&mut scratch, &mut inv));
        assert_eq!(inv, sub.inverse().unwrap());
    }

    #[test]
    fn vandermonde_encode_decode_randomized() {
        let mut rng = rng_from_seed(0x7A6D);
        let enc = Matrix::vandermonde(9, 4);
        for case in 0..128 {
            let data: Vec<Gf16> = (0..4).map(|_| Gf16(rng.next_u64() as u16)).collect();
            let shares = enc.mul_vec(&data);
            // Decode from a random 4-row subset.
            let idx: Vec<usize> = rng
                .sample_distinct(9, 4)
                .into_iter()
                .map(|i| i as usize)
                .collect();
            let sub = enc.select_rows(&idx);
            let inv = sub.inverse().expect("vandermonde rows independent");
            let picked: Vec<Gf16> = idx.iter().map(|&i| shares[i]).collect();
            assert_eq!(inv.mul_vec(&picked), data, "case {case}, rows {idx:?}");
        }
    }
}
