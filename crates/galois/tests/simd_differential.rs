//! Differential tests: the dispatched (possibly SIMD) kernels against
//! the scalar oracle, property-style over reproducible random inputs.
//!
//! CI runs this suite twice — once with default features (SIMD dispatch
//! live on the runner) and once with `--features forced-scalar` (every
//! call pinned to the scalar loop) — so equality holds on both compiled
//! paths. The cases deliberately include the shapes the IDA hot path
//! feeds the kernels: Vandermonde decode submatrices for random
//! *post-fault* quorums, where surviving share indices are drawn from a
//! shrunken pool.

use galois::kernels::{gf_mul_slice_scalar, gf_mulacc_slice_scalar};
use galois::{active_path, gf_mul_slice, gf_mulacc_slice, Gf16, Matrix, MulTable, PreparedMatrix};
use simrng::{rng_from_seed, Rng};

fn random_vec(rng: &mut impl Rng, len: usize) -> Vec<Gf16> {
    (0..len).map(|_| Gf16(rng.next_u64() as u16)).collect()
}

/// Scalar-oracle matrix–vector product via `Gf16::mul` (log/exp path).
fn mul_vec_oracle(m: &Matrix, v: &[Gf16]) -> Vec<Gf16> {
    let mut out = vec![Gf16::ZERO; m.rows()];
    for i in 0..m.rows() {
        let mut acc = Gf16::ZERO;
        for j in 0..m.cols() {
            acc = acc + m[(i, j)].mul(v[j]);
        }
        out[i] = acc;
    }
    out
}

#[test]
fn slice_kernels_equal_scalar_on_random_slices() {
    let mut rng = rng_from_seed(0xD1FF_5C01);
    for case in 0..256 {
        let len = rng.index(130);
        let c = Gf16(rng.next_u64() as u16);
        let tbl = MulTable::new(c);
        let src = random_vec(&mut rng, len);
        let base = random_vec(&mut rng, len);

        let mut got = src.clone();
        gf_mul_slice(&mut got, &tbl);
        let mut want = src.clone();
        gf_mul_slice_scalar(&mut want, &tbl);
        // Cross-check the oracle itself against the field multiply.
        for (w, s) in want.iter().zip(&src) {
            assert_eq!(*w, c.mul(*s), "case {case}: oracle vs Gf16::mul");
        }
        assert_eq!(got, want, "case {case}: gf_mul_slice len={len}");

        let mut got = base.clone();
        gf_mulacc_slice(&mut got, &src, &tbl);
        let mut want = base.clone();
        gf_mulacc_slice_scalar(&mut want, &src, &tbl);
        assert_eq!(got, want, "case {case}: gf_mulacc_slice len={len}");
    }
}

#[test]
fn prepared_mul_vec_equals_scalar_on_random_matrices() {
    let mut rng = rng_from_seed(0xD1FF_5C02);
    for case in 0..128 {
        let rows = 1 + rng.index(24);
        let cols = 1 + rng.index(24);
        let mut m = Matrix::zero(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = Gf16(rng.next_u64() as u16);
            }
        }
        let p = PreparedMatrix::from_matrix(&m);
        let v = random_vec(&mut rng, cols);

        let want = mul_vec_oracle(&m, &v);
        let mut via_matrix = vec![Gf16::ZERO; rows];
        m.mul_vec_into(&v, &mut via_matrix);
        assert_eq!(via_matrix, want, "case {case}: Matrix::mul_vec_into");

        let mut got = vec![Gf16::ZERO; rows];
        p.mul_vec_into(&v, &mut got);
        assert_eq!(got, want, "case {case}: prepared {rows}x{cols}");

        // Partial-row products agree with the full one.
        let start = rng.index(rows);
        let len = rng.index(rows - start + 1);
        let mut part = vec![Gf16::ZERO; len];
        p.mul_rows_into(&v, start, &mut part);
        assert_eq!(
            part,
            &want[start..start + len],
            "case {case}: rows {start}+{len}"
        );
    }
}

#[test]
fn invert_into_equals_scalar_on_post_fault_quorums() {
    // The IDA shape: d shares, any b recover. Kill a random fault set,
    // draw a quorum from the survivors, and require the Gauss–Jordan
    // inverse (whose row ops run on the dispatched kernels) to
    // roundtrip data exactly — for every (b, d) the store actually uses.
    let mut rng = rng_from_seed(0xD1FF_5C03);
    for (b, d) in [(2usize, 3usize), (4, 6), (8, 12), (12, 18), (16, 24)] {
        let enc = Matrix::vandermonde(d, b);
        let prepared_enc = PreparedMatrix::from_matrix(&enc);
        for case in 0..32 {
            // Fault up to d - b shares so a quorum always survives.
            let dead = rng.index(d - b + 1);
            let dead_idx = rng.sample_distinct(d as u64, dead);
            let mut alive: Vec<usize> = (0..d)
                .filter(|i| !dead_idx.contains(&(*i as u64)))
                .collect();
            rng.shuffle(&mut alive);
            let mut quorum = alive[..b].to_vec();
            quorum.sort_unstable();

            let data = random_vec(&mut rng, b);
            let mut shares = vec![Gf16::ZERO; d];
            prepared_enc.mul_vec_into(&data, &mut shares);
            assert_eq!(shares, mul_vec_oracle(&enc, &data), "encode b={b} d={d}");

            let sub = enc.select_rows(&quorum);
            let mut scratch = Matrix::default();
            let mut inv = Matrix::default();
            assert!(
                sub.invert_into(&mut scratch, &mut inv),
                "b={b} d={d} case {case}: quorum {quorum:?} singular"
            );

            // The kernel-built inverse must equal true inversion: check
            // inv·sub = I through the scalar oracle...
            for i in 0..b {
                let col: Vec<Gf16> = (0..b).map(|j| sub[(j, i)]).collect();
                let e = mul_vec_oracle(&inv, &col);
                for (j, &v) in e.iter().enumerate() {
                    let want = if i == j { Gf16::ONE } else { Gf16::ZERO };
                    assert_eq!(v, want, "b={b} case {case}: inv·sub[{j},{i}]");
                }
            }
            // ...and decoding through both product paths must recover
            // the data bit-for-bit.
            let picked: Vec<Gf16> = quorum.iter().map(|&i| shares[i]).collect();
            assert_eq!(mul_vec_oracle(&inv, &picked), data, "b={b} case {case}");
            let p_inv = PreparedMatrix::from_matrix(&inv);
            let mut back = vec![Gf16::ZERO; b];
            p_inv.mul_vec_into(&picked, &mut back);
            assert_eq!(back, data, "b={b} case {case}: prepared decode");
        }
    }
}

#[test]
fn forced_scalar_build_reports_scalar_path() {
    if cfg!(feature = "forced-scalar") {
        assert_eq!(active_path().label(), "scalar");
    }
}
