//! The TCP front end: one accept loop, one thread per connection, the
//! newline-framed protocol of [`crate::protocol`].
//!
//! Every connection thread holds its own clone of the [`ServiceHandle`],
//! so frames go straight from the socket to the owning shard's queue —
//! the accept loop never touches a session. Frames are capped at
//! [`MAX_FRAME`] bytes; an overlong or unparseable line gets an `ERR`
//! reply (and, for overlong, a disconnect) — never a panic.
//!
//! Replies are written as rendered plus one trailing newline. Multi-line
//! replies (`INFO`, `METRICS`, `EVENTS`) embed their payload newlines in
//! the rendered string and announce the count in the header's `lines=`
//! field, so this loop needs no special casing — clients read the header
//! line, then exactly that many more lines.
//!
//! The loop supports pipelining: clients may send a window of frames
//! without waiting, and replies come back one line per frame, in order.
//! Replies go through a [`BufWriter`] that is flushed only when the read
//! buffer holds no further complete frame — a pipelined window costs one
//! write syscall, while a ping-pong client still sees every reply flushed
//! before the loop blocks on the socket again.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::protocol::{execute, parse};
use crate::runtime::{Runtime, TaskHandle, ThreadRuntime};
use crate::service::ServiceHandle;

/// Longest accepted frame line (bytes, including the newline).
pub const MAX_FRAME: u64 = 64 * 1024;

/// How often blocked socket reads / the accept loop re-check shutdown.
const POLL: Duration = Duration::from_millis(50);

/// A running TCP server (accept loop + connection threads).
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<TaskHandle>,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral test port) and
    /// start accepting connections against `handle`'s service. The
    /// accept loop and every connection run on the production
    /// [`ThreadRuntime`] — the TCP front end is inherently an OS-thread
    /// affair; `cr-sim` simulates framed clients above the protocol
    /// layer instead of through sockets.
    pub fn bind<A: ToSocketAddrs>(addr: A, handle: ServiceHandle) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let runtime = Arc::new(ThreadRuntime::real());
        let rt2 = Arc::clone(&runtime);
        let accept_thread = runtime
            .spawn(
                "cr-serve-accept",
                Box::new(move || accept_loop(listener, handle, stop2, rt2)),
            )
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        Ok(Server {
            addr,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting and join the accept loop. Live connection threads
    /// exit on their next poll tick.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            t.join();
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    handle: ServiceHandle,
    stop: Arc<AtomicBool>,
    runtime: Arc<ThreadRuntime>,
) {
    while !stop.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                // Replies are small frames; without nodelay, Nagle +
                // delayed ACK add milliseconds to every round trip.
                let _ = stream.set_nodelay(true);
                let handle = handle.clone();
                let stop = Arc::clone(&stop);
                // Connection tasks are detached; they exit when the
                // client disconnects or the stop flag flips.
                let _ = runtime.spawn(
                    "cr-serve-conn",
                    Box::new(move || connection_loop(stream, handle, stop)),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                runtime.sleep(POLL);
            }
            Err(_) => break,
        }
    }
}

fn connection_loop(stream: TcpStream, mut handle: ServiceHandle, stop: Arc<AtomicBool>) {
    if stream.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let mut writer = match stream.try_clone() {
        Ok(w) => BufWriter::new(w),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    // Partial lines survive read timeouts: `buf` accumulates until a
    // newline (or EOF) completes the frame.
    let mut buf: Vec<u8> = Vec::new();
    while !stop.load(Ordering::Relaxed) {
        let mut at_eof = false;
        match (&mut reader).take(MAX_FRAME).read_until(b'\n', &mut buf) {
            Ok(0) if buf.is_empty() => return, // client closed cleanly
            Ok(0) => at_eof = true,            // final line without newline
            Ok(_) if !buf.ends_with(b"\n") => {
                if buf.len() as u64 >= MAX_FRAME {
                    let _ = writer.write_all(b"ERR frame exceeds 64KiB\n");
                    let _ = writer.flush();
                    return;
                }
                at_eof = true; // read_until returned short of EOF: stream end
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if buf.len() as u64 >= MAX_FRAME {
                    let _ = writer.write_all(b"ERR frame exceeds 64KiB\n");
                    let _ = writer.flush();
                    return;
                }
                continue; // idle or mid-line: keep the partial frame, re-check stop
            }
            Err(_) => return,
        }
        let line = String::from_utf8_lossy(&buf);
        let line = line.trim();
        let reply = if line.is_empty() {
            None
        } else {
            match parse(line) {
                Ok(frame) => match execute(&mut handle, frame) {
                    Some(reply) => Some(reply),
                    None => {
                        let _ = writer.write_all(b"OK bye\n");
                        let _ = writer.flush();
                        return;
                    }
                },
                Err(msg) => Some(format!("ERR {msg}")),
            }
        };
        buf.clear();
        if let Some(reply) = reply {
            if writer
                .write_all(reply.as_bytes())
                .and_then(|_| writer.write_all(b"\n"))
                .is_err()
            {
                return;
            }
            // Pipelining seam: while the read buffer already holds the
            // next complete frame, keep the reply buffered — the whole
            // window flushes in one syscall once the client would
            // actually have to wait for it.
            if !reader.buffer().contains(&b'\n') && writer.flush().is_err() {
                return;
            }
        }
        if at_eof {
            return;
        }
    }
}
