//! The session service: N shards, hash routing, and the in-process
//! [`ServiceHandle`] API that tests, benches, and the TCP front end all
//! share.
//!
//! Sessions are hash-routed: session ids come from one global counter and
//! `shard_of(sid) = mix64(sid) mod shards`, so placement is uniform
//! without coordination and any holder of an id can find its shard. The
//! handle is `Clone` — every load-generator thread and TCP connection
//! clones its own set of queue senders and talks to the shards directly;
//! there is no central dispatcher thread to bottleneck on.

use cr_core::clock::SimClock;
use metrics::Histogram;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;

use crate::error::ServeError;
use crate::session::{SessionSpec, SessionStats, StepSummary, WorkloadSpec};
use crate::shard::{
    spawn_shard, OpenInfo, Reply, ShardCmd, ShardMetrics, TraceInfo, QUEUE_CAPACITY,
};

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker shards (threads). Sessions are hash-routed across them.
    pub shards: usize,
    /// Per-shard bounded queue capacity (the backpressure knob).
    pub queue_capacity: usize,
    /// Time source for session timestamps, step latency, and idle-TTL
    /// eviction. Real (monotonic) by default; tests inject
    /// [`SimClock::manual`] to drive eviction deterministically.
    pub clock: SimClock,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            queue_capacity: QUEUE_CAPACITY,
            clock: SimClock::monotonic(),
        }
    }
}

impl ServiceConfig {
    /// A config with `shards` workers and default queue capacity.
    pub fn with_shards(shards: usize) -> Self {
        ServiceConfig {
            shards: shards.max(1),
            ..Default::default()
        }
    }
}

/// Merged service-wide counters (`INFO`).
#[derive(Debug, Clone)]
pub struct ServiceInfo {
    /// Shard count.
    pub shards: usize,
    /// Live sessions across all shards.
    pub sessions: usize,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions closed by clients.
    pub closed: u64,
    /// Sessions evicted by idle TTL.
    pub evicted: u64,
    /// Steps executed across all shards.
    pub steps: u64,
    /// Deepest per-shard queue at snapshot time.
    pub queue_depth_max: usize,
    /// Merged per-step latency histogram (nanoseconds).
    pub latency: Histogram,
    /// Per-shard snapshots, in shard order.
    pub per_shard: Vec<ShardMetrics>,
}

struct ShardLink {
    tx: SyncSender<ShardCmd>,
    queue_depth: Arc<AtomicUsize>,
}

/// The cheap, cloneable client face of the service.
#[derive(Clone)]
pub struct ServiceHandle {
    shards: Arc<Vec<ShardLink>>,
    next_sid: Arc<AtomicU64>,
}

/// The service itself: owns the shard worker threads. Dropping (or
/// calling [`shutdown`](Service::shutdown)) stops them.
pub struct Service {
    handle: ServiceHandle,
    workers: Vec<JoinHandle<()>>,
}

impl Service {
    /// Start the shard workers. Fails with [`ServeError::Spawn`] if the
    /// OS refuses a worker thread; already-started workers are shut down
    /// cleanly when the partially built `Service` drops.
    pub fn start(cfg: ServiceConfig) -> Result<Service, ServeError> {
        let shards = cfg.shards.max(1);
        let mut links = Vec::with_capacity(shards);
        let mut workers = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = sync_channel(cfg.queue_capacity.max(1));
            let queue_depth = Arc::new(AtomicUsize::new(0));
            workers.push(spawn_shard(
                shard,
                rx,
                Arc::clone(&queue_depth),
                cfg.clock.clone(),
            )?);
            links.push(ShardLink { tx, queue_depth });
        }
        Ok(Service {
            handle: ServiceHandle {
                shards: Arc::new(links),
                next_sid: Arc::new(AtomicU64::new(1)),
            },
            workers,
        })
    }

    /// A clone-per-thread client handle.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Stop every shard worker and join them.
    pub fn shutdown(mut self) {
        for link in self.handle.shards.iter() {
            let _ = link.tx.send(ShardCmd::Shutdown);
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl ServiceHandle {
    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns a session id.
    pub fn shard_of(&self, sid: u64) -> usize {
        (simrng::mix64(sid) % self.shards.len() as u64) as usize
    }

    fn call(
        &self,
        shard: usize,
        make: impl FnOnce(super::shard::ReplyTx) -> ShardCmd,
    ) -> Result<Reply, ServeError> {
        let link = self.shards.get(shard).ok_or(ServeError::ShardDown)?;
        let (reply_tx, reply_rx) = sync_channel(1);
        link.queue_depth.fetch_add(1, Ordering::Relaxed);
        if link.tx.send(make(reply_tx)).is_err() {
            link.queue_depth.fetch_sub(1, Ordering::Relaxed);
            return Err(ServeError::ShardDown);
        }
        reply_rx.recv().map_err(|_| ServeError::ShardDown)?
    }

    /// Open a session; returns its id and built-scheme facts.
    pub fn open(&self, spec: SessionSpec) -> Result<OpenInfo, ServeError> {
        let sid = self.next_sid.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(sid);
        match self.call(shard, |reply| ShardCmd::Open { sid, spec, reply })? {
            Reply::Open(info) => Ok(info),
            _ => Err(ServeError::ShardDown),
        }
    }

    /// Drive `count` steps of `workload` through a session.
    pub fn step(
        &self,
        sid: u64,
        workload: WorkloadSpec,
        count: u64,
    ) -> Result<StepSummary, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Step {
            sid,
            workload,
            count,
            reply,
        })? {
            Reply::Step(sum) => Ok(sum),
            _ => Err(ServeError::ShardDown),
        }
    }

    /// Aggregate session counters.
    pub fn stats(&self, sid: u64) -> Result<SessionStats, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Stats { sid, reply })? {
            Reply::Stats(st) => Ok(st),
            _ => Err(ServeError::ShardDown),
        }
    }

    /// The session's running trace hash.
    pub fn trace(&self, sid: u64) -> Result<TraceInfo, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Trace { sid, reply })? {
            Reply::Trace(t) => Ok(t),
            _ => Err(ServeError::ShardDown),
        }
    }

    /// Close a session; returns its final trace.
    pub fn close(&self, sid: u64) -> Result<TraceInfo, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Close { sid, reply })? {
            Reply::Close(t) => Ok(t),
            _ => Err(ServeError::ShardDown),
        }
    }

    /// Merged service-wide counters and latency histogram.
    pub fn info(&self) -> Result<ServiceInfo, ServeError> {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            match self.call(shard, |reply| ShardCmd::Metrics { reply })? {
                Reply::Metrics(m) => per_shard.push(*m),
                _ => return Err(ServeError::ShardDown),
            }
        }
        let mut info = ServiceInfo {
            shards: per_shard.len(),
            sessions: 0,
            opened: 0,
            closed: 0,
            evicted: 0,
            steps: 0,
            queue_depth_max: 0,
            latency: Histogram::new(),
            per_shard: Vec::new(),
        };
        for m in &per_shard {
            info.sessions += m.sessions;
            info.opened += m.opened;
            info.closed += m.closed;
            info.evicted += m.evicted;
            info.steps += m.steps;
            info.queue_depth_max = info.queue_depth_max.max(m.queue_depth);
            info.latency.merge(&m.latency);
        }
        info.per_shard = per_shard;
        Ok(info)
    }
}
