//! The session service: N shards, hash routing, and the in-process
//! [`ServiceHandle`] API that tests, benches, and the TCP front end all
//! share.
//!
//! Sessions are hash-routed: session ids come from one global counter and
//! `shard_of(sid) = mix64(sid) mod shards`, so placement is uniform
//! without coordination and any holder of an id can find its shard. The
//! handle is `Clone` — every load-generator thread and TCP connection
//! clones its own set of queue senders and talks to the shards directly;
//! there is no central dispatcher thread to bottleneck on.
//!
//! The service also owns the observability read side: one `cr-obs`
//! [`Registry`] whose per-shard handles were dealt to the workers at
//! start, rendered by [`ServiceHandle::metrics_text`] (the `METRICS`
//! verb), and the cross-shard event merge behind
//! [`ServiceHandle::events`] (the `EVENTS` verb).

use cr_core::clock::SimClock;
use cr_obs::{Event, Gauge, Registry, RegistryBuilder};
use metrics::Histogram;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::error::ServeError;
use crate::runtime::{chan, ChanTx, Runtime, TaskHandle, ThreadRuntime};
use crate::session::{SessionSpec, SessionStats, StepSummary, WorkloadSpec};
use crate::shard::{
    spawn_shard, OpenInfo, Reply, ShardCmd, ShardCore, ShardMetrics, ShardObs, TraceInfo,
    VerifyInfo, VerifySummary, EVENTS_CAPACITY, QUEUE_CAPACITY,
};

/// Default idle-sweep cadence: how often a shard driver checks for
/// TTL-expired sessions when no commands arrive. Configuration, not a
/// buried constant: virtual-time tests and `cr-sim` set their own
/// cadence through [`ServiceConfig::sweep_every`].
pub const DEFAULT_SWEEP_EVERY: Duration = Duration::from_millis(20);

/// Service-wide configuration.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker shards (threads). Sessions are hash-routed across them.
    pub shards: usize,
    /// Per-shard bounded queue capacity (the backpressure knob).
    pub queue_capacity: usize,
    /// Per-shard event-ring capacity (most recent events kept for
    /// `EVENTS`; the overflow is counted, not silently lost).
    pub events_capacity: usize,
    /// How often each shard driver runs its idle-TTL sweep.
    pub sweep_every: Duration,
    /// Time source for session timestamps, step latency, and idle-TTL
    /// eviction. Real (monotonic) by default; tests inject
    /// [`SimClock::manual`] to drive eviction deterministically.
    pub clock: SimClock,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            shards: 4,
            queue_capacity: QUEUE_CAPACITY,
            events_capacity: EVENTS_CAPACITY,
            sweep_every: DEFAULT_SWEEP_EVERY,
            clock: SimClock::monotonic(),
        }
    }
}

impl ServiceConfig {
    /// A config with `shards` workers and default queue capacity.
    pub fn with_shards(shards: usize) -> Self {
        ServiceConfig {
            shards: shards.max(1),
            ..Default::default()
        }
    }
}

/// Merged service-wide counters (`INFO`).
#[derive(Debug, Clone)]
pub struct ServiceInfo {
    /// Shard count.
    pub shards: usize,
    /// Live sessions across all shards.
    pub sessions: usize,
    /// Sessions ever opened.
    pub opened: u64,
    /// Sessions closed by clients.
    pub closed: u64,
    /// Sessions evicted by idle TTL.
    pub evicted: u64,
    /// Steps executed across all shards.
    pub steps: u64,
    /// Deepest per-shard queue at snapshot time.
    pub queue_depth_max: usize,
    /// Merged per-step latency histogram (nanoseconds).
    pub latency: Histogram,
    /// Per-shard snapshots, in shard order.
    pub per_shard: Vec<ShardMetrics>,
}

impl ServiceInfo {
    /// Merge per-shard snapshots into the service-wide view — shared by
    /// the threaded handle's `INFO` and `cr-sim`'s, so the two cannot
    /// drift.
    pub fn from_shards(per_shard: Vec<ShardMetrics>) -> ServiceInfo {
        let mut info = ServiceInfo {
            shards: per_shard.len(),
            sessions: 0,
            opened: 0,
            closed: 0,
            evicted: 0,
            steps: 0,
            queue_depth_max: 0,
            latency: Histogram::new(),
            per_shard: Vec::new(),
        };
        for m in &per_shard {
            info.sessions += m.sessions;
            info.opened += m.opened;
            info.closed += m.closed;
            info.evicted += m.evicted;
            info.steps += m.steps;
            info.queue_depth_max = info.queue_depth_max.max(m.queue_depth);
            info.latency.merge(&m.latency);
        }
        info.per_shard = per_shard;
        info
    }
}

struct ShardLink {
    tx: ChanTx<ShardCmd>,
    /// The same gauge the shard's worker decrements on dequeue.
    queue_depth: Gauge,
}

/// What one [`ServiceHandle::step_many`] batch executed, summed over its
/// commands. Purely additive, so the total is independent of the order
/// the shards' replies arrive in.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStepSummary {
    /// Commands that stepped successfully.
    pub commands: u64,
    /// Commands that failed (unknown session, spent budget, …).
    pub errors: u64,
    /// Steps executed across the batch.
    pub executed: u64,
    /// Protocol phases consumed across the batch.
    pub phases: u64,
    /// Network cycles consumed across the batch.
    pub cycles: u64,
    /// Messages consumed across the batch.
    pub messages: u64,
    /// Cycles attributed to access-protocol stage 1.
    pub stage1_cycles: u64,
    /// Cycles attributed to stage 2.
    pub stage2_cycles: u64,
    /// Commands whose session ran out of budget mid-command.
    pub exhausted: u64,
}

/// The cheap, cloneable client face of the service.
#[derive(Clone)]
pub struct ServiceHandle {
    shards: Arc<Vec<ShardLink>>,
    next_sid: Arc<AtomicU64>,
    registry: Arc<Registry>,
}

/// The service itself: owns the shard worker tasks. Dropping (or
/// calling [`shutdown`](Service::shutdown)) stops them.
pub struct Service {
    handle: ServiceHandle,
    workers: Vec<TaskHandle>,
}

/// Build `cfg.shards` fresh [`ShardCore`]s plus the frozen [`Registry`]
/// that reads the same metric cells the cores record into. This is the
/// construction path both drivers share: [`Service::start`] wraps each
/// core in a runtime task with a command queue, while `cr-sim` owns the
/// cores directly and drives them from its deterministic executor.
pub fn build_cores(cfg: &ServiceConfig) -> (Vec<ShardCore>, Registry) {
    let shards = cfg.shards.max(1);
    // Declare every metric family up front; each call hands back one
    // handle per shard (dealt to the cores below), and the frozen
    // registry reads the same cells at exposition time.
    let mut reg = RegistryBuilder::new(shards);
    let mut opened = reg
        .counters("cr_sessions_opened_total", "Sessions opened")
        .into_iter();
    let mut closed = reg
        .counters("cr_sessions_closed_total", "Sessions closed by clients")
        .into_iter();
    let mut evicted = reg
        .counters("cr_sessions_evicted_total", "Sessions evicted by idle TTL")
        .into_iter();
    let mut steps = reg
        .counters("cr_steps_total", "Simulation steps executed")
        .into_iter();
    let mut stage1_cycles = reg
        .counters(
            "cr_stage1_cycles_total",
            "Network cycles spent in access-protocol stage 1",
        )
        .into_iter();
    let mut stage2_cycles = reg
        .counters(
            "cr_stage2_cycles_total",
            "Network cycles spent in access-protocol stage 2",
        )
        .into_iter();
    let mut queue_full = reg
        .counters(
            "cr_queue_full_total",
            "Commands dequeued while the shard queue was saturated",
        )
        .into_iter();
    let mut faults = reg
        .counters(
            "cr_fault_events_total",
            "STEP commands that exposed injected faults",
        )
        .into_iter();
    let mut events_dropped = reg
        .counters(
            "cr_events_dropped_total",
            "Trace events overwritten in a full ring",
        )
        .into_iter();
    let mut verify_ops = reg
        .counters(
            "cr_verify_checked_ops_total",
            "Trace ops recorded and PRAM-checked",
        )
        .into_iter();
    let mut verify_violations = reg
        .counters(
            "cr_verify_violations_total",
            "Sessions whose trace first turned PRAM-inconsistent",
        )
        .into_iter();
    let mut verify_truncations = reg
        .counters(
            "cr_verify_ring_truncations_total",
            "Trace records truncated (ring overwrote, no spill copy)",
        )
        .into_iter();
    let mut verify_cycles = reg
        .counters("cr_verify_cycles_total", "VERIFY commands served")
        .into_iter();
    let mut sessions = reg.gauges("cr_sessions_live", "Live sessions").into_iter();
    let mut queue_depth = reg
        .gauges("cr_queue_depth", "Commands in flight per shard queue")
        .into_iter();
    let mut latency = reg
        .histograms("cr_step_latency_ns", "Per-step latency in nanoseconds")
        .into_iter();

    let mut cores = Vec::with_capacity(shards);
    for shard in 0..shards {
        // Every family iterator holds exactly `shards` handles, so
        // these `next()` calls cannot actually miss; the defaults
        // only keep this path panic-free by construction.
        let obs = ShardObs {
            opened: opened.next().unwrap_or_default(),
            closed: closed.next().unwrap_or_default(),
            evicted: evicted.next().unwrap_or_default(),
            steps: steps.next().unwrap_or_default(),
            stage1_cycles: stage1_cycles.next().unwrap_or_default(),
            stage2_cycles: stage2_cycles.next().unwrap_or_default(),
            queue_full: queue_full.next().unwrap_or_default(),
            faults: faults.next().unwrap_or_default(),
            events_dropped: events_dropped.next().unwrap_or_default(),
            verify_ops: verify_ops.next().unwrap_or_default(),
            verify_violations: verify_violations.next().unwrap_or_default(),
            verify_truncations: verify_truncations.next().unwrap_or_default(),
            verify_cycles: verify_cycles.next().unwrap_or_default(),
            sessions: sessions.next().unwrap_or_default(),
            queue_depth: queue_depth.next().unwrap_or_default(),
            latency: latency.next().unwrap_or_default(),
        };
        cores.push(ShardCore::new(
            shard,
            obs,
            cfg.queue_capacity.max(1),
            cfg.events_capacity,
            cfg.clock.clone(),
        ));
    }
    (cores, reg.build())
}

impl Service {
    /// Start the shard workers on the production [`ThreadRuntime`]
    /// reading `cfg.clock`. Fails with [`ServeError::Spawn`] if the OS
    /// refuses a worker thread; already-started workers are shut down
    /// cleanly when the partially built `Service` drops.
    pub fn start(cfg: ServiceConfig) -> Result<Service, ServeError> {
        let runtime = ThreadRuntime::new(cfg.clock.clone());
        Service::start_on(cfg, &runtime)
    }

    /// Start the shard workers on an explicit [`Runtime`] — the seam
    /// `cr-sim` and future hosts plug into.
    pub fn start_on(cfg: ServiceConfig, runtime: &dyn Runtime) -> Result<Service, ServeError> {
        let (cores, registry) = build_cores(&cfg);
        let mut links = Vec::with_capacity(cores.len());
        let mut workers = Vec::with_capacity(cores.len());
        for core in cores {
            let (tx, rx) = chan(cfg.queue_capacity.max(1));
            let link_depth = core.queue_depth_gauge();
            workers.push(spawn_shard(runtime, core, rx, cfg.sweep_every)?);
            links.push(ShardLink {
                tx,
                queue_depth: link_depth,
            });
        }
        Ok(Service {
            handle: ServiceHandle {
                shards: Arc::new(links),
                next_sid: Arc::new(AtomicU64::new(1)),
                registry: Arc::new(registry),
            },
            workers,
        })
    }

    /// A clone-per-thread client handle.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Stop every shard worker and join them.
    pub fn shutdown(mut self) {
        for link in self.handle.shards.iter() {
            let _ = link.tx.send(ShardCmd::Shutdown);
        }
        for w in self.workers.drain(..) {
            w.join();
        }
    }
}

impl ServiceHandle {
    /// Shard count.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns a session id.
    pub fn shard_of(&self, sid: u64) -> usize {
        (simrng::mix64(sid) % self.shards.len() as u64) as usize
    }

    fn call(
        &self,
        shard: usize,
        make: impl FnOnce(super::shard::ReplyTx) -> ShardCmd,
    ) -> Result<Reply, ServeError> {
        let link = self.shards.get(shard).ok_or(ServeError::ShardDown)?;
        let (reply_tx, reply_rx) = chan(1);
        link.queue_depth.add(1);
        if link.tx.send(make(reply_tx)).is_err() {
            link.queue_depth.sub(1);
            return Err(ServeError::ShardDown);
        }
        reply_rx.recv().map_err(|_| ServeError::ShardDown)?
    }

    /// Open a session; returns its id and built-scheme facts.
    pub fn open(&self, spec: SessionSpec) -> Result<OpenInfo, ServeError> {
        let sid = self.next_sid.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(sid);
        match self.call(shard, |reply| ShardCmd::Open { sid, spec, reply })? {
            Reply::Open(info) => Ok(info),
            _ => Err(ServeError::ShardDown),
        }
    }

    /// Drive `count` steps of `workload` through a session.
    pub fn step(
        &self,
        sid: u64,
        workload: WorkloadSpec,
        count: u64,
    ) -> Result<StepSummary, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Step {
            sid,
            workload,
            count,
            reply,
        })? {
            Reply::Step(sum) => Ok(sum),
            _ => Err(ServeError::ShardDown),
        }
    }

    /// Drive `count` steps of `workload` through every session in `sids`,
    /// issuing all commands before collecting any reply — the in-process
    /// pipelining behind batched load generation and the serve bench.
    /// Every command shares one reply channel sized to the batch, so the
    /// shard workers never block replying and the caller pays one channel
    /// setup per *batch* instead of one per command; commands fan out to
    /// their home shards and execute there in parallel. Per-command
    /// failures (unknown session, spent budget) are tallied in
    /// [`BatchStepSummary::errors`], not returned: a batch is a bulk
    /// operation and one dead session must not mask the rest.
    // lint: hot
    pub fn step_many(
        &self,
        sids: &[u64],
        workload: &WorkloadSpec,
        count: u64,
    ) -> Result<BatchStepSummary, ServeError> {
        let (reply_tx, reply_rx) = chan(sids.len().max(1));
        let mut sent = 0usize;
        for &sid in sids {
            let link = self
                .shards
                .get(self.shard_of(sid))
                .ok_or(ServeError::ShardDown)?;
            link.queue_depth.add(1);
            let cmd = ShardCmd::Step {
                sid,
                workload: workload.clone(), // lint: allow(hot-alloc, one spec clone per command - amortised over the batch)
                count,
                reply: reply_tx.clone(), // lint: allow(hot-alloc, channel-handle refcount bump - no heap allocation)
            };
            if link.tx.send(cmd).is_err() {
                link.queue_depth.sub(1);
                return Err(ServeError::ShardDown);
            }
            sent += 1;
        }
        let mut sum = BatchStepSummary::default();
        for _ in 0..sent {
            match reply_rx.recv().map_err(|_| ServeError::ShardDown)? {
                Ok(Reply::Step(s)) => {
                    sum.commands += 1;
                    sum.executed += s.executed;
                    sum.phases += s.phases;
                    sum.cycles += s.cycles;
                    sum.messages += s.messages;
                    sum.stage1_cycles += s.stage1_cycles;
                    sum.stage2_cycles += s.stage2_cycles;
                    sum.exhausted += u64::from(s.exhausted);
                }
                Ok(_) => return Err(ServeError::ShardDown),
                Err(_) => sum.errors += 1,
            }
        }
        Ok(sum)
    }

    /// Aggregate session counters.
    pub fn stats(&self, sid: u64) -> Result<SessionStats, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Stats { sid, reply })? {
            Reply::Stats(st) => Ok(st),
            _ => Err(ServeError::ShardDown),
        }
    }

    /// The session's running trace hash.
    pub fn trace(&self, sid: u64) -> Result<TraceInfo, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Trace { sid, reply })? {
            Reply::Trace(t) => Ok(t),
            _ => Err(ServeError::ShardDown),
        }
    }

    /// Close a session; returns its final trace.
    pub fn close(&self, sid: u64) -> Result<TraceInfo, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Close { sid, reply })? {
            Reply::Close(t) => Ok(t),
            _ => Err(ServeError::ShardDown),
        }
    }

    /// The live metrics registry (totals and merged histograms without
    /// parsing the exposition text).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Prometheus-style text exposition of every registered family —
    /// the `METRICS` verb's payload.
    pub fn metrics_text(&self) -> String {
        self.registry.render()
    }

    /// Structured trace events: one session's (`Some(sid)`, served by
    /// its owning shard) or the whole service's (`None`: all shards,
    /// stably sorted by sid). A session's events live on exactly one
    /// shard in execution order, so the per-sid stream — and therefore
    /// the stable-sorted merge — is shard-count-invariant.
    pub fn events(&self, sid: Option<u64>) -> Result<Vec<Event>, ServeError> {
        if let Some(s) = sid {
            return match self.call(self.shard_of(s), |reply| ShardCmd::Events {
                sid: Some(s),
                reply,
            })? {
                Reply::Events(evs) => Ok(evs),
                _ => Err(ServeError::ShardDown),
            };
        }
        let mut all = Vec::new();
        for shard in 0..self.shards.len() {
            match self.call(shard, |reply| ShardCmd::Events { sid: None, reply })? {
                Reply::Events(evs) => all.extend(evs),
                _ => return Err(ServeError::ShardDown),
            }
        }
        all.sort_by_key(|e| e.sid);
        Ok(all)
    }

    /// One session's PRAM-consistency verdict (`VERIFY <sid>`), served
    /// by its owning shard. The reply carries no shard- or time-derived
    /// fields, so under a manual clock it is byte-identical at any
    /// shard count — the cross-shard determinism test pins this.
    pub fn verify(&self, sid: u64) -> Result<VerifyInfo, ServeError> {
        match self.call(self.shard_of(sid), |reply| ShardCmd::Verify {
            sid: Some(sid),
            reply,
        })? {
            Reply::Verify(info) => Ok(info),
            _ => Err(ServeError::ShardDown),
        }
    }

    /// Service-wide self-check (bare `VERIFY`): every shard summarizes
    /// the sessions it owns, merged here. The CI verify leg asserts
    /// `violations=0` on this without knowing any session id.
    pub fn verify_all(&self) -> Result<VerifySummary, ServeError> {
        let mut sum = VerifySummary::default();
        for shard in 0..self.shards.len() {
            match self.call(shard, |reply| ShardCmd::Verify { sid: None, reply })? {
                Reply::VerifySummary(s) => sum.merge(&s),
                _ => return Err(ServeError::ShardDown),
            }
        }
        Ok(sum)
    }

    /// Merged service-wide counters and latency histogram.
    pub fn info(&self) -> Result<ServiceInfo, ServeError> {
        let mut per_shard = Vec::with_capacity(self.shards.len());
        for shard in 0..self.shards.len() {
            match self.call(shard, |reply| ShardCmd::Metrics { reply })? {
                Reply::Metrics(m) => per_shard.push(*m),
                _ => return Err(ServeError::ShardDown),
            }
        }
        Ok(ServiceInfo::from_shards(per_shard))
    }
}

/// The service surface the wire protocol executes against
/// ([`crate::protocol::execute`]): everything a `OPEN`/`STEP`/…/`EVENTS`
/// frame can reach, behind one trait so the TCP front end (backed by a
/// threaded [`ServiceHandle`]) and `cr-sim`'s single-threaded simulated
/// service run the *identical* parser, executor, and reply rendering.
///
/// Methods take `&mut self`: a simulated service mutates its cores
/// in place, while the thread-backed handle simply ignores the
/// exclusivity (its state is behind `Arc`s).
pub trait ServiceApi {
    /// Open a session (`OPEN`).
    fn open(&mut self, spec: SessionSpec) -> Result<OpenInfo, ServeError>;
    /// Step a session (`STEP`/`STEPN`).
    fn step(
        &mut self,
        sid: u64,
        workload: WorkloadSpec,
        count: u64,
    ) -> Result<StepSummary, ServeError>;
    /// Aggregate session counters (`STATS`).
    fn stats(&mut self, sid: u64) -> Result<SessionStats, ServeError>;
    /// The running trace hash (`TRACE`).
    fn trace(&mut self, sid: u64) -> Result<TraceInfo, ServeError>;
    /// One session's PRAM verdict (`VERIFY <sid>`).
    fn verify(&mut self, sid: u64) -> Result<VerifyInfo, ServeError>;
    /// The service-wide self-check (bare `VERIFY`).
    fn verify_all(&mut self) -> Result<VerifySummary, ServeError>;
    /// Close a session (`CLOSE`).
    fn close(&mut self, sid: u64) -> Result<TraceInfo, ServeError>;
    /// Merged service counters (`INFO`).
    fn info(&mut self) -> Result<ServiceInfo, ServeError>;
    /// Prometheus exposition text (`METRICS`).
    fn metrics_text(&mut self) -> String;
    /// Structured trace events (`EVENTS [sid]`).
    fn events(&mut self, sid: Option<u64>) -> Result<Vec<Event>, ServeError>;
}

impl ServiceApi for ServiceHandle {
    fn open(&mut self, spec: SessionSpec) -> Result<OpenInfo, ServeError> {
        ServiceHandle::open(self, spec)
    }
    fn step(
        &mut self,
        sid: u64,
        workload: WorkloadSpec,
        count: u64,
    ) -> Result<StepSummary, ServeError> {
        ServiceHandle::step(self, sid, workload, count)
    }
    fn stats(&mut self, sid: u64) -> Result<SessionStats, ServeError> {
        ServiceHandle::stats(self, sid)
    }
    fn trace(&mut self, sid: u64) -> Result<TraceInfo, ServeError> {
        ServiceHandle::trace(self, sid)
    }
    fn verify(&mut self, sid: u64) -> Result<VerifyInfo, ServeError> {
        ServiceHandle::verify(self, sid)
    }
    fn verify_all(&mut self) -> Result<VerifySummary, ServeError> {
        ServiceHandle::verify_all(self)
    }
    fn close(&mut self, sid: u64) -> Result<TraceInfo, ServeError> {
        ServiceHandle::close(self, sid)
    }
    fn info(&mut self) -> Result<ServiceInfo, ServeError> {
        ServiceHandle::info(self)
    }
    fn metrics_text(&mut self) -> String {
        ServiceHandle::metrics_text(self)
    }
    fn events(&mut self, sid: Option<u64>) -> Result<Vec<Event>, ServeError> {
        ServiceHandle::events(self, sid)
    }
}
