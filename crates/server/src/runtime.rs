//! The runtime seam: the one module where OS threads, channels, and
//! real sleeps enter the serving layer (DESIGN.md §13).
//!
//! Everything concurrent in `cr-serve` — shard workers, the TCP accept
//! loop, connection threads, the sweep-timer wait — goes through the
//! [`Runtime`] trait (spawn/sleep/now) and the [`chan`] transport
//! instead of calling `std::thread` or `std::sync::mpsc` directly.
//! That buys the same two things `cr_core::clock` bought for time:
//!
//! * **Auditability.** `cr-lint`'s `no-ambient-runtime` rule bans
//!   `thread::spawn`, `sync_channel`, and `recv_timeout` in every other
//!   `crates/server` module, so a review of the service's concurrency
//!   surface reads one file.
//! * **Virtualizability.** [`ThreadRuntime`] is the production
//!   implementation (real threads, real timed waits) and is
//!   behavior-identical to the pre-seam code. `cr-sim` drives the very
//!   same [`crate::shard::ShardCore`] state machines from a
//!   single-threaded executor on virtual time instead — same service
//!   logic, deterministic interleaving, replayable from a seed.
//!
//! The channel wrappers are thin newtypes over `std::sync::mpsc`'s
//! bounded channels: producers block when a queue is full (that is the
//! service's backpressure), and the timed receive is named `recv_for`
//! so call sites do not trip the lint's `recv_timeout` ban.

use cr_core::clock::{SimClock, Tick};
// The sanctioned ambient-runtime imports: every other server module
// goes through this seam (enforced by cr-lint's no-ambient-runtime).
use std::sync::mpsc;
use std::time::Duration;

use crate::error::ServeError;

/// What the serving layer needs from its host: task spawning, sleeping,
/// and time. Production uses [`ThreadRuntime`]; `cr-sim` implements the
/// same trait over a single-threaded executor with virtual time (its
/// `spawn` refuses — the simulator schedules state machines itself).
pub trait Runtime {
    /// Current time on this runtime's clock.
    fn now(&self) -> Tick;

    /// The clock itself (shared with spawned components so timestamps,
    /// TTL decisions, and event ticks stay coherent).
    fn clock(&self) -> &SimClock;

    /// Block the calling task for `d`.
    fn sleep(&self, d: Duration);

    /// Run `f` concurrently under `name`. Errors surface as
    /// [`ServeError::Spawn`] — a service must degrade, not panic, when
    /// the host refuses a task.
    fn spawn(
        &self,
        name: &str,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> Result<TaskHandle, ServeError>;
}

/// A handle to one spawned task; joining waits for it to finish.
#[derive(Debug)]
pub struct TaskHandle(Option<std::thread::JoinHandle<()>>);

impl TaskHandle {
    /// Wait for the task to finish (a panicked task is absorbed: the
    /// joiner is usually a shutdown path that must not re-panic).
    pub fn join(mut self) {
        if let Some(h) = self.0.take() {
            let _ = h.join();
        }
    }
}

/// The production runtime: OS threads, real sleeps, and whatever clock
/// the service was configured with (real by default, manual in
/// virtual-time tests — the clock and the scheduler are independent
/// seams, and the pre-seam service had exactly this split).
#[derive(Debug, Clone)]
pub struct ThreadRuntime {
    clock: SimClock,
}

impl ThreadRuntime {
    /// A runtime reading `clock`.
    pub fn new(clock: SimClock) -> ThreadRuntime {
        ThreadRuntime { clock }
    }

    /// A runtime on real (monotonic) time.
    pub fn real() -> ThreadRuntime {
        ThreadRuntime::new(SimClock::monotonic())
    }
}

impl Runtime for ThreadRuntime {
    fn now(&self) -> Tick {
        self.clock.now()
    }

    fn clock(&self) -> &SimClock {
        &self.clock
    }

    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }

    fn spawn(
        &self,
        name: &str,
        f: Box<dyn FnOnce() + Send + 'static>,
    ) -> Result<TaskHandle, ServeError> {
        std::thread::Builder::new()
            .name(name.to_string())
            .spawn(f)
            .map(|h| TaskHandle(Some(h)))
            .map_err(|e| ServeError::Spawn(format!("{name}: {e}")))
    }
}

/// The send side of a bounded command channel. `Clone` so pipelined
/// batches can share one reply channel.
#[derive(Debug)]
pub struct ChanTx<T>(mpsc::SyncSender<T>);

impl<T> Clone for ChanTx<T> {
    fn clone(&self) -> Self {
        ChanTx(self.0.clone())
    }
}

/// The receive side of a bounded command channel.
#[derive(Debug)]
pub struct ChanRx<T>(mpsc::Receiver<T>);

/// The channel's receiver is gone (worker shut down) — the transport
/// analogue of [`ServeError::ShardDown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChanClosed;

/// Why a timed receive returned without a value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvWait {
    /// The wait elapsed with nothing queued (the sweep-timer tick).
    Timeout,
    /// Every sender is gone.
    Closed,
}

impl<T> ChanTx<T> {
    /// Send `v`, blocking while the channel is at capacity (structural
    /// backpressure). Fails only when the receiver is gone.
    pub fn send(&self, v: T) -> Result<(), ChanClosed> {
        self.0.send(v).map_err(|_| ChanClosed)
    }
}

impl<T> ChanRx<T> {
    /// Block until a value arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, ChanClosed> {
        self.0.recv().map_err(|_| ChanClosed)
    }

    /// Take an already-queued value without blocking.
    pub fn try_recv(&self) -> Option<T> {
        self.0.try_recv().ok()
    }

    /// Block for at most `d` — the shard loop's sweep-timer wait.
    pub fn recv_for(&self, d: Duration) -> Result<T, RecvWait> {
        self.0.recv_timeout(d).map_err(|e| match e {
            mpsc::RecvTimeoutError::Timeout => RecvWait::Timeout,
            mpsc::RecvTimeoutError::Disconnected => RecvWait::Closed,
        })
    }
}

/// A bounded channel holding at most `capacity` in-flight values
/// (clamped to at least one so a reply channel's first send never
/// blocks — the property `cr-sim`'s single-threaded calls rely on).
pub fn chan<T>(capacity: usize) -> (ChanTx<T>, ChanRx<T>) {
    let (tx, rx) = mpsc::sync_channel(capacity.max(1));
    (ChanTx(tx), ChanRx(rx))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chan_is_bounded_and_fifo() {
        let (tx, rx) = chan(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Some(1));
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.try_recv(), None);
        drop(tx);
        assert_eq!(rx.recv(), Err(ChanClosed));
        assert_eq!(rx.recv_for(Duration::from_millis(1)), Err(RecvWait::Closed));
    }

    #[test]
    fn recv_for_times_out_then_delivers() {
        let (tx, rx) = chan::<u32>(1);
        assert_eq!(
            rx.recv_for(Duration::from_millis(1)),
            Err(RecvWait::Timeout)
        );
        tx.send(7).unwrap();
        assert_eq!(rx.recv_for(Duration::from_millis(1)), Ok(7));
    }

    #[test]
    fn thread_runtime_spawns_and_joins() {
        let rt = ThreadRuntime::real();
        let (tx, rx) = chan(1);
        let h = rt
            .spawn("rt-test", Box::new(move || tx.send(42u64).unwrap()))
            .unwrap();
        assert_eq!(rx.recv().unwrap(), 42);
        h.join();
        assert!(rt.now() >= Tick::ZERO);
    }
}
