//! One shard: a [`ShardCore`] state machine owning a disjoint set of
//! sessions, fed by a bounded command queue.
//!
//! The service's concurrency model is the classic sharded event loop (one
//! driver, one queue, no locks around session state — the same shape as a
//! sharded Redis actor): a session lives on exactly one shard, so its
//! scheme is driven single-threaded and stays deterministic, while shards
//! run in parallel. Backpressure is structural: the queue is a bounded
//! [`crate::runtime::chan`] with fixed capacity, so producers block (TCP
//! connections, load generators) instead of the queue growing without
//! bound; the queue-depth gauge is exported per shard.
//!
//! The state machine and its driver are deliberately split (DESIGN.md
//! §13): [`ShardCore::handle`] / [`ShardCore::sweep`] hold *all* shard
//! behavior, while [`spawn_shard`] is a thin loop that a
//! [`crate::runtime::Runtime`] runs on a real thread in production.
//! `cr-sim` drives the identical cores from a single-threaded executor
//! on virtual time — same commands, same replies, same events,
//! deterministic interleaving.
//!
//! Observability (DESIGN.md §10) rides the same single-threaded loop:
//! each core owns one [`ShardObs`] bundle of preregistered `cr-obs`
//! handles (recorded lock-free, merged by the registry on read) and one
//! fixed-capacity [`EventRing`] of structured trace events stamped with
//! the shard's [`SimClock`] ticks. Because a session lives on exactly one
//! shard, its events land in one ring in execution order — the fact that
//! makes `EVENTS <sid>` deterministic and shard-count-invariant.

use cr_core::clock::{SimClock, Tick};
use cr_obs::{Counter, Event, EventKind, EventRing, Gauge, SharedHistogram};
use cr_verify::{Coverage, VerifyReport};
use metrics::Histogram;
use std::collections::BTreeMap;
use std::time::Duration;

use crate::error::ServeError;
use crate::runtime::{ChanRx, ChanTx, RecvWait, Runtime, TaskHandle};
use crate::session::{Session, SessionSpec, SessionStats, StepSummary, WorkloadSpec};

/// Per-shard command-queue capacity (bounded: this is the backpressure).
pub const QUEUE_CAPACITY: usize = 1024;

/// Per-shard event-ring capacity: the most recent events kept for
/// `EVENTS`; older ones are overwritten and counted as dropped.
pub const EVENTS_CAPACITY: usize = 4096;

/// How many already-queued commands one successful dequeue may service
/// before the worker returns to its timed wait. Draining a burst
/// amortizes the blocking-receive wakeup across every command a
/// pipelining client managed to enqueue meanwhile; the bound keeps the
/// TTL sweep's cadence honest under sustained load.
pub const DRAIN_BURST: usize = 64;

/// What `OPEN` reports back.
#[derive(Debug, Clone)]
pub struct OpenInfo {
    /// The new session's id.
    pub sid: u64,
    /// The shard that owns it.
    pub shard: usize,
    /// Resolved scheme name.
    pub scheme: &'static str,
    /// Storage redundancy of the built scheme.
    pub redundancy: f64,
    /// Contention units of the built scheme.
    pub modules: usize,
}

/// What `TRACE` / `CLOSE` report back.
#[derive(Debug, Clone, Copy)]
pub struct TraceInfo {
    /// The session's id.
    pub sid: u64,
    /// Lifetime steps at reporting time.
    pub steps: u64,
    /// The running trace hash.
    pub trace: u64,
}

/// What `VERIFY <sid>` reports back: one session's PRAM verdict.
#[derive(Debug, Clone, Copy)]
pub struct VerifyInfo {
    /// The session's id.
    pub sid: u64,
    /// The verifier's snapshot (verdict, op counts, coverage, and the
    /// first violation when there is one).
    pub report: VerifyReport,
}

/// What a bare `VERIFY` reports back, merged across shards: the
/// service-wide self-check the CI verify leg asserts on.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifySummary {
    /// Live sessions inspected.
    pub sessions: u64,
    /// Sessions recording with verification off.
    pub unchecked: u64,
    /// Trace ops checked across them.
    pub ops: u64,
    /// Sessions whose trace holds a PRAM violation.
    pub violations: u64,
    /// Trace records truncated across them.
    pub truncated: u64,
}

impl VerifySummary {
    /// Fold one shard's summary into the service-wide one.
    pub fn merge(&mut self, other: &VerifySummary) {
        self.sessions += other.sessions;
        self.unchecked += other.unchecked;
        self.ops += other.ops;
        self.violations += other.violations;
        self.truncated += other.truncated;
    }
}

/// A snapshot of one shard's gauges and counters.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Live sessions.
    pub sessions: usize,
    /// Sessions ever opened here.
    pub opened: u64,
    /// Sessions closed by the client.
    pub closed: u64,
    /// Sessions evicted by the idle-TTL sweep.
    pub evicted: u64,
    /// Steps executed here.
    pub steps: u64,
    /// Commands waiting in the queue when the snapshot was taken.
    pub queue_depth: usize,
    /// Per-step wall-clock latency (nanoseconds).
    pub latency: Histogram,
}

/// The preregistered `cr-obs` handles one shard worker records into.
///
/// Built by the service from a single `RegistryBuilder`, so the
/// registry's read side (the `METRICS` verb) observes the same atomic
/// cells the worker bumps — no name lookups anywhere near the hot loop.
#[derive(Debug, Clone)]
pub(crate) struct ShardObs {
    pub(crate) opened: Counter,
    pub(crate) closed: Counter,
    pub(crate) evicted: Counter,
    pub(crate) steps: Counter,
    pub(crate) stage1_cycles: Counter,
    pub(crate) stage2_cycles: Counter,
    pub(crate) queue_full: Counter,
    pub(crate) faults: Counter,
    pub(crate) events_dropped: Counter,
    pub(crate) verify_ops: Counter,
    pub(crate) verify_violations: Counter,
    pub(crate) verify_truncations: Counter,
    pub(crate) verify_cycles: Counter,
    pub(crate) sessions: Gauge,
    pub(crate) queue_depth: Gauge,
    pub(crate) latency: SharedHistogram,
}

/// A reply to one shard command.
#[derive(Debug, Clone)]
pub enum Reply {
    Open(OpenInfo),
    Step(StepSummary),
    Stats(SessionStats),
    Trace(TraceInfo),
    Close(TraceInfo),
    // Boxed: the histogram makes this variant ~20x the others' size.
    Metrics(Box<ShardMetrics>),
    Events(Vec<Event>),
    Verify(VerifyInfo),
    VerifySummary(VerifySummary),
}

/// Where a command's reply goes: one send per command, over a bounded
/// [`crate::runtime::chan`] sized so the first send never blocks.
pub type ReplyTx = ChanTx<Result<Reply, ServeError>>;

/// The shard core's command vocabulary.
#[derive(Debug)]
pub enum ShardCmd {
    Open {
        sid: u64,
        spec: SessionSpec,
        reply: ReplyTx,
    },
    Step {
        sid: u64,
        workload: WorkloadSpec,
        count: u64,
        reply: ReplyTx,
    },
    Stats {
        sid: u64,
        reply: ReplyTx,
    },
    Trace {
        sid: u64,
        reply: ReplyTx,
    },
    Close {
        sid: u64,
        reply: ReplyTx,
    },
    Metrics {
        reply: ReplyTx,
    },
    Events {
        /// `Some(sid)` filters to one session; `None` dumps the ring.
        sid: Option<u64>,
        reply: ReplyTx,
    },
    Verify {
        /// `Some(sid)` reports one session's verdict; `None` summarizes
        /// every session the shard owns.
        sid: Option<u64>,
        reply: ReplyTx,
    },
    Shutdown,
}

/// The complete state machine of one shard: sessions, observability
/// handles, event ring, and clock — but no thread, queue, or timer.
///
/// Production wraps a core in [`spawn_shard`]'s receive loop; `cr-sim`
/// owns a vector of cores directly and calls [`ShardCore::handle`] /
/// [`ShardCore::sweep`] from its deterministic executor. Both drivers
/// see identical behavior because all of it lives here.
pub struct ShardCore {
    shard: usize,
    /// Ordered map: the TTL sweep and any future iteration visit
    /// sessions in sid order — deterministic, unlike a RandomState map.
    sessions: BTreeMap<u64, Session>,
    obs: ShardObs,
    /// Structured trace events, most recent `events_capacity` kept.
    ring: EventRing,
    /// The queue capacity the service configured — the threshold for
    /// queue-full detection at dequeue time.
    queue_capacity: usize,
    /// The service's time seam: real in production, virtual in
    /// deterministic tests and `cr-sim` (`ServiceConfig::clock`).
    clock: SimClock,
    /// Crashed (chaos injection / operator action): the driver refuses
    /// commands until [`ShardCore::restart`]. Never set in production.
    down: bool,
}

impl ShardCore {
    /// A fresh core. `obs` handles come from the service's registry
    /// build ([`crate::service::build_cores`]), which is why external
    /// callers construct cores through that function.
    pub(crate) fn new(
        shard: usize,
        obs: ShardObs,
        queue_capacity: usize,
        events_capacity: usize,
        clock: SimClock,
    ) -> ShardCore {
        ShardCore {
            shard,
            sessions: BTreeMap::new(),
            obs,
            ring: EventRing::with_capacity(events_capacity),
            queue_capacity,
            clock,
            down: false,
        }
    }

    /// This core's shard index.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The clock this core stamps events and judges TTLs with.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Live sessions owned by this core.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// A clone of this shard's queue-depth gauge: senders increment it
    /// at enqueue, the driver decrements via [`ShardCore::note_dequeue`].
    pub fn queue_depth_gauge(&self) -> Gauge {
        self.obs.queue_depth.clone()
    }

    /// Account one dequeue: decrement the depth gauge and, when the
    /// observed depth was at or above the configured capacity, count a
    /// queue-full incident and record its event. Every driver calls
    /// this once per command, before [`ShardCore::handle`].
    pub fn note_dequeue(&mut self) {
        let prev = self.obs.queue_depth.sub(1);
        if prev >= self.queue_capacity as u64 {
            self.obs.queue_full.inc();
            self.event(EventKind::QueueFull, 0, prev, 0, 0, 0);
        }
    }

    /// Whether the core is crashed (refusing commands).
    pub fn is_down(&self) -> bool {
        self.down
    }

    /// Crash the shard: every live session is lost (gauge adjusted, one
    /// `crash` event recorded) and the core refuses work until
    /// [`ShardCore::restart`]. Returns how many sessions were lost.
    /// This is `cr-sim`'s chaos entry point; production never calls it.
    pub fn crash(&mut self) -> usize {
        let lost = self.sessions.len();
        self.sessions.clear();
        self.obs.sessions.sub(lost as u64);
        self.down = true;
        self.event(EventKind::Crash, 0, lost as u64, 0, 0, 0);
        lost
    }

    /// Recover a crashed shard: it comes back empty (sessions died with
    /// the crash) and accepts commands again.
    pub fn restart(&mut self) {
        self.down = false;
        self.event(EventKind::Restart, 0, 0, 0, 0, 0);
    }

    /// Record one trace event, stamped with the shard's current tick.
    fn event(&mut self, kind: EventKind, sid: u64, a: u64, b: u64, c: u64, d: u64) {
        let ev = Event {
            tick: self.clock.now().nanos(),
            sid,
            kind,
            a,
            b,
            c,
            d,
        };
        if self.ring.push(ev) {
            self.obs.events_dropped.inc();
        }
    }

    /// Record one `verify` trace event from a session's current report:
    /// ops checked, violated flag, records truncated, coverage tag.
    fn verify_event(&mut self, sid: u64) {
        let Some(report) = self.sessions.get(&sid).map(|s| s.verify_report()) else {
            return;
        };
        self.event(
            EventKind::Verify,
            sid,
            report.ops,
            u64::from(report.violation.is_some()),
            report.truncated,
            u64::from(matches!(report.coverage, Coverage::Window)),
        );
    }

    /// Execute one command, sending its reply (if any). Returns `false`
    /// when the command was [`ShardCmd::Shutdown`] — the driver's signal
    /// to stop its loop.
    pub fn handle(&mut self, cmd: ShardCmd) -> bool {
        match cmd {
            ShardCmd::Open { sid, spec, reply } => {
                let (n, m) = (spec.n, spec.m);
                let out = match Session::open(spec, self.clock.now()) {
                    Err(e) => Err(e),
                    Ok(session) => {
                        let info = OpenInfo {
                            sid,
                            shard: self.shard,
                            scheme: session.scheme().name(),
                            redundancy: session.scheme().redundancy(),
                            modules: session.scheme().modules(),
                        };
                        let scheme_idx = session.scheme_index();
                        self.sessions.insert(sid, session);
                        self.obs.opened.inc();
                        self.obs.sessions.add(1);
                        self.event(EventKind::Open, sid, n as u64, m as u64, scheme_idx, 0);
                        Ok(Reply::Open(info))
                    }
                };
                let _ = reply.send(out);
            }
            ShardCmd::Step {
                sid,
                workload,
                count,
                reply,
            } => {
                let stepped = match self.sessions.get_mut(&sid) {
                    None => Err(ServeError::UnknownSession(sid)),
                    Some(session) => session
                        .step(&workload, count, &self.obs.latency, &self.clock)
                        .map_err(|e| match e {
                            // The session does not know its own id.
                            ServeError::BudgetExhausted { max_steps, .. } => {
                                ServeError::BudgetExhausted { sid, max_steps }
                            }
                            other => other,
                        }),
                };
                let out = match stepped {
                    Err(e) => Err(e),
                    Ok(sum) => {
                        self.obs.steps.add(sum.executed);
                        self.obs.stage1_cycles.add(sum.stage1_cycles);
                        self.obs.stage2_cycles.add(sum.stage2_cycles);
                        self.obs.verify_ops.add(sum.verify_ops);
                        self.obs.verify_truncations.add(sum.verify_truncated);
                        self.event(
                            EventKind::Step,
                            sid,
                            sum.executed,
                            sum.stage1_cycles,
                            sum.stage2_cycles,
                            sum.messages,
                        );
                        if sum.dead_attempts > 0 || sum.dropped_messages > 0 {
                            self.obs.faults.inc();
                            self.event(
                                EventKind::Fault,
                                sid,
                                sum.dead_attempts,
                                sum.dropped_messages,
                                0,
                                0,
                            );
                        }
                        if sum.verify_violation {
                            // Clean → violated transition: once per
                            // session, ever — the counter counts newly
                            // violated sessions, not violating reads.
                            self.obs.verify_violations.inc();
                            self.verify_event(sid);
                        }
                        Ok(Reply::Step(sum))
                    }
                };
                let _ = reply.send(out);
            }
            ShardCmd::Stats { sid, reply } => {
                let out = match self.sessions.get_mut(&sid) {
                    None => Err(ServeError::UnknownSession(sid)),
                    Some(session) => {
                        session.touch(self.clock.now());
                        Ok(Reply::Stats(session.stats()))
                    }
                };
                let _ = reply.send(out);
            }
            ShardCmd::Trace { sid, reply } => {
                let out = match self.sessions.get_mut(&sid) {
                    None => Err(ServeError::UnknownSession(sid)),
                    Some(session) => {
                        session.touch(self.clock.now());
                        Ok(Reply::Trace(TraceInfo {
                            sid,
                            steps: session.steps(),
                            trace: session.trace(),
                        }))
                    }
                };
                let _ = reply.send(out);
            }
            ShardCmd::Close { sid, reply } => {
                let out = match self.sessions.remove(&sid) {
                    None => Err(ServeError::UnknownSession(sid)),
                    Some(session) => {
                        self.obs.closed.inc();
                        self.obs.sessions.sub(1);
                        self.event(
                            EventKind::Close,
                            sid,
                            session.steps(),
                            session.trace(),
                            0,
                            0,
                        );
                        Ok(Reply::Close(TraceInfo {
                            sid,
                            steps: session.steps(),
                            trace: session.trace(),
                        }))
                    }
                };
                let _ = reply.send(out);
            }
            ShardCmd::Metrics { reply } => {
                let snap = ShardMetrics {
                    shard: self.shard,
                    sessions: self.sessions.len(),
                    opened: self.obs.opened.get(),
                    closed: self.obs.closed.get(),
                    evicted: self.obs.evicted.get(),
                    steps: self.obs.steps.get(),
                    queue_depth: self.obs.queue_depth.get() as usize,
                    latency: self.obs.latency.snapshot(),
                };
                let _ = reply.send(Ok(Reply::Metrics(Box::new(snap))));
            }
            ShardCmd::Verify { sid, reply } => {
                self.obs.verify_cycles.inc();
                let out = match sid {
                    Some(sid) => {
                        let now = self.clock.now();
                        let out = match self.sessions.get_mut(&sid) {
                            None => Err(ServeError::UnknownSession(sid)),
                            Some(session) => {
                                session.touch(now);
                                Ok(Reply::Verify(VerifyInfo {
                                    sid,
                                    report: session.verify_report(),
                                }))
                            }
                        };
                        if out.is_ok() {
                            self.verify_event(sid);
                        }
                        out
                    }
                    None => {
                        let mut sum = VerifySummary::default();
                        for session in self.sessions.values() {
                            let r = session.verify_report();
                            sum.sessions += 1;
                            sum.unchecked += u64::from(!r.mode.enabled());
                            sum.ops += r.ops;
                            sum.violations += u64::from(r.violation.is_some());
                            sum.truncated += r.truncated;
                        }
                        Ok(Reply::VerifySummary(sum))
                    }
                };
                let _ = reply.send(out);
            }
            ShardCmd::Events { sid, reply } => {
                let events: Vec<Event> = self
                    .ring
                    .iter()
                    .filter(|e| match sid {
                        None => true,
                        Some(s) => e.sid == s,
                    })
                    .copied()
                    .collect();
                let _ = reply.send(Ok(Reply::Events(events)));
            }
            ShardCmd::Shutdown => return false,
        }
        true
    }

    /// Evict every idle-TTL-expired session. Drivers call this on their
    /// sweep cadence ([`crate::service::ServiceConfig::sweep_every`]);
    /// expiry itself is judged purely on the core's [`SimClock`].
    pub fn sweep(&mut self, now: Tick) {
        // Collect-then-remove (rather than `retain`): eviction updates
        // the gauge and emits one trace event per victim, which needs
        // the session's final step count.
        let expired: Vec<u64> = self
            .sessions
            .iter()
            .filter(|(_, s)| s.expired(now))
            .map(|(&sid, _)| sid)
            .collect();
        for sid in expired {
            if let Some(session) = self.sessions.remove(&sid) {
                self.obs.evicted.inc();
                self.obs.sessions.sub(1);
                self.event(EventKind::Evict, sid, session.steps(), 0, 0, 0);
            }
        }
    }
}

/// Run one shard core on `runtime`; returns its task handle, or the
/// spawn error as a [`ServeError`] (a service must degrade, not panic,
/// when the host hits a thread limit). The loop is deliberately thin:
/// all behavior lives in [`ShardCore`], and the only scheduling here is
/// the timed wait that doubles as the sweep timer — its cadence is the
/// service-configured `sweep_every`, routed through the runtime seam so
/// no real-time constant hides in the shard.
pub(crate) fn spawn_shard(
    runtime: &dyn Runtime,
    mut core: ShardCore,
    rx: ChanRx<ShardCmd>,
    sweep_every: Duration,
) -> Result<TaskHandle, ServeError> {
    let name = format!("cr-serve-shard-{}", core.shard());
    runtime.spawn(
        &name,
        Box::new(move || {
            let mut last_sweep = core.clock().now();
            'serve: loop {
                match rx.recv_for(sweep_every) {
                    // lint: hot
                    // One pop services a burst: after the blocking
                    // receive lands a command, drain whatever else is
                    // already queued (non-blocking, `DRAIN_BURST`-bounded)
                    // before waiting again. Each command still carries —
                    // and gets — its own reply, so pipelined clients see
                    // one reply line per request.
                    Ok(first) => {
                        let mut cmd = Some(first);
                        let mut burst = 0;
                        while let Some(c) = cmd.take() {
                            core.note_dequeue();
                            if !core.handle(c) {
                                break 'serve;
                            }
                            burst += 1;
                            if burst < DRAIN_BURST {
                                cmd = rx.try_recv();
                            }
                        }
                    }
                    Err(RecvWait::Timeout) => {}
                    Err(RecvWait::Closed) => break 'serve,
                }
                // The *cadence* of sweep checks is the queue's timed
                // wait; whether a session is expired is judged purely on
                // the SimClock, so virtual-time tests evict
                // deterministically.
                let now = core.clock().now();
                if now.since(last_sweep) >= sweep_every {
                    core.sweep(now);
                    last_sweep = now;
                }
            }
        }),
    )
}
