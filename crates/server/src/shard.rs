//! One shard: a worker thread owning a disjoint set of sessions, fed by a
//! bounded command queue.
//!
//! The service's concurrency model is the classic sharded event loop (one
//! thread, one queue, no locks around session state — the same shape as a
//! sharded Redis actor): a session lives on exactly one shard, so its
//! scheme is driven single-threaded and stays deterministic, while shards
//! run in parallel. Backpressure is structural: the queue is a
//! `sync_channel` with fixed capacity, so producers block (TCP
//! connections, load generators) instead of the queue growing without
//! bound; the queue-depth gauge is exported per shard.

use cr_core::clock::{SimClock, Tick};
use metrics::Histogram;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::error::ServeError;
use crate::session::{Session, SessionSpec, SessionStats, StepSummary, WorkloadSpec};

/// Per-shard command-queue capacity (bounded: this is the backpressure).
pub const QUEUE_CAPACITY: usize = 1024;

/// How often an idle shard sweeps for TTL-expired sessions.
pub const SWEEP_EVERY: Duration = Duration::from_millis(20);

/// What `OPEN` reports back.
#[derive(Debug, Clone)]
pub struct OpenInfo {
    /// The new session's id.
    pub sid: u64,
    /// The shard that owns it.
    pub shard: usize,
    /// Resolved scheme name.
    pub scheme: &'static str,
    /// Storage redundancy of the built scheme.
    pub redundancy: f64,
    /// Contention units of the built scheme.
    pub modules: usize,
}

/// What `TRACE` / `CLOSE` report back.
#[derive(Debug, Clone, Copy)]
pub struct TraceInfo {
    /// The session's id.
    pub sid: u64,
    /// Lifetime steps at reporting time.
    pub steps: u64,
    /// The running trace hash.
    pub trace: u64,
}

/// A snapshot of one shard's gauges and counters.
#[derive(Debug, Clone)]
pub struct ShardMetrics {
    /// Shard index.
    pub shard: usize,
    /// Live sessions.
    pub sessions: usize,
    /// Sessions ever opened here.
    pub opened: u64,
    /// Sessions closed by the client.
    pub closed: u64,
    /// Sessions evicted by the idle-TTL sweep.
    pub evicted: u64,
    /// Steps executed here.
    pub steps: u64,
    /// Commands waiting in the queue when the snapshot was taken.
    pub queue_depth: usize,
    /// Per-step wall-clock latency (nanoseconds).
    pub latency: Histogram,
}

/// A reply to one shard command.
#[derive(Debug, Clone)]
pub(crate) enum Reply {
    Open(OpenInfo),
    Step(StepSummary),
    Stats(SessionStats),
    Trace(TraceInfo),
    Close(TraceInfo),
    // Boxed: the histogram makes this variant ~20x the others' size.
    Metrics(Box<ShardMetrics>),
}

pub(crate) type ReplyTx = SyncSender<Result<Reply, ServeError>>;

/// The shard worker's command vocabulary.
#[derive(Debug)]
pub(crate) enum ShardCmd {
    Open {
        sid: u64,
        spec: SessionSpec,
        reply: ReplyTx,
    },
    Step {
        sid: u64,
        workload: WorkloadSpec,
        count: u64,
        reply: ReplyTx,
    },
    Stats {
        sid: u64,
        reply: ReplyTx,
    },
    Trace {
        sid: u64,
        reply: ReplyTx,
    },
    Close {
        sid: u64,
        reply: ReplyTx,
    },
    Metrics {
        reply: ReplyTx,
    },
    Shutdown,
}

/// The worker-side state of one shard.
struct ShardWorker {
    shard: usize,
    /// Ordered map: the TTL sweep and any future iteration visit
    /// sessions in sid order — deterministic, unlike a RandomState map.
    sessions: BTreeMap<u64, Session>,
    opened: u64,
    closed: u64,
    evicted: u64,
    steps: u64,
    latency: Histogram,
    queue_depth: Arc<AtomicUsize>,
    /// The service's time seam: real in production, virtual in
    /// deterministic tests (`ServiceConfig::clock`).
    clock: SimClock,
}

impl ShardWorker {
    fn handle(&mut self, cmd: ShardCmd) -> bool {
        match cmd {
            ShardCmd::Open { sid, spec, reply } => {
                let out = Session::open(spec, self.clock.now()).map(|session| {
                    let info = OpenInfo {
                        sid,
                        shard: self.shard,
                        scheme: session.scheme().name(),
                        redundancy: session.scheme().redundancy(),
                        modules: session.scheme().modules(),
                    };
                    self.sessions.insert(sid, session);
                    self.opened += 1;
                    Reply::Open(info)
                });
                let _ = reply.send(out);
            }
            ShardCmd::Step {
                sid,
                workload,
                count,
                reply,
            } => {
                let out = match self.sessions.get_mut(&sid) {
                    None => Err(ServeError::UnknownSession(sid)),
                    Some(session) => session
                        .step(&workload, count, &mut self.latency, &self.clock)
                        .map(|sum| {
                            self.steps += sum.executed;
                            Reply::Step(sum)
                        })
                        .map_err(|e| match e {
                            // The session does not know its own id.
                            ServeError::BudgetExhausted { max_steps, .. } => {
                                ServeError::BudgetExhausted { sid, max_steps }
                            }
                            other => other,
                        }),
                };
                let _ = reply.send(out);
            }
            ShardCmd::Stats { sid, reply } => {
                let out = match self.sessions.get_mut(&sid) {
                    None => Err(ServeError::UnknownSession(sid)),
                    Some(session) => {
                        session.touch(self.clock.now());
                        Ok(Reply::Stats(session.stats()))
                    }
                };
                let _ = reply.send(out);
            }
            ShardCmd::Trace { sid, reply } => {
                let out = match self.sessions.get_mut(&sid) {
                    None => Err(ServeError::UnknownSession(sid)),
                    Some(session) => {
                        session.touch(self.clock.now());
                        Ok(Reply::Trace(TraceInfo {
                            sid,
                            steps: session.steps(),
                            trace: session.trace(),
                        }))
                    }
                };
                let _ = reply.send(out);
            }
            ShardCmd::Close { sid, reply } => {
                let out = match self.sessions.remove(&sid) {
                    None => Err(ServeError::UnknownSession(sid)),
                    Some(session) => {
                        self.closed += 1;
                        Ok(Reply::Close(TraceInfo {
                            sid,
                            steps: session.steps(),
                            trace: session.trace(),
                        }))
                    }
                };
                let _ = reply.send(out);
            }
            ShardCmd::Metrics { reply } => {
                let snap = ShardMetrics {
                    shard: self.shard,
                    sessions: self.sessions.len(),
                    opened: self.opened,
                    closed: self.closed,
                    evicted: self.evicted,
                    steps: self.steps,
                    queue_depth: self.queue_depth.load(Ordering::Relaxed),
                    latency: self.latency.clone(),
                };
                let _ = reply.send(Ok(Reply::Metrics(Box::new(snap))));
            }
            ShardCmd::Shutdown => return false,
        }
        true
    }

    fn sweep(&mut self, now: Tick) {
        let before = self.sessions.len();
        self.sessions.retain(|_, s| !s.expired(now));
        self.evicted += (before - self.sessions.len()) as u64;
    }
}

/// Spawn one shard worker; returns its join handle, or the spawn error
/// as a [`ServeError`] (a service must degrade, not panic, when the
/// process hits a thread limit). `queue_depth` is decremented as
/// commands are dequeued (the sender increments it); TTL decisions and
/// latency samples read `clock`.
pub(crate) fn spawn_shard(
    shard: usize,
    rx: Receiver<ShardCmd>,
    queue_depth: Arc<AtomicUsize>,
    clock: SimClock,
) -> Result<JoinHandle<()>, ServeError> {
    std::thread::Builder::new()
        .name(format!("cr-serve-shard-{shard}"))
        .spawn(move || {
            let mut last_sweep = clock.now();
            let mut w = ShardWorker {
                shard,
                sessions: BTreeMap::new(),
                opened: 0,
                closed: 0,
                evicted: 0,
                steps: 0,
                latency: Histogram::new(),
                queue_depth,
                clock,
            };
            loop {
                match rx.recv_timeout(SWEEP_EVERY) {
                    Ok(cmd) => {
                        w.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        if !w.handle(cmd) {
                            break;
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
                // The *cadence* of sweep checks is the queue's real 20ms
                // idle timeout; whether a session is expired is judged
                // purely on the SimClock, so virtual-time tests evict
                // deterministically.
                let now = w.clock.now();
                if now.since(last_sweep) >= SWEEP_EVERY {
                    w.sweep(now);
                    last_sweep = now;
                }
            }
        })
        .map_err(|e| ServeError::Spawn(format!("shard {shard} worker: {e}")))
}
