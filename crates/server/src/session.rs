//! One live simulation session: a scheme instance plus its workload
//! stream, budgets, and running read/write trace hash.
//!
//! A session is defined *entirely* by its [`SessionSpec`] — the scheme
//! kind, machine size, seed, and optional fault fraction. Every random
//! ingredient (memory map, workload stream) derives from `spec.seed`
//! alone, never from the session id or the owning shard, so the same spec
//! stepped the same number of times produces the same [trace
//! hash](Session::trace) no matter how many shards the service runs —
//! the property the cross-shard determinism test pins, and what makes the
//! trace a verifiable artifact in the sense of Wei et al.'s P-RAM
//! consistency checking over read/write traces.

use cr_core::clock::{SimClock, Tick};
use cr_core::{FaultTotals, Scheme, SchemeKind, SimBuilder};
use cr_faults::{FaultPlan, FaultyBuilder};
use cr_obs::SharedHistogram;
use cr_verify::{SessionVerifier, VerifyDelta, VerifyMode, VerifyReport};
use pram_machine::Word;
use simrng::{fnv1a, rng_from_seed, Xoshiro256pp};
use std::time::Duration;
use workloads::{StepPattern, Zipf};

use crate::error::ServeError;

/// Default per-session step budget.
pub const DEFAULT_MAX_STEPS: u64 = 1 << 20;

/// Default idle TTL before a session is evicted.
pub const DEFAULT_TTL: Duration = Duration::from_secs(300);

/// Largest `count` one `STEP` command may request — bounds how long a
/// single command can occupy its shard's worker thread.
pub const MAX_STEP_BATCH: u64 = 4096;

/// Largest simulated processor count one session may request.
pub const MAX_SESSION_N: usize = 1 << 12;

/// Largest simulated memory one session may request — bounds the
/// `O(m·r)` map built on the shard worker thread at `OPEN` time.
pub const MAX_SESSION_M: usize = 1 << 20;

/// Everything needed to (re)construct a session deterministically.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionSpec {
    /// Simulated P-RAM processors.
    pub n: usize,
    /// Simulated shared-memory cells.
    pub m: usize,
    /// Which scheme serves the session.
    pub kind: SchemeKind,
    /// Optional copy-parameter override (`c`).
    pub c: Option<usize>,
    /// Seed of the memory distribution *and* the workload stream.
    pub seed: u64,
    /// Module-fault fraction; `> 0` wraps the scheme via `cr-faults`.
    pub fault_fraction: f64,
    /// Step budget: further `STEP`s fail once spent.
    pub max_steps: u64,
    /// Idle TTL: the owning shard evicts the session after this long
    /// without a command touching it.
    pub ttl: Duration,
    /// Trace recording + PRAM-consistency checking mode (`cr-verify`).
    /// `ring` by default: the service self-checks unless told not to.
    pub verify: VerifyMode,
}

impl SessionSpec {
    /// A default-budget spec for an `(n, m)` machine.
    pub fn new(n: usize, m: usize, kind: SchemeKind) -> Self {
        SessionSpec {
            n,
            m,
            kind,
            c: None,
            seed: simrng::DEFAULT_SEED,
            fault_fraction: 0.0,
            max_steps: DEFAULT_MAX_STEPS,
            ttl: DEFAULT_TTL,
            verify: VerifyMode::default(),
        }
    }

    /// Override the seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the step budget.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Override the idle TTL.
    pub fn ttl(mut self, ttl: Duration) -> Self {
        self.ttl = ttl;
        self
    }

    /// Run the session under module faults.
    pub fn faults(mut self, fraction: f64) -> Self {
        self.fault_fraction = fraction;
        self
    }

    /// Override the trace-verification mode.
    pub fn verify(mut self, mode: VerifyMode) -> Self {
        self.verify = mode;
        self
    }
}

/// The workload a `STEP` command drives through a session.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// `n` distinct uniform requests, 30% writes (the canonical step).
    Uniform,
    /// Zipf(1.2)-skewed reads, deduplicated.
    Hotspot,
    /// Strided reads (`stride = max(m/n, 1)`), offset advancing per step.
    Stride,
    /// An explicit request batch supplied by the client.
    Raw {
        /// Distinct addresses to read.
        reads: Vec<usize>,
        /// Distinct addresses to write, with values.
        writes: Vec<(usize, Word)>,
    },
}

/// What one `STEP` command executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepSummary {
    /// Steps executed by this command.
    pub executed: u64,
    /// Session lifetime steps after this command.
    pub total_steps: u64,
    /// Protocol phases consumed by this command.
    pub phases: u64,
    /// Network cycles consumed by this command.
    pub cycles: u64,
    /// Messages consumed by this command.
    pub messages: u64,
    /// Cycles attributed to protocol stage 1 (zero for schemes without
    /// the two-stage access protocol).
    pub stage1_cycles: u64,
    /// Cycles attributed to stage 2 (`cycles - stage1_cycles`).
    pub stage2_cycles: u64,
    /// Dead copy-access attempts this command exposed (fault sessions).
    pub dead_attempts: u64,
    /// Messages the faulty network dropped during this command.
    pub dropped_messages: u64,
    /// Trace ops recorded and PRAM-checked during this command.
    pub verify_ops: u64,
    /// Trace records truncated (ring overwrote, no spill copy) during
    /// this command.
    pub verify_truncated: u64,
    /// Whether this command produced the session's *first* PRAM
    /// violation (the shard turns this into a counter bump + event).
    pub verify_violation: bool,
    /// Whether the budget ran out mid-command (executed < requested).
    pub exhausted: bool,
}

/// Aggregate counters a `STATS` command reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Lifetime steps.
    pub steps: u64,
    /// Lifetime requests served.
    pub requests: u64,
    /// Lifetime protocol phases.
    pub phases: u64,
    /// Lifetime network cycles.
    pub cycles: u64,
    /// Lifetime messages.
    pub messages: u64,
    /// Running trace hash (see [`Session::trace`]).
    pub trace: u64,
    /// Remaining step budget.
    pub budget_left: u64,
}

/// A live session owned by one shard worker.
#[derive(Debug)]
pub struct Session {
    scheme: Box<dyn Scheme>,
    spec: SessionSpec,
    /// Workload stream — derived from `spec.seed` only.
    rng: Xoshiro256pp,
    /// Lazily built Zipf CDF for the hotspot workload.
    zipf: Option<Zipf>,
    steps: u64,
    trace: u64,
    /// Strided-workload offset (advances per step).
    stride_offset: usize,
    /// Reusable workload-generation buffers (`*_into` targets): once a
    /// session is warm, stepping allocates nothing.
    pattern: StepPattern,
    scratch: Vec<u64>,
    /// Fault counters at the end of the previous command — the baseline
    /// for per-command deltas ([`Scheme::fault_counters`] is cumulative).
    fault_seen: FaultTotals,
    /// Trace recording + online PRAM-consistency checking (`cr-verify`),
    /// fed right next to the trace-hash update in [`step`](Session::step).
    verifier: SessionVerifier,
    /// When a command last touched the session, on the owning shard's
    /// [`SimClock`] (the TTL sweeper compares against the same clock).
    last_touch: Tick,
}

impl Session {
    /// Build the session's scheme (fault-wrapped when the spec asks) and
    /// seed its workload stream. `now` is the opening shard's clock
    /// reading — the session's first touch stamp.
    pub fn open(spec: SessionSpec, now: Tick) -> Result<Session, ServeError> {
        if spec.max_steps == 0 {
            return Err(ServeError::BadRequest("max-steps must be positive".into()));
        }
        // Construction cost is O(m·r) on the owning shard's worker
        // thread; without a ceiling one OPEN frame could stall the shard
        // for minutes (or OOM the process) and starve every session
        // routed there — the same reason MAX_STEP_BATCH exists.
        if spec.n > MAX_SESSION_N || spec.m > MAX_SESSION_M {
            return Err(ServeError::BadRequest(format!(
                "session too large: n ≤ {MAX_SESSION_N}, m ≤ {MAX_SESSION_M} \
                 (got n = {}, m = {})",
                spec.n, spec.m
            )));
        }
        let mut builder = SimBuilder::new(spec.n, spec.m)
            .kind(spec.kind)
            .seed(spec.seed);
        if let Some(c) = spec.c {
            builder = builder.c(c);
        }
        let scheme: Box<dyn Scheme> = if spec.fault_fraction > 0.0 {
            if spec.c.is_some() {
                return Err(ServeError::BadRequest(
                    "faults and an explicit c cannot be combined".into(),
                ));
            }
            Box::new(
                FaultyBuilder::new(spec.n, spec.m)
                    .kind(spec.kind)
                    .seed(spec.seed)
                    .plan(FaultPlan::modules(spec.fault_fraction).with_seed(spec.seed))
                    .build()?,
            )
        } else {
            builder.build()?
        };
        // The workload stream is decorrelated from the memory map but
        // derived from the same seed: spec ⇒ behavior, shard-independent.
        let rng = rng_from_seed(simrng::mix64(spec.seed ^ 0x5E55_1011));
        // Ring, spill, and per-cell checker state are all allocated
        // here, once — the recording path in `step` stays alloc-free.
        let verifier = SessionVerifier::new(spec.verify, spec.m);
        Ok(Session {
            scheme,
            rng,
            zipf: None,
            steps: 0,
            trace: simrng::FNV_OFFSET,
            stride_offset: 0,
            pattern: StepPattern::default(),
            scratch: Vec::new(),
            fault_seen: FaultTotals::default(),
            verifier,
            spec,
            last_touch: now,
        })
    }

    /// Position of the session's scheme in [`SchemeKind::ALL`] — the
    /// compact numeric tag the `open` trace event carries.
    pub fn scheme_index(&self) -> u64 {
        SchemeKind::ALL
            .iter()
            .position(|k| *k == self.spec.kind)
            .map_or(0, |i| i as u64)
    }

    /// The spec the session was opened with.
    pub fn spec(&self) -> &SessionSpec {
        &self.spec
    }

    /// The underlying scheme (name, redundancy, modules for `OPEN`'s reply).
    pub fn scheme(&self) -> &dyn Scheme {
        self.scheme.as_ref()
    }

    /// Running FNV-1a hash over the session's observable trace: every
    /// value read back plus each step's phase/cycle/message cost. Two
    /// sessions with the same spec and step sequence agree bit-for-bit.
    pub fn trace(&self) -> u64 {
        self.trace
    }

    /// Lifetime steps executed.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// When a command last touched the session.
    pub fn last_touch(&self) -> Tick {
        self.last_touch
    }

    /// Whether the session has sat idle longer than its TTL.
    pub fn expired(&self, now: Tick) -> bool {
        now.since(self.last_touch) > self.spec.ttl
    }

    /// Mark the session as touched (any command counts).
    pub fn touch(&mut self, now: Tick) {
        self.last_touch = now;
    }

    /// Validate a raw request batch against the scheme's access contract,
    /// so a malformed client batch becomes an error reply instead of a
    /// downstream panic.
    fn check_raw(&self, reads: &[usize], writes: &[(usize, Word)]) -> Result<(), ServeError> {
        let m = self.spec.m;
        if reads.len() + writes.len() > self.spec.n {
            return Err(ServeError::BadRequest(format!(
                "{} requests exceed the {}-processor step budget",
                reads.len() + writes.len(),
                self.spec.n
            )));
        }
        // Sort-based dedup over the ≤ n addresses: O(n log n) per
        // command, independent of the machine size m.
        let mut addrs: Vec<usize> = reads
            .iter()
            .chain(writes.iter().map(|(a, _)| a))
            .copied()
            .collect();
        addrs.sort_unstable();
        for pair in addrs.windows(2) {
            if let &[a, b] = pair {
                if a == b {
                    return Err(ServeError::BadRequest(format!(
                        "address {a} appears twice in one step"
                    )));
                }
            }
        }
        if let Some(&a) = addrs.last() {
            if a >= m {
                return Err(ServeError::BadRequest(format!(
                    "address {a} out of range (m = {m})"
                )));
            }
        }
        Ok(())
    }

    /// Execute up to `count` steps of `workload`, recording one latency
    /// sample per step into `latency` (timed on `clock` — virtual-clock
    /// services record zero-width samples, which is correct: no simulated
    /// time passed). The command is timed once and the per-step average
    /// attributed to every step via
    /// [`record_n`](SharedHistogram::record_n): the sample count still
    /// equals the step count, and two `clock` reads per *command* replace
    /// two per *step* — the histogram trades within-command latency
    /// spread for throughput. Stops early (with `exhausted = true`) when
    /// the budget runs out mid-batch; fails without stepping when it is
    /// already spent.
    // lint: hot
    pub fn step(
        &mut self,
        workload: &WorkloadSpec,
        count: u64,
        latency: &SharedHistogram,
        clock: &SimClock,
    ) -> Result<StepSummary, ServeError> {
        if count == 0 || count > MAX_STEP_BATCH {
            // lint: allow(hot-alloc, error reply path - never taken by an in-contract step)
            return Err(ServeError::BadRequest(format!(
                "count must be in 1..={MAX_STEP_BATCH}"
            )));
        }
        if self.steps >= self.spec.max_steps {
            return Err(ServeError::BudgetExhausted {
                sid: 0, // filled in by the shard, which knows the id
                max_steps: self.spec.max_steps,
            });
        }
        if let WorkloadSpec::Raw { reads, writes } = workload {
            self.check_raw(reads, writes)?;
        }
        let budget_left = self.spec.max_steps - self.steps;
        let run = count.min(budget_left);
        let (n, m) = (self.spec.n, self.spec.m);
        // The Zipf CDF is O(m) to build; do it before the per-step timer
        // starts so setup cost never lands in a latency sample.
        if matches!(workload, WorkloadSpec::Hotspot) && self.zipf.is_none() {
            self.zipf = Some(Zipf::new(m, 1.2));
        }
        let mut phases = 0u64;
        let mut cycles = 0u64;
        let mut messages = 0u64;
        let mut stage1_cycles = 0u64;
        let mut verify = VerifyDelta::default();
        let t0 = clock.now();
        for _ in 0..run {
            let res = match workload {
                WorkloadSpec::Uniform => {
                    workloads::uniform_into(
                        n,
                        m,
                        0.3,
                        &mut self.rng,
                        &mut self.scratch,
                        &mut self.pattern,
                    );
                    self.scheme
                        .access(&self.pattern.reads, &self.pattern.writes)
                }
                WorkloadSpec::Hotspot => {
                    // lint: allow(no-unwrap, invariant - the CDF is built above before the timed loop)
                    let zipf = self.zipf.as_ref().expect("built before the timed loop");
                    workloads::hotspot_into(n, zipf, &mut self.rng, &mut self.pattern);
                    self.scheme
                        .access(&self.pattern.reads, &self.pattern.writes)
                }
                WorkloadSpec::Stride => {
                    let stride = (m / n).max(1);
                    workloads::stride_into(n, m, stride, self.stride_offset, &mut self.pattern);
                    self.stride_offset = (self.stride_offset + 1) % m;
                    self.scheme
                        .access(&self.pattern.reads, &self.pattern.writes)
                }
                WorkloadSpec::Raw { reads, writes } => self.scheme.access(reads, writes),
            };
            // The verification seam sits right next to the trace-hash
            // update: the same (addresses, values) batch the hash folds
            // in is what the PRAM checker sees, stamped with the
            // command's tick. Reads of cells the fault layer lost are
            // recorded excused — quorum-masked faults verify clean.
            let (r_addrs, w_vals): (&[usize], &[(usize, Word)]) = match workload {
                WorkloadSpec::Raw { reads, writes } => (reads, writes),
                _ => (&self.pattern.reads, &self.pattern.writes),
            };
            // Short-circuit on the spec flag: a fault-free session never
            // pays the per-read virtual `cell_lost` call (measurable on
            // the cheapest schemes, where a step is sub-microsecond).
            let faulty = self.spec.fault_fraction > 0.0;
            let scheme = &self.scheme;
            verify.merge(self.verifier.record_step(
                t0.nanos(),
                r_addrs,
                &res.read_values,
                w_vals,
                |a| faulty && scheme.cell_lost(a),
            ));
            for &v in &res.read_values {
                fnv1a(&mut self.trace, v as u64);
            }
            fnv1a(&mut self.trace, res.cost.phases);
            fnv1a(&mut self.trace, res.cost.cycles);
            fnv1a(&mut self.trace, res.cost.messages);
            phases += res.cost.phases;
            cycles += res.cost.cycles;
            messages += res.cost.messages;
            stage1_cycles += self.scheme.last_step().protocol.stage1_cycles;
            self.steps += 1;
        }
        let now = clock.now();
        latency.record_n(now.since(t0).as_nanos() as u64 / run, run);
        self.touch(now);
        // Per-command fault exposure: the scheme reports lifetime
        // absolutes, so diff against what the previous command saw.
        let (dead_attempts, dropped_messages) = match self.scheme.fault_counters() {
            Some(t) => {
                let d = (
                    t.dead_attempts
                        .saturating_sub(self.fault_seen.dead_attempts),
                    t.dropped_messages
                        .saturating_sub(self.fault_seen.dropped_messages),
                );
                self.fault_seen = t;
                d
            }
            None => (0, 0),
        };
        Ok(StepSummary {
            executed: run,
            total_steps: self.steps,
            phases,
            cycles,
            messages,
            stage1_cycles,
            stage2_cycles: cycles.saturating_sub(stage1_cycles),
            dead_attempts,
            dropped_messages,
            verify_ops: verify.ops,
            verify_truncated: verify.truncated,
            verify_violation: verify.violated,
            exhausted: run < count,
        })
    }

    /// Snapshot the session's PRAM-consistency state (`VERIFY <sid>`).
    pub fn verify_report(&self) -> VerifyReport {
        self.verifier.report()
    }

    /// Test-support hook: overwrite every stored copy of `addr` with
    /// `value` *without* telling the verifier — a deliberate store
    /// corruption. The next non-excused read of `addr` must trip the
    /// checker; the corruption CI leg proves it does. Not reachable from
    /// the wire protocol.
    pub fn corrupt_cell(&mut self, addr: usize, value: Word) {
        self.scheme.poke(addr, value);
    }

    /// Aggregate lifetime counters.
    pub fn stats(&self) -> SessionStats {
        let (tot, _) = self.scheme.totals();
        SessionStats {
            steps: self.steps,
            requests: tot.requests as u64,
            phases: tot.phases,
            cycles: tot.cycles,
            messages: tot.messages,
            trace: self.trace,
            budget_left: self.spec.max_steps - self.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clock() -> SimClock {
        SimClock::manual()
    }

    fn spec() -> SessionSpec {
        SessionSpec::new(8, 64, SchemeKind::HpDmmpc).seed(7)
    }

    #[test]
    fn same_spec_same_trace() {
        let h = SharedHistogram::new();
        let mut a = Session::open(spec(), Tick::ZERO).unwrap();
        let mut b = Session::open(spec(), Tick::ZERO).unwrap();
        a.step(&WorkloadSpec::Uniform, 5, &h, &clock()).unwrap();
        b.step(&WorkloadSpec::Uniform, 2, &h, &clock()).unwrap();
        b.step(&WorkloadSpec::Uniform, 3, &h, &clock()).unwrap();
        assert_eq!(a.trace(), b.trace(), "batching must not change the trace");
        assert_eq!(a.stats().steps, 5);
    }

    #[test]
    fn budget_stops_mid_batch_then_refuses() {
        let h = SharedHistogram::new();
        let mut s = Session::open(spec().max_steps(3), Tick::ZERO).unwrap();
        let sum = s.step(&WorkloadSpec::Uniform, 10, &h, &clock()).unwrap();
        assert_eq!(sum.executed, 3);
        assert!(sum.exhausted);
        let err = s.step(&WorkloadSpec::Uniform, 1, &h, &clock()).unwrap_err();
        assert!(matches!(err, ServeError::BudgetExhausted { .. }));
        // STATS stays valid after exhaustion.
        assert_eq!(s.stats().budget_left, 0);
    }

    #[test]
    fn raw_batches_are_validated() {
        let h = SharedHistogram::new();
        let mut s = Session::open(spec(), Tick::ZERO).unwrap();
        let oob = WorkloadSpec::Raw {
            reads: vec![64],
            writes: vec![],
        };
        assert!(matches!(
            s.step(&oob, 1, &h, &clock()),
            Err(ServeError::BadRequest(_))
        ));
        let dup = WorkloadSpec::Raw {
            reads: vec![3],
            writes: vec![(3, 1)],
        };
        assert!(matches!(
            s.step(&dup, 1, &h, &clock()),
            Err(ServeError::BadRequest(_))
        ));
        let ok = WorkloadSpec::Raw {
            reads: vec![],
            writes: vec![(5, 42)],
        };
        s.step(&ok, 1, &h, &clock()).unwrap();
        let rd = WorkloadSpec::Raw {
            reads: vec![5],
            writes: vec![],
        };
        s.step(&rd, 1, &h, &clock()).unwrap();
        assert_eq!(s.stats().steps, 2);
    }

    #[test]
    fn oversized_machines_are_rejected() {
        for bad in [
            SessionSpec::new(MAX_SESSION_N + 1, 64, SchemeKind::Hashed),
            SessionSpec::new(8, MAX_SESSION_M + 1, SchemeKind::Hashed),
        ] {
            assert!(matches!(
                Session::open(bad, Tick::ZERO),
                Err(ServeError::BadRequest(_))
            ));
        }
        // The boundary itself is accepted (hashed: cheapest to build).
        Session::open(
            SessionSpec::new(16, 1 << 16, SchemeKind::Hashed),
            Tick::ZERO,
        )
        .unwrap();
    }

    #[test]
    fn faulty_sessions_build() {
        let h = SharedHistogram::new();
        let mut s = Session::open(spec().faults(0.125), Tick::ZERO).unwrap();
        s.step(&WorkloadSpec::Uniform, 3, &h, &clock()).unwrap();
        assert_eq!(s.steps(), 3);
    }

    #[test]
    fn verify_is_on_by_default_and_stays_consistent() {
        let h = SharedHistogram::new();
        let mut s = Session::open(spec(), Tick::ZERO).unwrap();
        let sum = s.step(&WorkloadSpec::Uniform, 10, &h, &clock()).unwrap();
        assert!(sum.verify_ops > 0, "default mode records");
        assert!(!sum.verify_violation);
        let rep = s.verify_report();
        assert_eq!(rep.verdict(), "consistent");
        assert_eq!(rep.ops, rep.reads + rep.writes);
    }

    #[test]
    fn verify_off_records_nothing() {
        let h = SharedHistogram::new();
        let mut s = Session::open(spec().verify(VerifyMode::Off), Tick::ZERO).unwrap();
        let sum = s.step(&WorkloadSpec::Uniform, 10, &h, &clock()).unwrap();
        assert_eq!(sum.verify_ops, 0);
        assert_eq!(s.verify_report().verdict(), "off");
    }

    #[test]
    fn corruption_trips_the_checker() {
        let h = SharedHistogram::new();
        let mut s = Session::open(spec(), Tick::ZERO).unwrap();
        let w = WorkloadSpec::Raw {
            reads: vec![],
            writes: vec![(5, 42)],
        };
        s.step(&w, 1, &h, &clock()).unwrap();
        // Overwrite every stored copy behind the verifier's back.
        s.corrupt_cell(5, 1234);
        let r = WorkloadSpec::Raw {
            reads: vec![5],
            writes: vec![],
        };
        let sum = s.step(&r, 1, &h, &clock()).unwrap();
        assert!(sum.verify_violation, "corrupted read must violate");
        let rep = s.verify_report();
        assert_eq!(rep.verdict(), "violation");
        let v = rep.violation.unwrap();
        assert_eq!(v.addr, 5);
        assert_eq!(v.got, 1234);
        assert_eq!(v.expected, 42);
        assert_eq!(v.kind, cr_verify::ViolationKind::UnknownValue);
        // The transition is reported once; further bad reads do not re-flag.
        let sum = s.step(&r, 1, &h, &clock()).unwrap();
        assert!(!sum.verify_violation);
    }

    #[test]
    fn masked_faults_verify_clean_across_the_zoo() {
        // Statically lost cells read back a default, not a program
        // value; the fault layer reports them and the checker excuses
        // exactly those reads — so every scheme, fault-wrapped at the
        // standard 12.5% module-fault fraction, must verify clean.
        let h = SharedHistogram::new();
        for kind in SchemeKind::ALL {
            let spec = SessionSpec::new(8, 64, kind).seed(11).faults(0.125);
            let mut s = Session::open(spec, Tick::ZERO).unwrap();
            s.step(&WorkloadSpec::Uniform, 40, &h, &clock()).unwrap();
            let rep = s.verify_report();
            assert_eq!(
                rep.verdict(),
                "consistent",
                "{kind:?} must verify clean under masked faults: {:?}",
                rep.violation
            );
            assert!(rep.ops > 0);
        }
    }

    #[test]
    fn ring_wraparound_degrades_coverage_and_counts_truncations() {
        let h = SharedHistogram::new();
        let mut s = Session::open(spec(), Tick::ZERO).unwrap();
        // n = 8 requests per uniform step: 128 steps exactly fill the
        // 1024-op ring; coverage must still be full.
        let sum = s.step(&WorkloadSpec::Uniform, 128, &h, &clock()).unwrap();
        assert_eq!(sum.verify_ops, 1024);
        assert_eq!(sum.verify_truncated, 0);
        assert_eq!(s.verify_report().coverage, cr_verify::Coverage::Full);
        // The next step wraps: coverage degrades exactly then, and the
        // per-command truncation delta accounts every overwritten record.
        let mut truncated = 0;
        for _ in 0..100 {
            truncated += s
                .step(&WorkloadSpec::Uniform, 1, &h, &clock())
                .unwrap()
                .verify_truncated;
        }
        let rep = s.verify_report();
        assert_eq!(rep.coverage, cr_verify::Coverage::Window);
        assert_eq!(rep.truncated, truncated);
        assert_eq!(rep.truncated, 800, "8 ops per step, 100 steps past full");
        assert_eq!(rep.retained, 1024);
        assert_eq!(rep.verdict(), "consistent");
    }

    #[test]
    fn all_workload_kinds_step() {
        let h = SharedHistogram::new();
        let mut s = Session::open(spec(), Tick::ZERO).unwrap();
        for w in [
            WorkloadSpec::Uniform,
            WorkloadSpec::Hotspot,
            WorkloadSpec::Stride,
        ] {
            s.step(&w, 2, &h, &clock()).unwrap();
        }
        assert_eq!(s.steps(), 6);
        assert_eq!(h.count(), 6);
    }
}
