//! The service's error vocabulary — every failure a client can cause or
//! observe, each rendered as a one-line `ERR` reply.

use cr_core::BuildError;
use std::fmt;

/// Why a service request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The requested scheme configuration cannot be built.
    Build(BuildError),
    /// No live session with this id (never opened, closed, or evicted).
    UnknownSession(u64),
    /// The session's step budget is spent; only `STATS`/`TRACE`/`CLOSE`
    /// remain valid.
    BudgetExhausted {
        /// The exhausted session.
        sid: u64,
        /// Its configured budget.
        max_steps: u64,
    },
    /// A shard worker is gone (service shutting down).
    ShardDown,
    /// The OS refused to spawn a shard worker thread at startup.
    Spawn(String),
    /// A malformed or out-of-contract request (bad frame, bad address,
    /// duplicate address, oversized count).
    BadRequest(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Build(e) => write!(f, "build: {e}"),
            ServeError::UnknownSession(sid) => write!(f, "unknown session {sid}"),
            ServeError::BudgetExhausted { sid, max_steps } => {
                write!(f, "session {sid}: budget of {max_steps} steps exhausted")
            }
            ServeError::ShardDown => f.write_str("shard down"),
            ServeError::Spawn(msg) => write!(f, "spawn: {msg}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<BuildError> for ServeError {
    fn from(e: BuildError) -> Self {
        ServeError::Build(e)
    }
}
