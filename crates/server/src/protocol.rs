//! The wire protocol: newline-framed text commands.
//!
//! Grammar (tokens are space-separated; `[]` optional, `|` alternatives):
//!
//! ```text
//! OPEN <n> <m> <scheme> [c=<c>] [seed=<u64>] [faults=<f>]
//!                       [max-steps=<k>] [ttl-ms=<t>]
//!                       [verify=off|ring|full]
//! STEP <sid> uniform|hotspot|stride [count]
//! STEP <sid> raw [r=<a,b,..>] [w=<a:v,b:v,..>]
//! STEPN <sid> <k> [uniform|hotspot|stride]
//! STATS <sid>
//! TRACE <sid>
//! VERIFY [sid]
//! CLOSE <sid>
//! INFO
//! METRICS
//! EVENTS [sid]
//! PING
//! QUIT
//! ```
//!
//! Most replies are a single line: `OK <key=value ...>` or
//! `ERR <message>`. Multi-line replies (`INFO`, `METRICS`, `EVENTS`)
//! announce their payload in the header — `OK ... lines=<K>` — followed
//! by exactly `K` payload lines, so a client always knows how much to
//! read: Prometheus exposition text for `METRICS`, one JSON event per
//! line for `EVENTS`, per-shard summaries for `INFO`. Anything
//! unparseable yields `ERR` and leaves the connection open — a
//! malformed frame must never take down a session or the server.

use cr_core::SchemeKind;
use pram_machine::Word;
use std::time::Duration;

use crate::error::ServeError;
use crate::service::{ServiceApi, ServiceInfo};
use crate::session::{SessionSpec, SessionStats, StepSummary, WorkloadSpec};
use crate::shard::{OpenInfo, TraceInfo, VerifyInfo, VerifySummary};

/// One parsed client command.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Open a session.
    Open(SessionSpec),
    /// Step a session.
    Step {
        /// Target session.
        sid: u64,
        /// What to drive through it.
        workload: WorkloadSpec,
        /// How many steps.
        count: u64,
    },
    /// Report aggregate counters.
    Stats(u64),
    /// Report the trace hash.
    Trace(u64),
    /// Report one session's PRAM-consistency verdict, or the
    /// service-wide summary.
    Verify(Option<u64>),
    /// Close a session.
    Close(u64),
    /// Report service-wide counters.
    Info,
    /// Dump the metrics registry as Prometheus exposition text.
    Metrics,
    /// Dump trace events (all sessions, or one) as JSONL.
    Events(Option<u64>),
    /// Liveness probe.
    Ping,
    /// Close the connection.
    Quit,
}

fn parse_u64(tok: &str, what: &str) -> Result<u64, String> {
    tok.parse()
        .map_err(|_| format!("{what}: not a number: {tok}"))
}

fn parse_kv(tok: &str) -> Result<(&str, &str), String> {
    tok.split_once('=')
        .ok_or_else(|| format!("expected key=value, got {tok}"))
}

fn parse_list(val: &str, what: &str) -> Result<Vec<usize>, String> {
    val.split(',')
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| format!("{what}: bad address {s}"))
        })
        .collect()
}

fn parse_writes(val: &str) -> Result<Vec<(usize, Word)>, String> {
    val.split(',')
        .filter(|s| !s.is_empty())
        .map(|pair| {
            let (a, v) = pair
                .split_once(':')
                .ok_or_else(|| format!("w: expected addr:value, got {pair}"))?;
            let addr = a
                .parse::<usize>()
                .map_err(|_| format!("w: bad address {a}"))?;
            let value = v.parse::<Word>().map_err(|_| format!("w: bad value {v}"))?;
            Ok((addr, value))
        })
        .collect()
}

/// Parse one frame line. Errors are client-facing messages.
pub fn parse(line: &str) -> Result<Frame, String> {
    let mut toks = line.split_ascii_whitespace();
    let verb = toks.next().ok_or("empty frame")?;
    let toks: Vec<&str> = toks.collect();
    match verb.to_ascii_uppercase().as_str() {
        "OPEN" => {
            let [n, m, scheme, opts @ ..] = toks.as_slice() else {
                return Err("OPEN needs: n m scheme [key=value ...]".into());
            };
            let n = parse_u64(n, "n")? as usize;
            let m = parse_u64(m, "m")? as usize;
            let kind: SchemeKind = scheme.parse().map_err(|e| format!("{e}"))?;
            let mut spec = SessionSpec::new(n, m, kind);
            for tok in opts {
                let (k, v) = parse_kv(tok)?;
                match k {
                    "c" => spec.c = Some(parse_u64(v, "c")? as usize),
                    "seed" => spec.seed = parse_u64(v, "seed")?,
                    "faults" => {
                        let f: f64 = v.parse().map_err(|_| format!("faults: bad fraction {v}"))?;
                        if !(0.0..=1.0).contains(&f) {
                            return Err(format!("faults: {f} outside [0, 1]"));
                        }
                        spec.fault_fraction = f;
                    }
                    "max-steps" => spec.max_steps = parse_u64(v, "max-steps")?,
                    "ttl-ms" => spec.ttl = Duration::from_millis(parse_u64(v, "ttl-ms")?),
                    "verify" => spec.verify = v.parse()?,
                    other => return Err(format!("OPEN: unknown option {other}")),
                }
            }
            Ok(Frame::Open(spec))
        }
        "STEP" => {
            let [sid, workload, rest @ ..] = toks.as_slice() else {
                return Err("STEP needs: sid workload [count]".into());
            };
            let sid = parse_u64(sid, "sid")?;
            let workload = match workload.to_ascii_lowercase().as_str() {
                "uniform" => WorkloadSpec::Uniform,
                "hotspot" => WorkloadSpec::Hotspot,
                "stride" => WorkloadSpec::Stride,
                "raw" => {
                    let mut reads = Vec::new();
                    let mut writes = Vec::new();
                    for tok in rest {
                        let (k, v) = parse_kv(tok)?;
                        match k {
                            "r" => reads = parse_list(v, "r")?,
                            "w" => writes = parse_writes(v)?,
                            other => return Err(format!("STEP raw: unknown option {other}")),
                        }
                    }
                    if reads.is_empty() && writes.is_empty() {
                        return Err("STEP raw: needs r=... and/or w=...".into());
                    }
                    // Raw steps carry their requests inline; a trailing
                    // count would be ambiguous, so it is fixed at 1.
                    return Ok(Frame::Step {
                        sid,
                        workload: WorkloadSpec::Raw { reads, writes },
                        count: 1,
                    });
                }
                other => {
                    return Err(format!(
                        "unknown workload {other} (uniform, hotspot, stride, raw)"
                    ))
                }
            };
            let count = match rest.first() {
                Some(tok) => parse_u64(tok, "count")?,
                None => 1,
            };
            Ok(Frame::Step {
                sid,
                workload,
                count,
            })
        }
        // The batch form load generators pipeline: the step count is
        // mandatory and leads, the workload is optional (default
        // uniform), and raw batches are excluded — `STEPN` exists to
        // saturate shards, not to carry inline requests. Parses to the
        // same frame as `STEP`, so execution and replies are shared.
        "STEPN" => {
            let [sid, k, rest @ ..] = toks.as_slice() else {
                return Err("STEPN needs: sid k [workload]".into());
            };
            let sid = parse_u64(sid, "sid")?;
            let count = parse_u64(k, "k")?;
            let workload = match rest {
                [] => WorkloadSpec::Uniform,
                [w] => match w.to_ascii_lowercase().as_str() {
                    "uniform" => WorkloadSpec::Uniform,
                    "hotspot" => WorkloadSpec::Hotspot,
                    "stride" => WorkloadSpec::Stride,
                    other => {
                        return Err(format!(
                            "unknown workload {other} (uniform, hotspot, stride)"
                        ))
                    }
                },
                _ => return Err("STEPN needs: sid k [workload]".into()),
            };
            Ok(Frame::Step {
                sid,
                workload,
                count,
            })
        }
        "STATS" => Ok(Frame::Stats(parse_u64(
            toks.first().ok_or("STATS needs: sid")?,
            "sid",
        )?)),
        "TRACE" => Ok(Frame::Trace(parse_u64(
            toks.first().ok_or("TRACE needs: sid")?,
            "sid",
        )?)),
        "VERIFY" => Ok(Frame::Verify(match toks.first() {
            Some(tok) => Some(parse_u64(tok, "sid")?),
            None => None,
        })),
        "CLOSE" => Ok(Frame::Close(parse_u64(
            toks.first().ok_or("CLOSE needs: sid")?,
            "sid",
        )?)),
        "INFO" => Ok(Frame::Info),
        "METRICS" => Ok(Frame::Metrics),
        "EVENTS" => Ok(Frame::Events(match toks.first() {
            Some(tok) => Some(parse_u64(tok, "sid")?),
            None => None,
        })),
        "PING" => Ok(Frame::Ping),
        "QUIT" => Ok(Frame::Quit),
        other => Err(format!(
            "unknown command {other} (OPEN, STEP, STEPN, STATS, TRACE, VERIFY, \
             CLOSE, INFO, METRICS, EVENTS, PING, QUIT)"
        )),
    }
}

/// Render the reply line for an executed frame.
pub fn render_open(info: &OpenInfo) -> String {
    format!(
        "OK sid={} shard={} scheme={} r={} modules={}",
        info.sid, info.shard, info.scheme, info.redundancy, info.modules
    )
}

/// Render a `STEP` reply.
pub fn render_step(sum: &StepSummary) -> String {
    format!(
        "OK executed={} steps={} phases={} cycles={} messages={} s1cyc={} s2cyc={} exhausted={}",
        sum.executed,
        sum.total_steps,
        sum.phases,
        sum.cycles,
        sum.messages,
        sum.stage1_cycles,
        sum.stage2_cycles,
        sum.exhausted
    )
}

/// Render a `STATS` reply.
pub fn render_stats(st: &SessionStats) -> String {
    format!(
        "OK steps={} requests={} phases={} cycles={} messages={} budget-left={} trace={:016x}",
        st.steps, st.requests, st.phases, st.cycles, st.messages, st.budget_left, st.trace
    )
}

/// Render a `TRACE` reply.
pub fn render_trace(t: &TraceInfo) -> String {
    format!("OK sid={} steps={} trace={:016x}", t.sid, t.steps, t.trace)
}

/// Render a `VERIFY <sid>` reply. Every field is derived from the
/// session's spec-determined op stream — no ticks, no shard ids — so
/// the line is byte-identical at any shard count (the per-sid analogue
/// of the trace hash's invariance). A violation appends its structured
/// explanation: the violating op's lifetime index, cell, observed and
/// required values, the latest write's index (`wop=none` when the cell
/// was never written), and the stale/unknown classification.
pub fn render_verify(info: &VerifyInfo) -> String {
    let r = &info.report;
    let mut out = format!(
        "OK sid={} verdict={} mode={} ops={} reads={} writes={} excused={} \
         coverage={} retained={} truncated={}",
        info.sid,
        r.verdict(),
        r.mode.name(),
        r.ops,
        r.reads,
        r.writes,
        r.excused,
        r.coverage.name(),
        r.retained,
        r.truncated,
    );
    if let Some(v) = &r.violation {
        out.push_str(&format!(
            " vop={} vaddr={} got={} expected={} wop={} vkind={}",
            v.op,
            v.addr,
            v.got,
            v.expected,
            match v.write_op {
                Some(w) => w.to_string(),
                None => "none".to_string(),
            },
            v.kind.name(),
        ));
    }
    out
}

/// Render a bare `VERIFY` reply: the service-wide self-check summary.
pub fn render_verify_summary(s: &VerifySummary) -> String {
    format!(
        "OK sessions={} unchecked={} ops={} violations={} truncated={}",
        s.sessions, s.unchecked, s.ops, s.violations, s.truncated
    )
}

/// Render a `CLOSE` reply.
pub fn render_close(t: &TraceInfo) -> String {
    format!(
        "OK closed sid={} steps={} trace={:016x}",
        t.sid, t.steps, t.trace
    )
}

/// Render an `INFO` reply (latencies in microseconds): the merged header
/// line, then one `lines=`-announced payload line per shard so hot-shard
/// skew (sessions, steps, tail latency) is visible without scraping
/// `METRICS`.
pub fn render_info(info: &ServiceInfo) -> String {
    let mut out = format!(
        "OK shards={} sessions={} opened={} closed={} evicted={} steps={} \
         queue-max={} p50us={:.1} p99us={:.1} lines={}",
        info.shards,
        info.sessions,
        info.opened,
        info.closed,
        info.evicted,
        info.steps,
        info.queue_depth_max,
        info.latency.p50() as f64 / 1e3,
        info.latency.p99() as f64 / 1e3,
        info.per_shard.len(),
    );
    for m in &info.per_shard {
        out.push_str(&format!(
            "\nshard={} sessions={} steps={} queue={} p50us={:.1} p99us={:.1}",
            m.shard,
            m.sessions,
            m.steps,
            m.queue_depth,
            m.latency.p50() as f64 / 1e3,
            m.latency.p99() as f64 / 1e3,
        ));
    }
    out
}

/// Render a `METRICS` reply: `OK lines=<K>` then the exposition text.
pub fn render_metrics(text: &str) -> String {
    let body = text.trim_end_matches('\n');
    if body.is_empty() {
        return "OK lines=0".to_string();
    }
    format!("OK lines={}\n{}", body.lines().count(), body)
}

/// Render an `EVENTS` reply: `OK events=<N> lines=<N>` then one JSON
/// object per line.
pub fn render_events(events: &[cr_obs::Event]) -> String {
    let mut out = format!("OK events={} lines={}", events.len(), events.len());
    for e in events {
        out.push('\n');
        out.push_str(&e.to_json());
    }
    out
}

/// Render an error reply.
pub fn render_err(e: &ServeError) -> String {
    format!("ERR {e}")
}

/// Execute one parsed frame against any [`ServiceApi`] implementation;
/// `None` means QUIT. The TCP front end passes a [`crate::ServiceHandle`];
/// `cr-sim` passes its single-threaded simulated service — one executor,
/// one reply grammar, whatever is behind it.
pub fn execute<A: ServiceApi>(handle: &mut A, frame: Frame) -> Option<String> {
    let out = match frame {
        Frame::Open(spec) => handle.open(spec).map(|i| render_open(&i)),
        Frame::Step {
            sid,
            workload,
            count,
        } => handle.step(sid, workload, count).map(|s| render_step(&s)),
        Frame::Stats(sid) => handle.stats(sid).map(|s| render_stats(&s)),
        Frame::Trace(sid) => handle.trace(sid).map(|t| render_trace(&t)),
        Frame::Verify(Some(sid)) => handle.verify(sid).map(|v| render_verify(&v)),
        Frame::Verify(None) => handle.verify_all().map(|s| render_verify_summary(&s)),
        Frame::Close(sid) => handle.close(sid).map(|t| render_close(&t)),
        Frame::Info => handle.info().map(|i| render_info(&i)),
        Frame::Metrics => Ok(render_metrics(&handle.metrics_text())),
        Frame::Events(sid) => handle.events(sid).map(|evs| render_events(&evs)),
        Frame::Ping => Ok("OK pong".to_string()),
        Frame::Quit => return None,
    };
    Some(out.unwrap_or_else(|e| render_err(&e)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_with_options_round_trips() {
        let f = parse("OPEN 16 256 hp-dmmpc seed=9 faults=0.125 max-steps=100 ttl-ms=50").unwrap();
        match f {
            Frame::Open(spec) => {
                assert_eq!(spec.n, 16);
                assert_eq!(spec.m, 256);
                assert_eq!(spec.kind, SchemeKind::HpDmmpc);
                assert_eq!(spec.seed, 9);
                assert_eq!(spec.fault_fraction, 0.125);
                assert_eq!(spec.max_steps, 100);
                assert_eq!(spec.ttl, Duration::from_millis(50));
            }
            other => panic!("wrong frame: {other:?}"),
        }
    }

    #[test]
    fn step_variants() {
        assert_eq!(
            parse("STEP 3 uniform 10").unwrap(),
            Frame::Step {
                sid: 3,
                workload: WorkloadSpec::Uniform,
                count: 10
            }
        );
        assert_eq!(
            parse("step 3 hotspot").unwrap(),
            Frame::Step {
                sid: 3,
                workload: WorkloadSpec::Hotspot,
                count: 1
            }
        );
        assert_eq!(
            parse("STEP 7 raw r=1,2 w=3:9,4:-5").unwrap(),
            Frame::Step {
                sid: 7,
                workload: WorkloadSpec::Raw {
                    reads: vec![1, 2],
                    writes: vec![(3, 9), (4, -5)]
                },
                count: 1
            }
        );
    }

    #[test]
    fn stepn_variants() {
        assert_eq!(
            parse("STEPN 3 32").unwrap(),
            Frame::Step {
                sid: 3,
                workload: WorkloadSpec::Uniform,
                count: 32
            }
        );
        assert_eq!(
            parse("stepn 9 4 hotspot").unwrap(),
            Frame::Step {
                sid: 9,
                workload: WorkloadSpec::Hotspot,
                count: 4
            }
        );
        assert_eq!(
            parse("STEPN 1 1 stride").unwrap(),
            Frame::Step {
                sid: 1,
                workload: WorkloadSpec::Stride,
                count: 1
            }
        );
        for bad in [
            "STEPN",
            "STEPN 3",
            "STEPN 3 x",
            "STEPN 3 2 warp",
            "STEPN 3 2 raw",
            "STEPN 3 2 uniform extra",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn malformed_frames_are_errors_not_panics() {
        for bad in [
            "",
            "   ",
            "NOPE",
            "OPEN",
            "OPEN 4 x hp-dmmpc",
            "OPEN 4 64 not-a-scheme",
            "OPEN 4 64 hp-dmmpc bogus=1",
            "OPEN 4 64 hp-dmmpc faults=2.0",
            "STEP",
            "STEP abc uniform",
            "STEP 1 warp",
            "STEP 1 raw",
            "STEP 1 raw r=x",
            "STEP 1 raw w=5",
            "STATS",
            "TRACE plus",
            "CLOSE -2",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn simple_verbs() {
        assert_eq!(parse("INFO").unwrap(), Frame::Info);
        assert_eq!(parse("ping").unwrap(), Frame::Ping);
        assert_eq!(parse("QUIT").unwrap(), Frame::Quit);
        assert_eq!(parse("STATS 12").unwrap(), Frame::Stats(12));
        assert_eq!(parse("METRICS").unwrap(), Frame::Metrics);
        assert_eq!(parse("EVENTS").unwrap(), Frame::Events(None));
        assert_eq!(parse("events 42").unwrap(), Frame::Events(Some(42)));
        assert!(parse("EVENTS nope").is_err());
        assert_eq!(parse("VERIFY").unwrap(), Frame::Verify(None));
        assert_eq!(parse("verify 7").unwrap(), Frame::Verify(Some(7)));
        assert!(parse("VERIFY nope").is_err());
    }

    #[test]
    fn open_verify_mode_round_trips() {
        use cr_verify::VerifyMode;
        for (opt, want) in [
            ("off", VerifyMode::Off),
            ("ring", VerifyMode::Ring),
            ("full", VerifyMode::Full),
        ] {
            match parse(&format!("OPEN 8 64 hashed verify={opt}")).unwrap() {
                Frame::Open(spec) => assert_eq!(spec.verify, want),
                other => panic!("wrong frame: {other:?}"),
            }
        }
        // The default is ring: the service self-checks unless told not to.
        match parse("OPEN 8 64 hashed").unwrap() {
            Frame::Open(spec) => assert_eq!(spec.verify, VerifyMode::Ring),
            other => panic!("wrong frame: {other:?}"),
        }
        assert!(parse("OPEN 8 64 hashed verify=sometimes").is_err());
    }

    #[test]
    fn unknown_command_error_lists_every_verb() {
        let err = parse("NOPE").unwrap_err();
        for verb in [
            "OPEN", "STEP", "STEPN", "STATS", "TRACE", "VERIFY", "CLOSE", "INFO", "METRICS",
            "EVENTS", "PING", "QUIT",
        ] {
            assert!(err.contains(verb), "error omits {verb}: {err}");
        }
    }

    #[test]
    fn verify_replies_render_stably() {
        use cr_verify::{Coverage, VerifyMode, VerifyReport, Violation, ViolationKind};
        let clean = VerifyInfo {
            sid: 3,
            report: VerifyReport {
                mode: VerifyMode::Ring,
                ops: 640,
                reads: 420,
                writes: 220,
                excused: 2,
                retained: 640,
                truncated: 0,
                coverage: Coverage::Full,
                violation: None,
            },
        };
        assert_eq!(
            render_verify(&clean),
            "OK sid=3 verdict=consistent mode=ring ops=640 reads=420 writes=220 \
             excused=2 coverage=full retained=640 truncated=0"
        );
        let bad = VerifyInfo {
            sid: 9,
            report: VerifyReport {
                violation: Some(Violation {
                    op: 12,
                    tick: 0,
                    addr: 5,
                    got: 3,
                    expected: 9,
                    write_op: Some(4),
                    kind: ViolationKind::StaleValue,
                }),
                coverage: Coverage::Window,
                truncated: 64,
                retained: 576,
                ..clean.report
            },
        };
        assert_eq!(
            render_verify(&bad),
            "OK sid=9 verdict=violation mode=ring ops=640 reads=420 writes=220 \
             excused=2 coverage=window retained=576 truncated=64 \
             vop=12 vaddr=5 got=3 expected=9 wop=4 vkind=stale"
        );
        let sum = VerifySummary {
            sessions: 4,
            unchecked: 1,
            ops: 100,
            violations: 0,
            truncated: 7,
        };
        assert_eq!(
            render_verify_summary(&sum),
            "OK sessions=4 unchecked=1 ops=100 violations=0 truncated=7"
        );
    }

    #[test]
    fn multiline_replies_announce_their_payload() {
        let m = render_metrics("# HELP x y\n# TYPE x counter\nx 1\n");
        let mut lines = m.lines();
        assert_eq!(lines.next(), Some("OK lines=3"));
        assert_eq!(lines.count(), 3);
        assert_eq!(render_metrics(""), "OK lines=0");

        use cr_obs::{Event, EventKind};
        let evs = [Event {
            tick: 1,
            sid: 2,
            kind: EventKind::Evict,
            a: 3,
            b: 0,
            c: 0,
            d: 0,
        }];
        let r = render_events(&evs);
        let mut lines = r.lines();
        assert_eq!(lines.next(), Some("OK events=1 lines=1"));
        assert_eq!(
            lines.next(),
            Some("{\"tick\":1,\"sid\":2,\"kind\":\"evict\",\"steps\":3}")
        );
        assert_eq!(render_events(&[]), "OK events=0 lines=0");
    }
}
