//! `cr-serve` — the sharded P-RAM simulation service (DESIGN.md §8).
//!
//! The ROADMAP's north star is a system that serves heavy concurrent
//! traffic; this crate is the serving layer over the zero-alloc step
//! engine. It multiplexes thousands of live simulation **sessions** — each
//! a [`cr_core::Scheme`] built from a [`SessionSpec`], optionally
//! fault-wrapped via `cr-faults` — across N **shards** (one worker thread
//! plus one bounded `std::sync::mpsc` command queue each). Sessions are
//! hash-routed by id, carry budgets (a step ceiling and an idle TTL), and
//! expose their read/write **trace hash** as a first-class artifact: two
//! sessions with the same spec produce the same hash no matter how many
//! shards the service runs, so a client can verify a deployment
//! byte-for-byte (Wei et al., "Verifying PRAM Consistency over Read/Write
//! Traces of Data Replicas", motivates exactly this handle).
//!
//! Three entry points, one service:
//!
//! * [`Service`] / [`ServiceHandle`] — the in-process API (what tests and
//!   the E16 experiment use; no socket in the loop);
//! * [`tcp::Server`] — the newline-framed TCP front end
//!   (`repro serve`);
//! * [`protocol`] — the shared frame grammar (`OPEN`/`STEP`/`STEPN`/
//!   `STATS`/`TRACE`/`VERIFY`/`CLOSE`/`INFO`/`METRICS`/`EVENTS`), so the
//!   wire protocol and the in-process API cannot drift apart.
//!
//! Throughput comes from batching at every layer (DESIGN.md §11): `STEPN`
//! batches steps into one command, [`ServiceHandle::step_many`] pipelines
//! commands across shards before collecting replies, each shard worker
//! drains a burst of queued commands per wakeup, and the TCP loop batches
//! reply flushes while a client's pipelined window is still buffered.
//!
//! Observability (DESIGN.md §10) is built in: every shard records into
//! preregistered `cr-obs` counters/gauges/histograms (merged and rendered
//! as Prometheus text by `METRICS` / [`ServiceHandle::metrics_text`]) and
//! into a fixed-capacity ring of structured trace events stamped with
//! [`SimClock`] ticks (dumped as JSONL by `EVENTS` /
//! [`ServiceHandle::events`]). Under a manual clock both surfaces are
//! deterministic: same seed, same bytes, at any shard count.
//!
//! Verification (DESIGN.md §12) turns the trace from reproducible into
//! *self-checking*: every session records its read/write ops through
//! `cr-verify` (ring-buffered by default, `OPEN ... verify=off|ring|full`
//! to change) and an online PRAM-consistency checker validates them as
//! they happen; `VERIFY [sid]` reports the verdict, and the
//! `cr_verify_*` counters surface checked ops, violations, and ring
//! truncations through `METRICS`.
//!
//! ```
//! use cr_serve::{Service, ServiceConfig, SessionSpec, WorkloadSpec};
//! use cr_core::SchemeKind;
//!
//! let service = Service::start(ServiceConfig::with_shards(2)).expect("spawn shard workers");
//! let h = service.handle();
//! let s = h.open(SessionSpec::new(8, 64, SchemeKind::HpDmmpc).seed(7)).unwrap();
//! let sum = h.step(s.sid, WorkloadSpec::Uniform, 5).unwrap();
//! assert_eq!(sum.executed, 5);
//! let t = h.close(s.sid).unwrap();
//! assert_eq!(t.steps, 5);
//! service.shutdown();
//! ```

// Serving code must degrade, never panic: cr-lint bans unwrap/expect in
// the protocol/tcp/shard/service modules, and clippy backs it up across
// the whole crate (tests keep their unwraps — a failed test should panic).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod error;
pub mod protocol;
pub mod runtime;
pub mod service;
pub mod session;
pub mod shard;
pub mod tcp;

pub use cr_core::clock::{SimClock, Tick};
pub use cr_obs::{Event, EventKind, Registry, SharedHistogram};
pub use cr_verify::{Coverage, VerifyMode, VerifyReport, Violation, ViolationKind};
pub use error::ServeError;
pub use runtime::{chan, ChanRx, ChanTx, Runtime, TaskHandle, ThreadRuntime};
pub use service::{
    build_cores, BatchStepSummary, Service, ServiceApi, ServiceConfig, ServiceHandle, ServiceInfo,
    DEFAULT_SWEEP_EVERY,
};
pub use session::{
    Session, SessionSpec, SessionStats, StepSummary, WorkloadSpec, DEFAULT_MAX_STEPS, DEFAULT_TTL,
    MAX_SESSION_M, MAX_SESSION_N, MAX_STEP_BATCH,
};
pub use shard::{
    OpenInfo, Reply, ReplyTx, ShardCmd, ShardCore, ShardMetrics, TraceInfo, VerifyInfo,
    VerifySummary, DRAIN_BURST, EVENTS_CAPACITY, QUEUE_CAPACITY,
};
