//! In-process service tests: session lifecycle, budgets, idle-TTL
//! eviction, and the cross-shard determinism contract.

use cr_core::SchemeKind;
use cr_serve::{ServeError, Service, ServiceConfig, SessionSpec, SimClock, WorkloadSpec};
use std::time::Duration;

fn spec() -> SessionSpec {
    SessionSpec::new(8, 64, SchemeKind::HpDmmpc).seed(42)
}

#[test]
fn open_step_stats_trace_close() {
    let service = Service::start(ServiceConfig::with_shards(2)).expect("spawn shard workers");
    let h = service.handle();
    let open = h.open(spec()).unwrap();
    assert_eq!(open.scheme, "hp-dmmpc");
    assert!(open.redundancy >= 1.0);
    assert!(open.shard < 2);

    let sum = h.step(open.sid, WorkloadSpec::Uniform, 10).unwrap();
    assert_eq!(sum.executed, 10);
    assert_eq!(sum.total_steps, 10);
    assert!(sum.phases > 0);
    assert!(!sum.exhausted);

    let st = h.stats(open.sid).unwrap();
    assert_eq!(st.steps, 10);
    assert!(st.requests > 0);
    assert_eq!(st.trace, h.trace(open.sid).unwrap().trace);

    let closed = h.close(open.sid).unwrap();
    assert_eq!(closed.steps, 10);

    // Everything after close is unknown-session.
    assert!(matches!(
        h.step(open.sid, WorkloadSpec::Uniform, 1),
        Err(ServeError::UnknownSession(_))
    ));
    assert!(matches!(
        h.stats(open.sid),
        Err(ServeError::UnknownSession(_))
    ));
    service.shutdown();
}

#[test]
fn unknown_session_and_bad_build_are_errors() {
    let service = Service::start(ServiceConfig::with_shards(1)).expect("spawn shard workers");
    let h = service.handle();
    assert!(matches!(h.stats(999), Err(ServeError::UnknownSession(999))));
    // Empty machine is a BuildError surfaced through the service.
    let err = h
        .open(SessionSpec::new(0, 64, SchemeKind::HpDmmpc))
        .unwrap_err();
    assert!(matches!(err, ServeError::Build(_)), "{err}");
    service.shutdown();
}

#[test]
fn budget_exhaustion_is_graceful() {
    let service = Service::start(ServiceConfig::with_shards(1)).expect("spawn shard workers");
    let h = service.handle();
    let open = h.open(spec().max_steps(7)).unwrap();
    let sum = h.step(open.sid, WorkloadSpec::Uniform, 100).unwrap();
    assert_eq!(sum.executed, 7);
    assert!(sum.exhausted);
    let err = h.step(open.sid, WorkloadSpec::Uniform, 1).unwrap_err();
    assert!(
        matches!(err, ServeError::BudgetExhausted { sid, max_steps: 7 } if sid == open.sid),
        "{err}"
    );
    // The session is still inspectable and closable.
    assert_eq!(h.stats(open.sid).unwrap().budget_left, 0);
    assert_eq!(h.close(open.sid).unwrap().steps, 7);
    service.shutdown();
}

#[test]
fn idle_ttl_evicts_but_touch_keeps_alive() {
    let service = Service::start(ServiceConfig::with_shards(1)).expect("spawn shard workers");
    let h = service.handle();
    let doomed = h.open(spec().ttl(Duration::from_millis(40))).unwrap();
    let kept = h.open(spec().ttl(Duration::from_millis(400))).unwrap();
    // Touch the long-TTL session while the short one idles past its TTL
    // (sweeps run every 20ms).
    for _ in 0..6 {
        std::thread::sleep(Duration::from_millis(25));
        h.step(kept.sid, WorkloadSpec::Uniform, 1).unwrap();
    }
    assert!(matches!(
        h.stats(doomed.sid),
        Err(ServeError::UnknownSession(_))
    ));
    assert_eq!(h.stats(kept.sid).unwrap().steps, 6);
    let info = h.info().unwrap();
    assert_eq!(info.evicted, 1);
    assert_eq!(info.sessions, 1);
    service.shutdown();
}

/// The clock seam's payoff: eviction driven by a virtual clock. No
/// session ever *idles* in real time — one `advance` call ages it past
/// its TTL, so the test is immune to scheduler stalls and CI jitter.
#[test]
fn idle_ttl_evicts_on_virtual_clock() {
    let clock = SimClock::manual();
    let cfg = ServiceConfig {
        shards: 1,
        clock: clock.clone(),
        ..Default::default()
    };
    let service = Service::start(cfg).expect("spawn shard workers");
    let h = service.handle();
    let doomed = h.open(spec().ttl(Duration::from_millis(100))).unwrap();
    let kept = h.open(spec().ttl(Duration::from_secs(3600))).unwrap();
    h.step(doomed.sid, WorkloadSpec::Uniform, 1).unwrap();

    // Ten virtual seconds pass in an instant; only the sweep's polling
    // cadence (20ms real) stands between us and the eviction.
    assert!(clock.advance(Duration::from_secs(10)), "manual clock");
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        // info() reads counters without touching sessions, so polling it
        // cannot accidentally refresh the doomed session's TTL.
        let info = h.info().unwrap();
        if info.evicted == 1 {
            assert_eq!(info.sessions, 1);
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "sweeper never evicted the idle session"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(matches!(
        h.stats(doomed.sid),
        Err(ServeError::UnknownSession(_))
    ));
    // The survivor's huge TTL outlived the jump; it still answers.
    assert_eq!(h.stats(kept.sid).unwrap().steps, 0);
    service.shutdown();
}

/// The serving contract the trace hash exists for: a session's trace
/// depends only on its spec and step count — never on shard count,
/// session-id interleaving, or what else the service is doing.
#[test]
fn cross_shard_determinism_same_seed_same_trace() {
    let mut traces = Vec::new();
    for shards in [1usize, 2, 4] {
        let service =
            Service::start(ServiceConfig::with_shards(shards)).expect("spawn shard workers");
        let h = service.handle();
        // Noise sessions with different seeds, interleaved before/around
        // the probed one so ids and placement differ per shard count.
        let noise1 = h.open(spec().seed(1)).unwrap();
        let probe = h.open(spec().seed(777)).unwrap();
        let noise2 = h.open(spec().seed(2)).unwrap();
        h.step(noise1.sid, WorkloadSpec::Uniform, 3).unwrap();
        h.step(probe.sid, WorkloadSpec::Uniform, 4).unwrap();
        h.step(noise2.sid, WorkloadSpec::Hotspot, 2).unwrap();
        h.step(probe.sid, WorkloadSpec::Uniform, 8).unwrap();
        let t = h.close(probe.sid).unwrap();
        assert_eq!(t.steps, 12);
        traces.push(t.trace);
        service.shutdown();
    }
    assert_eq!(traces[0], traces[1], "1 vs 2 shards");
    assert_eq!(traces[0], traces[2], "1 vs 4 shards");
}

/// Batched stepping is an optimization, not a semantic: the same spec
/// driven by `step_many` or by one `step` call per session produces
/// bit-identical traces and identical aggregate counters.
#[test]
fn step_many_matches_per_session_steps() {
    let mut traces: Vec<Vec<u64>> = Vec::new();
    let mut cycles = Vec::new();
    for batched in [false, true] {
        let service = Service::start(ServiceConfig::with_shards(2)).expect("spawn shard workers");
        let h = service.handle();
        let sids: Vec<u64> = (0..12)
            .map(|i| h.open(spec().seed(1000 + i)).unwrap().sid)
            .collect();
        if batched {
            let sum = h.step_many(&sids, &WorkloadSpec::Uniform, 5).unwrap();
            assert_eq!(sum.commands, 12);
            assert_eq!(sum.errors, 0);
            assert_eq!(sum.executed, 60);
            assert_eq!(sum.exhausted, 0);
            assert_eq!(
                sum.stage1_cycles + sum.stage2_cycles,
                sum.cycles,
                "stage split covers the batch"
            );
            cycles.push(sum.cycles);
        } else {
            let mut total = 0;
            for &sid in &sids {
                total += h.step(sid, WorkloadSpec::Uniform, 5).unwrap().cycles;
            }
            cycles.push(total);
        }
        traces.push(sids.iter().map(|&s| h.close(s).unwrap().trace).collect());
        let info = h.info().unwrap();
        assert_eq!(info.steps, 60);
        assert_eq!(info.latency.count(), 60, "one sample per step either way");
        service.shutdown();
    }
    assert_eq!(traces[0], traces[1], "batching must not change any trace");
    assert_eq!(cycles[0], cycles[1]);
}

/// One dead session in a batch is tallied, not fatal — and does not
/// disturb the live sessions' progress.
#[test]
fn step_many_counts_errors_without_masking_the_batch() {
    let service = Service::start(ServiceConfig::with_shards(2)).expect("spawn shard workers");
    let h = service.handle();
    let live = h.open(spec()).unwrap().sid;
    let spent = h.open(spec().max_steps(2)).unwrap().sid;
    let dead = h.open(spec()).unwrap().sid;
    h.close(dead).unwrap();

    let sum = h
        .step_many(&[live, spent, dead], &WorkloadSpec::Uniform, 10)
        .unwrap();
    assert_eq!(sum.commands, 2, "live + mid-batch-exhausted");
    assert_eq!(sum.errors, 1, "the closed session");
    assert_eq!(sum.executed, 12, "10 live + 2 before exhaustion");
    assert_eq!(sum.exhausted, 1);

    // A second batch: the spent session now errors outright.
    let sum = h
        .step_many(&[live, spent], &WorkloadSpec::Uniform, 1)
        .unwrap();
    assert_eq!(sum.commands, 1);
    assert_eq!(sum.errors, 1);
    assert_eq!(h.stats(live).unwrap().steps, 11);
    service.shutdown();
}

#[test]
fn info_merges_shard_metrics() {
    let service = Service::start(ServiceConfig::with_shards(4)).expect("spawn shard workers");
    let h = service.handle();
    let mut sids = Vec::new();
    for i in 0..32 {
        sids.push(h.open(spec().seed(i)).unwrap().sid);
    }
    for &sid in &sids {
        h.step(sid, WorkloadSpec::Uniform, 2).unwrap();
    }
    let info = h.info().unwrap();
    assert_eq!(info.shards, 4);
    assert_eq!(info.sessions, 32);
    assert_eq!(info.opened, 32);
    assert_eq!(info.steps, 64);
    assert_eq!(info.latency.count(), 64, "one latency sample per step");
    assert!(info.latency.p99() >= info.latency.p50());
    // Hash routing actually spreads sessions across shards.
    let occupied = info.per_shard.iter().filter(|s| s.sessions > 0).count();
    assert!(occupied >= 3, "32 sessions must land on >= 3 of 4 shards");
    service.shutdown();
}

/// The observability analogue of the trace-hash contract: under a manual
/// clock, the merged `EVENTS` stream is byte-identical run over run and
/// shard-count-invariant, and the aggregate (unlabeled) `METRICS` lines
/// agree at any shard count.
#[test]
fn events_and_metrics_are_deterministic_across_shard_counts() {
    let mut streams: Vec<String> = Vec::new();
    let mut aggregates: Vec<Vec<String>> = Vec::new();
    for shards in [1usize, 4] {
        let clock = SimClock::manual();
        let cfg = ServiceConfig {
            shards,
            clock: clock.clone(),
            ..Default::default()
        };
        let service = Service::start(cfg).expect("spawn shard workers");
        let h = service.handle();
        let a = h.open(spec().seed(1)).unwrap();
        let b = h.open(spec().seed(777)).unwrap();
        h.step(a.sid, WorkloadSpec::Uniform, 3).unwrap();
        assert!(clock.advance(Duration::from_millis(10)), "manual clock");
        h.step(b.sid, WorkloadSpec::Hotspot, 4).unwrap();
        h.step(a.sid, WorkloadSpec::Uniform, 2).unwrap();
        h.close(b.sid).unwrap();
        h.close(a.sid).unwrap();

        let jsonl: String = h
            .events(None)
            .unwrap()
            .iter()
            .map(|e| e.to_json() + "\n")
            .collect();
        streams.push(jsonl);
        // Per-shard labeled lines legitimately differ with the shard
        // count; the aggregate samples must not.
        aggregates.push(
            h.metrics_text()
                .lines()
                .filter(|l| !l.starts_with('#') && !l.contains("{shard="))
                .map(String::from)
                .collect(),
        );
        service.shutdown();
    }
    assert_eq!(
        streams[0], streams[1],
        "merged event stream must be shard-count-invariant"
    );
    for kind in [
        "\"kind\":\"open\"",
        "\"kind\":\"step\"",
        "\"kind\":\"close\"",
    ] {
        assert!(
            streams[0].contains(kind),
            "missing {kind} in {}",
            streams[0]
        );
    }
    assert!(
        streams[0].contains("\"tick\":10000000"),
        "events after the advance carry the virtual tick: {}",
        streams[0]
    );
    assert_eq!(
        aggregates[0], aggregates[1],
        "aggregate METRICS lines must be shard-count-invariant"
    );
}

#[test]
fn per_session_events_are_filtered_and_ordered() {
    let clock = SimClock::manual();
    let cfg = ServiceConfig {
        shards: 2,
        clock,
        ..Default::default()
    };
    let service = Service::start(cfg).expect("spawn shard workers");
    let h = service.handle();
    let noise = h.open(spec().seed(5)).unwrap();
    let probe = h.open(spec().seed(6)).unwrap();
    h.step(noise.sid, WorkloadSpec::Uniform, 1).unwrap();
    h.step(probe.sid, WorkloadSpec::Uniform, 2).unwrap();
    h.close(probe.sid).unwrap();

    let evs = h.events(Some(probe.sid)).unwrap();
    assert!(evs.iter().all(|e| e.sid == probe.sid));
    let kinds: Vec<&str> = evs.iter().map(|e| e.kind.name()).collect();
    assert_eq!(kinds, vec!["open", "step", "close"]);
    // The step event's payload is (executed, s1cyc, s2cyc, messages).
    let step = &evs[1];
    assert_eq!(step.a, 2);
    assert!(step.b + step.c > 0, "cycles attributed to some stage");
    service.shutdown();
}

#[test]
fn metrics_exposition_matches_info_counters() {
    let service = Service::start(ServiceConfig::with_shards(2)).expect("spawn shard workers");
    let h = service.handle();
    let open = h.open(spec()).unwrap();
    let sum = h.step(open.sid, WorkloadSpec::Uniform, 5).unwrap();
    let info = h.info().unwrap();
    let text = h.metrics_text();

    // Exposition is well-formed: every line is a comment or name+value.
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "{line}"
            );
        } else {
            let (_, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "{line}");
        }
    }
    // The registry and INFO read the same cells.
    assert!(text.contains(&format!("\ncr_steps_total {}\n", info.steps)));
    assert!(text.contains("\ncr_sessions_live 1\n"));
    assert_eq!(
        h.registry().total("cr_steps_total"),
        Some(info.steps),
        "typed read side agrees"
    );
    let lat = h.registry().histogram("cr_step_latency_ns").unwrap();
    assert_eq!(lat.count(), info.latency.count());
    // Stage attribution accounts for every cycle the command reported.
    let s1 = h.registry().total("cr_stage1_cycles_total").unwrap();
    let s2 = h.registry().total("cr_stage2_cycles_total").unwrap();
    assert_eq!(s1, sum.stage1_cycles);
    assert_eq!(s1 + s2, sum.cycles, "stage split covers all cycles");
    assert!(s1 > 0, "stage 1 does real work on hp-dmmpc");
    service.shutdown();
}

#[test]
fn faulty_sessions_serve_and_survive() {
    let service = Service::start(ServiceConfig::with_shards(2)).expect("spawn shard workers");
    let h = service.handle();
    let open = h
        .open(SessionSpec::new(16, 256, SchemeKind::HpDmmpc).faults(0.125))
        .unwrap();
    let sum = h.step(open.sid, WorkloadSpec::Uniform, 5).unwrap();
    assert_eq!(sum.executed, 5);
    // A raw write/read round trip still returns the written value under
    // a 12.5% module loss (that is what constant redundancy buys).
    h.step(
        open.sid,
        WorkloadSpec::Raw {
            reads: vec![],
            writes: vec![(9, 1234)],
        },
        1,
    )
    .unwrap();
    h.step(
        open.sid,
        WorkloadSpec::Raw {
            reads: vec![9],
            writes: vec![],
        },
        1,
    )
    .unwrap();
    service.shutdown();
}

#[test]
fn handles_are_usable_from_many_threads() {
    let service = Service::start(ServiceConfig::with_shards(4)).expect("spawn shard workers");
    let h = service.handle();
    let total: u64 = std::thread::scope(|scope| {
        (0..8u64)
            .map(|t| {
                let h = h.clone();
                scope.spawn(move || {
                    let mut steps = 0;
                    for i in 0..8 {
                        let open = h.open(spec().seed(t * 100 + i)).unwrap();
                        steps += h.step(open.sid, WorkloadSpec::Uniform, 3).unwrap().executed;
                        h.close(open.sid).unwrap();
                    }
                    steps
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .sum()
    });
    assert_eq!(total, 8 * 8 * 3);
    let info = service.handle().info().unwrap();
    assert_eq!(info.opened, 64);
    assert_eq!(info.closed, 64);
    assert_eq!(info.sessions, 0);
    service.shutdown();
}
