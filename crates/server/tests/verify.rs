//! Service-level verification tests: the `VERIFY` surface, its metrics
//! accounting, and the cross-shard determinism of verdicts.

use cr_core::SchemeKind;
use cr_serve::protocol::render_verify;
use cr_serve::{Service, ServiceConfig, SessionSpec, SimClock, VerifyMode, WorkloadSpec};

fn manual_service(shards: usize) -> Service {
    let cfg = ServiceConfig {
        shards,
        clock: SimClock::manual(),
        ..Default::default()
    };
    Service::start(cfg).expect("spawn shard workers")
}

fn spec(seed: u64) -> SessionSpec {
    SessionSpec::new(8, 64, SchemeKind::HpDmmpc).seed(seed)
}

/// Drive `sessions` specs through a `shards`-shard service and render
/// every session's `VERIFY` reply, in sid order.
fn verify_lines(shards: usize, sessions: u64) -> Vec<String> {
    let service = manual_service(shards);
    let h = service.handle();
    let sids: Vec<u64> = (0..sessions)
        .map(|i| h.open(spec(7 ^ i)).unwrap().sid)
        .collect();
    for (i, &sid) in sids.iter().enumerate() {
        // Distinct step counts per session: replies must differ per sid
        // but agree across shard counts.
        h.step(sid, WorkloadSpec::Uniform, 10 + i as u64).unwrap();
    }
    let lines = sids
        .iter()
        .map(|&sid| render_verify(&h.verify(sid).unwrap()))
        .collect();
    service.shutdown();
    lines
}

#[test]
fn verify_replies_are_byte_identical_across_shard_counts() {
    let one = verify_lines(1, 6);
    let four = verify_lines(4, 6);
    assert_eq!(one, four, "VERIFY must not depend on the shard count");
    for line in &one {
        assert!(line.contains("verdict=consistent"), "{line}");
    }
}

#[test]
fn verify_summary_and_counters_account_exactly() {
    let service = manual_service(2);
    let h = service.handle();
    let a = h.open(spec(1)).unwrap().sid;
    let b = h.open(spec(2).verify(VerifyMode::Off)).unwrap().sid;
    // n = 8 ops per uniform step; 130 steps wraps a's 1024-op ring by
    // exactly 16 records. Session b records nothing.
    h.step(a, WorkloadSpec::Uniform, 130).unwrap();
    h.step(b, WorkloadSpec::Uniform, 130).unwrap();

    let sum = h.verify_all().unwrap();
    assert_eq!(sum.sessions, 2);
    assert_eq!(sum.unchecked, 1);
    assert_eq!(sum.ops, 1040);
    assert_eq!(sum.violations, 0);
    assert_eq!(sum.truncated, 16);

    // The preregistered counters agree with the per-session reports.
    let reg = h.registry();
    assert_eq!(reg.total("cr_verify_checked_ops_total"), Some(1040));
    assert_eq!(reg.total("cr_verify_ring_truncations_total"), Some(16));
    assert_eq!(reg.total("cr_verify_violations_total"), Some(0));
    // Three VERIFY commands so far: one per shard for the summary, and
    // the per-sid form counts too.
    let verify_info = h.verify(a).unwrap();
    assert_eq!(verify_info.report.truncated, 16);
    assert_eq!(verify_info.report.coverage, cr_serve::Coverage::Window);
    assert_eq!(reg.total("cr_verify_cycles_total"), Some(3));
    service.shutdown();
}

#[test]
fn fault_injected_sessions_verify_clean_service_wide() {
    let service = manual_service(2);
    let h = service.handle();
    for kind in SchemeKind::ALL {
        let spec = SessionSpec::new(8, 64, kind).seed(5).faults(0.125);
        let open = h.open(spec).unwrap();
        h.step(open.sid, WorkloadSpec::Uniform, 32).unwrap();
    }
    let sum = h.verify_all().unwrap();
    assert_eq!(sum.sessions, 6);
    assert_eq!(sum.violations, 0, "masked faults must verify clean");
    assert!(sum.ops > 0);
    service.shutdown();
}

#[test]
fn verify_events_land_in_the_ring() {
    let service = manual_service(1);
    let h = service.handle();
    let sid = h.open(spec(3)).unwrap().sid;
    h.step(sid, WorkloadSpec::Uniform, 4).unwrap();
    h.verify(sid).unwrap();
    let events = h.events(Some(sid)).unwrap();
    let verify_evs: Vec<_> = events
        .iter()
        .filter(|e| e.kind == cr_serve::EventKind::Verify)
        .collect();
    assert_eq!(verify_evs.len(), 1);
    assert_eq!(verify_evs[0].a, 32, "ops checked");
    assert_eq!(verify_evs[0].b, 0, "not violated");
    assert!(verify_evs[0].to_json().contains("\"kind\":\"verify\""));
    service.shutdown();
}
