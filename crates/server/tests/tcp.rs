//! TCP front-end tests: the full frame grammar over a real socket,
//! malformed-frame robustness, and multi-connection isolation.

use cr_serve::tcp::Server;
use cr_serve::{Service, ServiceConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        Client {
            reader: BufReader::new(stream.try_clone().unwrap()),
            writer: stream,
        }
    }

    fn roundtrip(&mut self, line: &str) -> String {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .unwrap();
        let mut reply = String::new();
        self.reader.read_line(&mut reply).unwrap();
        reply.trim_end().to_string()
    }

    /// Round-trip a command whose reply header announces `lines=K`
    /// payload lines (INFO, METRICS, EVENTS); returns (header, payload).
    fn roundtrip_multi(&mut self, line: &str) -> (String, Vec<String>) {
        let header = self.roundtrip(line);
        let count: usize = field(&header, "lines").parse().expect("lines= count");
        let payload = (0..count)
            .map(|_| {
                let mut l = String::new();
                self.reader.read_line(&mut l).unwrap();
                l.trim_end().to_string()
            })
            .collect();
        (header, payload)
    }
}

fn boot(shards: usize) -> (Service, Server) {
    let service = Service::start(ServiceConfig::with_shards(shards)).expect("spawn shard workers");
    let server = Server::bind("127.0.0.1:0", service.handle()).expect("bind ephemeral port");
    (service, server)
}

fn field<'a>(reply: &'a str, key: &str) -> &'a str {
    reply
        .split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")[..]))
        .unwrap_or_else(|| panic!("no {key}= in: {reply}"))
}

#[test]
fn full_session_lifecycle_over_tcp() {
    let (service, server) = boot(2);
    let mut c = Client::connect(server.local_addr());

    assert_eq!(c.roundtrip("PING"), "OK pong");

    let open = c.roundtrip("OPEN 8 64 hp-dmmpc seed=42");
    assert!(open.starts_with("OK "), "{open}");
    let sid = field(&open, "sid").to_string();
    assert_eq!(field(&open, "scheme"), "hp-dmmpc");

    let step = c.roundtrip(&format!("STEP {sid} uniform 10"));
    assert_eq!(field(&step, "executed"), "10");

    let raw = c.roundtrip(&format!("STEP {sid} raw w=5:77"));
    assert_eq!(field(&raw, "executed"), "1");
    c.roundtrip(&format!("STEP {sid} raw r=5"));

    let stats = c.roundtrip(&format!("STATS {sid}"));
    assert_eq!(field(&stats, "steps"), "12");

    let trace = c.roundtrip(&format!("TRACE {sid}"));
    let hash = field(&trace, "trace").to_string();
    assert_eq!(hash.len(), 16, "16 hex digits: {trace}");

    let (info, shards) = c.roundtrip_multi("INFO");
    assert_eq!(field(&info, "sessions"), "1");
    assert_eq!(field(&info, "steps"), "12");
    assert_eq!(shards.len(), 2, "one payload line per shard");
    for line in &shards {
        assert!(line.starts_with("shard="), "{line}");
        assert!(line.contains("p99us="), "{line}");
    }

    let (metrics, families) = c.roundtrip_multi("METRICS");
    assert!(metrics.starts_with("OK lines="), "{metrics}");
    assert!(
        families.iter().any(|l| l == "cr_steps_total 12"),
        "{families:?}"
    );

    let (events, lines) = c.roundtrip_multi(&format!("EVENTS {sid}"));
    assert!(field(&events, "events").parse::<usize>().unwrap() >= 4);
    assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));

    let close = c.roundtrip(&format!("CLOSE {sid}"));
    assert!(close.starts_with("OK closed"), "{close}");
    assert_eq!(field(&close, "trace"), hash);

    assert_eq!(c.roundtrip("QUIT"), "OK bye");

    server.shutdown();
    service.shutdown();
}

#[test]
fn malformed_frames_get_err_replies_and_leave_the_connection_up() {
    let (service, server) = boot(1);
    let mut c = Client::connect(server.local_addr());
    for bad in [
        "GARBAGE",
        "OPEN",
        "OPEN 8 64 no-such-scheme",
        "OPEN 8 64 hp-dmmpc wat=1",
        "STEP 1 warp",
        "STEP notanumber uniform",
        "STATS",
        "CLOSE x",
        "STEP 424242 uniform", // well-formed but unknown session
    ] {
        let reply = c.roundtrip(bad);
        assert!(reply.starts_with("ERR "), "{bad:?} -> {reply}");
    }
    // The connection survived all of it.
    assert_eq!(c.roundtrip("PING"), "OK pong");
    let open = c.roundtrip("OPEN 8 64 hashed");
    assert!(open.starts_with("OK "), "{open}");
    // Out-of-contract raw batches are rejected per-command, session intact.
    let sid = field(&open, "sid").to_string();
    let oob = c.roundtrip(&format!("STEP {sid} raw r=9999"));
    assert!(oob.starts_with("ERR "), "{oob}");
    let ok = c.roundtrip(&format!("STEP {sid} uniform"));
    assert!(ok.starts_with("OK "), "{ok}");
    server.shutdown();
    service.shutdown();
}

#[test]
fn oversized_frame_is_rejected_without_panic() {
    let (service, server) = boot(1);
    let mut c = Client::connect(server.local_addr());
    // A 100 KiB line exceeds the 64 KiB frame cap.
    let huge = format!("STEP 1 raw r={}\n", "9,".repeat(50_000));
    c.writer.write_all(huge.as_bytes()).unwrap();
    let mut reply = String::new();
    c.reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("ERR frame exceeds"), "{reply}");
    // The server as a whole is still alive for new connections.
    let mut c2 = Client::connect(server.local_addr());
    assert_eq!(c2.roundtrip("PING"), "OK pong");
    server.shutdown();
    service.shutdown();
}

#[test]
fn invalid_utf8_frame_gets_err_and_leaves_the_connection_up() {
    let (service, server) = boot(1);
    let mut c = Client::connect(server.local_addr());
    // Raw 0xFF bytes are not UTF-8; the lossy decode must yield an ERR
    // reply (unknown command), never a panic or a dropped connection.
    c.writer.write_all(b"\xff\xfe OPEN\n").unwrap();
    let mut reply = String::new();
    c.reader.read_line(&mut reply).unwrap();
    assert!(reply.starts_with("ERR "), "{reply}");
    assert_eq!(c.roundtrip("PING"), "OK pong");
    server.shutdown();
    service.shutdown();
}

#[test]
fn sessions_are_shared_across_connections() {
    let (service, server) = boot(2);
    let mut a = Client::connect(server.local_addr());
    let mut b = Client::connect(server.local_addr());
    let open = a.roundtrip("OPEN 8 64 hp-dmmpc seed=5");
    let sid = field(&open, "sid").to_string();
    // A different connection can step the same session: ids are
    // service-global, not per-connection.
    let step = b.roundtrip(&format!("STEP {sid} uniform 4"));
    assert_eq!(field(&step, "executed"), "4");
    let stats = a.roundtrip(&format!("STATS {sid}"));
    assert_eq!(field(&stats, "steps"), "4");
    server.shutdown();
    service.shutdown();
}

/// Pipelining: a window of STEPN frames sent in one write gets one
/// in-order reply line per frame, and the resulting trace is identical
/// to the same steps driven ping-pong — the socket discipline is pure
/// transport.
#[test]
fn pipelined_stepn_window_replies_in_order() {
    let (service, server) = boot(2);
    let mut c = Client::connect(server.local_addr());
    let mut sids = Vec::new();
    for seed in 0..4 {
        let open = c.roundtrip(&format!("OPEN 8 64 hp-dmmpc seed={}", 300 + seed));
        sids.push(field(&open, "sid").to_string());
    }
    // Two rounds of STEPN across all sessions, written as one burst.
    let mut window = String::new();
    for _ in 0..2 {
        for sid in &sids {
            window.push_str(&format!("STEPN {sid} 8\n"));
        }
    }
    c.writer.write_all(window.as_bytes()).unwrap();
    for i in 0..8 {
        let mut reply = String::new();
        c.reader.read_line(&mut reply).unwrap();
        assert_eq!(field(reply.trim_end(), "executed"), "8", "reply {i}");
    }
    let tcp_trace = field(&c.roundtrip(&format!("TRACE {}", sids[0])), "trace").to_string();
    server.shutdown();
    service.shutdown();

    // The same 16 steps ping-pong, in process.
    let service = Service::start(ServiceConfig::with_shards(1)).expect("spawn shard workers");
    let h = service.handle();
    let open = h
        .open(cr_serve::SessionSpec::new(8, 64, cr_core::SchemeKind::HpDmmpc).seed(300))
        .unwrap();
    for _ in 0..16 {
        h.step(open.sid, cr_serve::WorkloadSpec::Uniform, 1)
            .unwrap();
    }
    let direct = h.trace(open.sid).unwrap().trace;
    service.shutdown();
    assert_eq!(tcp_trace, format!("{direct:016x}"));
}

#[test]
fn tcp_trace_matches_in_process_trace() {
    // The socket must be a pure transport: the trace of (seed, steps) is
    // identical whether driven over TCP or through the handle.
    let (service, server) = boot(3);
    let mut c = Client::connect(server.local_addr());
    let open = c.roundtrip("OPEN 8 64 hp-dmmpc seed=99");
    let sid = field(&open, "sid").to_string();
    c.roundtrip(&format!("STEP {sid} uniform 6"));
    let tcp_trace = field(&c.roundtrip(&format!("TRACE {sid}")), "trace").to_string();
    server.shutdown();
    service.shutdown();

    let service = Service::start(ServiceConfig::with_shards(1)).expect("spawn shard workers");
    let h = service.handle();
    let open = h
        .open(cr_serve::SessionSpec::new(8, 64, cr_core::SchemeKind::HpDmmpc).seed(99))
        .unwrap();
    h.step(open.sid, cr_serve::WorkloadSpec::Uniform, 6)
        .unwrap();
    let direct = h.trace(open.sid).unwrap().trace;
    service.shutdown();

    assert_eq!(tcp_trace, format!("{direct:016x}"));
}
