//! Deterministic hashing for data-plane maps.
//!
//! `std`'s default `RandomState` seeds itself from process entropy, so a
//! `HashMap`'s iteration order differs run to run — exactly the ambient
//! randomness this workspace bans (`cr-lint`'s `default-hasher` rule).
//! [`DetHashMap`]/[`DetHashSet`] swap in FNV-1a, the same function the
//! trace hashes use: replaying an insertion sequence rebuilds an
//! identical table, so hashing and iteration are bit-reproducible on
//! every run and every platform.
//!
//! FNV is also *faster* than SipHash for the short integer keys the data
//! plane actually uses (decode-set bitmasks, module ids). It is not
//! collision-resistant against adversarial keys — fine here, where every
//! key is produced by the simulation itself.

use std::collections::{HashMap, HashSet}; // lint: allow(default-hasher, aliased below onto the FNV hasher)
use std::hash::{BuildHasherDefault, Hasher};

/// FNV-1a, 64-bit: the streaming [`Hasher`] twin of [`crate::fnv1a`].
#[derive(Debug, Clone)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64(crate::FNV_OFFSET)
    }
}

impl Hasher for Fnv64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

/// The deterministic `BuildHasher` (zero-sized, `Default`-constructed —
/// no per-map seed, so two maps with equal contents are bit-identical).
pub type FnvBuildHasher = BuildHasherDefault<Fnv64>;

/// `HashMap` with run-to-run deterministic hashing and iteration.
pub type DetHashMap<K, V> = HashMap<K, V, FnvBuildHasher>;

/// `HashSet` with run-to-run deterministic hashing and iteration.
pub type DetHashSet<T> = HashSet<T, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn fnv_matches_the_trace_hash() {
        // The streaming Hasher over a u64's little-endian bytes must
        // agree with the one-shot fnv1a accumulator — one definition of
        // the workspace hash, two call shapes.
        let v = 0x0123_4567_89AB_CDEFu64;
        let mut h = Fnv64::default();
        h.write(&v.to_le_bytes());
        let mut acc = crate::FNV_OFFSET;
        crate::fnv1a(&mut acc, v);
        assert_eq!(h.finish(), acc);
    }

    #[test]
    fn iteration_order_is_a_pure_function_of_insertion_sequence() {
        let build = |keys: &[u64]| -> Vec<u64> {
            let mut m = DetHashMap::default();
            for &k in keys {
                m.insert(k, ());
            }
            m.keys().copied().collect()
        };
        // Replaying the same insertion sequence rebuilds the same table,
        // so iteration order is identical — across maps, runs, and
        // processes. (RandomState cannot promise this even within one
        // process: every map draws a fresh seed.)
        let keys = [9u64, 1, 5, 1 << 40, 7];
        assert_eq!(build(&keys), build(&keys));
        let mut sorted = build(&keys);
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 5, 7, 9, 1 << 40]);
    }

    #[test]
    fn hasher_is_stateless_across_instances() {
        let h1 = FnvBuildHasher::default();
        let h2 = FnvBuildHasher::default();
        for x in [0u128, 1, u128::MAX, 0xDEAD_BEEF] {
            assert_eq!(h1.hash_one(x), h2.hash_one(x));
        }
    }
}
