//! SplitMix64 (Steele, Lea & Flood / Vigna reference implementation).

use crate::Rng;

/// SplitMix64: a 64-bit generator with a single word of state.
///
/// Used to expand a `u64` seed into the larger state of
/// [`crate::Xoshiro256pp`], and directly wherever a tiny, allocation-free
/// stream is convenient.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Advance and return the next output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl Rng for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_fine() {
        let mut sm = SplitMix64::new(0);
        let a = sm.next_u64();
        let b = sm.next_u64();
        assert_ne!(a, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn reference_vector_seed_0() {
        // First outputs of splitmix64 with seed 0, from the reference C code.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220A8397B1DCDAF);
        assert_eq!(sm.next_u64(), 0x6E789E6AA1B965F4);
        assert_eq!(sm.next_u64(), 0x06C45D188009454F);
    }
}
