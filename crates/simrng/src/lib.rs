//! Deterministic pseudo-random number generation for reproducible experiments.
//!
//! Every experiment in this workspace must be bit-exactly reproducible from a
//! single `u64` seed, across platforms and across releases of the workspace.
//! We therefore implement the generators ourselves instead of depending on an
//! external crate whose stream might change between versions:
//!
//! * [`SplitMix64`] — a tiny, fast generator used for seeding and for
//!   cheap decorrelated sub-streams,
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna), the workhorse
//!   generator used everywhere else.
//!
//! Statistical quality far exceeds what the experiments need (memory-map
//! generation, workload sampling).

pub mod hash;
mod splitmix;
mod xoshiro;

pub use hash::{DetHashMap, DetHashSet, Fnv64, FnvBuildHasher};
pub use splitmix::SplitMix64;
pub use xoshiro::Xoshiro256pp;

/// A deterministic random-number generator with the operations the
/// workspace's experiments need.
///
/// All default methods are implemented in terms of [`Rng::next_u64`], so the
/// produced streams are fully determined by the core generator.
pub trait Rng {
    /// Next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output (upper half of [`Rng::next_u64`], which for
    /// xoshiro-family generators is the better half).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `[0, bound)` using Lemire's unbiased multiply-shift
    /// rejection method. `bound` must be nonzero.
    #[inline]
    fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[0, bound)`.
    #[inline]
    fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    #[inline]
    fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    #[inline]
    fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// `k` distinct values sampled uniformly from `[0, bound)`, in random
    /// order. Uses Floyd's algorithm: O(k) expected work, O(k) memory.
    fn sample_distinct(&mut self, bound: u64, k: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(k);
        self.sample_distinct_into(bound, k, &mut out);
        out
    }

    /// [`Rng::sample_distinct`] into a caller-owned buffer, so hot loops
    /// can reuse one allocation across steps. Consumes the generator
    /// identically and produces the identical sample: `sample_distinct`
    /// delegates here.
    // lint: hot
    fn sample_distinct_into(&mut self, bound: u64, k: usize, out: &mut Vec<u64>) {
        assert!(
            (k as u64) <= bound,
            "cannot sample {k} distinct from {bound}"
        );
        out.clear();
        // For dense requests a shuffle of the full range is cheaper and
        // avoids the membership check.
        if (k as u64) * 4 >= bound * 3 {
            out.extend(0..bound);
            self.shuffle(out);
            out.truncate(k);
            return;
        }
        // Floyd's sampler needs "was t already chosen?". The chosen set is
        // exactly `out[..]`, so for small k a linear scan beats building a
        // hash set (and allocates nothing); the answers — hence the output
        // and the rng stream — are the same either way.
        if k <= 64 {
            for j in (bound - k as u64)..bound {
                let t = self.below(j + 1);
                let v = if out.contains(&t) { j } else { t };
                out.push(v);
            }
        } else {
            let mut chosen = DetHashSet::with_capacity_and_hasher(k * 2, FnvBuildHasher::default());
            for j in (bound - k as u64)..bound {
                let t = self.below(j + 1);
                let v = if chosen.contains(&t) { j } else { t };
                chosen.insert(v);
                out.push(v);
            }
        }
        self.shuffle(out);
    }

    /// A decorrelated child generator, for deterministic parallel streams.
    fn fork(&mut self) -> Xoshiro256pp {
        Xoshiro256pp::seed_from(self.next_u64())
    }
}

/// Convenience constructor for the workspace's default generator.
pub fn rng_from_seed(seed: u64) -> Xoshiro256pp {
    Xoshiro256pp::seed_from(seed)
}

/// The SplitMix64 finalizer as a stateless mixing function — a fast,
/// high-quality 64-bit hash for deterministic placement decisions
/// (e.g. which grid row holds a copy).
#[inline]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Default experiment seed used across the benchmark harness.
pub const DEFAULT_SEED: u64 = 0xC0FFEE;

/// The FNV-1a 64-bit offset basis — the initial value for [`fnv1a`]
/// accumulation chains.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold one value into a running FNV-1a 64-bit hash (little-endian
/// bytes). This is the workspace's *one* definition of the trace/golden
/// hash: the golden determinism snapshots and the serving layer's
/// per-session trace hashes both accumulate with it, so the two can
/// never silently drift apart.
#[inline]
pub fn fnv1a(hash: &mut u64, value: u64) {
    for byte in value.to_le_bytes() {
        *hash ^= byte as u64;
        *hash = hash.wrapping_mul(0x100_0000_01b3);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_is_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = rng_from_seed(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = rng_from_seed(42);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = rng_from_seed(43);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = rng_from_seed(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn below_one_is_zero() {
        let mut r = rng_from_seed(7);
        for _ in 0..10 {
            assert_eq!(r.below(1), 0);
        }
    }

    #[test]
    fn range_inclusive_endpoints_reachable() {
        let mut r = rng_from_seed(11);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..2000 {
            let v = r.range_inclusive(3, 6);
            assert!((3..=6).contains(&v));
            lo_seen |= v == 3;
            hi_seen |= v == 6;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = rng_from_seed(5);
        for _ in 0..1000 {
            let v = r.f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = rng_from_seed(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "astronomically unlikely identity"
        );
    }

    #[test]
    fn sample_distinct_properties() {
        let mut r = rng_from_seed(13);
        for &(bound, k) in &[(100u64, 10usize), (16, 16), (1000, 999), (1, 1), (8, 0)] {
            let s = r.sample_distinct(bound, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().collect();
            assert_eq!(set.len(), k, "values must be distinct");
            assert!(s.iter().all(|&v| v < bound));
        }
    }

    #[test]
    fn sample_distinct_into_matches_reference() {
        // The pre-buffer-reuse algorithm, verbatim: Floyd's with a hash
        // set, dense fallback. `sample_distinct_into` must consume the
        // generator identically and produce the identical vector across
        // the dense, linear-scan (k ≤ 64), and hash-set (k > 64) paths.
        fn reference(rng: &mut impl Rng, bound: u64, k: usize) -> Vec<u64> {
            if (k as u64) * 4 >= bound * 3 {
                let mut all: Vec<u64> = (0..bound).collect();
                rng.shuffle(&mut all);
                all.truncate(k);
                return all;
            }
            let mut chosen = DetHashSet::with_capacity_and_hasher(k * 2, FnvBuildHasher::default());
            let mut out = Vec::with_capacity(k);
            for j in (bound - k as u64)..bound {
                let t = rng.below(j + 1);
                let v = if chosen.contains(&t) { j } else { t };
                chosen.insert(v);
                out.push(v);
            }
            rng.shuffle(&mut out);
            out
        }
        let mut buf = Vec::new();
        for &(bound, k) in &[
            (64u64, 16usize),
            (100, 10),
            (16, 16),
            (1000, 999),
            (1000, 100),
            (10_000, 257),
            (1, 1),
            (8, 0),
        ] {
            let mut ra = rng_from_seed(0xF10D ^ bound ^ k as u64);
            let mut rb = rng_from_seed(0xF10D ^ bound ^ k as u64);
            let want = reference(&mut ra, bound, k);
            rb.sample_distinct_into(bound, k, &mut buf);
            assert_eq!(buf, want, "bound={bound} k={k}");
            assert_eq!(
                ra.next_u64(),
                rb.next_u64(),
                "bound={bound} k={k}: generators must stay in lockstep"
            );
        }
    }

    #[test]
    fn fork_streams_differ() {
        let mut r = rng_from_seed(21);
        let mut a = r.fork();
        let mut b = r.fork();
        let va: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..4).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn chance_extremes() {
        let mut r = rng_from_seed(3);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}
