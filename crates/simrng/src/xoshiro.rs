//! xoshiro256++ (Blackman & Vigna, 2019). Public-domain reference algorithm.

use crate::{Rng, SplitMix64};

/// xoshiro256++: 256 bits of state, period `2^256 − 1`, excellent statistical
/// quality. The workspace's default generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seed via SplitMix64 state expansion, as recommended by the authors.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Xoshiro256pp { s }
    }

    /// Construct from raw state. At least one word must be nonzero.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "all-zero state is a fixed point");
        Xoshiro256pp { s }
    }

    #[inline]
    fn advance(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl Rng for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.advance()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector() {
        // From the xoshiro256++ reference implementation with
        // s = [1, 2, 3, 4].
        let mut x = Xoshiro256pp::from_state([1, 2, 3, 4]);
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(x.next_u64(), e);
        }
    }

    #[test]
    #[should_panic(expected = "all-zero state")]
    fn zero_state_rejected() {
        let _ = Xoshiro256pp::from_state([0, 0, 0, 0]);
    }

    #[test]
    fn seeded_state_not_degenerate() {
        let x = Xoshiro256pp::seed_from(0);
        assert!(x.s.iter().any(|&w| w != 0));
    }
}
