//! The synchronous SPMD executor.
//!
//! All `n` processors execute in lockstep. Each global step:
//!
//! 1. every non-halted processor decodes its current instruction;
//! 2. shared accesses are collected, validated against the conflict [`Mode`],
//!    concurrent reads are combined and concurrent writes resolved by the
//!    CRCW policy;
//! 3. the (deduplicated) access batch is submitted to the [`SharedMemory`]
//!    backend — which may be the ideal memory or any of the simulation
//!    schemes;
//! 4. read results are written back to destination registers, ALU/branch
//!    instructions execute, and program counters advance.
//!
//! Reads observe the memory state from before the step's writes, per the
//! standard P-RAM convention.

use std::collections::HashMap;

use crate::instr::Instr;
use crate::memory::{SharedMemory, StepCost};
use crate::program::Program;
use crate::types::{Mode, PramError, ProcId, Reg, Word, WritePolicy};

/// Safety limits for a run.
#[derive(Debug, Clone, Copy)]
pub struct RunLimits {
    /// Abort with [`PramError::StepLimitExceeded`] after this many steps.
    pub max_steps: u64,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_steps: 1_000_000,
        }
    }
}

/// Shared accesses performed in one step, for trace-driven workloads.
#[derive(Debug, Clone, Default)]
pub struct StepTrace {
    /// `(processor, cell)` pairs for this step's reads.
    pub reads: Vec<(ProcId, usize)>,
    /// `(processor, cell, value)` triples for this step's writes.
    pub writes: Vec<(ProcId, usize, Word)>,
}

/// Outcome of a run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Global steps executed.
    pub steps: u64,
    /// Steps in which at least one shared access occurred.
    pub shared_steps: u64,
    /// Total cost reported by the memory backend.
    pub cost: StepCost,
    /// Whether every processor reached `Halt` (as opposed to hitting the
    /// step limit — which is reported as an error instead).
    pub halted: bool,
    /// Per-step shared-access trace, if requested.
    pub trace: Option<Vec<StepTrace>>,
}

/// The P-RAM executor. Construct with [`Pram::new`], configure, then
/// [`Pram::run`].
#[derive(Debug, Clone)]
pub struct Pram {
    n: usize,
    mode: Mode,
    limits: RunLimits,
    record_trace: bool,
}

impl Pram {
    /// An `n`-processor machine with the given conflict mode.
    pub fn new(n: usize, mode: Mode) -> Self {
        assert!(n > 0, "a P-RAM needs at least one processor");
        Pram {
            n,
            mode,
            limits: RunLimits::default(),
            record_trace: false,
        }
    }

    /// Override the safety limits.
    pub fn with_limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Record a [`StepTrace`] per step (used by trace-driven workloads).
    pub fn with_trace(mut self) -> Self {
        self.record_trace = true;
        self
    }

    /// Number of processors.
    pub fn processors(&self) -> usize {
        self.n
    }

    /// Execute `program` against `mem` until all processors halt.
    pub fn run<M: SharedMemory + ?Sized>(
        &self,
        program: &Program,
        mem: &mut M,
    ) -> Result<RunReport, PramError> {
        let n = self.n;
        let nregs = program.register_count().max(1);
        let mut regs = vec![0 as Word; n * nregs];
        let mut pcs = vec![0usize; n];
        let mut halted = vec![false; n];
        let mut live = n;

        let mut steps: u64 = 0;
        let mut shared_steps: u64 = 0;
        let mut cost = StepCost::default();
        let mut trace: Vec<StepTrace> = Vec::new();

        // Scratch, reused across steps.
        let mut step_reads: Vec<(ProcId, Reg, usize)> = Vec::new();
        let mut step_writes: Vec<(ProcId, usize, Word)> = Vec::new();

        while live > 0 {
            if steps >= self.limits.max_steps {
                return Err(PramError::StepLimitExceeded {
                    limit: self.limits.max_steps,
                });
            }
            step_reads.clear();
            step_writes.clear();

            // ---- pass 1: decode, collect shared accesses ----
            for p in 0..n {
                if halted[p] {
                    continue;
                }
                let pc = pcs[p];
                let Some(instr) = program.fetch(pc) else {
                    // Running off the end is an implicit halt.
                    halted[p] = true;
                    live -= 1;
                    continue;
                };
                let rf = &regs[p * nregs..(p + 1) * nregs];
                match instr {
                    Instr::Read(dst, addr_r) => {
                        let a = rf[addr_r.idx()];
                        let addr = Self::check_addr(a, mem.size(), steps, p)?;
                        step_reads.push((p, dst, addr));
                    }
                    Instr::Write(addr_r, src) => {
                        let a = rf[addr_r.idx()];
                        let addr = Self::check_addr(a, mem.size(), steps, p)?;
                        step_writes.push((p, addr, rf[src.idx()]));
                    }
                    _ => {}
                }
            }

            // ---- pass 2: conflict semantics ----
            let (uniq_reads, resolved_writes) =
                self.resolve_conflicts(&step_reads, &step_writes, steps)?;

            // ---- pass 3: hit the backend ----
            let mut read_map: HashMap<usize, Word> = HashMap::new();
            if !uniq_reads.is_empty() || !resolved_writes.is_empty() {
                shared_steps += 1;
                let result = mem.access(&uniq_reads, &resolved_writes);
                cost.add(result.cost);
                for (a, v) in uniq_reads.iter().zip(result.read_values.iter()) {
                    read_map.insert(*a, *v);
                }
            }

            if self.record_trace {
                trace.push(StepTrace {
                    reads: step_reads.iter().map(|&(p, _, a)| (p, a)).collect(),
                    writes: step_writes.clone(),
                });
            }

            // ---- pass 4: retire instructions ----
            for p in 0..n {
                if halted[p] {
                    continue;
                }
                let pc = pcs[p];
                let instr = match program.fetch(pc) {
                    Some(i) => i,
                    None => continue,
                };
                let base = p * nregs;
                let mut next_pc = pc + 1;
                macro_rules! r {
                    ($reg:expr) => {
                        regs[base + $reg.idx()]
                    };
                }
                match instr {
                    Instr::Nop => {}
                    Instr::Halt => {
                        halted[p] = true;
                        live -= 1;
                    }
                    Instr::LoadImm(d, v) => r!(d) = v,
                    Instr::Mov(d, a) => r!(d) = r!(a),
                    Instr::Add(d, a, b) => r!(d) = r!(a).wrapping_add(r!(b)),
                    Instr::Sub(d, a, b) => r!(d) = r!(a).wrapping_sub(r!(b)),
                    Instr::Mul(d, a, b) => r!(d) = r!(a).wrapping_mul(r!(b)),
                    Instr::Div(d, a, b) => {
                        let bv = r!(b);
                        if bv == 0 {
                            return Err(PramError::DivisionByZero {
                                step: steps,
                                proc: p,
                            });
                        }
                        r!(d) = r!(a).wrapping_div(bv);
                    }
                    Instr::Rem(d, a, b) => {
                        let bv = r!(b);
                        if bv == 0 {
                            return Err(PramError::DivisionByZero {
                                step: steps,
                                proc: p,
                            });
                        }
                        r!(d) = r!(a).wrapping_rem(bv);
                    }
                    Instr::AddImm(d, a, v) => r!(d) = r!(a).wrapping_add(v),
                    Instr::MulImm(d, a, v) => r!(d) = r!(a).wrapping_mul(v),
                    Instr::Min(d, a, b) => r!(d) = r!(a).min(r!(b)),
                    Instr::Max(d, a, b) => r!(d) = r!(a).max(r!(b)),
                    Instr::Shl(d, a, sh) => r!(d) = r!(a).wrapping_shl(sh),
                    Instr::Shr(d, a, sh) => r!(d) = r!(a).wrapping_shr(sh),
                    Instr::And(d, a, b) => r!(d) = r!(a) & r!(b),
                    Instr::Or(d, a, b) => r!(d) = r!(a) | r!(b),
                    Instr::Xor(d, a, b) => r!(d) = r!(a) ^ r!(b),
                    Instr::Lt(d, a, b) => r!(d) = (r!(a) < r!(b)) as Word,
                    Instr::Le(d, a, b) => r!(d) = (r!(a) <= r!(b)) as Word,
                    Instr::Eq(d, a, b) => r!(d) = (r!(a) == r!(b)) as Word,
                    Instr::Ne(d, a, b) => r!(d) = (r!(a) != r!(b)) as Word,
                    Instr::Jmp(t) => next_pc = t,
                    Instr::Jnz(c, t) => {
                        if r!(c) != 0 {
                            next_pc = t;
                        }
                    }
                    Instr::Jz(c, t) => {
                        if r!(c) == 0 {
                            next_pc = t;
                        }
                    }
                    Instr::Read(d, _) => {
                        // Value was fetched in pass 3.
                        let (_, _, addr) = step_reads
                            .iter()
                            .find(|&&(q, _, _)| q == p)
                            .copied()
                            .expect("read recorded in pass 1");
                        r!(d) = read_map[&addr];
                    }
                    Instr::Write(_, _) => {}
                    Instr::ProcId(d) => r!(d) = p as Word,
                    Instr::NumProcs(d) => r!(d) = n as Word,
                    Instr::MemSize(d) => r!(d) = mem.size() as Word,
                }
                if !halted[p] {
                    pcs[p] = next_pc;
                }
            }

            steps += 1;
        }

        Ok(RunReport {
            steps,
            shared_steps,
            cost,
            halted: true,
            trace: if self.record_trace { Some(trace) } else { None },
        })
    }

    fn check_addr(a: Word, m: usize, step: u64, proc: ProcId) -> Result<usize, PramError> {
        if a < 0 || a as u128 >= m as u128 {
            Err(PramError::AddressOutOfRange {
                step,
                proc,
                addr: a,
            })
        } else {
            Ok(a as usize)
        }
    }

    /// Apply the conflict convention: returns (distinct read addresses,
    /// resolved distinct writes).
    #[allow(clippy::type_complexity)]
    fn resolve_conflicts(
        &self,
        reads: &[(ProcId, Reg, usize)],
        writes: &[(ProcId, usize, Word)],
        step: u64,
    ) -> Result<(Vec<usize>, Vec<(usize, Word)>), PramError> {
        // Group reads by address.
        let mut readers: HashMap<usize, Vec<ProcId>> = HashMap::new();
        for &(p, _, a) in reads {
            readers.entry(a).or_default().push(p);
        }
        // Group writes by address.
        let mut writers: HashMap<usize, Vec<(ProcId, Word)>> = HashMap::new();
        for &(p, a, v) in writes {
            writers.entry(a).or_default().push((p, v));
        }

        if !self.mode.allows_concurrent_reads() {
            for (&a, ps) in &readers {
                if ps.len() > 1 {
                    let mut procs = ps.clone();
                    procs.sort_unstable();
                    return Err(PramError::ReadConflict {
                        step,
                        addr: a,
                        procs,
                    });
                }
            }
            // EREW also forbids a cell being read and written in one step.
            for &a in readers.keys() {
                if writers.contains_key(&a) {
                    return Err(PramError::ReadWriteConflict { step, addr: a });
                }
            }
        }

        let mut resolved: Vec<(usize, Word)> = Vec::with_capacity(writers.len());
        for (&a, ws) in &writers {
            if ws.len() == 1 {
                resolved.push((a, ws[0].1));
                continue;
            }
            match self.mode {
                Mode::Erew | Mode::Crew => {
                    let mut procs: Vec<ProcId> = ws.iter().map(|&(p, _)| p).collect();
                    procs.sort_unstable();
                    return Err(PramError::WriteConflict {
                        step,
                        addr: a,
                        procs,
                    });
                }
                Mode::Crcw(policy) => {
                    let winner = match policy {
                        WritePolicy::Common => {
                            let v0 = ws[0].1;
                            if ws.iter().any(|&(_, v)| v != v0) {
                                return Err(PramError::CommonViolation { step, addr: a });
                            }
                            v0
                        }
                        WritePolicy::Arbitrary | WritePolicy::Priority => {
                            ws.iter().min_by_key(|&&(p, _)| p).unwrap().1
                        }
                        WritePolicy::Max => ws.iter().map(|&(_, v)| v).max().unwrap(),
                    };
                    resolved.push((a, winner));
                }
            }
        }

        let mut uniq_reads: Vec<usize> = readers.keys().copied().collect();
        // Deterministic backend input order.
        uniq_reads.sort_unstable();
        resolved.sort_unstable_by_key(|&(a, _)| a);
        Ok((uniq_reads, resolved))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::IdealMemory;
    use crate::program::ProgramBuilder;

    fn r(i: u16) -> Reg {
        Reg(i)
    }

    /// Every processor writes its id to cell id; then reads neighbor's cell.
    fn write_then_read_program() -> Program {
        let mut b = ProgramBuilder::new();
        let id = r(0);
        let nn = r(1);
        let tmp = r(2);
        let one = r(3);
        b.proc_id(id);
        b.num_procs(nn);
        b.write(id, id); // shared[id] = id
        b.load_imm(one, 1);
        b.add(tmp, id, one);
        b.rem(tmp, tmp, nn); // (id+1) % n
        b.read(tmp, tmp); // tmp = shared[(id+1)%n]
        b.write(id, tmp); // shared[id] = neighbor id
        b.halt();
        b.build()
    }

    #[test]
    fn lockstep_neighbor_exchange() {
        let n = 8;
        let mut mem = IdealMemory::new(n);
        let report = Pram::new(n, Mode::Erew)
            .run(&write_then_read_program(), &mut mem)
            .unwrap();
        assert!(report.halted);
        for i in 0..n {
            assert_eq!(mem.peek(i), ((i + 1) % n) as Word);
        }
    }

    #[test]
    fn erew_detects_read_conflict() {
        // Everyone reads cell 0.
        let mut b = ProgramBuilder::new();
        b.load_imm(r(0), 0);
        b.read(r(1), r(0));
        b.halt();
        let p = b.build();
        let mut mem = IdealMemory::new(4);
        let err = Pram::new(2, Mode::Erew).run(&p, &mut mem).unwrap_err();
        assert!(matches!(err, PramError::ReadConflict { addr: 0, .. }));
        // The same program is fine under CREW.
        let mut mem = IdealMemory::new(4);
        assert!(Pram::new(2, Mode::Crew).run(&p, &mut mem).is_ok());
    }

    #[test]
    fn crew_detects_write_conflict() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(0), 0);
        b.proc_id(r(1));
        b.write(r(0), r(1));
        b.halt();
        let p = b.build();
        let mut mem = IdealMemory::new(4);
        let err = Pram::new(3, Mode::Crew).run(&p, &mut mem).unwrap_err();
        assert!(matches!(err, PramError::WriteConflict { addr: 0, .. }));
    }

    #[test]
    fn crcw_priority_lowest_proc_wins() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(0), 0);
        b.proc_id(r(1));
        b.add_imm(r(1), r(1), 100);
        b.write(r(0), r(1));
        b.halt();
        let p = b.build();
        let mut mem = IdealMemory::new(4);
        Pram::new(4, Mode::Crcw(WritePolicy::Priority))
            .run(&p, &mut mem)
            .unwrap();
        assert_eq!(mem.peek(0), 100);
    }

    #[test]
    fn crcw_max_policy() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(0), 0);
        b.proc_id(r(1));
        b.write(r(0), r(1));
        b.halt();
        let p = b.build();
        let mut mem = IdealMemory::new(4);
        Pram::new(4, Mode::Crcw(WritePolicy::Max))
            .run(&p, &mut mem)
            .unwrap();
        assert_eq!(mem.peek(0), 3);
    }

    #[test]
    fn crcw_common_violation_detected() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(0), 0);
        b.proc_id(r(1));
        b.write(r(0), r(1)); // different values per proc
        b.halt();
        let p = b.build();
        let mut mem = IdealMemory::new(4);
        let err = Pram::new(2, Mode::Crcw(WritePolicy::Common))
            .run(&p, &mut mem)
            .unwrap_err();
        assert!(matches!(err, PramError::CommonViolation { addr: 0, .. }));
    }

    #[test]
    fn crcw_common_agreement_ok() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(0), 0);
        b.load_imm(r(1), 7);
        b.write(r(0), r(1));
        b.halt();
        let p = b.build();
        let mut mem = IdealMemory::new(4);
        Pram::new(5, Mode::Crcw(WritePolicy::Common))
            .run(&p, &mut mem)
            .unwrap();
        assert_eq!(mem.peek(0), 7);
    }

    #[test]
    fn erew_read_write_same_cell_conflict() {
        // proc 0 reads cell 0, proc 1 writes cell 0.
        let mut b = ProgramBuilder::new();
        let id = r(0);
        let addr = r(1);
        let skip = b.label();
        b.proc_id(id);
        b.load_imm(addr, 0);
        b.jnz(id, skip);
        b.read(r(2), addr); // proc 0 only
        b.halt();
        b.bind(skip);
        b.write(addr, id); // proc 1 only
        b.halt();
        let p = b.build();
        // Both paths reach their memory op at the same step (the branch has
        // equal length on both sides), so EREW must reject the run.
        let m = Pram::new(2, Mode::Erew);
        let err = m
            .resolve_conflicts(&[(0, r(2), 0)], &[(1, 0, 5)], 0)
            .unwrap_err();
        assert!(matches!(err, PramError::ReadWriteConflict { addr: 0, .. }));
        let mut mem = IdealMemory::new(4);
        let err = m.run(&p, &mut mem).unwrap_err();
        assert!(matches!(err, PramError::ReadWriteConflict { addr: 0, .. }));
        // CREW permits a reader and a writer on the same cell; the read
        // observes the pre-step value.
        let mut mem = IdealMemory::new(4);
        assert!(Pram::new(2, Mode::Crew).run(&p, &mut mem).is_ok());
    }

    #[test]
    fn address_out_of_range_trapped() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(0), 99);
        b.read(r(1), r(0));
        b.halt();
        let p = b.build();
        let mut mem = IdealMemory::new(4);
        let err = Pram::new(1, Mode::Erew).run(&p, &mut mem).unwrap_err();
        assert!(matches!(err, PramError::AddressOutOfRange { addr: 99, .. }));
    }

    #[test]
    fn negative_address_trapped() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(0), -1);
        b.write(r(0), r(0));
        b.halt();
        let p = b.build();
        let mut mem = IdealMemory::new(4);
        let err = Pram::new(1, Mode::Erew).run(&p, &mut mem).unwrap_err();
        assert!(matches!(err, PramError::AddressOutOfRange { addr: -1, .. }));
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut b = ProgramBuilder::new();
        let top = b.label();
        b.bind(top);
        b.jmp(top);
        let p = b.build();
        let mut mem = IdealMemory::new(1);
        let err = Pram::new(1, Mode::Erew)
            .with_limits(RunLimits { max_steps: 100 })
            .run(&p, &mut mem)
            .unwrap_err();
        assert!(matches!(err, PramError::StepLimitExceeded { limit: 100 }));
    }

    #[test]
    fn running_off_end_halts() {
        let mut b = ProgramBuilder::new();
        b.nop();
        let p = b.build();
        let mut mem = IdealMemory::new(1);
        let rep = Pram::new(3, Mode::Erew).run(&p, &mut mem).unwrap();
        assert!(rep.halted);
        assert_eq!(rep.steps, 2); // nop step + off-end detection step
    }

    #[test]
    fn trace_records_accesses() {
        let n = 4;
        let mut mem = IdealMemory::new(n);
        let rep = Pram::new(n, Mode::Erew)
            .with_trace()
            .run(&write_then_read_program(), &mut mem)
            .unwrap();
        let trace = rep.trace.unwrap();
        let total_reads: usize = trace.iter().map(|t| t.reads.len()).sum();
        let total_writes: usize = trace.iter().map(|t| t.writes.len()).sum();
        assert_eq!(total_reads, n); // one read per proc
        assert_eq!(total_writes, 2 * n); // two writes per proc
    }

    #[test]
    fn division_by_zero_trapped() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(0), 1);
        b.load_imm(r(1), 0);
        b.div(r(2), r(0), r(1));
        b.halt();
        let p = b.build();
        let mut mem = IdealMemory::new(1);
        let err = Pram::new(1, Mode::Erew).run(&p, &mut mem).unwrap_err();
        assert!(matches!(err, PramError::DivisionByZero { .. }));
    }

    #[test]
    fn alu_coverage() {
        let mut b = ProgramBuilder::new();
        b.load_imm(r(0), 12);
        b.load_imm(r(1), 5);
        b.sub(r(2), r(0), r(1)); // 7
        b.mul(r(3), r(2), r(1)); // 35
        b.div(r(4), r(3), r(1)); // 7
        b.min(r(5), r(0), r(1)); // 5
        b.max(r(6), r(0), r(1)); // 12
        b.shl(r(7), r(1), 2); // 20
        b.shr(r(8), r(0), 1); // 6
        b.lt(r(9), r(1), r(0)); // 1
        b.le(r(10), r(0), r(0)); // 1
        b.eq(r(11), r(0), r(1)); // 0
        b.ne(r(12), r(0), r(1)); // 1
        b.raw(Instr::And(r(13), r(0), r(1))); // 12&5=4
        b.raw(Instr::Or(r(14), r(0), r(1))); // 13
        b.raw(Instr::Xor(r(15), r(0), r(1))); // 9
                                              // Store everything to shared memory for inspection.
        let addr = r(16);
        for (cell, reg) in (2..=15).enumerate() {
            b.load_imm(addr, cell as Word);
            b.write(addr, r(reg));
        }
        b.halt();
        let p = b.build();
        let mut mem = IdealMemory::new(16);
        Pram::new(1, Mode::Erew).run(&p, &mut mem).unwrap();
        let expect = [7, 35, 7, 5, 12, 20, 6, 1, 1, 0, 1, 4, 13, 9];
        for (cell, &e) in expect.iter().enumerate() {
            assert_eq!(mem.peek(cell), e, "cell {cell}");
        }
    }
}
