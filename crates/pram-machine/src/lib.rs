//! The P-RAM abstract machine (Fortune & Wyllie 1978), as used by the paper.
//!
//! A P-RAM consists of `n` synchronous RAM processors and `m` shared memory
//! cells (paper, Fig. 1). At every step each processor executes one
//! instruction of an SPMD program; shared-memory reads observe the memory
//! state *before* the step's writes are applied. Variants differ in the
//! read/write conflict convention: EREW, CREW, or CRCW with a write policy
//! ([`Mode`]).
//!
//! The executor ([`machine::Pram`]) is generic over a [`memory::SharedMemory`]
//! backend. Running the same program against the ideal backend and against
//! one of the simulation schemes in the `cr-core` crate — and asserting
//! identical results — is the workspace's end-to-end faithfulness test.

pub mod instr;
pub mod machine;
pub mod memory;
pub mod program;
pub mod programs;
pub mod types;

pub use instr::Instr;
pub use machine::{Pram, RunLimits, RunReport};
pub use memory::{AccessResult, IdealMemory, SharedMemory, StepCost};
pub use program::{Label, Program, ProgramBuilder};
pub use types::{Mode, PramError, ProcId, Reg, Word, WritePolicy};
