//! Programs and a small assembler-style builder with label fix-up.

use crate::instr::Instr;
use crate::types::{Reg, Word};

/// A forward-referenceable jump target issued by [`ProgramBuilder::label`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// A validated SPMD program: a flat instruction sequence with all labels
/// resolved to absolute indices.
#[derive(Debug, Clone)]
pub struct Program {
    instrs: Vec<Instr>,
    /// Highest register index used, for register-file sizing.
    max_reg: u16,
}

impl Program {
    /// The instruction at `pc`, if in range.
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<Instr> {
        self.instrs.get(pc).copied()
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the program is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Number of registers the register file needs.
    #[inline]
    pub fn register_count(&self) -> usize {
        self.max_reg as usize + 1
    }

    /// Read-only view of the instruction stream.
    pub fn instructions(&self) -> &[Instr] {
        &self.instrs
    }
}

/// Builder that assembles a [`Program`], resolving labels on `build`.
///
/// ```
/// use pram_machine::{ProgramBuilder, Reg};
/// let mut b = ProgramBuilder::new();
/// let r = Reg(0);
/// b.load_imm(r, 3);
/// let done = b.label();
/// b.jz(r, done);
/// b.add_imm(r, r, -1);
/// // loop back to the jz
/// b.jmp_to(1);
/// b.bind(done);
/// b.halt();
/// let prog = b.build();
/// assert_eq!(prog.len(), 5);
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    instrs: Vec<Instr>,
    /// label id -> resolved pc (usize::MAX while unresolved)
    labels: Vec<usize>,
    /// (instruction index, label id) pairs awaiting resolution
    fixups: Vec<(usize, usize)>,
    max_reg: u16,
}

const UNRESOLVED: usize = usize::MAX;

impl ProgramBuilder {
    /// Fresh, empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current instruction index (the pc of the next emitted instruction).
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Allocate a label to be bound later with [`ProgramBuilder::bind`].
    pub fn label(&mut self) -> Label {
        self.labels.push(UNRESOLVED);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    pub fn bind(&mut self, label: Label) {
        assert_eq!(self.labels[label.0], UNRESOLVED, "label bound twice");
        self.labels[label.0] = self.instrs.len();
    }

    fn touch(&mut self, r: Reg) {
        self.max_reg = self.max_reg.max(r.0);
    }

    fn push(&mut self, i: Instr) -> &mut Self {
        self.instrs.push(i);
        self
    }

    /// Emit a raw instruction (no label resolution).
    pub fn raw(&mut self, i: Instr) -> &mut Self {
        match i {
            Instr::LoadImm(d, _) | Instr::ProcId(d) | Instr::NumProcs(d) | Instr::MemSize(d) => {
                self.touch(d)
            }
            Instr::Mov(d, a)
            | Instr::AddImm(d, a, _)
            | Instr::MulImm(d, a, _)
            | Instr::Shl(d, a, _)
            | Instr::Shr(d, a, _)
            | Instr::Read(d, a)
            | Instr::Write(d, a) => {
                self.touch(d);
                self.touch(a);
            }
            Instr::Add(d, a, b)
            | Instr::Sub(d, a, b)
            | Instr::Mul(d, a, b)
            | Instr::Div(d, a, b)
            | Instr::Rem(d, a, b)
            | Instr::Min(d, a, b)
            | Instr::Max(d, a, b)
            | Instr::And(d, a, b)
            | Instr::Or(d, a, b)
            | Instr::Xor(d, a, b)
            | Instr::Lt(d, a, b)
            | Instr::Le(d, a, b)
            | Instr::Eq(d, a, b)
            | Instr::Ne(d, a, b) => {
                self.touch(d);
                self.touch(a);
                self.touch(b);
            }
            Instr::Jnz(c, _) | Instr::Jz(c, _) => self.touch(c),
            Instr::Nop | Instr::Halt | Instr::Jmp(_) => {}
        }
        self.push(i);
        self
    }

    // --- ergonomic emitters -------------------------------------------------

    /// `nop`
    pub fn nop(&mut self) -> &mut Self {
        self.raw(Instr::Nop)
    }
    /// `halt`
    pub fn halt(&mut self) -> &mut Self {
        self.raw(Instr::Halt)
    }
    /// `dst <- imm`
    pub fn load_imm(&mut self, d: Reg, v: Word) -> &mut Self {
        self.raw(Instr::LoadImm(d, v))
    }
    /// `dst <- src`
    pub fn mov(&mut self, d: Reg, a: Reg) -> &mut Self {
        self.raw(Instr::Mov(d, a))
    }
    /// `dst <- a + b`
    pub fn add(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(Instr::Add(d, a, b))
    }
    /// `dst <- a - b`
    pub fn sub(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(Instr::Sub(d, a, b))
    }
    /// `dst <- a * b`
    pub fn mul(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(Instr::Mul(d, a, b))
    }
    /// `dst <- a / b`
    pub fn div(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(Instr::Div(d, a, b))
    }
    /// `dst <- a % b`
    pub fn rem(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(Instr::Rem(d, a, b))
    }
    /// `dst <- a + imm`
    pub fn add_imm(&mut self, d: Reg, a: Reg, v: Word) -> &mut Self {
        self.raw(Instr::AddImm(d, a, v))
    }
    /// `dst <- a * imm`
    pub fn mul_imm(&mut self, d: Reg, a: Reg, v: Word) -> &mut Self {
        self.raw(Instr::MulImm(d, a, v))
    }
    /// `dst <- min(a, b)`
    pub fn min(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(Instr::Min(d, a, b))
    }
    /// `dst <- max(a, b)`
    pub fn max(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(Instr::Max(d, a, b))
    }
    /// `dst <- a << sh`
    pub fn shl(&mut self, d: Reg, a: Reg, sh: u32) -> &mut Self {
        self.raw(Instr::Shl(d, a, sh))
    }
    /// `dst <- a >> sh`
    pub fn shr(&mut self, d: Reg, a: Reg, sh: u32) -> &mut Self {
        self.raw(Instr::Shr(d, a, sh))
    }
    /// `dst <- (a < b)`
    pub fn lt(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(Instr::Lt(d, a, b))
    }
    /// `dst <- (a <= b)`
    pub fn le(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(Instr::Le(d, a, b))
    }
    /// `dst <- (a == b)`
    pub fn eq(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(Instr::Eq(d, a, b))
    }
    /// `dst <- (a != b)`
    pub fn ne(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.raw(Instr::Ne(d, a, b))
    }
    /// `dst <- shared[addr]`
    pub fn read(&mut self, d: Reg, addr: Reg) -> &mut Self {
        self.raw(Instr::Read(d, addr))
    }
    /// `shared[addr] <- src`
    pub fn write(&mut self, addr: Reg, src: Reg) -> &mut Self {
        self.raw(Instr::Write(addr, src))
    }
    /// `dst <- proc id`
    pub fn proc_id(&mut self, d: Reg) -> &mut Self {
        self.raw(Instr::ProcId(d))
    }
    /// `dst <- n`
    pub fn num_procs(&mut self, d: Reg) -> &mut Self {
        self.raw(Instr::NumProcs(d))
    }
    /// `dst <- m`
    pub fn mem_size(&mut self, d: Reg) -> &mut Self {
        self.raw(Instr::MemSize(d))
    }

    /// Jump to a label (resolved at `build`).
    pub fn jmp(&mut self, l: Label) -> &mut Self {
        self.fixups.push((self.instrs.len(), l.0));
        self.push(Instr::Jmp(UNRESOLVED))
    }
    /// Jump to an absolute pc.
    pub fn jmp_to(&mut self, pc: usize) -> &mut Self {
        self.push(Instr::Jmp(pc))
    }
    /// Jump to a label if `c != 0`.
    pub fn jnz(&mut self, c: Reg, l: Label) -> &mut Self {
        self.touch(c);
        self.fixups.push((self.instrs.len(), l.0));
        self.push(Instr::Jnz(c, UNRESOLVED))
    }
    /// Jump to a label if `c == 0`.
    pub fn jz(&mut self, c: Reg, l: Label) -> &mut Self {
        self.touch(c);
        self.fixups.push((self.instrs.len(), l.0));
        self.push(Instr::Jz(c, UNRESOLVED))
    }

    /// Resolve labels and produce the program.
    ///
    /// Panics if any referenced label was never bound, or if a jump targets
    /// a pc outside the program.
    pub fn build(mut self) -> Program {
        for &(at, lbl) in &self.fixups {
            let target = self.labels[lbl];
            assert_ne!(target, UNRESOLVED, "label {lbl} referenced but never bound");
            match &mut self.instrs[at] {
                Instr::Jmp(t) | Instr::Jnz(_, t) | Instr::Jz(_, t) => *t = target,
                other => unreachable!("fixup on non-branch {other:?}"),
            }
        }
        for (pc, i) in self.instrs.iter().enumerate() {
            if let Instr::Jmp(t) | Instr::Jnz(_, t) | Instr::Jz(_, t) = i {
                assert!(
                    *t <= self.instrs.len(),
                    "instruction {pc} jumps to {t}, beyond program end"
                );
            }
        }
        Program {
            instrs: self.instrs,
            max_reg: self.max_reg,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_resolve_forward_and_backward() {
        let mut b = ProgramBuilder::new();
        let r = Reg(2);
        let top = b.label();
        b.bind(top);
        b.load_imm(r, 1);
        let end = b.label();
        b.jz(r, end);
        b.jmp(top);
        b.bind(end);
        b.halt();
        let p = b.build();
        assert_eq!(p.fetch(1), Some(Instr::Jz(r, 3)));
        assert_eq!(p.fetch(2), Some(Instr::Jmp(0)));
        assert_eq!(p.register_count(), 3);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn unbound_label_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.jmp(l);
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "bound twice")]
    fn double_bind_panics() {
        let mut b = ProgramBuilder::new();
        let l = b.label();
        b.bind(l);
        b.bind(l);
    }

    #[test]
    fn register_count_tracks_all_operands() {
        let mut b = ProgramBuilder::new();
        b.add(Reg(1), Reg(7), Reg(3));
        let p = b.build();
        assert_eq!(p.register_count(), 8);
    }

    #[test]
    fn empty_program() {
        let p = ProgramBuilder::new().build();
        assert!(p.is_empty());
        assert_eq!(p.fetch(0), None);
    }
}
