//! The SPMD instruction set.
//!
//! Deliberately small but complete: integer ALU, comparisons, branches, and
//! the two shared-memory operations. One instruction executes per P-RAM step
//! on every non-halted processor; only `Read`/`Write` touch shared memory, so
//! the shared-access pattern of a program is exactly the sequence of steps in
//! which those appear.

use crate::types::{Reg, Word};

/// A single instruction. `Reg` operands name private registers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Do nothing for a step.
    Nop,
    /// Stop this processor; it takes no further part in the run.
    Halt,

    /// `dst <- imm`.
    LoadImm(Reg, Word),
    /// `dst <- src`.
    Mov(Reg, Reg),

    /// `dst <- a + b` (wrapping).
    Add(Reg, Reg, Reg),
    /// `dst <- a - b` (wrapping).
    Sub(Reg, Reg, Reg),
    /// `dst <- a * b` (wrapping).
    Mul(Reg, Reg, Reg),
    /// `dst <- a / b`; traps on `b == 0`.
    Div(Reg, Reg, Reg),
    /// `dst <- a % b`; traps on `b == 0`.
    Rem(Reg, Reg, Reg),
    /// `dst <- a + imm` (wrapping).
    AddImm(Reg, Reg, Word),
    /// `dst <- a * imm` (wrapping).
    MulImm(Reg, Reg, Word),
    /// `dst <- min(a, b)`.
    Min(Reg, Reg, Reg),
    /// `dst <- max(a, b)`.
    Max(Reg, Reg, Reg),
    /// `dst <- a << sh` (wrapping; `sh` masked to 0..64).
    Shl(Reg, Reg, u32),
    /// `dst <- a >> sh` (arithmetic).
    Shr(Reg, Reg, u32),
    /// `dst <- a & b`.
    And(Reg, Reg, Reg),
    /// `dst <- a | b`.
    Or(Reg, Reg, Reg),
    /// `dst <- a ^ b`.
    Xor(Reg, Reg, Reg),

    /// `dst <- (a < b) as Word`.
    Lt(Reg, Reg, Reg),
    /// `dst <- (a <= b) as Word`.
    Le(Reg, Reg, Reg),
    /// `dst <- (a == b) as Word`.
    Eq(Reg, Reg, Reg),
    /// `dst <- (a != b) as Word`.
    Ne(Reg, Reg, Reg),

    /// Unconditional jump to an absolute instruction index.
    Jmp(usize),
    /// Jump if `cond != 0`.
    Jnz(Reg, usize),
    /// Jump if `cond == 0`.
    Jz(Reg, usize),

    /// `dst <- shared[addr_reg]` (value observed from before this step).
    Read(Reg, Reg),
    /// `shared[addr_reg] <- src` (applied at end of step).
    Write(Reg, Reg),

    /// `dst <- this processor's id`.
    ProcId(Reg),
    /// `dst <- number of processors`.
    NumProcs(Reg),
    /// `dst <- shared memory size m`.
    MemSize(Reg),
}

impl Instr {
    /// Whether this instruction accesses shared memory.
    #[inline]
    pub fn is_shared_access(&self) -> bool {
        matches!(self, Instr::Read(..) | Instr::Write(..))
    }

    /// Whether this instruction can transfer control.
    #[inline]
    pub fn is_branch(&self) -> bool {
        matches!(self, Instr::Jmp(_) | Instr::Jnz(..) | Instr::Jz(..))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        let r = Reg(0);
        assert!(Instr::Read(r, r).is_shared_access());
        assert!(Instr::Write(r, r).is_shared_access());
        assert!(!Instr::Add(r, r, r).is_shared_access());
        assert!(Instr::Jmp(0).is_branch());
        assert!(Instr::Jnz(r, 0).is_branch());
        assert!(!Instr::Halt.is_branch());
    }
}
