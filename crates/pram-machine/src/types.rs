//! Fundamental machine types: words, registers, conflict modes, errors.

/// A machine word. The P-RAM literature treats cells as holding integers of
/// `O(log m)` bits; 64 bits comfortably covers every experiment here.
pub type Word = i64;

/// Processor identifier, `0 .. n`.
pub type ProcId = usize;

/// A private register index. Each processor has a small register file that
/// models its private RAM (the paper's processors each fetch instructions
/// from "a private RAM"; we keep the program shared/SPMD and the data
/// private, which is the standard formulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl Reg {
    /// Register index as a usize.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// Write-conflict resolution policy for CRCW P-RAMs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WritePolicy {
    /// All writers to a cell must write the same value; anything else is an
    /// error (the COMMON CRCW model).
    Common,
    /// An arbitrary writer wins. We make it deterministic: the *lowest*
    /// processor id wins, which is one legal refinement of ARBITRARY.
    Arbitrary,
    /// The lowest-numbered processor wins (PRIORITY model).
    Priority,
    /// The maximum value written wins (MAX / strong CRCW model).
    Max,
}

/// Read/write conflict convention (paper §1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Exclusive read, exclusive write: no cell may be touched by more than
    /// one processor per step.
    Erew,
    /// Concurrent read, exclusive write.
    Crew,
    /// Concurrent read, concurrent write with the given policy.
    Crcw(WritePolicy),
}

impl Mode {
    /// Whether concurrent reads of one cell are legal.
    #[inline]
    pub fn allows_concurrent_reads(self) -> bool {
        !matches!(self, Mode::Erew)
    }

    /// Whether concurrent writes to one cell are legal.
    #[inline]
    pub fn allows_concurrent_writes(self) -> bool {
        matches!(self, Mode::Crcw(_))
    }
}

impl std::fmt::Display for Mode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mode::Erew => write!(f, "EREW"),
            Mode::Crew => write!(f, "CREW"),
            Mode::Crcw(WritePolicy::Common) => write!(f, "CRCW-Common"),
            Mode::Crcw(WritePolicy::Arbitrary) => write!(f, "CRCW-Arbitrary"),
            Mode::Crcw(WritePolicy::Priority) => write!(f, "CRCW-Priority"),
            Mode::Crcw(WritePolicy::Max) => write!(f, "CRCW-Max"),
        }
    }
}

/// Errors raised by the executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PramError {
    /// Two or more processors read one cell in a step under EREW.
    ReadConflict {
        step: u64,
        addr: usize,
        procs: Vec<ProcId>,
    },
    /// Two or more processors wrote one cell in a step under EREW/CREW.
    WriteConflict {
        step: u64,
        addr: usize,
        procs: Vec<ProcId>,
    },
    /// A cell was both read and written in one step under EREW ("accessed by
    /// more than one processor").
    ReadWriteConflict { step: u64, addr: usize },
    /// CRCW-Common writers disagreed on the value.
    CommonViolation { step: u64, addr: usize },
    /// Shared address outside `[0, m)`.
    AddressOutOfRange { step: u64, proc: ProcId, addr: Word },
    /// Division or remainder by zero.
    DivisionByZero { step: u64, proc: ProcId },
    /// Program counter left the program without `Halt`.
    PcOutOfRange { step: u64, proc: ProcId, pc: usize },
    /// The step limit was exceeded (likely a non-terminating program).
    StepLimitExceeded { limit: u64 },
}

impl std::fmt::Display for PramError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PramError::ReadConflict { step, addr, procs } => {
                write!(
                    f,
                    "step {step}: EREW read conflict on cell {addr} by {procs:?}"
                )
            }
            PramError::WriteConflict { step, addr, procs } => {
                write!(f, "step {step}: write conflict on cell {addr} by {procs:?}")
            }
            PramError::ReadWriteConflict { step, addr } => {
                write!(f, "step {step}: EREW read+write conflict on cell {addr}")
            }
            PramError::CommonViolation { step, addr } => {
                write!(
                    f,
                    "step {step}: CRCW-Common writers disagree on cell {addr}"
                )
            }
            PramError::AddressOutOfRange { step, proc, addr } => {
                write!(
                    f,
                    "step {step}: processor {proc} addressed cell {addr} (out of range)"
                )
            }
            PramError::DivisionByZero { step, proc } => {
                write!(f, "step {step}: processor {proc} divided by zero")
            }
            PramError::PcOutOfRange { step, proc, pc } => {
                write!(
                    f,
                    "step {step}: processor {proc} ran off the program at pc {pc}"
                )
            }
            PramError::StepLimitExceeded { limit } => {
                write!(f, "step limit {limit} exceeded")
            }
        }
    }
}

impl std::error::Error for PramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(!Mode::Erew.allows_concurrent_reads());
        assert!(Mode::Crew.allows_concurrent_reads());
        assert!(!Mode::Crew.allows_concurrent_writes());
        assert!(Mode::Crcw(WritePolicy::Max).allows_concurrent_writes());
    }

    #[test]
    fn mode_display() {
        assert_eq!(Mode::Erew.to_string(), "EREW");
        assert_eq!(
            Mode::Crcw(WritePolicy::Priority).to_string(),
            "CRCW-Priority"
        );
    }

    #[test]
    fn error_display_mentions_step() {
        let e = PramError::DivisionByZero { step: 17, proc: 3 };
        assert!(e.to_string().contains("17"));
        assert!(e.to_string().contains("3"));
    }
}
