//! The shared-memory backend interface and the ideal (unit-cost) memory.
//!
//! The executor resolves all conflict semantics *before* calling the backend:
//! a backend always receives at most one read and at most one write per
//! distinct cell per step. This mirrors the papers' setting, where the
//! simulation schemes operate on a set of (deduplicated) variables to access
//! in a step. Simulation schemes in the `cr-core` crate implement
//! [`SharedMemory`], so any P-RAM program can run unmodified on top of them.

use crate::types::Word;

/// Cost of one simulated memory step, in the units the paper uses.
///
/// * `phases` — protocol rounds (each phase is one routing round);
/// * `cycles` — network cycles actually consumed (on the 2DMOT a phase costs
///   `Θ(tree depth)` cycles; on complete interconnects, 1);
/// * `messages` — point-to-point packets sent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepCost {
    /// Protocol phases used by this step.
    pub phases: u64,
    /// Network cycles consumed by this step.
    pub cycles: u64,
    /// Messages (packets) sent during this step.
    pub messages: u64,
}

impl StepCost {
    /// Accumulate another step's cost.
    pub fn add(&mut self, other: StepCost) {
        self.phases += other.phases;
        self.cycles += other.cycles;
        self.messages += other.messages;
    }
}

/// Result of a memory step: one value per requested read address, in the
/// same order as the `reads` slice passed in, plus the cost.
#[derive(Debug, Clone)]
pub struct AccessResult {
    /// `read_values[i]` is the value of `reads[i]`.
    pub read_values: Vec<Word>,
    /// What the step cost in the backend's own time model.
    pub cost: StepCost,
}

/// A synchronous shared memory that executes one P-RAM step's accesses at a
/// time.
///
/// Contract:
/// * `reads` contains **distinct** addresses, all `< size()`;
/// * `writes` contains **distinct** addresses, all `< size()`;
/// * an address may appear in both (a read and a write by different
///   processors is legal under CREW/CRCW after front-end resolution — under
///   EREW the executor rejects it first); the read must observe the value
///   from **before** this step's write.
pub trait SharedMemory {
    /// Number of addressable cells, `m`.
    fn size(&self) -> usize;

    /// Execute one synchronous batch of accesses.
    fn access(&mut self, reads: &[usize], writes: &[(usize, Word)]) -> AccessResult;

    /// Convenience: read a single cell outside of step accounting (used by
    /// tests and result extraction, not by simulated programs).
    fn peek(&mut self, addr: usize) -> Word {
        self.access(&[addr], &[]).read_values[0]
    }

    /// Convenience: write a single cell outside of step accounting (used to
    /// set up program inputs).
    fn poke(&mut self, addr: usize, value: Word) {
        self.access(&[], &[(addr, value)]);
    }
}

/// The ideal P-RAM shared memory: every access costs one phase, one cycle.
/// This is the model of Fig. 1 — and the correctness reference for every
/// simulation scheme.
#[derive(Debug, Clone)]
pub struct IdealMemory {
    cells: Vec<Word>,
}

impl IdealMemory {
    /// A zero-initialized memory of `m` cells.
    pub fn new(m: usize) -> Self {
        IdealMemory { cells: vec![0; m] }
    }

    /// Build from initial contents.
    pub fn from_cells(cells: Vec<Word>) -> Self {
        IdealMemory { cells }
    }

    /// Borrow the cells (for bulk assertions in tests).
    pub fn cells(&self) -> &[Word] {
        &self.cells
    }
}

impl SharedMemory for IdealMemory {
    fn size(&self) -> usize {
        self.cells.len()
    }

    fn access(&mut self, reads: &[usize], writes: &[(usize, Word)]) -> AccessResult {
        let read_values = reads.iter().map(|&a| self.cells[a]).collect();
        for &(a, v) in writes {
            self.cells[a] = v;
        }
        AccessResult {
            read_values,
            cost: StepCost {
                phases: 1,
                cycles: 1,
                messages: (reads.len() + writes.len()) as u64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_observe_pre_step_state() {
        let mut m = IdealMemory::new(4);
        m.poke(1, 10);
        // Read cell 1 and write it in the same step: the read sees 10.
        let r = m.access(&[1], &[(1, 99)]);
        assert_eq!(r.read_values, vec![10]);
        assert_eq!(m.peek(1), 99);
    }

    #[test]
    fn cost_accumulates() {
        let mut total = StepCost::default();
        total.add(StepCost {
            phases: 2,
            cycles: 10,
            messages: 5,
        });
        total.add(StepCost {
            phases: 1,
            cycles: 4,
            messages: 2,
        });
        assert_eq!(
            total,
            StepCost {
                phases: 3,
                cycles: 14,
                messages: 7
            }
        );
    }

    #[test]
    fn from_cells_roundtrip() {
        let mut m = IdealMemory::from_cells(vec![5, 6, 7]);
        assert_eq!(m.size(), 3);
        assert_eq!(m.peek(2), 7);
        assert_eq!(m.cells(), &[5, 6, 7]);
    }
}
