//! A library of classic P-RAM programs.
//!
//! These serve three purposes in the reproduction:
//!
//! 1. they test the executor against known parallel algorithms;
//! 2. run through a simulation scheme (`cr-core`), they are the end-to-end
//!    faithfulness check (same results as on the ideal P-RAM);
//! 3. their recorded access traces are realistic workloads for the
//!    experiments (the paper's motivation is general-purpose computation).
//!
//! ## EREW predication convention
//!
//! The executor keeps processors in lockstep only if they execute the same
//! instruction stream, so data-dependent branching is avoided; programs use
//! *arithmetic predication* instead (`val = v1 + mask·v2`). A predicated-off
//! processor still issues its reads, so each program's memory layout reserves
//! a **dead region** of `n` cells: inactive processors read their private
//! dead cell, which no other processor ever touches, keeping every step
//! EREW-legal.

use crate::program::{Program, ProgramBuilder};
use crate::types::{Reg, Word};

/// Memory layout of [`parallel_sum`]: input (and partial sums) in
/// `[0, n)`, dead region `[n, 2n)`. Result lands in cell `0`.
pub fn parallel_sum_layout(n: usize) -> usize {
    2 * n
}

/// EREW tree reduction: sums cells `[0, n)` into cell `0` in `⌈log₂ n⌉`
/// rounds. `n` processors, `n` a power of two is *not* required.
pub fn parallel_sum(_n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let id = Reg(0);
    let n_r = Reg(1);
    let d = Reg(2);
    let twod = Reg(3);
    let t = Reg(4);
    let zero = Reg(5);
    let mask = Reg(6);
    let a2 = Reg(7);
    let v1 = Reg(8);
    let v2 = Reg(9);
    let val = Reg(10);
    let cond = Reg(11);
    let dead = Reg(12);
    let diff = Reg(13);

    b.proc_id(id);
    b.num_procs(n_r);
    b.load_imm(d, 1);
    b.load_imm(zero, 0);
    b.add(dead, n_r, id); // private dead cell: n + id

    let top = b.label();
    b.bind(top);
    // active iff id % 2d == 0 and id + d < n
    b.mul_imm(twod, d, 2);
    b.rem(t, id, twod);
    b.eq(mask, t, zero);
    b.add(a2, id, d);
    b.lt(cond, a2, n_r);
    b.mul(mask, mask, cond);
    // a2 = active ? id + d : dead
    b.sub(diff, a2, dead);
    b.mul(diff, diff, mask);
    b.add(a2, dead, diff);
    // val = mem[id] + mask * mem[a2]
    b.read(v1, id);
    b.read(v2, a2);
    b.mul(v2, v2, mask);
    b.add(val, v1, v2);
    b.write(id, val);
    // d *= 2; loop while d < n
    b.mul_imm(d, d, 2);
    b.lt(cond, d, n_r);
    b.jnz(cond, top);
    b.halt();
    b.build()
}

/// Memory layout of [`prefix_sum`]: buffer A `[0, n)` (input and final
/// output), buffer B `[n, 2n)`, dead region `[2n, 3n)`.
pub fn prefix_sum_layout(n: usize) -> usize {
    3 * n
}

/// EREW inclusive prefix sum (Hillis–Steele with double buffering):
/// on exit, cell `i` holds `input[0] + … + input[i]`.
pub fn prefix_sum(_n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let id = Reg(0);
    let n_r = Reg(1);
    let d = Reg(2);
    let so = Reg(3); // source buffer offset
    let dof = Reg(4); // destination buffer offset
    let mask = Reg(5);
    let a1 = Reg(6);
    let a2 = Reg(7);
    let v1 = Reg(8);
    let v2 = Reg(9);
    let val = Reg(10);
    let cond = Reg(11);
    let dead = Reg(12);
    let t = Reg(13);
    let diff = Reg(14);

    b.proc_id(id);
    b.num_procs(n_r);
    b.load_imm(d, 1);
    b.load_imm(so, 0);
    b.mov(dof, n_r);
    b.mul_imm(dead, n_r, 2);
    b.add(dead, dead, id); // private dead cell: 2n + id

    let top = b.label();
    b.bind(top);
    // active iff id >= d
    b.le(mask, d, id);
    // v1 = src[id]
    b.add(a1, so, id);
    b.read(v1, a1);
    // a2 = active ? src[id - d] : dead
    b.sub(t, a1, d);
    b.sub(diff, t, dead);
    b.mul(diff, diff, mask);
    b.add(a2, dead, diff);
    b.read(v2, a2);
    // dst[id] = v1 + mask * v2
    b.mul(v2, v2, mask);
    b.add(val, v1, v2);
    b.add(t, dof, id);
    b.write(t, val);
    // swap buffers, double stride
    b.mov(t, so);
    b.mov(so, dof);
    b.mov(dof, t);
    b.mul_imm(d, d, 2);
    b.lt(cond, d, n_r);
    b.jnz(cond, top);

    // Result is in the `so` buffer; copy to A if needed (uniform branch).
    let done = b.label();
    b.jz(so, done);
    b.add(a1, so, id);
    b.read(v1, a1);
    b.write(id, v1);
    b.bind(done);
    b.halt();
    b.build()
}

/// Memory layout of [`broadcast_erew`]: data `[0, n)` (cell 0 is the source),
/// dead region `[n, 2n)`. On exit every cell of `[0, n)` holds the value.
pub fn broadcast_erew_layout(n: usize) -> usize {
    2 * n
}

/// EREW broadcast by recursive doubling: cell `0`'s value reaches all of
/// `[0, n)` in `⌈log₂ n⌉` rounds without any concurrent read.
pub fn broadcast_erew(_n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let id = Reg(0);
    let n_r = Reg(1);
    let d = Reg(2);
    let mask = Reg(3);
    let a2 = Reg(4);
    let v = Reg(5);
    let vown = Reg(6);
    let cond = Reg(7);
    let dead = Reg(8);
    let t = Reg(9);
    let twod = Reg(10);
    let diff = Reg(11);

    b.proc_id(id);
    b.num_procs(n_r);
    b.load_imm(d, 1);
    b.add(dead, n_r, id);

    let top = b.label();
    b.bind(top);
    // active iff d <= id < 2d
    b.le(mask, d, id);
    b.mul_imm(twod, d, 2);
    b.lt(cond, id, twod);
    b.mul(mask, mask, cond);
    // src = active ? id - d : dead
    b.sub(t, id, d);
    b.sub(diff, t, dead);
    b.mul(diff, diff, mask);
    b.add(a2, dead, diff);
    b.read(v, a2);
    // own = mem[id]; mem[id] = own + mask * (v - own)
    b.read(vown, id);
    b.sub(v, v, vown);
    b.mul(v, v, mask);
    b.add(v, vown, v);
    b.write(id, v);
    b.mul_imm(d, d, 2);
    b.lt(cond, d, n_r);
    b.jnz(cond, top);
    b.halt();
    b.build()
}

/// CREW broadcast: every processor reads cell 0 — one shared step.
pub fn broadcast_crew() -> Program {
    let mut b = ProgramBuilder::new();
    let id = Reg(0);
    let zero = Reg(1);
    let v = Reg(2);
    b.proc_id(id);
    b.load_imm(zero, 0);
    b.read(v, zero);
    b.write(id, v);
    b.halt();
    b.build()
}

/// CRCW-Max global maximum: every processor writes `input[id]` to cell `n`
/// under the MAX policy. Layout: input `[0, n)`, result at cell `n`.
pub fn max_crcw_layout(n: usize) -> usize {
    n + 1
}

/// CRCW-Max maximum in O(1) shared steps.
pub fn max_crcw(_n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let id = Reg(0);
    let n_r = Reg(1);
    let v = Reg(2);
    b.proc_id(id);
    b.num_procs(n_r);
    b.read(v, id);
    b.write(n_r, v); // all write cell n; Max policy resolves
    b.halt();
    b.build()
}

/// Memory layout of [`matvec`]: for an `r × c` matrix with `n = r·c`
/// processors —
/// * `A` row-major in `[0, rc)`
/// * `x` in `[rc, rc + c)`
/// * scratch products in `[rc + c, 2rc + c)`
/// * result `y` in `[2rc + c, 2rc + c + r)`
/// * dead region `[2rc + c + r, 3rc + c + r)`
pub fn matvec_layout(rows: usize, cols: usize) -> usize {
    let rc = rows * cols;
    3 * rc + cols + rows
}

/// CREW matrix–vector product `y = A·x` with one processor per matrix
/// entry: elementwise multiply, then an EREW tree reduction within each row.
/// This is the workload the 2DMOT was originally designed for (Nath,
/// Maheshwari & Bhatt 1983), computed here as a plain P-RAM program.
pub fn matvec(rows: usize, cols: usize) -> Program {
    let rc = (rows * cols) as Word;
    let c_w = cols as Word;
    let x_base = rc;
    let s_base = rc + c_w;
    let y_base = 2 * rc + c_w;
    let dead_base = 2 * rc + c_w + rows as Word;

    let mut b = ProgramBuilder::new();
    let id = Reg(0);
    let i = Reg(1);
    let j = Reg(2);
    let cr = Reg(3);
    let t = Reg(4);
    let a = Reg(5);
    let xv = Reg(6);
    let p = Reg(7);
    let d = Reg(8);
    let twod = Reg(9);
    let mask = Reg(10);
    let cond = Reg(11);
    let a2 = Reg(12);
    let v1 = Reg(13);
    let v2 = Reg(14);
    let dead = Reg(15);
    let zero = Reg(16);
    let sown = Reg(17);
    let diff = Reg(18);

    b.proc_id(id);
    b.load_imm(cr, c_w);
    b.div(i, id, cr);
    b.rem(j, id, cr);
    b.load_imm(zero, 0);
    b.load_imm(dead, dead_base);
    b.add(dead, dead, id);

    // p = A[id] * x[j]   (x[j] is a concurrent read across rows)
    b.read(a, id);
    b.load_imm(t, x_base);
    b.add(t, t, j);
    b.read(xv, t);
    b.mul(p, a, xv);
    // scratch[id] = p
    b.load_imm(sown, s_base);
    b.add(sown, sown, id);
    b.write(sown, p);

    // EREW tree reduction over each row of the scratch region.
    b.load_imm(d, 1);
    let top = b.label();
    b.bind(top);
    b.mul_imm(twod, d, 2);
    b.rem(t, j, twod);
    b.eq(mask, t, zero);
    b.add(t, j, d);
    b.lt(cond, t, cr);
    b.mul(mask, mask, cond);
    // a2 = active ? scratch[id + d] : dead
    b.add(a2, sown, d);
    b.sub(diff, a2, dead);
    b.mul(diff, diff, mask);
    b.add(a2, dead, diff);
    b.read(v1, sown);
    b.read(v2, a2);
    b.mul(v2, v2, mask);
    b.add(v1, v1, v2);
    b.write(sown, v1);
    b.mul_imm(d, d, 2);
    b.lt(cond, d, cr);
    b.jnz(cond, top);

    // j == 0 processors publish y[i] = scratch[i*c].
    // (Uniform instruction stream: others write their dead cell.)
    b.eq(mask, j, zero);
    b.load_imm(t, y_base);
    b.add(t, t, i);
    b.sub(diff, t, dead);
    b.mul(diff, diff, mask);
    b.add(t, dead, diff);
    b.read(v1, sown);
    b.write(t, v1);
    b.halt();
    b.build()
}

/// Memory layout of [`odd_even_sort`]: keys in `[0, n)` (sorted in place),
/// dead region `[n, 2n)`.
pub fn odd_even_sort_layout(n: usize) -> usize {
    2 * n
}

/// EREW odd–even transposition sort: `n` rounds of compare–exchange on
/// alternating adjacent pairs sort cells `[0, n)` ascending. `O(n)` P-RAM
/// steps — not work-optimal, but the classic synchronous sorting network
/// and a usefully *long* shared-memory workload for the schemes.
pub fn odd_even_sort(_n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let id = Reg(0);
    let n_r = Reg(1);
    let round = Reg(2);
    let mask = Reg(3);
    let t = Reg(4);
    let a1 = Reg(5);
    let a2 = Reg(6);
    let v1 = Reg(7);
    let v2 = Reg(8);
    let lo = Reg(9);
    let hi = Reg(10);
    let cond = Reg(11);
    let dead = Reg(12);
    let two = Reg(13);
    let diff = Reg(14);

    b.proc_id(id);
    b.num_procs(n_r);
    b.load_imm(round, 0);
    b.load_imm(two, 2);
    b.add(dead, n_r, id);

    let top = b.label();
    b.bind(top);
    // active iff id ≡ round (mod 2) and id + 1 < n: this processor owns the
    // pair (id, id+1) this round.
    b.rem(t, id, two);
    b.rem(cond, round, two);
    b.eq(mask, t, cond);
    b.add_imm(t, id, 1);
    b.lt(cond, t, n_r);
    b.mul(mask, mask, cond);
    // a1 = active ? id : dead ; a2 = active ? id+1 : dead
    b.sub(diff, id, dead);
    b.mul(diff, diff, mask);
    b.add(a1, dead, diff);
    b.add_imm(t, id, 1);
    b.sub(diff, t, dead);
    b.mul(diff, diff, mask);
    b.add(a2, dead, diff);
    // compare-exchange (inactive processors churn their dead cell)
    b.read(v1, a1);
    b.read(v2, a2);
    b.min(lo, v1, v2);
    b.max(hi, v1, v2);
    b.write(a1, lo);
    b.write(a2, hi);
    // next round
    b.add_imm(round, round, 1);
    b.lt(cond, round, n_r);
    b.jnz(cond, top);
    b.halt();
    b.build()
}

/// Memory layout of [`list_ranking`]: successor array `S` in `[0, n)`,
/// rank array `R` in `[n, 2n)`. CREW.
pub fn list_ranking_layout(n: usize) -> usize {
    2 * n
}

/// CREW list ranking by pointer jumping: after `⌈log₂ n⌉` rounds,
/// `R[i]` = number of links from node `i` to the terminal node (the node
/// with `S[t] == t`, whose initial rank must be 0; all others start at 1).
pub fn list_ranking(_n: usize) -> Program {
    let mut b = ProgramBuilder::new();
    let id = Reg(0);
    let n_r = Reg(1);
    let k = Reg(2);
    let s = Reg(3);
    let t = Reg(4);
    let r_own = Reg(5);
    let r_s = Reg(6);
    let s_s = Reg(7);
    let cond = Reg(8);
    let radd = Reg(9);

    b.proc_id(id);
    b.num_procs(n_r);
    b.load_imm(k, 1);

    let top = b.label();
    b.bind(top);
    // s = S[id]
    b.read(s, id);
    // r_own = R[id]; r_s = R[s]; s_s = S[s]    (all CREW-legal)
    b.add(t, n_r, id);
    b.read(r_own, t);
    b.add(radd, n_r, s);
    b.read(r_s, radd);
    b.read(s_s, s);
    // R[id] += r_s ; S[id] = s_s
    b.add(r_own, r_own, r_s);
    b.add(t, n_r, id);
    b.write(t, r_own);
    b.write(id, s_s);
    b.mul_imm(k, k, 2);
    b.lt(cond, k, n_r);
    b.jnz(cond, top);
    b.halt();
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Pram;
    use crate::memory::{IdealMemory, SharedMemory};
    use crate::types::{Mode, WritePolicy};

    fn run_erew(prog: &Program, n: usize, mem: &mut IdealMemory) {
        Pram::new(n, Mode::Erew)
            .run(prog, mem)
            .expect("EREW-legal program");
    }

    #[test]
    fn parallel_sum_various_sizes() {
        for n in [1usize, 2, 3, 7, 8, 16, 33, 64] {
            let mut mem = IdealMemory::new(parallel_sum_layout(n));
            for i in 0..n {
                mem.poke(i, (i + 1) as Word);
            }
            run_erew(&parallel_sum(n), n, &mut mem);
            let expect = (n * (n + 1) / 2) as Word;
            assert_eq!(mem.peek(0), expect, "n={n}");
        }
    }

    #[test]
    fn prefix_sum_matches_sequential() {
        for n in [1usize, 2, 5, 8, 16, 31] {
            let mut mem = IdealMemory::new(prefix_sum_layout(n));
            let input: Vec<Word> = (0..n).map(|i| (3 * i + 1) as Word).collect();
            for (i, &v) in input.iter().enumerate() {
                mem.poke(i, v);
            }
            run_erew(&prefix_sum(n), n, &mut mem);
            let mut acc = 0;
            for (i, &x) in input.iter().enumerate() {
                acc += x;
                assert_eq!(mem.peek(i), acc, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn broadcast_erew_reaches_everyone() {
        for n in [1usize, 2, 6, 8, 17, 32] {
            let mut mem = IdealMemory::new(broadcast_erew_layout(n));
            mem.poke(0, 42);
            run_erew(&broadcast_erew(n), n, &mut mem);
            for i in 0..n {
                assert_eq!(mem.peek(i), 42, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn broadcast_crew_single_shared_read_step() {
        let n = 16;
        let mut mem = IdealMemory::new(n);
        mem.poke(0, 7);
        let rep = Pram::new(n, Mode::Crew)
            .run(&broadcast_crew(), &mut mem)
            .unwrap();
        for i in 0..n {
            assert_eq!(mem.peek(i), 7);
        }
        // one read step + one write step
        assert_eq!(rep.shared_steps, 2);
    }

    #[test]
    fn broadcast_crew_rejected_under_erew() {
        let n = 4;
        let mut mem = IdealMemory::new(n);
        let err = Pram::new(n, Mode::Erew)
            .run(&broadcast_crew(), &mut mem)
            .unwrap_err();
        assert!(matches!(err, crate::types::PramError::ReadConflict { .. }));
    }

    #[test]
    fn max_crcw_finds_maximum() {
        let n = 9;
        let mut mem = IdealMemory::new(max_crcw_layout(n));
        let vals = [3, 1, 4, 1, 5, 9, 2, 6, 5];
        for (i, &v) in vals.iter().enumerate() {
            mem.poke(i, v);
        }
        Pram::new(n, Mode::Crcw(WritePolicy::Max))
            .run(&max_crcw(n), &mut mem)
            .unwrap();
        assert_eq!(mem.peek(n), 9);
    }

    #[test]
    fn matvec_small() {
        let (rows, cols) = (4, 4);
        let n = rows * cols;
        let mut mem = IdealMemory::new(matvec_layout(rows, cols));
        // A[i][j] = i + j, x[j] = j + 1
        for i in 0..rows {
            for j in 0..cols {
                mem.poke(i * cols + j, (i + j) as Word);
            }
        }
        for j in 0..cols {
            mem.poke(rows * cols + j, (j + 1) as Word);
        }
        Pram::new(n, Mode::Crew)
            .run(&matvec(rows, cols), &mut mem)
            .unwrap();
        let y_base = 2 * rows * cols + cols;
        for i in 0..rows {
            let expect: Word = (0..cols).map(|j| ((i + j) * (j + 1)) as Word).sum();
            assert_eq!(mem.peek(y_base + i), expect, "row {i}");
        }
    }

    #[test]
    fn matvec_rectangular() {
        let (rows, cols) = (2, 8);
        let n = rows * cols;
        let mut mem = IdealMemory::new(matvec_layout(rows, cols));
        for i in 0..rows {
            for j in 0..cols {
                mem.poke(i * cols + j, 1);
            }
        }
        for j in 0..cols {
            mem.poke(rows * cols + j, 2);
        }
        Pram::new(n, Mode::Crew)
            .run(&matvec(rows, cols), &mut mem)
            .unwrap();
        let y_base = 2 * rows * cols + cols;
        for i in 0..rows {
            assert_eq!(mem.peek(y_base + i), (2 * cols) as Word);
        }
    }

    #[test]
    fn odd_even_sort_sorts() {
        for n in [2usize, 3, 8, 16, 17] {
            let mut mem = IdealMemory::new(odd_even_sort_layout(n));
            // A worst-case-ish input: reverse order with duplicates.
            let input: Vec<Word> = (0..n).map(|i| ((n - i) % 5) as Word * 10 + 1).collect();
            for (i, &v) in input.iter().enumerate() {
                mem.poke(i, v);
            }
            run_erew(&odd_even_sort(n), n, &mut mem);
            let mut expect = input.clone();
            expect.sort_unstable();
            let got: Vec<Word> = (0..n).map(|i| mem.peek(i)).collect();
            assert_eq!(got, expect, "n={n}");
        }
    }

    #[test]
    fn odd_even_sort_already_sorted_is_stable() {
        let n = 8;
        let mut mem = IdealMemory::new(odd_even_sort_layout(n));
        for i in 0..n {
            mem.poke(i, i as Word);
        }
        run_erew(&odd_even_sort(n), n, &mut mem);
        for i in 0..n {
            assert_eq!(mem.peek(i), i as Word);
        }
    }

    #[test]
    fn list_ranking_straight_chain() {
        // Chain n-1 -> n-2 -> ... -> 0, terminal 0.
        let n = 16;
        let mut mem = IdealMemory::new(list_ranking_layout(n));
        for i in 0..n {
            let succ = if i == 0 { 0 } else { i - 1 };
            mem.poke(i, succ as Word);
            mem.poke(n + i, if i == 0 { 0 } else { 1 });
        }
        Pram::new(n, Mode::Crew)
            .run(&list_ranking(n), &mut mem)
            .unwrap();
        for i in 0..n {
            assert_eq!(mem.peek(n + i), i as Word, "rank of node {i}");
        }
    }

    #[test]
    fn list_ranking_shuffled_list() {
        // A list threaded through a fixed permutation.
        let n = 8;
        let order = [3usize, 6, 1, 7, 0, 4, 2, 5]; // order[k] = k-th node from terminal
        let mut mem = IdealMemory::new(list_ranking_layout(n));
        for k in 0..n {
            let node = order[k];
            let succ = if k == 0 { node } else { order[k - 1] };
            mem.poke(node, succ as Word);
            mem.poke(n + node, if k == 0 { 0 } else { 1 });
        }
        Pram::new(n, Mode::Crew)
            .run(&list_ranking(n), &mut mem)
            .unwrap();
        for (k, &node) in order.iter().enumerate() {
            assert_eq!(mem.peek(n + node), k as Word, "node {node}");
        }
    }

    #[test]
    fn programs_have_polylog_round_structure() {
        // Shared steps should grow like log n, not n.
        let mut prev = 0;
        for n in [8usize, 64, 512] {
            let mut mem = IdealMemory::new(parallel_sum_layout(n));
            let rep = Pram::new(n, Mode::Erew)
                .run(&parallel_sum(n), &mut mem)
                .unwrap();
            assert!(rep.shared_steps as usize <= 4 * n.ilog2() as usize + 4);
            assert!(rep.shared_steps > prev);
            prev = rep.shared_steps;
        }
    }
}
