//! [`FaultyExec`]: the phase-executor decorator that actually breaks things.
//!
//! Wraps any [`PhaseExecutor`] (the complete-interconnect
//! `BipartiteExec`, the routed `MotExec`, …) and applies the plan's
//! machine-level faults to every phase:
//!
//! * attempts aimed at a **dead module** never reach an interconnect —
//!   they come back [`AttemptOutcome::Dead`], so the protocol writes the
//!   copy off instead of retrying forever;
//! * attempts the inner executor *served* may lose their reply to a
//!   **transient message drop** — they come back
//!   [`AttemptOutcome::Killed`] and are retried, costing phases, not data.
//!
//! Link faults are not this decorator's job: they live inside the routed
//! network itself (`MotNetwork::fail_links`). `MotExec` reports them as
//! [`AttemptOutcome::Killed`] — the *route* is per-source, so a retry from
//! a rotated cluster member can route around the dead link; copies
//! unreachable from every source are written off by the protocol's
//! stage-2 budget instead.

use cr_core::protocol::{AttemptOutcome, CopyAttempt, PhaseExecutor};
use pram_machine::StepCost;
use simrng::{rng_from_seed, Rng, Xoshiro256pp};

/// Counters the decorator accumulates across phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultExecStats {
    /// Attempts aimed at a dead module (written off as permanent).
    pub dead_attempts: u64,
    /// Served attempts whose reply was dropped (transient, retried).
    pub dropped_messages: u64,
}

/// A [`PhaseExecutor`] decorator injecting module faults and message drops.
#[derive(Debug)]
pub struct FaultyExec<E> {
    inner: E,
    dead_modules: Vec<bool>,
    message_drop: f64,
    rng: Xoshiro256pp,
    /// Fault counters (read through `MajorityScheme::executor()`).
    pub stats: FaultExecStats,
    /// Scratch for the surviving attempts of the current phase.
    live: Vec<CopyAttempt>,
    live_idx: Vec<usize>,
    /// The inner executor's outcome buffer (this decorator's own buffer
    /// is index-aligned with the *full* attempt list, the inner one with
    /// the surviving sublist).
    inner_outcome: Vec<AttemptOutcome>,
}

impl<E> FaultyExec<E> {
    /// Decorate `inner`. `dead_modules[j]` kills module `j`; `message_drop`
    /// is the per-served-attempt reply-loss probability, drawn
    /// deterministically from `drop_seed`.
    pub fn new(inner: E, dead_modules: Vec<bool>, message_drop: f64, drop_seed: u64) -> Self {
        FaultyExec {
            inner,
            dead_modules,
            message_drop,
            rng: rng_from_seed(drop_seed),
            stats: FaultExecStats::default(),
            live: Vec::new(),
            live_idx: Vec::new(),
            inner_outcome: Vec::new(),
        }
    }

    /// The wrapped executor.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// The wrapped executor, mutably (e.g. to kill links on a `MotExec`'s
    /// network after construction).
    pub fn inner_mut(&mut self) -> &mut E {
        &mut self.inner
    }

    /// Number of dead modules in force.
    pub fn dead_modules(&self) -> usize {
        self.dead_modules.iter().filter(|&&d| d).count()
    }
}

impl<E: PhaseExecutor> PhaseExecutor for FaultyExec<E> {
    fn execute(
        &mut self,
        attempts: &[CopyAttempt],
        pipeline: usize,
        outcome: &mut Vec<AttemptOutcome>,
    ) -> StepCost {
        self.live.clear();
        self.live_idx.clear();
        outcome.clear();
        outcome.resize(attempts.len(), AttemptOutcome::Dead);
        for (i, a) in attempts.iter().enumerate() {
            if self
                .dead_modules
                .get(a.module as usize)
                .copied()
                .unwrap_or(false)
            {
                self.stats.dead_attempts += 1; // request sent into the void
            } else {
                self.live.push(*a);
                self.live_idx.push(i);
            }
        }
        let dead_count = (attempts.len() - self.live.len()) as u64;
        if self.live.is_empty() {
            // The phase still happened: requests went out and timed out.
            return StepCost {
                phases: 1,
                cycles: 1,
                messages: dead_count,
            };
        }
        let mut cost = self
            .inner
            .execute(&self.live, pipeline, &mut self.inner_outcome);
        debug_assert_eq!(self.inner_outcome.len(), self.live.len());
        for (k, &i) in self.live_idx.iter().enumerate() {
            let mut out = self.inner_outcome[k];
            if out == AttemptOutcome::Served
                && self.message_drop > 0.0
                && self.rng.chance(self.message_drop)
            {
                // The module served the copy but the reply was lost: the
                // issuing processor cannot tell this from a collision kill,
                // so the protocol retries it. (The store is only updated
                // for attempts reported Served, so no state diverges.)
                out = AttemptOutcome::Killed;
                self.stats.dropped_messages += 1;
            }
            outcome[i] = out;
        }
        cost.messages += dead_count; // one doomed request packet each
        cost
    }

    fn lossy(&self) -> bool {
        // Any injected fault class voids the protocol's progress
        // guarantee, so the protocol must degrade instead of panicking.
        self.message_drop > 0.0 || self.dead_modules.iter().any(|&d| d) || self.inner.lossy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::executors::BipartiteExec;

    fn attempt(req: u32, module: u32) -> CopyAttempt {
        CopyAttempt {
            req,
            var: req,
            copy: 0,
            module,
            row: 0,
            src: req,
        }
    }

    /// Test convenience: run one phase into a fresh outcome buffer.
    fn exec_phase<E: PhaseExecutor>(
        ex: &mut E,
        attempts: &[CopyAttempt],
        pipeline: usize,
    ) -> (Vec<AttemptOutcome>, StepCost) {
        let mut outcome = Vec::new();
        let cost = ex.execute(attempts, pipeline, &mut outcome);
        (outcome, cost)
    }

    #[test]
    fn dead_modules_yield_dead_outcomes() {
        let mut dead = vec![false; 8];
        dead[3] = true;
        let mut ex = FaultyExec::new(BipartiteExec::new(8), dead, 0.0, 1);
        let attempts = vec![attempt(0, 3), attempt(1, 5), attempt(2, 3)];
        let (out, cost) = exec_phase(&mut ex, &attempts, 1);
        assert_eq!(
            out,
            vec![
                AttemptOutcome::Dead,
                AttemptOutcome::Served,
                AttemptOutcome::Dead
            ]
        );
        assert_eq!(ex.stats.dead_attempts, 2);
        // The served attempt costs request + reply; the two dead attempts
        // cost one doomed request packet each.
        assert_eq!(cost.messages, 4);
    }

    #[test]
    fn all_dead_phase_still_costs_time() {
        let mut ex = FaultyExec::new(BipartiteExec::new(4), vec![true; 4], 0.0, 1);
        let (out, cost) = exec_phase(&mut ex, &[attempt(0, 1)], 1);
        assert_eq!(out, vec![AttemptOutcome::Dead]);
        assert_eq!(cost.phases, 1);
        assert_eq!(cost.cycles, 1);
    }

    #[test]
    fn message_drops_are_transient_and_deterministic() {
        let run = |seed: u64| {
            let mut ex = FaultyExec::new(BipartiteExec::new(16), vec![false; 16], 0.5, seed);
            let attempts: Vec<CopyAttempt> = (0..16).map(|i| attempt(i, i)).collect();
            let mut drops = Vec::new();
            for _ in 0..10 {
                let (out, _) = exec_phase(&mut ex, &attempts, 1);
                drops.push(out.iter().filter(|&&o| o == AttemptOutcome::Killed).count());
                assert!(
                    out.iter().all(|&o| o != AttemptOutcome::Dead),
                    "drops are never permanent"
                );
            }
            (drops, ex.stats.dropped_messages)
        };
        let (d1, n1) = run(7);
        let (d2, n2) = run(7);
        assert_eq!(d1, d2);
        assert_eq!(n1, n2);
        assert!(n1 > 0, "p = 0.5 over 160 attempts must drop something");
        let (d3, _) = run(8);
        assert_ne!(d1, d3, "different seed, different drop pattern");
    }

    #[test]
    fn fault_free_decorator_is_transparent() {
        let mut plain = BipartiteExec::new(8);
        let mut wrapped = FaultyExec::new(BipartiteExec::new(8), vec![false; 8], 0.0, 1);
        let attempts = vec![attempt(0, 2), attempt(1, 2), attempt(2, 7)];
        let (a_out, a_cost) = exec_phase(&mut plain, &attempts, 1);
        let (b_out, b_cost) = exec_phase(&mut wrapped, &attempts, 1);
        assert_eq!(a_out, b_out);
        assert_eq!(a_cost, b_cost);
        assert_eq!(wrapped.stats, FaultExecStats::default());
    }
}
