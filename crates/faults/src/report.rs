//! [`FaultReport`]: what the faults actually cost, measured not assumed.
//!
//! Every [`crate::FaultyScheme`] carries one report, updated per step by
//! comparing the faulty machine's answers against an identically-seeded
//! fault-free twin. All fields are integers, so reports from two runs of
//! the same plan can be compared for byte-identical equality (the
//! determinism property the test suite asserts).

use std::fmt;

/// Per-run fault metrics for one scheme.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Statically dead memory modules (contention units).
    pub dead_modules: usize,
    /// Statically dead processors.
    pub dead_processors: usize,
    /// Statically dead interconnect links (2DMOT schemes).
    pub dead_links: usize,
    /// Cells whose data the scheme can no longer guarantee to recover:
    /// hashed — cell's single module dead; majority — all `r` copies dead;
    /// IDA — block left below its share quorum. Computed statically from
    /// the plan and the memory distribution.
    pub lost_cells: usize,
    /// Steps executed.
    pub steps: u64,
    /// Read requests observed.
    pub reads: u64,
    /// Write requests observed.
    pub writes: u64,
    /// Reads that returned the fault-free twin's value.
    pub correct_reads: u64,
    /// Reads that returned a wrong (stale or failed) value for a cell that
    /// was still recoverable — e.g. a quorum cut short by link faults, or
    /// state diverged by dead-processor writes that never happened.
    pub stale_reads: u64,
    /// Reads of statically lost cells.
    pub lost_reads: u64,
    /// Reads never issued because their processor is dead. Always
    /// `reads = correct + stale + lost + unserved`.
    pub unserved_reads: u64,
    /// Writes to statically lost cells (the data has nowhere to live).
    pub lost_writes: u64,
    /// Correct reads of cells with ≥ 1 faulty copy — the majority quorum
    /// absorbed the fault (`uw-mpc`, `hp-dmmpc`, the 2DMOT schemes).
    pub recovered_majority: u64,
    /// Correct reads of cells with ≥ 1 lost share — IDA decoding absorbed
    /// the fault.
    pub recovered_ida: u64,
    /// Requests never issued because their processor is dead.
    pub unserved_requests: u64,
    /// Copy attempts written off at dead modules (protocol schemes).
    pub dead_attempts: u64,
    /// Served attempts whose reply was dropped (transient message faults).
    pub dropped_messages: u64,
    /// Total phases the faulty machine spent.
    pub faulty_phases: u64,
    /// Total phases the fault-free twin spent on the same workload.
    pub baseline_phases: u64,
    /// Total cycles the faulty machine spent.
    pub faulty_cycles: u64,
    /// Total cycles the fault-free twin spent.
    pub baseline_cycles: u64,
}

impl FaultReport {
    /// Time blowup versus the fault-free twin, in phases (1.0 = no
    /// slowdown; faults cost nothing when nothing was touched). Can dip
    /// below 1.0 under *processor* faults: dead processors issue less
    /// work, so the surviving machine genuinely finishes its (smaller)
    /// steps sooner than the fault-free twin finishes the full ones.
    pub fn slowdown(&self) -> f64 {
        if self.baseline_phases == 0 {
            1.0
        } else {
            self.faulty_phases as f64 / self.baseline_phases as f64
        }
    }

    /// Fraction of *issued* reads that came back correct (reads a dead
    /// processor never issued measure processor loss, not data loss, and
    /// are excluded — see [`Self::unserved_reads`]).
    pub fn read_survival(&self) -> f64 {
        let issued = self.reads - self.unserved_reads;
        if issued == 0 {
            1.0
        } else {
            self.correct_reads as f64 / issued as f64
        }
    }

    /// One JSON object per `(scheme, fault fraction)` pair — the row
    /// format experiment E14 emits for downstream plotting.
    pub fn to_json(&self, scheme: &str, fraction: f64) -> String {
        format!(
            concat!(
                "{{\"experiment\":\"E14\",\"scheme\":\"{}\",\"f\":{:.6},",
                "\"dead_modules\":{},\"dead_processors\":{},\"dead_links\":{},",
                "\"lost_cells\":{},\"steps\":{},\"reads\":{},\"writes\":{},",
                "\"correct_reads\":{},\"stale_reads\":{},\"lost_reads\":{},",
                "\"unserved_reads\":{},",
                "\"lost_writes\":{},\"recovered_majority\":{},\"recovered_ida\":{},",
                "\"unserved_requests\":{},\"dead_attempts\":{},\"dropped_messages\":{},",
                "\"faulty_phases\":{},\"baseline_phases\":{},",
                "\"read_survival\":{:.6},\"slowdown\":{:.4}}}"
            ),
            scheme,
            fraction,
            self.dead_modules,
            self.dead_processors,
            self.dead_links,
            self.lost_cells,
            self.steps,
            self.reads,
            self.writes,
            self.correct_reads,
            self.stale_reads,
            self.lost_reads,
            self.unserved_reads,
            self.lost_writes,
            self.recovered_majority,
            self.recovered_ida,
            self.unserved_requests,
            self.dead_attempts,
            self.dropped_messages,
            self.faulty_phases,
            self.baseline_phases,
            self.read_survival(),
            self.slowdown(),
        )
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "FaultReport: {} dead modules, {} dead processors, {} dead links",
            self.dead_modules, self.dead_processors, self.dead_links
        )?;
        writeln!(f, "  lost cells (unrecoverable): {:>8}", self.lost_cells)?;
        writeln!(
            f,
            "  reads: {} total = {} correct + {} stale + {} lost + {} unserved  (survival {:.1}%)",
            self.reads,
            self.correct_reads,
            self.stale_reads,
            self.lost_reads,
            self.unserved_reads,
            100.0 * self.read_survival()
        )?;
        writeln!(
            f,
            "  recovered by majority: {:>6}   recovered by IDA: {:>6}",
            self.recovered_majority, self.recovered_ida
        )?;
        writeln!(
            f,
            "  writes: {} ({} lost)   unserved requests: {}",
            self.writes, self.lost_writes, self.unserved_requests
        )?;
        writeln!(
            f,
            "  dead attempts: {}   dropped messages: {}",
            self.dead_attempts, self.dropped_messages
        )?;
        write!(
            f,
            "  phases: {} vs {} fault-free  (slowdown {:.2}x over {} steps)",
            self.faulty_phases,
            self.baseline_phases,
            self.slowdown(),
            self.steps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_guard_division_by_zero() {
        let r = FaultReport::default();
        assert_eq!(r.slowdown(), 1.0);
        assert_eq!(r.read_survival(), 1.0);
    }

    #[test]
    fn json_row_is_well_formed() {
        let r = FaultReport {
            dead_modules: 4,
            reads: 10,
            correct_reads: 9,
            lost_reads: 1,
            faulty_phases: 30,
            baseline_phases: 20,
            ..Default::default()
        };
        let j = r.to_json("hp-dmmpc", 0.0625);
        assert!(j.starts_with('{') && j.ends_with('}'));
        for key in [
            "\"experiment\":\"E14\"",
            "\"scheme\":\"hp-dmmpc\"",
            "\"f\":0.062500",
            "\"dead_modules\":4",
            "\"slowdown\":1.5000",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
        // Balanced braces and no trailing comma.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert!(!j.contains(",}"));
    }

    #[test]
    fn display_names_the_report() {
        let r = FaultReport::default();
        let s = format!("{r}");
        assert!(s.contains("FaultReport"));
        assert!(s.contains("slowdown"));
    }
}
