//! [`FaultyScheme`]: any member of the scheme zoo, running on a broken
//! machine, measured against its fault-free twin.
//!
//! [`FaultyBuilder`] mirrors `cr_core::SimBuilder` — same `(n, m)`, same
//! kind, same seed, same derived configuration — but threads the
//! [`FaultPlan`] through every layer the scheme touches:
//!
//! * the copy-based schemes get their `PhaseExecutor` wrapped in a
//!   [`FaultyExec`] (dead modules, message drops) and, on the 2DMOT, dead
//!   links injected into the routed network itself;
//! * the hashed baseline loses every request aimed at a dead module —
//!   there is no second copy to try;
//! * the IDA scheme recovers from surviving shares via its
//!   unavailability mask.
//!
//! Every constructed [`FaultyScheme`] also carries an identically-seeded
//! **fault-free twin** built through `SimBuilder`. Each step runs on both
//! machines; the twin supplies the ground-truth values (what a correct
//! run would have returned) and the fault-free cost, so the
//! [`FaultReport`] can count correct / stale / lost reads and measure
//! slowdown instead of guessing it.

use cr_core::executors::{BipartiteExec, MotExec};
use cr_core::majority::{MajorityScheme, StepReport};
use cr_core::protocol::{FlatPlacement, GridPlacement};
use cr_core::{
    BuildError, FaultTotals, HashedDmmpc, Hp2dmotLeaves, IdaShared, Lpp2dmot, Scheme, SchemeKind,
    SchemeParams, SimBuilder,
};
use memdist::MemoryMap;
use pram_machine::{AccessResult, SharedMemory, Word};

use crate::exec::FaultyExec;
use crate::plan::FaultPlan;
use crate::report::FaultReport;

/// The faulty engine: each zoo member with its fault wiring.
#[derive(Debug)]
enum Engine {
    /// `uw-mpc` / `hp-dmmpc`: complete interconnect behind a fault
    /// decorator.
    Flat(MajorityScheme<FaultyExec<BipartiteExec>, FlatPlacement>),
    /// `hp-2dmot`: routed mesh (leaf memory) behind a fault decorator,
    /// with link faults inside the network.
    Grid(MajorityScheme<FaultyExec<MotExec>, GridPlacement>),
    /// `lpp-2dmot`: routed mesh, root memory.
    GridFlat(MajorityScheme<FaultyExec<MotExec>, FlatPlacement>),
    /// `hashed`: no protocol — dead-module requests are simply lost.
    Hashed(HashedDmmpc),
    /// `ida`: recovery from surviving shares via the unavailability mask.
    Ida(IdaShared),
}

impl Engine {
    fn access(&mut self, reads: &[usize], writes: &[(usize, Word)]) -> AccessResult {
        match self {
            Engine::Flat(s) => s.access(reads, writes),
            Engine::Grid(s) => s.access(reads, writes),
            Engine::GridFlat(s) => s.access(reads, writes),
            Engine::Hashed(s) => s.access(reads, writes),
            Engine::Ida(s) => s.access(reads, writes),
        }
    }

    fn poke(&mut self, addr: usize, value: Word) {
        match self {
            Engine::Flat(s) => s.poke(addr, value),
            Engine::Grid(s) => s.poke(addr, value),
            Engine::GridFlat(s) => s.poke(addr, value),
            Engine::Hashed(s) => s.poke(addr, value),
            Engine::Ida(s) => s.poke(addr, value),
        }
    }

    fn last_step(&self) -> StepReport {
        match self {
            Engine::Flat(s) => s.last_step(),
            Engine::Grid(s) => s.last_step(),
            Engine::GridFlat(s) => s.last_step(),
            Engine::Hashed(s) => Scheme::last_step(s),
            Engine::Ida(s) => Scheme::last_step(s),
        }
    }

    fn totals(&self) -> (StepReport, u64) {
        match self {
            Engine::Flat(s) => s.totals(),
            Engine::Grid(s) => s.totals(),
            Engine::GridFlat(s) => s.totals(),
            Engine::Hashed(s) => Scheme::totals(s),
            Engine::Ida(s) => Scheme::totals(s),
        }
    }

    /// Fault counters from the decorated executor (protocol schemes only).
    fn exec_stats(&self) -> (u64, u64) {
        match self {
            Engine::Flat(s) => {
                let st = s.executor().stats;
                (st.dead_attempts, st.dropped_messages)
            }
            Engine::Grid(s) => {
                let st = s.executor().stats;
                (st.dead_attempts, st.dropped_messages)
            }
            Engine::GridFlat(s) => {
                let st = s.executor().stats;
                (st.dead_attempts, st.dropped_messages)
            }
            Engine::Hashed(_) | Engine::Ida(_) => (0, 0),
        }
    }
}

/// Builder for a [`FaultyScheme`] — `SimBuilder`'s fluent shape plus a
/// [`FaultPlan`].
///
/// ```
/// use cr_faults::{FaultPlan, FaultyBuilder};
/// use cr_core::SchemeKind;
/// use pram_machine::SharedMemory;
///
/// let mut s = FaultyBuilder::new(16, 256)
///     .kind(SchemeKind::HpDmmpc)
///     .plan(FaultPlan::modules(0.125))
///     .build()
///     .unwrap();
/// s.access(&[], &[(3, 42)]);
/// let r = s.access(&[3], &[]);
/// assert_eq!(r.read_values, vec![42], "a 12.5% module loss is absorbed");
/// assert_eq!(s.report().correct_reads, 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultyBuilder {
    n: usize,
    m: usize,
    kind: SchemeKind,
    seed: u64,
    plan: FaultPlan,
}

impl FaultyBuilder {
    /// Start a configuration for an `n`-processor machine over `m` cells,
    /// defaulting to the paper's Theorem 2 scheme and a fault-free plan.
    pub fn new(n: usize, m: usize) -> Self {
        FaultyBuilder {
            n,
            m,
            kind: SchemeKind::HpDmmpc,
            seed: simrng::DEFAULT_SEED,
            plan: FaultPlan::none(),
        }
    }

    /// Select the scheme.
    pub fn kind(mut self, kind: SchemeKind) -> Self {
        self.kind = kind;
        self
    }

    /// Seed of the memory distribution (shared with the fault-free twin).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The fault plan to inject.
    pub fn plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Validate, construct the scheme with its fault wiring, and pair it
    /// with its fault-free twin.
    pub fn build(&self) -> Result<FaultyScheme, BuildError> {
        let FaultyBuilder {
            n,
            m,
            kind,
            seed,
            plan,
        } = *self;
        // The twin validates the configuration exactly as SimBuilder would.
        let baseline = SimBuilder::new(n, m).kind(kind).seed(seed).build()?;
        let hot = plan.hot_cell % m.max(1);

        // Per-kind: build the engine, the dead-module mask over the
        // scheme's own contention units, and the per-cell classification
        // (how many of the cell's copies/shares are faulty; is it still
        // recoverable at all).
        let mut dead_links = 0usize;
        let (engine, dead_modules, faulty_copies, recoverable) = match kind {
            SchemeKind::HpDmmpc | SchemeKind::UwMpc => {
                let builder = SimBuilder::new(n, m).kind(kind).seed(seed);
                let cfg = match kind {
                    SchemeKind::HpDmmpc => builder.fine_config()?,
                    _ => builder.coarse_config(n)?,
                }
                .with_pipeline(1);
                let r = cfg.redundancy();
                let map = MemoryMap::random(cfg.m, cfg.modules, r, cfg.seed);
                let (dead, fc, rec) = plan_over_map(&map, &plan, hot);
                let exec = FaultyExec::new(
                    BipartiteExec::new(cfg.modules),
                    dead.clone(),
                    plan.message_drop,
                    plan.drop_seed(),
                );
                let s = MajorityScheme::assemble(cfg, cfg.modules, exec, FlatPlacement);
                (Engine::Flat(s), dead, fc, rec)
            }
            SchemeKind::Hp2dmotLeaves => {
                let cfg = SimBuilder::new(n, m).kind(kind).seed(seed).fine_config()?;
                let side = Hp2dmotLeaves::side_for(&cfg);
                let cfg = cfg.with_modules(side);
                let r = cfg.redundancy();
                let map = MemoryMap::random(cfg.m, side, r, cfg.seed);
                let (dead, fc, rec) = plan_over_map(&map, &plan, hot);
                let mut mot = MotExec::leaves(side);
                if plan.link_fraction > 0.0 {
                    dead_links = mot
                        .network_mut()
                        .fail_random_links(plan.link_fraction, plan.link_seed());
                }
                let exec = FaultyExec::new(mot, dead.clone(), plan.message_drop, plan.drop_seed());
                let s = MajorityScheme::assemble(cfg, side, exec, GridPlacement { side });
                (Engine::Grid(s), dead, fc, rec)
            }
            SchemeKind::Lpp2dmot => {
                let cfg = SimBuilder::new(n, m)
                    .kind(kind)
                    .seed(seed)
                    .coarse_config(n.max(2))?;
                let r = cfg.redundancy();
                let side = Lpp2dmot::side_for(&cfg);
                let map = MemoryMap::random(cfg.m, cfg.modules, r, cfg.seed);
                let (dead, fc, rec) = plan_over_map(&map, &plan, hot);
                let mut mot = MotExec::roots(side);
                if plan.link_fraction > 0.0 {
                    dead_links = mot
                        .network_mut()
                        .fail_random_links(plan.link_fraction, plan.link_seed());
                }
                let exec = FaultyExec::new(mot, dead.clone(), plan.message_drop, plan.drop_seed());
                let s = MajorityScheme::assemble(cfg, cfg.modules, exec, FlatPlacement);
                (Engine::GridFlat(s), dead, fc, rec)
            }
            SchemeKind::Hashed => {
                let modules = SimBuilder::new(n, m).kind(kind).hashed_modules();
                let inner = HashedDmmpc::new(n, m, modules, seed);
                let mut loads = vec![0usize; modules];
                for v in 0..m {
                    loads[inner.module_of(v)] += 1;
                }
                let hot_modules = vec![inner.module_of(hot)];
                let dead = plan.module_mask(modules, &loads, &hot_modules);
                let mut fc = vec![0u32; m];
                let mut rec = vec![true; m];
                for v in 0..m {
                    if dead[inner.module_of(v)] {
                        fc[v] = 1;
                        rec[v] = false; // the only copy is gone
                    }
                }
                (Engine::Hashed(inner), dead, fc, rec)
            }
            SchemeKind::Ida => {
                let (modules, b, d) = SimBuilder::new(n, m).kind(kind).ida_layout()?;
                let mut inner = IdaShared::new(n, m, modules, b, d);
                let store = inner.store();
                let vars_per_block = store.vars_per_block();
                let blocks = m.div_ceil(vars_per_block);
                let q = store.quorum();
                let mut loads = vec![0usize; modules];
                for blk in 0..blocks {
                    for i in 0..d {
                        loads[store.module_of_share(blk, i)] += 1;
                    }
                }
                let hot_blk = hot / vars_per_block;
                let hot_modules: Vec<usize> =
                    (0..d).map(|i| store.module_of_share(hot_blk, i)).collect();
                let dead = plan.module_mask(modules, &loads, &hot_modules);
                let mut fc = vec![0u32; m];
                let mut rec = vec![true; m];
                for blk in 0..blocks {
                    let dead_shares = (0..d)
                        .filter(|&i| dead[store.module_of_share(blk, i)])
                        .count();
                    let block_ok = d - dead_shares >= q;
                    for v in blk * vars_per_block..((blk + 1) * vars_per_block).min(m) {
                        fc[v] = dead_shares as u32;
                        rec[v] = block_ok;
                    }
                }
                inner.set_unavailable(&dead);
                (Engine::Ida(inner), dead, fc, rec)
            }
        };

        let dead_procs = plan.processor_mask(n);
        let report = FaultReport {
            dead_modules: dead_modules.iter().filter(|&&d| d).count(),
            dead_processors: dead_procs.iter().filter(|&&d| d).count(),
            dead_links,
            lost_cells: recoverable.iter().filter(|&&ok| !ok).count(),
            ..Default::default()
        };
        Ok(FaultyScheme {
            kind,
            engine,
            baseline,
            plan,
            dead_procs,
            faulty_copies,
            recoverable,
            report,
        })
    }
}

/// Materialize a plan over a replicated memory map: the dead-module mask
/// (adversarial placement aims at the hot cell's copy modules, then map
/// load) plus the per-cell classification. One function, so the three
/// majority-scheme arms of [`FaultyBuilder::build`] cannot diverge.
fn plan_over_map(
    map: &MemoryMap,
    plan: &FaultPlan,
    hot: usize,
) -> (Vec<bool>, Vec<u32>, Vec<bool>) {
    let hot_modules: Vec<usize> = map.copies(hot).iter().map(|&md| md as usize).collect();
    let dead = plan.module_mask(map.modules(), &map.module_loads(), &hot_modules);
    let (fc, rec) = classify_map(map, &dead);
    (dead, fc, rec)
}

/// Per-cell fault classification over a replicated memory map: how many of
/// each cell's copies sit in dead modules, and whether any copy survives.
fn classify_map(map: &MemoryMap, dead: &[bool]) -> (Vec<u32>, Vec<bool>) {
    let r = map.redundancy();
    let mut faulty = vec![0u32; map.vars()];
    let mut recoverable = vec![true; map.vars()];
    for v in 0..map.vars() {
        let fc = map
            .copies(v)
            .iter()
            .filter(|&&md| dead[md as usize])
            .count();
        faulty[v] = fc as u32;
        recoverable[v] = fc < r;
    }
    (faulty, recoverable)
}

/// A scheme from the zoo running under a [`FaultPlan`], paired with its
/// fault-free twin. Implements [`Scheme`], so zoo-sweeping experiments
/// drive it exactly like a healthy machine — plus [`Self::report`] for
/// what the faults cost.
#[derive(Debug)]
pub struct FaultyScheme {
    kind: SchemeKind,
    engine: Engine,
    baseline: Box<dyn Scheme>,
    plan: FaultPlan,
    dead_procs: Vec<bool>,
    /// Per cell: copies/shares of this cell residing in dead modules.
    faulty_copies: Vec<u32>,
    /// Per cell: whether the scheme can still guarantee recovery.
    recoverable: Vec<bool>,
    report: FaultReport,
}

impl FaultyScheme {
    /// The per-run fault metrics accumulated so far.
    pub fn report(&self) -> FaultReport {
        self.report
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Cells the plan made statically unrecoverable.
    pub fn lost_cells(&self) -> usize {
        self.report.lost_cells
    }

    /// Whether `cell` is still recoverable under the plan.
    pub fn is_recoverable(&self, cell: usize) -> bool {
        self.recoverable[cell]
    }

    /// How many of `cell`'s copies/shares sit in dead modules.
    pub fn faulty_copies(&self, cell: usize) -> u32 {
        self.faulty_copies[cell]
    }
}

impl SharedMemory for FaultyScheme {
    fn size(&self) -> usize {
        self.baseline.size()
    }

    fn access(&mut self, reads: &[usize], writes: &[(usize, Word)]) -> AccessResult {
        // The twin executes the intended step: its answers are the ground
        // truth a correct machine would produce, its cost the fault-free
        // baseline.
        let truth = self.baseline.access(reads, writes);
        let nreads = reads.len();
        let hashed = matches!(self.engine, Engine::Hashed(_));

        // Requests from dead processors are never issued; the surviving
        // requests are re-indexed onto the engine's processors 0..k (the
        // static-fault model's renumbering of live processors). On the
        // hashed scheme, requests to dead modules have nowhere to go at
        // all (their target modules are collected so the timeout they
        // cost is still charged below).
        let mut dead_targets: Vec<usize> = Vec::new();
        let mut live_reads = Vec::with_capacity(nreads);
        let mut live_read_pos = Vec::with_capacity(nreads);
        for (i, &a) in reads.iter().enumerate() {
            if self.dead_procs.get(i).copied().unwrap_or(false) {
                self.report.unserved_requests += 1;
                continue;
            }
            if hashed && self.faulty_copies[a] > 0 {
                if let Engine::Hashed(h) = &self.engine {
                    dead_targets.push(h.module_of(a));
                }
                continue; // classified as a lost read below
            }
            live_read_pos.push(i);
            live_reads.push(a);
        }
        let mut live_writes = Vec::with_capacity(writes.len());
        for (j, &(a, v)) in writes.iter().enumerate() {
            if self.dead_procs.get(nreads + j).copied().unwrap_or(false) {
                self.report.unserved_requests += 1;
                continue;
            }
            if hashed && self.faulty_copies[a] > 0 {
                if let Engine::Hashed(h) = &self.engine {
                    dead_targets.push(h.module_of(a));
                }
                continue; // the cell's only module is dead
            }
            live_writes.push((a, v));
        }

        let mut res = self.engine.access(&live_reads, &live_writes);
        // Requests aimed at a dead module were still *sent* — the issuing
        // processors wait out the dead module's (unserved) queue before
        // giving up, so the step cannot be cheaper than that queue depth.
        // Without this charge, losing cells would make the hashed machine
        // look *faster* (its congestion is computed over fewer requests).
        if !dead_targets.is_empty() {
            // Deepest dead-module queue = longest run of one module id
            // (sort + scan: deterministic, no hashing).
            dead_targets.sort_unstable();
            let mut timeout = 0u64;
            let mut run = 0u64;
            let mut prev = usize::MAX;
            for &md in &dead_targets {
                run = if md == prev { run + 1 } else { 1 };
                prev = md;
                timeout = timeout.max(run);
            }
            res.cost.phases = res.cost.phases.max(timeout);
            res.cost.cycles = res.cost.cycles.max(timeout);
        }
        let mut read_values = vec![0 as Word; nreads];
        for (k, &i) in live_read_pos.iter().enumerate() {
            read_values[i] = res.read_values[k];
        }

        // Classify every intended read against the twin's answer.
        for (i, &a) in reads.iter().enumerate() {
            self.report.reads += 1;
            if self.dead_procs.get(i).copied().unwrap_or(false) {
                self.report.unserved_reads += 1;
                continue; // in unserved_requests too (with the writes)
            }
            if !self.recoverable[a] {
                self.report.lost_reads += 1;
            } else if read_values[i] == truth.read_values[i] {
                self.report.correct_reads += 1;
                if self.faulty_copies[a] > 0 {
                    match self.kind {
                        SchemeKind::Ida => self.report.recovered_ida += 1,
                        SchemeKind::Hashed => unreachable!("faulty hashed cell is lost"),
                        _ => self.report.recovered_majority += 1,
                    }
                }
            } else {
                self.report.stale_reads += 1;
            }
        }
        self.report.writes += writes.len() as u64;
        self.report.lost_writes += writes
            .iter()
            .filter(|&&(a, _)| !self.recoverable[a])
            .count() as u64;

        self.report.steps += 1;
        self.report.faulty_phases += res.cost.phases;
        self.report.faulty_cycles += res.cost.cycles;
        self.report.baseline_phases += truth.cost.phases;
        self.report.baseline_cycles += truth.cost.cycles;
        let (dead_attempts, dropped) = self.engine.exec_stats();
        self.report.dead_attempts = dead_attempts;
        self.report.dropped_messages = dropped;

        AccessResult {
            read_values,
            cost: res.cost,
        }
    }

    fn poke(&mut self, addr: usize, value: Word) {
        // Initialization path: both machines receive it, outside the
        // report's step accounting.
        self.baseline.poke(addr, value);
        self.engine.poke(addr, value);
    }
}

impl Scheme for FaultyScheme {
    fn kind(&self) -> SchemeKind {
        self.kind
    }

    fn redundancy(&self) -> f64 {
        self.baseline.redundancy()
    }

    fn modules(&self) -> usize {
        self.baseline.modules()
    }

    fn last_step(&self) -> StepReport {
        self.engine.last_step()
    }

    fn totals(&self) -> (StepReport, u64) {
        self.engine.totals()
    }

    fn params(&self) -> SchemeParams {
        self.baseline.params()
    }

    fn fault_counters(&self) -> Option<FaultTotals> {
        let (dead_attempts, dropped_messages) = self.engine.exec_stats();
        Some(FaultTotals {
            dead_attempts,
            dropped_messages,
            dead_modules: self.report.dead_modules as u64,
        })
    }

    fn cell_lost(&self, addr: usize) -> bool {
        !self.recoverable.get(addr).copied().unwrap_or(true)
    }
}
