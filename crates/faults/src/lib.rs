//! `cr-faults` — deterministic fault injection for the scheme zoo.
//!
//! The paper buys worst-case time with redundancy: `r = 2c−1` majority
//! copies (Theorems 2–3) or `d/b`-blowup dispersed shares (Schuster). The
//! same redundancy is exactly what tolerates *faults* — the setting of
//! Chlebus–Gasieniec–Pelc's static-fault P-RAM work — while the hashed
//! single-copy baseline loses data the moment anything dies. This crate
//! makes that contrast measurable:
//!
//! * [`FaultPlan`] — what is broken: static module faults, static
//!   processor faults, transient per-phase message drops, and (on the
//!   2DMOT schemes) static link faults, placed [`Placement::Random`]ly or
//!   [`Placement::Adversarial`]ly (aimed at the modules holding the hot
//!   cell's copies, via the scheme's own memory distribution);
//! * [`FaultyExec`] — a `PhaseExecutor` decorator that kills attempts to
//!   dead modules (permanently — the protocol writes the copy off) and
//!   drops served replies (transiently — the protocol retries);
//! * [`FaultyScheme`] / [`FaultyBuilder`] — any `SchemeKind`, built with
//!   the identical configuration `SimBuilder` would derive, running under
//!   a plan and paired with a fault-free twin for ground truth;
//! * [`FaultReport`] — what it cost: lost cells, stale reads, reads
//!   recovered by majority / by IDA decoding, and slowdown versus the
//!   twin.
//!
//! Determinism is load-bearing: a `(scheme, workload seed, plan)` triple
//! reproduces byte-identical [`FaultReport`]s, so fault experiments are
//! as replayable as the fault-free ones.
//!
//! ```
//! use cr_core::{Scheme, SchemeKind};
//! use cr_faults::{FaultPlan, FaultyBuilder, Placement};
//! use pram_machine::SharedMemory;
//!
//! // An eighth of the modules die, aimed at cell 7's copies.
//! let plan = FaultPlan::modules(0.125)
//!     .with_placement(Placement::Adversarial)
//!     .with_hot_cell(7);
//! let mut hp = FaultyBuilder::new(16, 256)
//!     .kind(SchemeKind::HpDmmpc)
//!     .plan(plan)
//!     .build()
//!     .unwrap();
//! hp.access(&[], &[(7, 99)]);
//! assert_eq!(hp.access(&[7], &[]).read_values, vec![99]);
//! let rep = hp.report();
//! assert_eq!(rep.correct_reads, 1);
//! assert!(rep.recovered_majority >= 1, "the quorum absorbed the faults");
//! ```

pub mod exec;
pub mod plan;
pub mod report;
pub mod scheme;

pub use exec::{FaultExecStats, FaultyExec};
pub use plan::{FaultPlan, Placement};
pub use report::FaultReport;
pub use scheme::{FaultyBuilder, FaultyScheme};

#[cfg(test)]
mod tests {
    use super::*;
    use cr_core::{Scheme, SchemeKind};
    use pram_machine::SharedMemory;
    use simrng::{rng_from_seed, Rng};

    fn drive(s: &mut FaultyScheme, n: usize, m: usize, steps: usize, seed: u64) {
        let mut rng = rng_from_seed(seed);
        for step in 0..steps {
            let p = workload(&mut rng, n, m, step);
            s.access(&p.0, &p.1);
        }
    }

    fn workload(
        rng: &mut impl Rng,
        n: usize,
        m: usize,
        step: usize,
    ) -> (Vec<usize>, Vec<(usize, i64)>) {
        let k = 1 + rng.index(n.min(m));
        let addrs = rng.sample_distinct(m as u64, k);
        let split = rng.index(k + 1);
        (
            addrs[..split].iter().map(|&a| a as usize).collect(),
            addrs[split..]
                .iter()
                .map(|&a| (a as usize, (step * 131 + a as usize) as i64))
                .collect(),
        )
    }

    #[test]
    fn fault_free_plan_matches_healthy_scheme_everywhere() {
        for kind in SchemeKind::ALL {
            let mut faulty = FaultyBuilder::new(8, 64)
                .kind(kind)
                .plan(FaultPlan::none())
                .build()
                .unwrap();
            drive(&mut faulty, 8, 64, 12, 5);
            let rep = faulty.report();
            assert_eq!(rep.lost_cells, 0, "{kind}");
            assert_eq!(rep.stale_reads, 0, "{kind}");
            assert_eq!(rep.lost_reads, 0, "{kind}");
            assert_eq!(rep.correct_reads, rep.reads, "{kind}");
            assert_eq!(
                rep.faulty_phases, rep.baseline_phases,
                "{kind}: no faults, no slowdown"
            );
            assert_eq!(rep.dead_attempts, 0, "{kind}");
        }
    }

    #[test]
    fn copy_schemes_absorb_module_faults_hashed_does_not() {
        let f = 0.125;
        for kind in [SchemeKind::HpDmmpc, SchemeKind::UwMpc] {
            let mut s = FaultyBuilder::new(16, 256)
                .kind(kind)
                .plan(FaultPlan::modules(f))
                .build()
                .unwrap();
            drive(&mut s, 16, 256, 20, 11);
            let rep = s.report();
            assert!(rep.dead_modules > 0, "{kind}");
            assert_eq!(rep.lost_cells, 0, "{kind}: r-way copies survive f = 1/8");
            assert_eq!(rep.correct_reads, rep.reads, "{kind}");
            assert!(rep.recovered_majority > 0, "{kind} recovered something");
            assert!(
                rep.faulty_phases >= rep.baseline_phases,
                "{kind}: discovering dead copies costs phases"
            );
        }
        let mut h = FaultyBuilder::new(16, 256)
            .kind(SchemeKind::Hashed)
            .plan(FaultPlan::modules(f))
            .build()
            .unwrap();
        drive(&mut h, 16, 256, 20, 11);
        let rep = h.report();
        assert!(rep.lost_cells > 0, "single-copy hashing loses data");
        assert!(rep.recovered_majority == 0 && rep.recovered_ida == 0);
    }

    #[test]
    fn ida_recovers_within_margin() {
        let mut s = FaultyBuilder::new(64, 256)
            .kind(SchemeKind::Ida)
            .plan(FaultPlan::modules(1.0 / 64.0))
            .build()
            .unwrap();
        drive(&mut s, 16, 256, 20, 13);
        let rep = s.report();
        assert!(rep.dead_modules >= 1);
        assert_eq!(rep.lost_cells, 0, "one dead module is within d-q");
        assert_eq!(rep.correct_reads, rep.reads);
        assert!(rep.recovered_ida > 0);
    }

    #[test]
    fn adversarial_placement_kills_the_hot_cell_first() {
        // Kill exactly r modules adversarially aimed at cell 0: the cell
        // must become unrecoverable even though the same count of random
        // faults almost never hits all r copies.
        let probe = cr_core::SimBuilder::new(16, 256)
            .kind(SchemeKind::HpDmmpc)
            .build()
            .unwrap();
        let r = probe.redundancy() as usize;
        let modules = probe.modules();
        let plan = FaultPlan::modules(r as f64 / modules as f64)
            .with_placement(Placement::Adversarial)
            .with_hot_cell(0);
        let mut s = FaultyBuilder::new(16, 256)
            .kind(SchemeKind::HpDmmpc)
            .plan(plan)
            .build()
            .unwrap();
        assert!(!s.is_recoverable(0), "all of cell 0's copies are dead");
        assert_eq!(s.faulty_copies(0) as usize, r);
        s.access(&[], &[(0, 5)]);
        let got = s.access(&[0], &[]);
        let rep = s.report();
        assert_eq!(rep.lost_reads, 1);
        assert_eq!(got.read_values, vec![0], "lost cells read as 0");

        // The same budget placed randomly (same seed) leaves cell 0 alive.
        let mut rnd = FaultyBuilder::new(16, 256)
            .kind(SchemeKind::HpDmmpc)
            .plan(plan.with_placement(Placement::Random))
            .build()
            .unwrap();
        assert!(rnd.is_recoverable(0));
        rnd.access(&[], &[(0, 5)]);
        assert_eq!(rnd.access(&[0], &[]).read_values, vec![5]);
    }

    #[test]
    fn message_drops_cost_time_not_data() {
        let mut s = FaultyBuilder::new(16, 256)
            .kind(SchemeKind::HpDmmpc)
            .plan(FaultPlan::none().with_message_drop(0.3))
            .build()
            .unwrap();
        drive(&mut s, 16, 256, 15, 17);
        let rep = s.report();
        assert_eq!(rep.correct_reads, rep.reads, "drops never corrupt");
        assert!(rep.dropped_messages > 0);
        assert!(
            rep.faulty_phases > rep.baseline_phases,
            "retries cost phases: {} vs {}",
            rep.faulty_phases,
            rep.baseline_phases
        );
    }

    #[test]
    fn processor_faults_unserve_requests() {
        let mut s = FaultyBuilder::new(16, 256)
            .kind(SchemeKind::HpDmmpc)
            .plan(FaultPlan::none().with_processor_fraction(0.25))
            .build()
            .unwrap();
        drive(&mut s, 16, 256, 10, 19);
        let rep = s.report();
        assert!(rep.unserved_requests > 0);
        // Dropped writes diverge the faulty machine from the intent, so
        // later reads of those cells come back stale — data loss through
        // dead processors, correctly attributed. Every read is classified
        // exactly once.
        assert!(rep.stale_reads > 0, "{rep}");
        assert_eq!(
            rep.correct_reads + rep.stale_reads + rep.lost_reads + rep.unserved_reads,
            rep.reads,
            "{rep}"
        );
    }

    #[test]
    fn link_faults_degrade_2dmot_schemes() {
        let mut s = FaultyBuilder::new(8, 64)
            .kind(SchemeKind::Hp2dmotLeaves)
            .plan(FaultPlan::none().with_link_fraction(0.02))
            .build()
            .unwrap();
        drive(&mut s, 8, 64, 10, 23);
        let rep = s.report();
        assert!(rep.dead_links > 0);
        // Link faults kill copies (dead attempts) but majority absorbs a
        // small fraction: most reads stay correct.
        assert!(rep.correct_reads * 2 > rep.reads, "{rep}");
    }

    #[test]
    fn deterministic_reports() {
        let plan = FaultPlan::modules(0.1).with_message_drop(0.1).with_seed(33);
        let run = || {
            let mut s = FaultyBuilder::new(16, 256)
                .kind(SchemeKind::HpDmmpc)
                .plan(plan)
                .build()
                .unwrap();
            drive(&mut s, 16, 256, 15, 3);
            (s.report(), s.totals())
        };
        let (ra, ta) = run();
        let (rb, tb) = run();
        assert_eq!(ra, rb);
        assert_eq!(ta, tb);
    }
}
