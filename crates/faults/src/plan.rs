//! Fault plans: *what* is broken, decided deterministically before the run.
//!
//! A [`FaultPlan`] is pure description — fractions of the machine to break
//! and a [`Placement`] strategy for choosing the victims. Materialization
//! into concrete masks happens in the per-scheme builder
//! ([`crate::FaultyBuilder`]), which knows each scheme's module universe
//! and copy geometry; the plan itself only implements the two placement
//! strategies over `(loads, hot modules)` supplied by the builder.

use std::fmt;
use std::str::FromStr;

use simrng::{rng_from_seed, Rng};

/// How fault victims are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Placement {
    /// Uniform over the universe, deterministically from the plan's seed.
    #[default]
    Random,
    /// Worst-case: kill the modules holding the copies of the plan's *hot
    /// cell* first (via the scheme's memory distribution), then continue
    /// with the most-loaded modules. This is the fault analogue of the
    /// Theorem 1 concentration adversary — it aims at exactly the
    /// redundancy a single variable has.
    Adversarial,
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Placement::Random => "random",
            Placement::Adversarial => "adversarial",
        })
    }
}

impl FromStr for Placement {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "random" | "rand" => Ok(Placement::Random),
            "adversarial" | "adv" | "worst" => Ok(Placement::Adversarial),
            other => Err(format!(
                "unknown fault placement '{other}' (try: random, adversarial)"
            )),
        }
    }
}

/// A deterministic description of everything broken in one run.
///
/// Fractions are of the respective universe (modules, processors, links);
/// a positive fraction always breaks at least one unit (`⌈f·U⌉`), so any
/// `f > 0` is a real fault scenario. `message_drop` is a transient
/// per-attempt drop probability — retried by the protocols, it costs time
/// rather than data. Everything is derived from `seed`, so two runs of the
/// same plan break byte-identically.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Fraction of memory modules (contention units) statically dead.
    pub module_fraction: f64,
    /// Fraction of processors statically dead (their requests are never
    /// issued).
    pub processor_fraction: f64,
    /// Probability that a served copy attempt's reply is dropped
    /// (transient; applies to the protocol-driven copy schemes).
    pub message_drop: f64,
    /// Fraction of interconnect links statically dead (2DMOT schemes only
    /// — the complete-interconnect models have no routed links).
    pub link_fraction: f64,
    /// Victim selection strategy.
    pub placement: Placement,
    /// The cell the adversarial placement aims at.
    pub hot_cell: usize,
    /// Seed for every random choice the plan makes.
    pub seed: u64,
}

impl FaultPlan {
    /// The fault-free plan (control runs).
    pub fn none() -> Self {
        FaultPlan {
            module_fraction: 0.0,
            processor_fraction: 0.0,
            message_drop: 0.0,
            link_fraction: 0.0,
            placement: Placement::Random,
            hot_cell: 0,
            seed: simrng::DEFAULT_SEED,
        }
    }

    /// Static module faults on a fraction `f` of the modules.
    pub fn modules(f: f64) -> Self {
        FaultPlan {
            module_fraction: f,
            ..Self::none()
        }
    }

    /// Override the placement strategy.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Add static processor faults.
    pub fn with_processor_fraction(mut self, f: f64) -> Self {
        self.processor_fraction = f;
        self
    }

    /// Add transient message drops.
    pub fn with_message_drop(mut self, p: f64) -> Self {
        self.message_drop = p;
        self
    }

    /// Add static link faults (2DMOT schemes).
    pub fn with_link_fraction(mut self, f: f64) -> Self {
        self.link_fraction = f;
        self
    }

    /// Aim the adversarial placement at a specific cell.
    pub fn with_hot_cell(mut self, cell: usize) -> Self {
        self.hot_cell = cell;
        self
    }

    /// Whether this plan breaks nothing at all.
    pub fn is_fault_free(&self) -> bool {
        self.module_fraction == 0.0
            && self.processor_fraction == 0.0
            && self.message_drop == 0.0
            && self.link_fraction == 0.0
    }

    /// How many units a fraction breaks: `⌈f·universe⌉`, clamped — so any
    /// positive fraction breaks at least one unit.
    pub fn count(fraction: f64, universe: usize) -> usize {
        ((fraction * universe as f64).ceil() as usize).min(universe)
    }

    /// Materialize the dead-module mask over a universe of `modules`
    /// contention units. `loads[j]` is how many copy slots module `j`
    /// holds and `hot` lists the modules holding the hot cell's copies —
    /// both supplied by the scheme-aware builder, both used only by the
    /// adversarial placement.
    pub fn module_mask(&self, modules: usize, loads: &[usize], hot: &[usize]) -> Vec<bool> {
        let count = Self::count(self.module_fraction, modules);
        let mut dead = vec![false; modules];
        match self.placement {
            Placement::Random => {
                let mut rng = rng_from_seed(simrng::mix64(self.seed ^ MODULE_SALT));
                for j in rng.sample_distinct(modules as u64, count) {
                    dead[j as usize] = true;
                }
            }
            Placement::Adversarial => {
                let mut picked = 0usize;
                for &j in hot {
                    if picked == count {
                        break;
                    }
                    if !dead[j] {
                        dead[j] = true;
                        picked += 1;
                    }
                }
                // Fill the remaining budget with the most-loaded modules
                // (stable: ties broken by index).
                let mut by_load: Vec<usize> = (0..modules).collect();
                by_load
                    .sort_by_key(|&j| (std::cmp::Reverse(loads.get(j).copied().unwrap_or(0)), j));
                for j in by_load {
                    if picked == count {
                        break;
                    }
                    if !dead[j] {
                        dead[j] = true;
                        picked += 1;
                    }
                }
            }
        }
        dead
    }

    /// Materialize the dead-processor mask. Note the machine model
    /// (Chlebus–Gąsieniec–Pelc-style static faults): surviving processors
    /// are renumbered contiguously and the protocol's clusters are
    /// rebuilt over them, so *which* processors die only determines which
    /// requests are never issued — the count is what degrades the
    /// machine. Adversarial placement kills a contiguous prefix (max
    /// requests lost from one cluster's worth of the request stream);
    /// random placement scatters the losses.
    pub fn processor_mask(&self, n: usize) -> Vec<bool> {
        let count = Self::count(self.processor_fraction, n);
        let mut dead = vec![false; n];
        match self.placement {
            Placement::Random => {
                let mut rng = rng_from_seed(simrng::mix64(self.seed ^ PROC_SALT));
                for p in rng.sample_distinct(n as u64, count) {
                    dead[p as usize] = true;
                }
            }
            Placement::Adversarial => {
                dead.iter_mut().take(count).for_each(|x| *x = true);
            }
        }
        dead
    }

    /// Sub-seed for the transient message-drop stream.
    pub fn drop_seed(&self) -> u64 {
        simrng::mix64(self.seed ^ DROP_SALT)
    }

    /// Sub-seed for link-fault selection.
    pub fn link_seed(&self) -> u64 {
        simrng::mix64(self.seed ^ LINK_SALT)
    }
}

const MODULE_SALT: u64 = 0x6d6f_6475_6c65; // "module"
const PROC_SALT: u64 = 0x7072_6f63; // "proc"
const DROP_SALT: u64 = 0x6472_6f70; // "drop"
const LINK_SALT: u64 = 0x6c69_6e6b; // "link"

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn positive_fraction_always_breaks_something() {
        assert_eq!(FaultPlan::count(0.0, 64), 0);
        assert_eq!(FaultPlan::count(1.0 / 1024.0, 64), 1);
        assert_eq!(FaultPlan::count(0.25, 64), 16);
        assert_eq!(FaultPlan::count(2.0, 64), 64);
    }

    #[test]
    fn random_mask_deterministic_in_seed() {
        let plan = FaultPlan::modules(0.25).with_seed(9);
        let a = plan.module_mask(64, &[], &[]);
        let b = plan.module_mask(64, &[], &[]);
        let c = plan.with_seed(10).module_mask(64, &[], &[]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.iter().filter(|&&d| d).count(), 16);
    }

    #[test]
    fn adversarial_mask_targets_hot_then_loaded() {
        let plan = FaultPlan::modules(4.0 / 8.0).with_placement(Placement::Adversarial);
        let loads = [1usize, 9, 2, 8, 3, 7, 4, 6];
        let hot = [5usize, 0];
        let dead = plan.module_mask(8, &loads, &hot);
        // Hot modules first, then the two most-loaded of the rest (1, 3).
        assert!(dead[5] && dead[0]);
        assert!(dead[1] && dead[3]);
        assert_eq!(dead.iter().filter(|&&d| d).count(), 4);
    }

    #[test]
    fn placement_parses() {
        assert_eq!("random".parse::<Placement>().unwrap(), Placement::Random);
        assert_eq!(
            "adversarial".parse::<Placement>().unwrap(),
            Placement::Adversarial
        );
        assert!("chaotic".parse::<Placement>().is_err());
    }

    #[test]
    fn fault_free_detection() {
        assert!(FaultPlan::none().is_fault_free());
        assert!(!FaultPlan::modules(0.1).is_fault_free());
        assert!(!FaultPlan::none().with_message_drop(0.5).is_fault_free());
    }
}
