//! Compact structured events and the per-shard ring buffer.
//!
//! An [`Event`] is seven words — tick, session id, kind, and four
//! kind-specific payload words — with no heap parts, so pushing one into
//! an [`EventRing`] is an index write (the push path passes `cr-lint`'s
//! `hot-alloc` rule). The tick is the *virtual* time from the service's
//! `SimClock`: under a manual clock the whole stream is byte-identical
//! run over run, which is what makes traces replayable evidence rather
//! than logs.
//!
//! Rings are fixed-capacity and overwrite-oldest: a long-running shard
//! keeps the most recent `capacity` events and counts what it dropped,
//! so tracing can stay always-on without unbounded memory. JSONL
//! rendering ([`Event::to_json`]) happens only at exposition time, off
//! the hot path.

/// What happened. Payload words `a..d` are interpreted per kind — see
/// [`Event::to_json`] for the schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventKind {
    /// Session opened: `a` = n (processors), `b` = m (cells),
    /// `c` = scheme index (position in `SchemeKind::ALL`).
    #[default]
    Open,
    /// A `STEP` command completed: `a` = steps executed, `b` = stage-1
    /// cycles, `c` = stage-2 cycles, `d` = messages.
    Step,
    /// Idle-TTL eviction: `a` = steps the session had run.
    Evict,
    /// Session closed: `a` = steps, `b` = final trace hash.
    Close,
    /// A command arrived while the shard queue was at capacity:
    /// `a` = observed depth.
    QueueFull,
    /// A step was served through fault handling: `a` = dead copy-access
    /// attempts, `b` = dropped messages (deltas for this command).
    Fault,
    /// A PRAM-consistency snapshot (`VERIFY` served, or a session's
    /// first violation): `a` = trace ops checked, `b` = violated (0/1),
    /// `c` = records truncated, `d` = coverage (0 = full, 1 = window).
    Verify,
    /// The shard crashed (chaos injection or operator action) and lost
    /// its live sessions: `a` = sessions lost.
    Crash,
    /// The shard restarted empty after a crash.
    Restart,
}

impl EventKind {
    /// The JSON `kind` tag.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Open => "open",
            EventKind::Step => "step",
            EventKind::Evict => "evict",
            EventKind::Close => "close",
            EventKind::QueueFull => "queue_full",
            EventKind::Fault => "fault",
            EventKind::Verify => "verify",
            EventKind::Crash => "crash",
            EventKind::Restart => "restart",
        }
    }
}

/// One trace event: fixed-size, `Copy`, no heap parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Event {
    /// Virtual time (`SimClock` tick nanos) when the event was recorded.
    pub tick: u64,
    /// The session the event concerns (0 for shard-level events).
    pub sid: u64,
    /// Discriminant; fixes the meaning of `a..d`.
    pub kind: EventKind,
    /// First payload word.
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
    /// Fourth payload word.
    pub d: u64,
}

impl Event {
    /// Render as one JSONL line (no trailing newline). Field names are
    /// kind-specific so dumps read without a decoder ring:
    ///
    /// ```json
    /// {"tick":0,"sid":1,"kind":"open","n":8,"m":64,"scheme":1}
    /// {"tick":0,"sid":1,"kind":"step","executed":4,"stage1_cycles":52,"stage2_cycles":12,"messages":96}
    /// {"tick":0,"sid":1,"kind":"close","steps":4,"trace":"a1278dc2e6a6acf1"}
    /// ```
    pub fn to_json(&self) -> String {
        let head = format!(
            "{{\"tick\":{},\"sid\":{},\"kind\":\"{}\"",
            self.tick,
            self.sid,
            self.kind.name()
        );
        let tail = match self.kind {
            EventKind::Open => {
                format!(",\"n\":{},\"m\":{},\"scheme\":{}}}", self.a, self.b, self.c)
            }
            EventKind::Step => format!(
                ",\"executed\":{},\"stage1_cycles\":{},\"stage2_cycles\":{},\"messages\":{}}}",
                self.a, self.b, self.c, self.d
            ),
            EventKind::Evict => format!(",\"steps\":{}}}", self.a),
            EventKind::Close => format!(",\"steps\":{},\"trace\":\"{:016x}\"}}", self.a, self.b),
            EventKind::QueueFull => format!(",\"depth\":{}}}", self.a),
            EventKind::Fault => format!(
                ",\"dead_attempts\":{},\"dropped_messages\":{}}}",
                self.a, self.b
            ),
            EventKind::Verify => format!(
                ",\"ops\":{},\"violated\":{},\"truncated\":{},\"coverage\":\"{}\"}}",
                self.a,
                self.b,
                self.c,
                if self.d == 0 { "full" } else { "window" }
            ),
            EventKind::Crash => format!(",\"lost\":{}}}", self.a),
            EventKind::Restart => "}".to_string(),
        };
        head + &tail
    }
}

/// A fixed-capacity overwrite-oldest ring of [`Event`]s.
///
/// The buffer is allocated once at construction; `push` afterwards is an
/// index write. Iteration yields events oldest-first.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<Event>,
    head: usize,
    len: usize,
    dropped: u64,
}

impl EventRing {
    /// A ring holding at most `capacity` events (capacity 0 drops all).
    pub fn with_capacity(capacity: usize) -> EventRing {
        EventRing {
            buf: vec![Event::default(); capacity],
            head: 0,
            len: 0,
            dropped: 0,
        }
    }

    /// Append an event, overwriting the oldest when full. Returns `true`
    /// when something was overwritten (or the capacity is zero) — the
    /// caller bumps its `events_dropped` counter on that signal.
    // lint: hot
    pub fn push(&mut self, ev: Event) -> bool {
        let cap = self.buf.len();
        if cap == 0 {
            self.dropped += 1;
            return true;
        }
        if self.len < cap {
            self.buf[(self.head + self.len) % cap] = ev;
            self.len += 1;
            false
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % cap;
            self.dropped += 1;
            true
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum events held before overwriting begins.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Events overwritten (lost) so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterate oldest-first over the buffered events.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        let cap = self.buf.len().max(1);
        (0..self.len).map(move |i| &self.buf[(self.head + i) % cap])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64, sid: u64) -> Event {
        Event {
            tick,
            sid,
            kind: EventKind::Step,
            a: 1,
            b: 2,
            c: 3,
            d: 4,
        }
    }

    #[test]
    fn ring_fills_then_wraps_oldest_first() {
        let mut r = EventRing::with_capacity(4);
        assert!(r.is_empty());
        for t in 0..4 {
            assert!(!r.push(ev(t, 9)), "no overwrite while filling");
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 0);
        // Two more: the two oldest (ticks 0, 1) are overwritten.
        assert!(r.push(ev(4, 9)));
        assert!(r.push(ev(5, 9)));
        assert_eq!(r.len(), 4);
        assert_eq!(r.dropped(), 2);
        let ticks: Vec<u64> = r.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![2, 3, 4, 5], "oldest-first after wrap");
    }

    #[test]
    fn ring_wraps_many_times() {
        let mut r = EventRing::with_capacity(3);
        for t in 0..100 {
            r.push(ev(t, 1));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 97);
        let ticks: Vec<u64> = r.iter().map(|e| e.tick).collect();
        assert_eq!(ticks, vec![97, 98, 99]);
    }

    #[test]
    fn zero_capacity_drops_everything() {
        let mut r = EventRing::with_capacity(0);
        assert!(r.push(ev(0, 1)));
        assert_eq!(r.len(), 0);
        assert_eq!(r.dropped(), 1);
        assert_eq!(r.iter().count(), 0);
    }

    #[test]
    fn json_schema_per_kind() {
        let open = Event {
            tick: 7,
            sid: 3,
            kind: EventKind::Open,
            a: 8,
            b: 64,
            c: 1,
            d: 0,
        };
        assert_eq!(
            open.to_json(),
            "{\"tick\":7,\"sid\":3,\"kind\":\"open\",\"n\":8,\"m\":64,\"scheme\":1}"
        );
        let close = Event {
            tick: 9,
            sid: 3,
            kind: EventKind::Close,
            a: 12,
            b: 0xa1278dc2e6a6acf1,
            c: 0,
            d: 0,
        };
        assert_eq!(
            close.to_json(),
            "{\"tick\":9,\"sid\":3,\"kind\":\"close\",\"steps\":12,\"trace\":\"a1278dc2e6a6acf1\"}"
        );
        let qf = Event {
            tick: 1,
            sid: 0,
            kind: EventKind::QueueFull,
            a: 1024,
            b: 0,
            c: 0,
            d: 0,
        };
        assert_eq!(
            qf.to_json(),
            "{\"tick\":1,\"sid\":0,\"kind\":\"queue_full\",\"depth\":1024}"
        );
        let vf = Event {
            tick: 2,
            sid: 5,
            kind: EventKind::Verify,
            a: 640,
            b: 0,
            c: 0,
            d: 1,
        };
        assert_eq!(
            vf.to_json(),
            "{\"tick\":2,\"sid\":5,\"kind\":\"verify\",\"ops\":640,\"violated\":0,\"truncated\":0,\"coverage\":\"window\"}"
        );
        let crash = Event {
            tick: 3,
            sid: 0,
            kind: EventKind::Crash,
            a: 5,
            b: 0,
            c: 0,
            d: 0,
        };
        assert_eq!(
            crash.to_json(),
            "{\"tick\":3,\"sid\":0,\"kind\":\"crash\",\"lost\":5}"
        );
        let restart = Event {
            tick: 4,
            sid: 0,
            kind: EventKind::Restart,
            a: 0,
            b: 0,
            c: 0,
            d: 0,
        };
        assert_eq!(
            restart.to_json(),
            "{\"tick\":4,\"sid\":0,\"kind\":\"restart\"}"
        );
    }
}
