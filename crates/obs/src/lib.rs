//! `cr-obs` — observability for the serving layer (DESIGN.md §10).
//!
//! The paper's constant-redundancy guarantee is a claim about per-step
//! cost distributions, so the serving layer needs a window into *what
//! every session did and when* that is as deterministic as the
//! simulation itself. This crate provides the two halves:
//!
//! * **Metrics** ([`handles`], [`registry`]) — preregistered
//!   [`Counter`]/[`Gauge`]/[`SharedHistogram`] handles recorded lock-free
//!   on shard threads (relaxed atomics, no allocation — the record paths
//!   pass `cr-lint`'s `hot-alloc` rule) and merged on read by a
//!   [`Registry`] that renders Prometheus-style exposition text for the
//!   `METRICS` verb and `repro metrics`.
//! * **Events** ([`events`]) — per-shard fixed-capacity ring buffers of
//!   compact structured [`Event`]s (open/step/evict/close, queue-full
//!   drops, fault injections) stamped with `SimClock` ticks, so a trace
//!   taken under a manual clock is byte-identical run over run and
//!   shard-count-invariant in aggregate. The `EVENTS` verb and
//!   `repro events` dump them as JSONL.
//!
//! The crate is part of the determinism-governed set: nothing here reads
//! wall-clock time or ambient randomness — ticks are handed in by the
//! caller, which gets them from the one sanctioned seam
//! (`cr_core::clock::SimClock`).

pub mod events;
pub mod handles;
pub mod registry;

pub use events::{Event, EventKind, EventRing};
pub use handles::{Counter, Gauge, SharedHistogram};
pub use registry::{Registry, RegistryBuilder};
