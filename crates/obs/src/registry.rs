//! The preregistered metrics registry and its Prometheus-style renderer.
//!
//! All families are declared up front ([`RegistryBuilder`]) before the
//! shard threads start: registration hands back one handle per shard, the
//! worker owns its handle, and nothing is ever looked up by name on the
//! hot path — recording is a relaxed atomic bump through the handle.
//! Reading ([`Registry::render`], [`Registry::total`]) merges across
//! shards on demand.
//!
//! Exposition is Prometheus text format: `# HELP`/`# TYPE` headers, one
//! `family{shard="i"} value` sample per shard, and one unlabeled
//! aggregate sample (the cross-shard sum). Histogram families render as
//! a merged summary (`{quantile="0.5"}`, `{quantile="0.99"}`, `_sum`,
//! `_count`). Families render in registration order and shards in index
//! order, so the text is deterministic; the unlabeled aggregate lines
//! are additionally *shard-count-invariant* under a fixed workload —
//! the property the determinism tests pin.

use crate::handles::{Counter, Gauge, SharedHistogram};
use metrics::Histogram;

enum FamilyKind {
    Counters(Vec<Counter>),
    Gauges(Vec<Gauge>),
    Histograms(Vec<SharedHistogram>),
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: FamilyKind,
}

/// Declares metric families before the workers exist.
pub struct RegistryBuilder {
    shards: usize,
    families: Vec<Family>,
}

impl RegistryBuilder {
    /// A builder for a service with `shards` shard workers.
    pub fn new(shards: usize) -> RegistryBuilder {
        RegistryBuilder {
            shards,
            families: Vec::new(),
        }
    }

    /// Register a counter family; returns one handle per shard.
    pub fn counters(&mut self, name: &'static str, help: &'static str) -> Vec<Counter> {
        let handles: Vec<Counter> = (0..self.shards).map(|_| Counter::new()).collect();
        self.families.push(Family {
            name,
            help,
            kind: FamilyKind::Counters(handles.clone()),
        });
        handles
    }

    /// Register a gauge family; returns one handle per shard.
    pub fn gauges(&mut self, name: &'static str, help: &'static str) -> Vec<Gauge> {
        let handles: Vec<Gauge> = (0..self.shards).map(|_| Gauge::new()).collect();
        self.families.push(Family {
            name,
            help,
            kind: FamilyKind::Gauges(handles.clone()),
        });
        handles
    }

    /// Register a histogram family; returns one handle per shard.
    pub fn histograms(&mut self, name: &'static str, help: &'static str) -> Vec<SharedHistogram> {
        let handles: Vec<SharedHistogram> =
            (0..self.shards).map(|_| SharedHistogram::new()).collect();
        self.families.push(Family {
            name,
            help,
            kind: FamilyKind::Histograms(handles.clone()),
        });
        handles
    }

    /// Freeze the registry. Handles stay live — the registry reads the
    /// same atomics the workers write.
    pub fn build(self) -> Registry {
        Registry {
            families: self.families,
        }
    }
}

/// The read side: merges per-shard cells and renders exposition text.
pub struct Registry {
    families: Vec<Family>,
}

impl Registry {
    /// The cross-shard sum of a counter or gauge family (`None` for
    /// unknown names and for histogram families).
    pub fn total(&self, name: &str) -> Option<u64> {
        self.families
            .iter()
            .find(|f| f.name == name)
            .and_then(|f| match &f.kind {
                FamilyKind::Counters(hs) => Some(hs.iter().map(Counter::get).sum()),
                FamilyKind::Gauges(hs) => Some(hs.iter().map(Gauge::get).sum()),
                FamilyKind::Histograms(_) => None,
            })
    }

    /// The merged snapshot of a histogram family (`None` otherwise).
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.families
            .iter()
            .find(|f| f.name == name)
            .and_then(|f| match &f.kind {
                FamilyKind::Histograms(hs) => {
                    let mut merged = Histogram::new();
                    for h in hs {
                        merged.merge(&h.snapshot());
                    }
                    Some(merged)
                }
                _ => None,
            })
    }

    /// Render the whole registry as Prometheus text exposition format.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.families {
            out.push_str(&format!("# HELP {} {}\n", f.name, f.help));
            match &f.kind {
                FamilyKind::Counters(hs) => {
                    out.push_str(&format!("# TYPE {} counter\n", f.name));
                    for (i, h) in hs.iter().enumerate() {
                        out.push_str(&format!("{}{{shard=\"{}\"}} {}\n", f.name, i, h.get()));
                    }
                    let total: u64 = hs.iter().map(Counter::get).sum();
                    out.push_str(&format!("{} {}\n", f.name, total));
                }
                FamilyKind::Gauges(hs) => {
                    out.push_str(&format!("# TYPE {} gauge\n", f.name));
                    for (i, h) in hs.iter().enumerate() {
                        out.push_str(&format!("{}{{shard=\"{}\"}} {}\n", f.name, i, h.get()));
                    }
                    let total: u64 = hs.iter().map(Gauge::get).sum();
                    out.push_str(&format!("{} {}\n", f.name, total));
                }
                FamilyKind::Histograms(hs) => {
                    out.push_str(&format!("# TYPE {} summary\n", f.name));
                    let mut merged = Histogram::new();
                    for h in hs {
                        merged.merge(&h.snapshot());
                    }
                    out.push_str(&format!(
                        "{}{{quantile=\"0.5\"}} {}\n",
                        f.name,
                        merged.p50()
                    ));
                    out.push_str(&format!(
                        "{}{{quantile=\"0.99\"}} {}\n",
                        f.name,
                        merged.p99()
                    ));
                    out.push_str(&format!(
                        "{}_sum {}\n",
                        f.name,
                        merged.mean() * merged.count() as f64
                    ));
                    out.push_str(&format!("{}_count {}\n", f.name, merged.count()));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_registry() -> (Registry, Vec<Counter>, Vec<Gauge>, Vec<SharedHistogram>) {
        let mut b = RegistryBuilder::new(2);
        let c = b.counters("cr_steps_total", "Steps executed");
        let g = b.gauges("cr_sessions_live", "Open sessions");
        let h = b.histograms("cr_step_latency_ns", "Per-step latency");
        (b.build(), c, g, h)
    }

    #[test]
    fn totals_merge_across_shards() {
        let (reg, c, g, h) = sample_registry();
        c[0].add(3);
        c[1].add(4);
        g[0].add(2);
        h[1].record(1000);
        assert_eq!(reg.total("cr_steps_total"), Some(7));
        assert_eq!(reg.total("cr_sessions_live"), Some(2));
        assert_eq!(reg.total("cr_step_latency_ns"), None, "not a scalar");
        assert_eq!(reg.total("nope"), None);
        assert_eq!(reg.histogram("cr_step_latency_ns").unwrap().count(), 1);
        assert!(reg.histogram("cr_steps_total").is_none());
    }

    #[test]
    fn render_is_wellformed_exposition_text() {
        let (reg, c, _g, h) = sample_registry();
        c[0].inc();
        h[0].record(500);
        h[1].record(700);
        let text = reg.render();
        // Every non-comment line is `name[{labels}] value`.
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with("# ") {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "{line}"
                );
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("sample has a value");
            assert!(!name.is_empty());
            assert!(value.parse::<f64>().is_ok(), "unparseable value: {line}");
            if let Some(open) = name.find('{') {
                assert!(name.ends_with('}'), "unbalanced labels: {line}");
                assert!(name[open..].contains('='), "labels are k=\"v\": {line}");
            }
        }
        // The three families appear with headers, per-shard samples, and
        // an unlabeled aggregate.
        assert!(text.contains("# TYPE cr_steps_total counter"));
        assert!(text.contains("cr_steps_total{shard=\"0\"} 1"));
        assert!(text.contains("\ncr_steps_total 1\n"));
        assert!(text.contains("# TYPE cr_sessions_live gauge"));
        assert!(text.contains("# TYPE cr_step_latency_ns summary"));
        assert!(text.contains("cr_step_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("cr_step_latency_ns_count 2"));
    }
}
