//! Lock-free metric handles: [`Counter`], [`Gauge`], [`SharedHistogram`].
//!
//! Each handle is a cheap clone of an `Arc` around relaxed atomics. The
//! shard worker owns one clone and records into it from the hot loop; the
//! registry owns the other and reads it at exposition time. Record paths
//! are marked `// lint: hot` — they may not allocate, and they don't:
//! recording is a handful of relaxed atomic RMWs.
//!
//! Relaxed ordering is sufficient because exposition is a *statistical*
//! read: each individual counter is internally consistent (atomic RMW),
//! and cross-metric skew of a few in-flight increments is invisible at
//! scrape granularity. Determinism of the `METRICS` text under a fixed
//! seed comes from quiescence: tests scrape after all steps complete, at
//! which point every store is visible via the channel round-trips'
//! acquire/release edges.

use metrics::{bucket_of, Histogram, BUCKETS};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Increment by one.
    // lint: hot
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    // lint: hot
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A `u64` gauge that can move both ways (live sessions, queue depth).
///
/// `add`/`sub` return the *previous* value so callers can detect
/// threshold crossings (e.g. "the queue was full when this command was
/// enqueued") without a second load racing the update.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0)))
    }

    /// Add `n`; returns the previous value.
    // lint: hot
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    /// Subtract `n` (saturating at zero); returns the previous value.
    // lint: hot
    #[inline]
    pub fn sub(&self, n: u64) -> u64 {
        let mut prev = self.0.load(Ordering::Relaxed);
        loop {
            let next = prev.saturating_sub(n);
            match self
                .0
                .compare_exchange_weak(prev, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(p) => return p,
                Err(p) => prev = p,
            }
        }
    }

    /// Overwrite the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// The atomic cells behind a [`SharedHistogram`].
#[derive(Debug)]
struct HistCells {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// A lock-free recorder over the same 64 power-of-two buckets as
/// [`metrics::Histogram`]. Shard threads `record` into it without
/// locking or allocating; readers [`snapshot`](SharedHistogram::snapshot)
/// it into a plain mergeable [`Histogram`] (bucket-exact: snapshotting
/// after quiescence equals having recorded every sample into one
/// histogram directly).
#[derive(Debug, Clone)]
pub struct SharedHistogram {
    inner: Arc<HistCells>,
}

impl Default for SharedHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl SharedHistogram {
    /// A fresh, empty shared histogram.
    pub fn new() -> SharedHistogram {
        SharedHistogram {
            inner: Arc::new(HistCells {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Record one sample (typically a latency in nanoseconds).
    // lint: hot
    #[inline]
    pub fn record(&self, value: u64) {
        let cells = &*self.inner;
        cells.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        cells.sum.fetch_add(value, Ordering::Relaxed);
        cells.min.fetch_min(value, Ordering::Relaxed);
        cells.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Record `n` samples of the same `value` in one pass — the batched
    /// form the shard uses when it times a whole `STEPN` burst once and
    /// attributes the per-step average to every step in it. Equivalent to
    /// `n` calls to [`record`](SharedHistogram::record) with `value`:
    /// `count` grows by `n` and `sum` by `value·n`.
    // lint: hot
    #[inline]
    pub fn record_n(&self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let cells = &*self.inner;
        cells.buckets[bucket_of(value)].fetch_add(n, Ordering::Relaxed);
        cells
            .sum
            .fetch_add(value.saturating_mul(n), Ordering::Relaxed);
        cells.min.fetch_min(value, Ordering::Relaxed);
        cells.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Materialize the current contents as a mergeable [`Histogram`].
    pub fn snapshot(&self) -> Histogram {
        let cells = &*self.inner;
        let counts: [u64; BUCKETS] =
            std::array::from_fn(|i| cells.buckets[i].load(Ordering::Relaxed));
        Histogram::from_parts(
            counts,
            cells.sum.load(Ordering::Relaxed) as u128,
            cells.min.load(Ordering::Relaxed),
            cells.max.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 43, "clones share the cell");

        let g = Gauge::new();
        assert_eq!(g.add(5), 0, "add returns the previous value");
        assert_eq!(g.sub(2), 5, "sub returns the previous value");
        assert_eq!(g.get(), 3);
        assert_eq!(g.sub(100), 3);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn shared_histogram_matches_plain_histogram() {
        let sh = SharedHistogram::new();
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 100, 4096, 123_456_789] {
            sh.record(v);
            h.record(v);
        }
        assert_eq!(sh.count(), 6);
        assert_eq!(sh.snapshot(), h);
        assert_eq!(sh.snapshot().p99(), h.p99());
    }

    #[test]
    fn record_n_equals_n_records() {
        let batched = SharedHistogram::new();
        let looped = SharedHistogram::new();
        for (v, n) in [(0u64, 3u64), (17, 1), (4096, 7), (123_456_789, 2)] {
            batched.record_n(v, n);
            for _ in 0..n {
                looped.record(v);
            }
        }
        batched.record_n(999, 0);
        assert_eq!(batched.count(), 13);
        assert_eq!(batched.snapshot(), looped.snapshot());
    }

    #[test]
    fn empty_snapshot_is_canonical_empty() {
        let sh = SharedHistogram::new();
        assert_eq!(sh.snapshot(), Histogram::new());
        assert_eq!(sh.count(), 0);
    }

    #[test]
    fn concurrent_records_are_all_counted() {
        let sh = SharedHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let sh = sh.clone();
                s.spawn(move || {
                    for i in 0..1000 {
                        sh.record(t * 1000 + i);
                    }
                });
            }
        });
        let snap = sh.snapshot();
        assert_eq!(snap.count(), 4000);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max(), 3999);
    }
}
