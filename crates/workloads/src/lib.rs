//! Workload generators for the experiments.
//!
//! A workload is a sequence of [`StepPattern`]s — the deduplicated memory
//! requests of one P-RAM step (at most one per processor, distinct
//! addresses). Generators cover the request distributions the experiments
//! need:
//!
//! * [`uniform`] — n distinct uniform variables (the papers' canonical
//!   step);
//! * [`permutation`] — a random permutation routed in `m/n`-sized waves;
//! * [`hotspot`] — Zipf-skewed requests (deduplicated, so a skewed step
//!   carries fewer distinct requests — CRCW combining has already
//!   happened);
//! * [`stride`] — regular strided access, the classic bank-conflict
//!   pattern;
//! * [`adversarial`] — the Theorem 1 concentration attack against a
//!   concrete memory map (variables whose copies crowd the fewest
//!   modules);
//! * [`program_trace`] — the real access trace of a P-RAM program from
//!   `pram_machine::programs`.

use memdist::MemoryMap;
use pram_machine::{IdealMemory, Mode, Pram, Program, Word};
use simrng::Rng;

/// One P-RAM step's worth of (deduplicated) requests.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepPattern {
    /// Distinct addresses read.
    pub reads: Vec<usize>,
    /// Distinct addresses written, with values.
    pub writes: Vec<(usize, Word)>,
}

impl StepPattern {
    /// Total requests.
    pub fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// Whether the step touches no memory.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// `n` distinct uniform variables, a `write_frac` fraction of them writes.
pub fn uniform(n: usize, m: usize, write_frac: f64, rng: &mut impl Rng) -> StepPattern {
    let mut out = StepPattern::default();
    uniform_into(n, m, write_frac, rng, &mut Vec::new(), &mut out);
    out
}

/// [`uniform`] into caller-owned buffers: `scratch` holds the sampled
/// addresses, `out` the pattern. Consumes the generator identically and
/// produces the identical pattern — [`uniform`] delegates here. Hot
/// session loops reuse both buffers so steady-state stepping allocates
/// nothing.
// lint: hot
pub fn uniform_into(
    n: usize,
    m: usize,
    write_frac: f64,
    rng: &mut impl Rng,
    scratch: &mut Vec<u64>,
    out: &mut StepPattern,
) {
    let k = n.min(m);
    rng.sample_distinct_into(m as u64, k, scratch);
    let n_writes = (((k as f64) * write_frac).round() as usize).min(k);
    let (w, r) = scratch.split_at(n_writes);
    out.reads.clear();
    out.reads.extend(r.iter().map(|&a| a as usize));
    out.writes.clear();
    for &a in w {
        out.writes.push((a as usize, rng.next_u64() as Word));
    }
}

/// A random permutation of `[0, m)` accessed in waves of `n`: wave `w`
/// reads `perm[w·n .. (w+1)·n]`. Returns all `⌈m/n⌉` waves.
pub fn permutation(n: usize, m: usize, rng: &mut impl Rng) -> Vec<StepPattern> {
    let mut perm: Vec<usize> = (0..m).collect();
    rng.shuffle(&mut perm);
    perm.chunks(n.max(1))
        .map(|chunk| StepPattern {
            reads: chunk.to_vec(),
            writes: Vec::new(),
        })
        .collect()
}

/// Zipf-distributed requests with exponent `theta`, deduplicated. The
/// higher `theta`, the fewer distinct variables per step.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Precompute the CDF over `m` variables (`theta > 0`).
    pub fn new(m: usize, theta: f64) -> Self {
        assert!(m >= 1 && theta > 0.0);
        let mut cdf = Vec::with_capacity(m);
        let mut acc = 0.0;
        for i in 0..m {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Sample one variable.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u = rng.f64();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// `n` Zipf draws, deduplicated into one read step.
pub fn hotspot(n: usize, zipf: &Zipf, rng: &mut impl Rng) -> StepPattern {
    let mut out = StepPattern::default();
    hotspot_into(n, zipf, rng, &mut out);
    out
}

/// [`hotspot`] into a caller-owned pattern. Sort-and-dedup over the
/// reused `reads` buffer replaces the `BTreeSet`: the output (sorted
/// distinct draws) and the generator stream (one [`Zipf::sample`] per
/// request, set membership never touched the rng) are identical.
// lint: hot
pub fn hotspot_into(n: usize, zipf: &Zipf, rng: &mut impl Rng, out: &mut StepPattern) {
    out.reads.clear();
    out.writes.clear();
    for _ in 0..n {
        out.reads.push(zipf.sample(rng));
    }
    out.reads.sort_unstable();
    out.reads.dedup();
}

/// `n` strided reads: `offset, offset+stride, …` (mod m), deduplicated.
pub fn stride(n: usize, m: usize, stride: usize, offset: usize) -> StepPattern {
    let mut out = StepPattern::default();
    stride_into(n, m, stride, offset, &mut out);
    out
}

/// [`stride`] into a caller-owned pattern; same sorted-distinct output
/// as the `BTreeSet` construction it replaces.
// lint: hot
pub fn stride_into(n: usize, m: usize, stride: usize, offset: usize, out: &mut StepPattern) {
    out.reads.clear();
    out.writes.clear();
    for i in 0..n {
        out.reads.push((offset + i * stride) % m);
    }
    out.reads.sort_unstable();
    out.reads.dedup();
}

/// The Theorem 1 concentration attack: the `n` variables whose copies are
/// confined to the fewest modules of `map`, issued as one write step.
pub fn adversarial(map: &MemoryMap, n: usize) -> StepPattern {
    let modules = map.modules();
    let loads = map.module_loads();
    let mut order: Vec<usize> = (0..modules).collect();
    order.sort_by_key(|&md| std::cmp::Reverse(loads[md]));
    let mut rank = vec![0u32; modules];
    for (pos, &md) in order.iter().enumerate() {
        rank[md] = pos as u32;
    }
    let mut vars: Vec<(u32, usize)> = (0..map.vars())
        .map(|v| {
            let worst = map
                .copies(v)
                .iter()
                .map(|&md| rank[md as usize])
                .max()
                .unwrap();
            (worst, v)
        })
        .collect();
    vars.sort_unstable();
    StepPattern {
        reads: Vec::new(),
        writes: vars.iter().take(n).map(|&(_, v)| (v, v as Word)).collect(),
    }
}

/// The shared-memory trace of a program run on the ideal machine: one
/// [`StepPattern`] per step that touched memory. Writes are resolved by
/// lowest processor id (PRIORITY), matching the executor.
pub fn program_trace(program: &Program, n: usize, m: usize, mode: Mode) -> Vec<StepPattern> {
    let mut mem = IdealMemory::new(m);
    let report = Pram::new(n, mode)
        .with_trace()
        .run(program, &mut mem)
        .expect("trace workload programs must run clean");
    let mut steps = Vec::new();
    for t in report.trace.unwrap() {
        if t.reads.is_empty() && t.writes.is_empty() {
            continue;
        }
        let mut reads: Vec<usize> = t.reads.iter().map(|&(_, a)| a).collect();
        reads.sort_unstable();
        reads.dedup();
        let mut writes: Vec<(usize, Word)> = Vec::new();
        let mut sorted = t.writes.clone();
        sorted.sort_by_key(|&(p, a, _)| (a, p));
        for (p, a, v) in sorted {
            let _ = p;
            if writes.last().map(|&(wa, _)| wa) != Some(a) {
                writes.push((a, v));
            }
        }
        // Under EREW/CREW a cell is never both read and written; under
        // CRCW drop the read if it collides (the combining front end would
        // satisfy it locally).
        let wset: std::collections::BTreeSet<usize> = writes.iter().map(|&(a, _)| a).collect();
        reads.retain(|a| !wset.contains(a));
        steps.push(StepPattern { reads, writes });
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use pram_machine::programs;
    use simrng::rng_from_seed;

    #[test]
    fn uniform_distinct_and_sized() {
        let mut rng = rng_from_seed(1);
        let p = uniform(16, 256, 0.25, &mut rng);
        assert_eq!(p.len(), 16);
        assert_eq!(p.writes.len(), 4);
        let mut all: Vec<usize> = p
            .reads
            .iter()
            .copied()
            .chain(p.writes.iter().map(|&(a, _)| a))
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), 16);
    }

    #[test]
    fn uniform_clamps_to_memory() {
        let mut rng = rng_from_seed(2);
        let p = uniform(64, 10, 0.0, &mut rng);
        assert_eq!(p.len(), 10);
    }

    #[test]
    fn permutation_covers_memory_once() {
        let mut rng = rng_from_seed(3);
        let waves = permutation(8, 50, &mut rng);
        assert_eq!(waves.len(), 7);
        let mut all: Vec<usize> = waves.iter().flat_map(|w| w.reads.iter().copied()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn zipf_skews_small_indices() {
        let z = Zipf::new(1000, 1.2);
        let mut rng = rng_from_seed(4);
        let mut low = 0;
        for _ in 0..2000 {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        assert!(
            low > 500,
            "zipf(1.2) should put >25% of mass on the top 10, got {low}"
        );
    }

    #[test]
    fn hotspot_dedups() {
        let z = Zipf::new(100, 2.0);
        let mut rng = rng_from_seed(5);
        let p = hotspot(64, &z, &mut rng);
        assert!(p.reads.len() < 64, "heavy skew must collapse under dedup");
        let set: std::collections::HashSet<_> = p.reads.iter().collect();
        assert_eq!(set.len(), p.reads.len());
    }

    #[test]
    fn stride_wraps_and_dedups() {
        let p = stride(8, 16, 4, 1);
        // 1, 5, 9, 13, then wraps onto the same residues.
        assert_eq!(p.reads, vec![1, 5, 9, 13]);
    }

    #[test]
    fn into_variants_match_reference_generators() {
        // The pre-buffer-reuse generators, verbatim. The `_into` forms
        // must produce identical patterns from an identical rng stream.
        fn uniform_ref(n: usize, m: usize, wf: f64, rng: &mut impl Rng) -> StepPattern {
            let k = n.min(m);
            let addrs = rng.sample_distinct(m as u64, k);
            let n_writes = ((k as f64) * wf).round() as usize;
            let (w, r) = addrs.split_at(n_writes.min(k));
            StepPattern {
                reads: r.iter().map(|&a| a as usize).collect(),
                writes: w
                    .iter()
                    .map(|&a| (a as usize, rng.next_u64() as Word))
                    .collect(),
            }
        }
        fn hotspot_ref(n: usize, zipf: &Zipf, rng: &mut impl Rng) -> StepPattern {
            let mut seen = std::collections::BTreeSet::new();
            for _ in 0..n {
                seen.insert(zipf.sample(rng));
            }
            StepPattern {
                reads: seen.into_iter().collect(),
                writes: Vec::new(),
            }
        }
        fn stride_ref(n: usize, m: usize, stride: usize, offset: usize) -> StepPattern {
            let mut seen = std::collections::BTreeSet::new();
            for i in 0..n {
                seen.insert((offset + i * stride) % m);
            }
            StepPattern {
                reads: seen.into_iter().collect(),
                writes: Vec::new(),
            }
        }

        let mut scratch = Vec::new();
        let mut got = StepPattern::default();
        let z = Zipf::new(500, 1.1);
        for seed in 0..8u64 {
            let mut ra = rng_from_seed(0xA110 + seed);
            let mut rb = rng_from_seed(0xA110 + seed);
            for &(n, m, wf) in &[(16usize, 64usize, 0.3f64), (64, 10, 0.0), (100, 4096, 0.5)] {
                let want = uniform_ref(n, m, wf, &mut ra);
                uniform_into(n, m, wf, &mut rb, &mut scratch, &mut got);
                assert_eq!(got, want, "uniform n={n} m={m}");
            }
            let want = hotspot_ref(48, &z, &mut ra);
            hotspot_into(48, &z, &mut rb, &mut got);
            assert_eq!(got, want, "hotspot");
            assert_eq!(ra.next_u64(), rb.next_u64(), "rng streams in lockstep");
        }
        for &(n, m, st, off) in &[(8usize, 16usize, 4usize, 1usize), (100, 7, 3, 5)] {
            let want = stride_ref(n, m, st, off);
            stride_into(n, m, st, off, &mut got);
            assert_eq!(got, want, "stride n={n} m={m} s={st} o={off}");
        }
    }

    #[test]
    fn adversarial_targets_loaded_modules() {
        let map = MemoryMap::congested(128, 32, 3);
        let p = adversarial(&map, 16);
        assert_eq!(p.writes.len(), 16);
    }

    #[test]
    fn program_trace_replays_parallel_sum() {
        let n = 8;
        let prog = programs::parallel_sum(n);
        let steps = program_trace(&prog, n, programs::parallel_sum_layout(n), Mode::Erew);
        assert!(!steps.is_empty());
        // Every step fits the one-request-per-processor budget.
        for s in &steps {
            assert!(s.len() <= n);
        }
    }

    #[test]
    fn program_trace_handles_crcw() {
        let n = 8;
        let prog = programs::max_crcw(n);
        let steps = program_trace(
            &prog,
            n,
            programs::max_crcw_layout(n),
            Mode::Crcw(pram_machine::WritePolicy::Max),
        );
        // The concurrent write collapses to one request after combining.
        let last = steps.last().unwrap();
        assert!(last.writes.len() <= 1 || last.len() <= n);
    }
}
