//! The two-dimensional mesh of trees (2DMOT / "orthogonal trees" network).
//!
//! Originally proposed by Nath, Maheshwari & Bhatt (1983) as a VLSI fabric
//! for matrix–vector products; named and analyzed by Leighton (1984); used
//! by Luccio, Pietracaprina & Pucci and by this paper as the interconnect
//! for deterministic P-RAM simulation (paper Figs. 4, 7, 8).
//!
//! An `s × s` 2DMOT (for `s` a power of two) consists of
//!
//! * `s²` **leaves** arranged in a grid — in the paper's Theorem 3 scheme
//!   the leaves hold the `M = s²` memory modules (Fig. 8);
//! * `s` **row trees**: fully balanced binary trees over each leaf row;
//! * `s` **column trees** over each leaf column;
//! * row-tree root `t` and column-tree root `t` are *identified* (coalesced)
//!   into a single root node, where the paper stations the processors.
//!
//! Everything except the roots (and leaves, which are memory) is a mere
//! switch — the extra hardware the DMBDN model admits.
//!
//! Crate layout:
//! * [`topology`] — the graph, with per-node routing ports and subtree
//!   cover intervals;
//! * [`network`] — phase-synchronous batched request routing over the
//!   cycle-level `netsim` engine (root → row tree ↓ → column tree ↑ → root →
//!   column tree ↓ → leaf, and back), with per-column admission control
//!   (the protocols' collision-kill / pipelining knob);
//! * [`primitives`] — the native tree computations (broadcast, reduce,
//!   matrix–vector product) executed level by level with cycle counts;
//! * [`area`] — the VLSI area model (Leighton's bound, the paper's §3
//!   area claims).

pub mod area;
pub mod network;
pub mod primitives;
pub mod topology;

pub use area::{mot_layout_area, AreaReport};
pub use network::{BatchBuffers, BatchOutcome, MotNetwork, MotRequest};
pub use topology::MotTopology;
