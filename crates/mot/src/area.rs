//! VLSI area accounting (paper §3; Leighton 1984).
//!
//! The paper's area claims, instantiated with unit constants so the
//! *ratios and growth rates* can be tabulated (experiment E7):
//!
//! * an `s × s` 2DMOT occupies `Θ(s²·(log² s + A_leaf))` where `A_leaf` is
//!   the leaf area (Leighton proved this tight);
//! * the P-RAM's own memory occupies `Θ(m)` (one unit per cell);
//! * with modules of granule `g = m/M` at the leaves, the simulator's
//!   memory area is `Θ(M·(log² M + g))` — which is `Θ(m)`, i.e. **optimal**,
//!   exactly when `g = Ω(log² M)` (the paper's condition `g = Ω(log² n)` up
//!   to the polynomial relation between `n` and `M`).

/// Area of an `s × s` 2DMOT whose leaves each occupy `leaf_area` units:
/// `s²·(log₂²s + leaf_area)`.
pub fn mot_layout_area(side: usize, leaf_area: u128) -> u128 {
    assert!(side >= 2);
    let lg = side.ilog2() as u128;
    (side as u128) * (side as u128) * (lg * lg + leaf_area)
}

/// Area of the P-RAM's memory alone: `m` unit cells.
pub fn pram_memory_area(m: usize) -> u128 {
    m as u128
}

/// Area accounting for one memory-at-the-leaves configuration (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaReport {
    /// Grid side `√M`.
    pub side: usize,
    /// Cells per module (`g`), counting all copies stored.
    pub granule: usize,
    /// Simulator area (mesh wiring + leaf memories).
    pub simulator_area: u128,
    /// The simulated P-RAM's memory area, `m`.
    pub pram_area: u128,
    /// `simulator_area / pram_area`, rounded up — the paper's headline is
    /// that this is O(1) for `g = Ω(log² n)`.
    pub overhead_ratio: u128,
    /// Whether the granule satisfies the paper's area-optimality condition
    /// `g ≥ log² side`.
    pub area_optimal: bool,
}

/// Build the area report for `m` P-RAM cells stored with redundancy `r`
/// across `M = side²` leaf modules.
pub fn leaves_scheme_area(m: usize, r: usize, side: usize) -> AreaReport {
    let modules = side * side;
    let granule = (m * r).div_ceil(modules);
    let simulator_area = mot_layout_area(side, granule as u128);
    let pram_area = pram_memory_area(m);
    AreaReport {
        side,
        granule,
        simulator_area,
        pram_area,
        overhead_ratio: simulator_area.div_ceil(pram_area.max(1)),
        area_optimal: granule as u128 >= (side.ilog2() as u128).pow(2),
    }
}

/// Switch count of the Fig. 8 memory-at-leaves scheme: the internal tree
/// nodes of a `√M × √M` 2DMOT — `O(M)`.
pub fn leaves_scheme_switches(side: usize) -> usize {
    2 * side * side.saturating_sub(2)
}

/// Switch count of the Fig. 7 crossbar scheme: an `n × M` mesh of trees
/// used as a crossbar needs `Θ(n·M)` switches (n row trees of M leaves and
/// M column trees of n leaves).
pub fn crossbar_scheme_switches(n: usize, modules: usize) -> usize {
    // n row trees with M leaves: n·(M−1) internal nodes; M column trees
    // with n leaves: M·(n−1); plus the n·M crosspoint leaves themselves
    // are switches too (no memory or processor lives there).
    n * modules.saturating_sub(1) + modules * n.saturating_sub(1) + n * modules
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_area_formula() {
        // side=16: 256·(16 + A)
        assert_eq!(mot_layout_area(16, 0), 256 * 16);
        assert_eq!(mot_layout_area(16, 100), 256 * 116);
    }

    #[test]
    fn big_granule_is_area_optimal() {
        // m = 2^20, r = 7, side = 256 => M = 65536, g = 112 >= log²256 = 64.
        let rep = leaves_scheme_area(1 << 20, 7, 256);
        assert!(rep.area_optimal);
        // Simulator area within a constant of the P-RAM memory.
        assert!(rep.overhead_ratio <= 16, "ratio {}", rep.overhead_ratio);
    }

    #[test]
    fn tiny_granule_pays_wiring_overhead() {
        // m = 2^12 cells over M = 2^16 modules: g = 1 < log²(256) —
        // wiring dominates; not area-optimal.
        let rep = leaves_scheme_area(1 << 12, 1, 256);
        assert!(!rep.area_optimal);
        assert!(rep.overhead_ratio > 16);
    }

    #[test]
    fn crossbar_needs_asymptotically_more_switches() {
        let n = 64;
        let modules = 4096; // n^2
        let crossbar = crossbar_scheme_switches(n, modules);
        let leaves = leaves_scheme_switches(64); // side = sqrt(4096)
                                                 // O(nM) vs O(M): the gap is the paper's Fig. 7 / Fig. 8 contrast.
        assert!(
            crossbar > 50 * leaves,
            "crossbar {crossbar} vs leaves {leaves}"
        );
    }

    #[test]
    fn report_fields_consistent() {
        let rep = leaves_scheme_area(1024, 3, 16);
        assert_eq!(rep.granule, (1024usize * 3).div_ceil(256));
        assert_eq!(rep.pram_area, 1024);
        assert_eq!(rep.simulator_area, mot_layout_area(16, rep.granule as u128));
    }
}
