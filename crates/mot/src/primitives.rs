//! The 2DMOT's native tree computations.
//!
//! Before it was a P-RAM interconnect, the orthogonal-trees network was a
//! compute fabric (Nath, Maheshwari & Bhatt 1983): the row and column trees
//! evaluate broadcasts and reductions in `log₂ s` cycles, which composes
//! into an `O(log s)` matrix–vector product — experiment E12.
//!
//! These functions *execute* the tree schedules level by level (one tree
//! level per cycle, exactly what the hardware would do) and report the cycle
//! count alongside the result.

use crate::topology::MotTopology;

/// Broadcast `root_vals[t]` down column tree `t` to every leaf of column
/// `t`. Returns the leaf grid (row-major) and the cycle count (`depth`).
pub fn broadcast_cols(mot: &MotTopology, root_vals: &[i64]) -> (Vec<i64>, u64) {
    let s = mot.side();
    assert_eq!(root_vals.len(), s);
    let mut grid = vec![0i64; s * s];
    for r in 0..s {
        for c in 0..s {
            grid[r * s + c] = root_vals[c];
        }
    }
    (grid, mot.depth() as u64)
}

/// Broadcast `root_vals[t]` down row tree `t` to every leaf of row `t`.
pub fn broadcast_rows(mot: &MotTopology, root_vals: &[i64]) -> (Vec<i64>, u64) {
    let s = mot.side();
    assert_eq!(root_vals.len(), s);
    let mut grid = vec![0i64; s * s];
    for r in 0..s {
        for c in 0..s {
            grid[r * s + c] = root_vals[r];
        }
    }
    (grid, mot.depth() as u64)
}

/// Reduce each leaf **row** up its row tree with the associative `op`,
/// pairing adjacent subtrees one level per cycle. Returns one value per
/// row-tree root and the cycle count (`depth`).
pub fn reduce_rows(
    mot: &MotTopology,
    grid: &[i64],
    op: impl Fn(i64, i64) -> i64,
) -> (Vec<i64>, u64) {
    let s = mot.side();
    assert_eq!(grid.len(), s * s);
    let mut out = Vec::with_capacity(s);
    let mut cycles = 0;
    for r in 0..s {
        let mut level: Vec<i64> = grid[r * s..(r + 1) * s].to_vec();
        let mut this_cycles = 0;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks_exact(2) {
                next.push(op(pair[0], pair[1]));
            }
            level = next;
            this_cycles += 1;
        }
        out.push(level[0]);
        cycles = this_cycles; // all rows reduce concurrently
    }
    (out, cycles)
}

/// Reduce each leaf **column** up its column tree.
pub fn reduce_cols(
    mot: &MotTopology,
    grid: &[i64],
    op: impl Fn(i64, i64) -> i64,
) -> (Vec<i64>, u64) {
    let s = mot.side();
    assert_eq!(grid.len(), s * s);
    let mut out = Vec::with_capacity(s);
    let mut cycles = 0;
    for c in 0..s {
        let mut level: Vec<i64> = (0..s).map(|r| grid[r * s + c]).collect();
        let mut this_cycles = 0;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len() / 2);
            for pair in level.chunks_exact(2) {
                next.push(op(pair[0], pair[1]));
            }
            level = next;
            this_cycles += 1;
        }
        out.push(level[0]);
        cycles = this_cycles;
    }
    (out, cycles)
}

/// Matrix–vector product `y = A·x` on the 2DMOT, the network's original
/// raison d'être: `x[j]` is broadcast down column tree `j`, each leaf
/// `(i, j)` multiplies by `a[i][j]`, and row tree `i` sums to `y[i]` —
/// `2·depth + 1` cycles total.
///
/// `a` is row-major `s × s`; `x` has length `s`.
pub fn matvec(mot: &MotTopology, a: &[i64], x: &[i64]) -> (Vec<i64>, u64) {
    let s = mot.side();
    assert_eq!(a.len(), s * s);
    assert_eq!(x.len(), s);
    let (xgrid, c1) = broadcast_cols(mot, x);
    let mut prod = vec![0i64; s * s];
    for i in 0..s * s {
        prod[i] = a[i].wrapping_mul(xgrid[i]);
    }
    let (y, c2) = reduce_rows(mot, &prod, |u, v| u.wrapping_add(v));
    (y, c1 + 1 + c2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcasts_fill_grid() {
        let mot = MotTopology::new(4);
        let (g, cyc) = broadcast_cols(&mot, &[1, 2, 3, 4]);
        assert_eq!(cyc, 2);
        assert_eq!(&g[0..4], &[1, 2, 3, 4]);
        assert_eq!(&g[12..16], &[1, 2, 3, 4]);
        let (g, _) = broadcast_rows(&mot, &[5, 6, 7, 8]);
        assert_eq!(g[0], 5);
        assert_eq!(g[15], 8);
    }

    #[test]
    fn reductions_match_serial() {
        let mot = MotTopology::new(4);
        let grid: Vec<i64> = (0..16).collect();
        let (rows, cyc) = reduce_rows(&mot, &grid, |a, b| a + b);
        assert_eq!(cyc, 2);
        assert_eq!(rows, vec![6, 22, 38, 54]);
        let (cols, _) = reduce_cols(&mot, &grid, |a, b| a + b);
        assert_eq!(cols, vec![24, 28, 32, 36]);
        let (maxs, _) = reduce_rows(&mot, &grid, |a, b| a.max(b));
        assert_eq!(maxs, vec![3, 7, 11, 15]);
    }

    #[test]
    fn matvec_correct_and_logarithmic() {
        for side in [2usize, 4, 8, 16, 32] {
            let mot = MotTopology::new(side);
            let a: Vec<i64> = (0..side * side).map(|i| (i % 7) as i64 - 3).collect();
            let x: Vec<i64> = (0..side).map(|j| j as i64 + 1).collect();
            let (y, cycles) = matvec(&mot, &a, &x);
            // Serial reference.
            for i in 0..side {
                let expect: i64 = (0..side).map(|j| a[i * side + j] * x[j]).sum();
                assert_eq!(y[i], expect, "side={side} row={i}");
            }
            assert_eq!(cycles, 2 * side.ilog2() as u64 + 1, "O(log s) cycles");
        }
    }
}
