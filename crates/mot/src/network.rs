//! Phase-synchronous batched request routing on the 2DMOT.
//!
//! Implements the paper's Theorem 3 routing discipline. Processor `P_l`
//! (stationed at coalesced root `l`) accessing the memory module at leaf
//! `(i, j)`:
//!
//! > "it sends the request down the *l*th row tree to the *j*th leaf. From
//! > there, it propagates up to the root of the *j*th column tree (provided
//! > it does not collide with a conflicting request), whence it is sent down
//! > to the *i*th leaf, i.e. M_{i,j}. The answered request returns to P_l
//! > simply by reversing this path."
//!
//! A *batch* is one protocol phase: a set of requests injected
//! simultaneously, each either **served** (reaches its leaf, where a caller
//! callback applies the memory operation, and its reply returns to the
//! source root) or **killed**. Kills implement the "conflicting request"
//! clause: each column tree admits at most `col_limit` requests per phase
//! (1 = the paper's stage-1 collision rule; `Θ(log n)` = the stage-2
//! pipelining of Luccio et al.), decided deterministically by arrival order
//! at the turning leaf. All timing comes from the cycle-level engine — link
//! serialization and pipelining effects are measured, not assumed.

use crate::topology::MotTopology;
use netsim::{
    Behavior, DropReason, EdgeId, Engine, EngineConfig, NodeId, Route, RunStats, Topology,
};
use simrng::{rng_from_seed, Rng};

/// A memory-access request to route through the mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MotRequest<P> {
    /// Serve at the **column root** instead of a leaf (the Luccio et al.
    /// scheme, where memory modules sit at the roots): the request still
    /// turns at leaf `(src_root, col)` and ascends column `col`, but is
    /// consumed at root `col`; `row` is ignored for routing.
    pub to_root: bool,
    /// Source processor's root index (`P_l` at coalesced root `l`).
    pub src_root: usize,
    /// Destination leaf row `i`.
    pub row: usize,
    /// Destination leaf column `j`.
    pub col: usize,
    /// Caller payload (typically variable id, copy index, read/write op).
    pub payload: P,
}

/// Which leg of the six-leg path a packet is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Leg {
    /// Root `l` → leaf `(l, j)` down the row tree.
    RowDown,
    /// Leaf `(l, j)` → root `j` up the column tree.
    ColUp,
    /// Root `j` → leaf `(i, j)` down the column tree.
    ColDown,
    /// Reply: leaf `(i, j)` → root `j`.
    ReplyColUp,
    /// Reply: root `j` → leaf `(l, j)`.
    ReplyColDown,
    /// Reply: leaf `(l, j)` → root `l`.
    ReplyRowUp,
    /// Lost the column admission race; to be collected as killed.
    Killed,
}

#[derive(Debug)]
struct MotPacket<P> {
    req: MotRequest<P>,
    leg: Leg,
}

/// Result of routing one batch.
#[derive(Debug)]
pub struct BatchOutcome<P> {
    /// Requests served, with payloads as mutated by the leaf callback.
    pub served: Vec<MotRequest<P>>,
    /// Requests killed by column-admission conflicts or queue overflows
    /// (transient — to be retried by the protocol in a later phase).
    pub killed: Vec<MotRequest<P>>,
    /// Requests lost to a dead link ([`MotNetwork::fail_links`]). The
    /// link is permanently dead but the *route* is per-source: a retry of
    /// the same request from a different source root can route around the
    /// fault (which is how `cr-core`'s `MotExec` consumes this bucket —
    /// it retries with a rotated source). Only write a request off as
    /// permanent if it will always be re-sent from the same source.
    pub faulted: Vec<MotRequest<P>>,
    /// Engine statistics; `stats.cycles` is the phase's duration.
    pub stats: RunStats,
}

/// Caller-owned, batch-reusable served/killed/faulted buffers for
/// [`MotNetwork::route_batch_into`] — the allocation-free counterpart of
/// [`BatchOutcome`]. Hold one per phase-driving loop and recycle it.
#[derive(Debug)]
pub struct BatchBuffers<P> {
    /// Requests served, with payloads as mutated by the leaf callback.
    pub served: Vec<MotRequest<P>>,
    /// Requests killed transiently (admission conflicts, queue overflow).
    pub killed: Vec<MotRequest<P>>,
    /// Requests lost to a dead link (see [`BatchOutcome::faulted`]).
    pub faulted: Vec<MotRequest<P>>,
}

impl<P> BatchBuffers<P> {
    /// Empty buffers; they grow to steady-state capacity over the first
    /// batch and are reused afterwards.
    pub fn new() -> Self {
        BatchBuffers {
            served: Vec::new(),
            killed: Vec::new(),
            faulted: Vec::new(),
        }
    }
}

impl<P> Default for BatchBuffers<P> {
    fn default() -> Self {
        Self::new()
    }
}

struct Router<'a, P, F> {
    mot: &'a MotTopology,
    serve: F,
    /// Requests admitted into each column tree this phase.
    col_admit: &'a mut [u32],
    col_limit: u32,
    served: &'a mut Vec<MotRequest<P>>,
    killed: &'a mut Vec<MotRequest<P>>,
}

impl<P, F: FnMut(usize, usize, &mut P)> Behavior<MotPacket<P>> for Router<'_, P, F> {
    fn route(&mut self, node: NodeId, p: &mut MotPacket<P>, _topo: &Topology) -> Route {
        let mot = self.mot;
        let ports = mot.ports(node);
        match p.leg {
            Leg::RowDown => {
                if let Some((r, c)) = mot.as_leaf(node) {
                    debug_assert_eq!((r, c), (p.req.src_root, p.req.col));
                    // Column admission: the "conflicting request" rule.
                    if self.col_admit[c] >= self.col_limit {
                        p.leg = Leg::Killed;
                        return Route::Consume;
                    }
                    self.col_admit[c] += 1;
                    p.leg = Leg::ColUp;
                    Route::Forward(ports.col_up.expect("leaf has column parent"))
                } else {
                    Route::Forward(mot.row_step_down(node, p.req.col))
                }
            }
            Leg::ColUp => {
                if mot.as_root(node).is_some() {
                    if p.req.to_root {
                        return Route::Consume; // module lives at this root
                    }
                    p.leg = Leg::ColDown;
                    Route::Forward(mot.col_step_down(node, p.req.row))
                } else {
                    Route::Forward(ports.col_up.expect("column node has parent"))
                }
            }
            Leg::ColDown => {
                if let Some((r, c)) = mot.as_leaf(node) {
                    debug_assert_eq!((r, c), (p.req.row, p.req.col));
                    Route::Consume // memory module access happens in consume()
                } else {
                    Route::Forward(mot.col_step_down(node, p.req.row))
                }
            }
            Leg::ReplyColUp => {
                if mot.as_root(node).is_some() {
                    p.leg = Leg::ReplyColDown;
                    Route::Forward(mot.col_step_down(node, p.req.src_root))
                } else {
                    Route::Forward(ports.col_up.expect("column node has parent"))
                }
            }
            Leg::ReplyColDown => {
                if mot.as_leaf(node).is_some() {
                    p.leg = Leg::ReplyRowUp;
                    Route::Forward(ports.row_up.expect("leaf has row parent"))
                } else {
                    Route::Forward(mot.col_step_down(node, p.req.src_root))
                }
            }
            Leg::ReplyRowUp => {
                if let Some(t) = mot.as_root(node) {
                    debug_assert_eq!(t, p.req.src_root);
                    Route::Consume
                } else {
                    Route::Forward(ports.row_up.expect("row node has parent"))
                }
            }
            Leg::Killed => Route::Consume,
        }
    }

    fn consume(
        &mut self,
        node: NodeId,
        mut p: MotPacket<P>,
        _topo: &Topology,
    ) -> Option<MotPacket<P>> {
        match p.leg {
            Leg::Killed => {
                self.killed.push(p.req);
                None
            }
            Leg::ColUp => {
                // to_root request: the module at column root `col` serves it.
                debug_assert_eq!(self.mot.as_root(node), Some(p.req.col));
                (self.serve)(p.req.row, p.req.col, &mut p.req.payload);
                p.leg = Leg::ReplyColDown;
                Some(p)
            }
            Leg::ColDown => {
                // The memory module at this leaf serves the request.
                let (r, c) = self.mot.as_leaf(node).expect("served at a leaf");
                (self.serve)(r, c, &mut p.req.payload);
                p.leg = Leg::ReplyColUp;
                Some(p)
            }
            Leg::ReplyRowUp => {
                self.served.push(p.req);
                None
            }
            other => unreachable!("consume on leg {other:?}"),
        }
    }
}

/// A 2DMOT with a persistent routing engine: build once, route many
/// batches. Generic over the request payload `P`.
#[derive(Debug)]
pub struct MotNetwork<P> {
    mot: MotTopology,
    engine: Engine<MotPacket<P>>,
    col_admit: Vec<u32>,
    /// Packet pool for queue-overflow drops (merged into `killed` after
    /// the run; a separate buffer because the router already holds the
    /// kill list mutably while the engine reports drops).
    overflow: Vec<MotPacket<P>>,
    /// Packet pool for dead-link drops (drained into `faulted`).
    dead_dropped: Vec<MotPacket<P>>,
}

impl<P> MotNetwork<P> {
    /// A network over an `side × side` 2DMOT.
    pub fn new(side: usize) -> Self {
        // Queue capacity must accommodate stage-2 pipelining (Θ(log n)
        // packets per column); admission control bounds the real occupancy.
        Self::with_queue_capacity(side, 4 * side.max(16))
    }

    /// A network with an explicit per-node queue capacity — exposed so the
    /// queue-overflow ("collision kill") drop path can be exercised
    /// deterministically in tests; production callers want [`Self::new`].
    pub fn with_queue_capacity(side: usize, queue_capacity: usize) -> Self {
        let mot = MotTopology::new(side);
        let cfg = EngineConfig {
            queue_capacity,
            max_cycles: 10_000_000,
        };
        let engine = Engine::new(mot.graph(), cfg);
        let col_admit = vec![0; side];
        MotNetwork {
            mot,
            engine,
            col_admit,
            overflow: Vec::new(),
            dead_dropped: Vec::new(),
        }
    }

    /// The topology (for inspection / area accounting).
    pub fn topology(&self) -> &MotTopology {
        &self.mot
    }

    /// Permanently kill the given directed edges: packets routed onto them
    /// are dropped and reported in [`BatchOutcome::faulted`].
    pub fn fail_links(&mut self, edges: &[EdgeId]) {
        for &e in edges {
            assert!(e < self.mot.graph().edge_count(), "edge {e} out of range");
            self.engine.fail_link(e);
        }
    }

    /// Kill `⌈fraction · edges⌉` links chosen uniformly (deterministically
    /// from `seed`); returns how many links are now dead.
    pub fn fail_random_links(&mut self, fraction: f64, seed: u64) -> usize {
        let edges = self.mot.graph().edge_count();
        let count = ((fraction * edges as f64).ceil() as usize).min(edges);
        if count > 0 {
            let mut rng = rng_from_seed(seed);
            for e in rng.sample_distinct(edges as u64, count) {
                self.engine.fail_link(e as EdgeId);
            }
        }
        self.engine.dead_link_count()
    }

    /// Number of directed edges currently marked dead.
    pub fn dead_links(&self) -> usize {
        self.engine.dead_link_count()
    }

    /// Route one batch (= one protocol phase) through caller-owned
    /// buffers — the allocation-free hot path (`cr-core`'s `MotExec`
    /// drives every phase through this).
    ///
    /// * `reqs` — the request batch; **drained** (its capacity is the
    ///   caller's to reuse);
    /// * `col_limit` — per-column admission bound (1 for collision-kill
    ///   phases, larger for pipelined phases);
    /// * `serve(row, col, payload)` — the memory-module callback, invoked
    ///   exactly once per served request when it reaches its leaf;
    /// * `out` — cleared, then filled with the batch's served / killed /
    ///   faulted requests.
    pub fn route_batch_into<F: FnMut(usize, usize, &mut P)>(
        &mut self,
        reqs: &mut Vec<MotRequest<P>>,
        col_limit: usize,
        serve: F,
        out: &mut BatchBuffers<P>,
    ) -> RunStats {
        let side = self.mot.side();
        self.col_admit.iter_mut().for_each(|x| *x = 0);
        out.served.clear();
        out.killed.clear();
        out.faulted.clear();
        for r in reqs.iter() {
            assert!(
                r.src_root < side && r.row < side && r.col < side,
                "request out of grid"
            );
        }
        let n_reqs = reqs.len();
        for req in reqs.drain(..) {
            let root = self.mot.root(req.src_root);
            self.engine.inject(
                root,
                MotPacket {
                    req,
                    leg: Leg::RowDown,
                },
            );
        }
        let mut router = Router {
            mot: &self.mot,
            serve,
            col_admit: &mut self.col_admit,
            col_limit: col_limit as u32,
            served: &mut out.served,
            killed: &mut out.killed,
        };
        let overflow = &mut self.overflow;
        let dead_dropped = &mut self.dead_dropped;
        let stats = self
            .engine
            .run_until_quiet(self.mot.graph(), &mut router, |p, reason| match reason {
                DropReason::QueueFull => overflow.push(p),
                DropReason::DeadLink => dead_dropped.push(p),
            });
        out.killed.extend(self.overflow.drain(..).map(|p| p.req));
        out.faulted
            .extend(self.dead_dropped.drain(..).map(|p| p.req));
        debug_assert_eq!(
            out.served.len() + out.killed.len() + out.faulted.len(),
            n_reqs,
            "requests must be accounted for"
        );
        stats
    }

    /// Route one batch, returning freshly allocated result vectors —
    /// the convenience form of [`Self::route_batch_into`] for one-shot
    /// callers (primitives, examples, tests).
    pub fn route_batch<F: FnMut(usize, usize, &mut P)>(
        &mut self,
        mut reqs: Vec<MotRequest<P>>,
        col_limit: usize,
        serve: F,
    ) -> BatchOutcome<P> {
        let mut out = BatchBuffers::new();
        let stats = self.route_batch_into(&mut reqs, col_limit, serve, &mut out);
        BatchOutcome {
            served: out.served,
            killed: out.killed,
            faulted: out.faulted,
            stats,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A read/write payload for tests.
    #[derive(Debug, Clone, PartialEq, Eq)]
    struct Op {
        write: Option<i64>,
        result: i64,
    }

    fn grid_memory(side: usize) -> Vec<i64> {
        // module (r, c) initially holds r*side + c
        (0..side * side).map(|x| x as i64).collect()
    }

    #[test]
    fn single_request_roundtrip_latency() {
        let side = 8;
        let mut net: MotNetwork<Op> = MotNetwork::new(side);
        let mut mem = grid_memory(side);
        let out = net.route_batch(
            vec![MotRequest {
                to_root: false,
                src_root: 1,
                row: 5,
                col: 3,
                payload: Op {
                    write: None,
                    result: -1,
                },
            }],
            1,
            |r, c, p| {
                p.result = mem[r * side + c];
                if let Some(v) = p.write {
                    mem[r * side + c] = v;
                }
            },
        );
        assert_eq!(out.killed.len(), 0);
        assert_eq!(out.served.len(), 1);
        assert_eq!(out.served[0].payload.result, (5 * side + 3) as i64);
        // Path: 2 × (3·depth) hops + consume overheads; must be Θ(log side).
        let depth = side.ilog2() as u64;
        assert!(
            out.stats.cycles >= 6 * depth,
            "cycles {} too small",
            out.stats.cycles
        );
        assert!(
            out.stats.cycles <= 6 * depth + 6,
            "cycles {} too large",
            out.stats.cycles
        );
    }

    #[test]
    fn distinct_columns_all_served_in_parallel() {
        let side = 16;
        let mut net: MotNetwork<Op> = MotNetwork::new(side);
        let mut mem = grid_memory(side);
        // One request per column, from distinct roots.
        let reqs: Vec<_> = (0..side)
            .map(|t| MotRequest {
                to_root: false,
                src_root: t,
                row: (t * 7 + 3) % side,
                col: t,
                payload: Op {
                    write: None,
                    result: -1,
                },
            })
            .collect();
        let out = net.route_batch(reqs, 1, |r, c, p| {
            p.result = mem[r * side + c];
            let _ = &mut mem;
        });
        assert_eq!(out.killed.len(), 0);
        assert_eq!(out.served.len(), side);
        // Parallel requests on disjoint trees: same asymptotic latency as one.
        let depth = side.ilog2() as u64;
        assert!(
            out.stats.cycles <= 6 * depth + 10,
            "cycles {}",
            out.stats.cycles
        );
        for s in &out.served {
            assert_eq!(s.payload.result, ((s.row * side + s.col) as i64));
        }
    }

    #[test]
    fn column_conflict_kills_excess() {
        let side = 8;
        let mut net: MotNetwork<Op> = MotNetwork::new(side);
        let mut mem = grid_memory(side);
        // Three roots all target column 2.
        let reqs: Vec<_> = [0usize, 3, 6]
            .iter()
            .map(|&t| MotRequest {
                to_root: false,
                src_root: t,
                row: t,
                col: 2,
                payload: Op {
                    write: None,
                    result: -1,
                },
            })
            .collect();
        let out = net.route_batch(reqs.clone(), 1, |r, c, p| p.result = mem[r * side + c]);
        assert_eq!(out.served.len(), 1);
        assert_eq!(out.killed.len(), 2);
        let _ = &mut mem;

        // With a pipelined limit of 3, everyone gets through in one phase.
        let mut mem = grid_memory(side);
        let out = net.route_batch(reqs, 3, |r, c, p| p.result = mem[r * side + c]);
        assert_eq!(out.served.len(), 3);
        assert_eq!(out.killed.len(), 0);
        let _ = &mut mem;
    }

    #[test]
    fn writes_mutate_module_memory() {
        let side = 4;
        let mut net: MotNetwork<Op> = MotNetwork::new(side);
        let mut mem = grid_memory(side);
        let w = MotRequest {
            to_root: false,
            src_root: 0,
            row: 2,
            col: 1,
            payload: Op {
                write: Some(99),
                result: -1,
            },
        };
        let out = net.route_batch(vec![w], 1, |r, c, p| {
            p.result = mem[r * side + c];
            if let Some(v) = p.write {
                mem[r * side + c] = v;
            }
        });
        assert_eq!(out.served.len(), 1);
        assert_eq!(mem[2 * side + 1], 99);
        // Read it back through the network.
        let rd = MotRequest {
            to_root: false,
            src_root: 3,
            row: 2,
            col: 1,
            payload: Op {
                write: None,
                result: -1,
            },
        };
        let out = net.route_batch(vec![rd], 1, |r, c, p| p.result = mem[r * side + c]);
        assert_eq!(out.served[0].payload.result, 99);
        let _ = &mut mem;
    }

    #[test]
    fn same_root_requests_serialize_but_complete() {
        let side = 8;
        let mut net: MotNetwork<Op> = MotNetwork::new(side);
        let mem = grid_memory(side);
        // Four requests from root 0 to distinct columns.
        let reqs: Vec<_> = (0..4)
            .map(|i| MotRequest {
                to_root: false,
                src_root: 0,
                row: i,
                col: i + 1,
                payload: Op {
                    write: None,
                    result: -1,
                },
            })
            .collect();
        let out = net.route_batch(reqs, 1, |r, c, p| p.result = mem[r * side + c]);
        assert_eq!(out.served.len(), 4);
        // They share root 0's down-links, so the phase stretches a little,
        // but still Θ(log side), not Θ(side).
        assert!(out.stats.cycles < 12 * side as u64);
    }

    #[test]
    fn pipelined_batch_fills_column() {
        // side requests into ONE column with a generous limit: the column
        // root serializes them — phase length grows linearly in the batch,
        // which is exactly the O(log n)-per-phase pipelining budget of
        // stage 2 (we cap batches at Θ(log n) there).
        let side = 16;
        let mut net: MotNetwork<Op> = MotNetwork::new(side);
        let mem = grid_memory(side);
        let reqs: Vec<_> = (0..side)
            .map(|t| MotRequest {
                to_root: false,
                src_root: t,
                row: 5,
                col: 9,
                payload: Op {
                    write: None,
                    result: -1,
                },
            })
            .collect();
        let out = net.route_batch(reqs, side, |r, c, p| p.result = mem[r * side + c]);
        assert_eq!(out.served.len(), side);
        let depth = side.ilog2() as u64;
        // Pipeline: latency + (batch - 1) drain, plus constants.
        assert!(out.stats.cycles >= 6 * depth + side as u64 - 1);
        assert!(out.stats.cycles <= 6 * depth + 4 * side as u64);
    }

    #[test]
    fn to_root_requests_served_at_column_roots() {
        let side = 8;
        let mut net: MotNetwork<Op> = MotNetwork::new(side);
        // Module j lives at root j; value = 100 + j.
        let mut root_mem: Vec<i64> = (0..side).map(|j| 100 + j as i64).collect();
        let reqs: Vec<_> = (0..side)
            .map(|t| MotRequest {
                to_root: true,
                src_root: t,
                row: 0, // ignored for to_root routing
                col: (t + 3) % side,
                payload: Op {
                    write: None,
                    result: -1,
                },
            })
            .collect();
        let out = net.route_batch(reqs, 1, |_r, c, p| {
            p.result = root_mem[c];
            let _ = &mut root_mem;
        });
        assert_eq!(out.killed.len(), 0);
        assert_eq!(out.served.len(), side);
        for s in &out.served {
            assert_eq!(s.payload.result, 100 + s.col as i64);
        }
        // Root service path (row-down, col-up, reply col-down, reply
        // row-up = 4 legs) is shorter than the 6-leg leaf path.
        let depth = side.ilog2() as u64;
        assert!(
            out.stats.cycles <= 4 * depth + 8,
            "cycles {}",
            out.stats.cycles
        );
    }

    #[test]
    fn to_root_conflicts_also_killed() {
        let side = 8;
        let mut net: MotNetwork<Op> = MotNetwork::new(side);
        let reqs: Vec<_> = [1usize, 4]
            .iter()
            .map(|&t| MotRequest {
                to_root: true,
                src_root: t,
                row: 0,
                col: 6,
                payload: Op {
                    write: None,
                    result: -1,
                },
            })
            .collect();
        let out = net.route_batch(reqs, 1, |_, _, p| p.result = 0);
        assert_eq!(out.served.len(), 1);
        assert_eq!(out.killed.len(), 1);
    }

    #[test]
    fn dead_links_fault_requests_permanently() {
        let side = 8;
        let mut net: MotNetwork<Op> = MotNetwork::new(side);
        let mem = grid_memory(side);
        // Kill root 0's first row-tree down-link: every request from root 0
        // dies on its first hop; other roots are untouched.
        let root = net.topology().root(0);
        let first_down = net.topology().graph().out_edges(root).to_vec();
        net.fail_links(&first_down);
        assert_eq!(net.dead_links(), first_down.len());
        let mk = |src: usize| MotRequest {
            to_root: false,
            src_root: src,
            row: 3,
            col: (src + 1) % side,
            payload: Op {
                write: None,
                result: -1,
            },
        };
        let out = net.route_batch(vec![mk(0), mk(4)], 1, |r, c, p| {
            p.result = mem[r * side + c]
        });
        assert_eq!(out.served.len(), 1);
        assert_eq!(out.served[0].src_root, 4);
        assert_eq!(out.killed.len(), 0, "link faults are not transient kills");
        assert_eq!(out.faulted.len(), 1);
        assert_eq!(out.faulted[0].src_root, 0);
        assert_eq!(out.stats.link_faulted, 1);
        // Retrying reproduces the fault — it is permanent, not a race.
        let again = net.route_batch(vec![mk(0)], 1, |r, c, p| p.result = mem[r * side + c]);
        assert_eq!(again.faulted.len(), 1);
    }

    #[test]
    fn fail_random_links_is_deterministic_and_bounded() {
        let side = 8;
        let mut a: MotNetwork<Op> = MotNetwork::new(side);
        let mut b: MotNetwork<Op> = MotNetwork::new(side);
        let da = a.fail_random_links(0.05, 42);
        let db = b.fail_random_links(0.05, 42);
        assert_eq!(da, db);
        assert!(da > 0);
        let edges = a.topology().graph().edge_count();
        assert_eq!(da, (0.05f64 * edges as f64).ceil() as usize);
        // Same seed, same batch: identical outcome on both networks.
        let mem = grid_memory(side);
        let mk = || {
            (0..side)
                .map(|t| MotRequest {
                    to_root: false,
                    src_root: t,
                    row: (t * 3) % side,
                    col: (t * 5) % side,
                    payload: Op {
                        write: None,
                        result: -1,
                    },
                })
                .collect::<Vec<_>>()
        };
        let oa = a.route_batch(mk(), 1, |r, c, p| p.result = mem[r * side + c]);
        let ob = b.route_batch(mk(), 1, |r, c, p| p.result = mem[r * side + c]);
        assert_eq!(oa.served, ob.served);
        assert_eq!(oa.faulted, ob.faulted);
        assert_eq!(oa.stats.cycles, ob.stats.cycles);
    }

    #[test]
    fn queue_overflow_kills_are_counted_and_retryable() {
        // A tiny queue capacity forces the engine's collision-kill path:
        // many requests from one root share its row-tree links and pile up.
        let side = 8;
        let mut net: MotNetwork<Op> = MotNetwork::with_queue_capacity(side, 1);
        let mem = grid_memory(side);
        let mk = || {
            (0..side)
                .map(|i| MotRequest {
                    to_root: false,
                    src_root: 0,
                    row: i,
                    col: i,
                    payload: Op {
                        write: None,
                        result: -1,
                    },
                })
                .collect::<Vec<_>>()
        };
        let out = net.route_batch(mk(), side, |r, c, p| p.result = mem[r * side + c]);
        assert!(out.stats.dropped > 0, "capacity 1 must overflow");
        assert_eq!(out.killed.len(), out.stats.dropped as usize);
        assert_eq!(out.faulted.len(), 0);
        assert_eq!(out.served.len() + out.killed.len(), side);
        // The engine drains fully and stays deterministic afterward.
        let again = net.route_batch(mk(), side, |r, c, p| p.result = mem[r * side + c]);
        assert_eq!(again.served, out.served);
        assert_eq!(again.killed, out.killed);
        assert_eq!(again.stats.cycles, out.stats.cycles);
        assert_eq!(again.stats.dropped, out.stats.dropped);
    }

    #[test]
    fn determinism_across_identical_batches() {
        let side = 8;
        let mut net: MotNetwork<Op> = MotNetwork::new(side);
        let mem = grid_memory(side);
        let make = || {
            (0..6)
                .map(|i| MotRequest {
                    to_root: false,
                    src_root: i % side,
                    row: (3 * i) % side,
                    col: (5 * i) % side,
                    payload: Op {
                        write: None,
                        result: -1,
                    },
                })
                .collect::<Vec<_>>()
        };
        let a = net.route_batch(make(), 1, |r, c, p| p.result = mem[r * side + c]);
        let b = net.route_batch(make(), 1, |r, c, p| p.result = mem[r * side + c]);
        assert_eq!(a.served, b.served);
        assert_eq!(a.killed, b.killed);
        assert_eq!(a.stats.cycles, b.stats.cycles);
    }
}
