//! Construction of the 2DMOT graph with routing metadata.

use netsim::{EdgeId, NodeId, Topology};

/// Routing ports of one node. `None` where the node lacks that port
/// (internal row nodes have no column ports; roots have no up ports).
#[derive(Debug, Clone, Copy, Default)]
pub struct Ports {
    /// Toward the row-tree root.
    pub row_up: Option<EdgeId>,
    /// Toward the column-tree root.
    pub col_up: Option<EdgeId>,
    /// Row-tree children; `[0]` covers the lower half of the column range.
    pub row_down: [Option<EdgeId>; 2],
    /// Column-tree children; `[0]` covers the lower half of the row range.
    pub col_down: [Option<EdgeId>; 2],
}

/// An `s × s` two-dimensional mesh of trees with coalesced row/column roots.
///
/// Node-id layout (dense in the underlying [`Topology`]):
/// * `0 .. s` — the `s` coalesced roots;
/// * `s .. s + s²` — the leaves, `leaf(r, c) = s + r·s + c`;
/// * the rest — internal tree switches.
#[derive(Debug, Clone)]
pub struct MotTopology {
    side: usize,
    topo: Topology,
    ports: Vec<Ports>,
    /// Column interval of leaves reachable through this node's row-tree
    /// down-ports: `[lo, hi)`.
    cover_cols: Vec<(u32, u32)>,
    /// Row interval of leaves reachable through this node's column-tree
    /// down-ports.
    cover_rows: Vec<(u32, u32)>,
}

impl MotTopology {
    /// Build an `side × side` 2DMOT. `side` must be a power of two, ≥ 2.
    pub fn new(side: usize) -> Self {
        assert!(
            side >= 2 && side.is_power_of_two(),
            "side must be a power of two >= 2"
        );
        let mut topo = Topology::new();

        // Roots 0..side, then leaves.
        let roots_base = topo.add_nodes(side);
        debug_assert_eq!(roots_base, 0);
        let leaves_base = topo.add_nodes(side * side);
        debug_assert_eq!(leaves_base, side);

        // Total nodes: side roots + side^2 leaves + 2*side*(side-2) internals.
        let mut ports: Vec<Ports> = Vec::new();
        let mut cover_cols: Vec<(u32, u32)> = Vec::new();
        let mut cover_rows: Vec<(u32, u32)> = Vec::new();
        let grow_to =
            |v: &mut Vec<Ports>, cc: &mut Vec<(u32, u32)>, cr: &mut Vec<(u32, u32)>, n: usize| {
                while v.len() < n {
                    v.push(Ports::default());
                    cc.push((0, 0));
                    cr.push((0, 0));
                }
            };
        grow_to(&mut ports, &mut cover_cols, &mut cover_rows, topo.nodes());

        let leaf_id = |r: usize, c: usize| side + r * side + c;

        // Build one tree family. `is_row == true`: row tree `t` over leaves
        // (t, 0..side); otherwise column tree `t` over leaves (0..side, t).
        let build_tree = |topo: &mut Topology,
                          ports: &mut Vec<Ports>,
                          cover_cols: &mut Vec<(u32, u32)>,
                          cover_rows: &mut Vec<(u32, u32)>,
                          t: usize,
                          is_row: bool| {
            // Heap indices 1..side are the internal nodes (heap 1 = root,
            // coalesced with the other family's root for the same t).
            let mut node_of = vec![usize::MAX; side.max(2)];
            node_of[1] = t; // roots are nodes 0..side
            #[allow(clippy::needless_range_loop)] // heap is an index into the implicit tree
            for heap in 2..side {
                let n = topo.add_node();
                node_of[heap] = n;
                grow_to(ports, cover_cols, cover_rows, topo.nodes());
            }
            // Edges parent -> child, child -> parent.
            for heap in 1..side {
                let parent = node_of[heap];
                for (slot, child_heap) in [(0usize, 2 * heap), (1, 2 * heap + 1)] {
                    let child = if child_heap < side {
                        node_of[child_heap]
                    } else {
                        let leaf_idx = child_heap - side;
                        if is_row {
                            leaf_id(t, leaf_idx)
                        } else {
                            leaf_id(leaf_idx, t)
                        }
                    };
                    let (down, up) = topo.add_duplex(parent, child);
                    if is_row {
                        ports[parent].row_down[slot] = Some(down);
                        ports[child].row_up = Some(up);
                    } else {
                        ports[parent].col_down[slot] = Some(down);
                        ports[child].col_up = Some(up);
                    }
                }
            }
            // Subtree covers: heap node v at depth d covers `side >> d`
            // leaves starting at (v - 2^d)·(side >> d).
            #[allow(clippy::needless_range_loop)] // heap is an index into the implicit tree
            for heap in 1..side {
                let d = heap.ilog2() as usize;
                let width = side >> d;
                let lo = (heap - (1 << d)) * width;
                let n = node_of[heap];
                if is_row {
                    cover_cols[n] = (lo as u32, (lo + width) as u32);
                } else {
                    cover_rows[n] = (lo as u32, (lo + width) as u32);
                }
            }
        };

        for t in 0..side {
            build_tree(
                &mut topo,
                &mut ports,
                &mut cover_cols,
                &mut cover_rows,
                t,
                true,
            );
            build_tree(
                &mut topo,
                &mut ports,
                &mut cover_cols,
                &mut cover_rows,
                t,
                false,
            );
        }

        // Leaf covers are their own coordinates.
        for r in 0..side {
            for c in 0..side {
                let n = leaf_id(r, c);
                cover_cols[n] = (c as u32, c as u32 + 1);
                cover_rows[n] = (r as u32, r as u32 + 1);
            }
        }

        MotTopology {
            side,
            topo,
            ports,
            cover_cols,
            cover_rows,
        }
    }

    /// Grid side `s` (`= √M` in the paper's Theorem 3).
    #[inline]
    pub fn side(&self) -> usize {
        self.side
    }

    /// The coalesced root of row tree `t` and column tree `t`.
    #[inline]
    pub fn root(&self, t: usize) -> NodeId {
        debug_assert!(t < self.side);
        t
    }

    /// The leaf at grid position `(row, col)`.
    #[inline]
    pub fn leaf(&self, row: usize, col: usize) -> NodeId {
        debug_assert!(row < self.side && col < self.side);
        self.side + row * self.side + col
    }

    /// Whether `n` is a root, and which.
    #[inline]
    pub fn as_root(&self, n: NodeId) -> Option<usize> {
        (n < self.side).then_some(n)
    }

    /// Whether `n` is a leaf, and its `(row, col)`.
    #[inline]
    pub fn as_leaf(&self, n: NodeId) -> Option<(usize, usize)> {
        if n >= self.side && n < self.side + self.side * self.side {
            let idx = n - self.side;
            Some((idx / self.side, idx % self.side))
        } else {
            None
        }
    }

    /// Routing ports of node `n`.
    #[inline]
    pub fn ports(&self, n: NodeId) -> &Ports {
        &self.ports[n]
    }

    /// Column interval `[lo, hi)` reachable through `n`'s row-tree
    /// down-ports.
    #[inline]
    pub fn cover_cols(&self, n: NodeId) -> (u32, u32) {
        self.cover_cols[n]
    }

    /// Row interval reachable through `n`'s column-tree down-ports.
    #[inline]
    pub fn cover_rows(&self, n: NodeId) -> (u32, u32) {
        self.cover_rows[n]
    }

    /// The underlying netsim graph.
    #[inline]
    pub fn graph(&self) -> &Topology {
        &self.topo
    }

    /// Row-tree down-edge at `n` leading toward column `col`.
    #[inline]
    pub fn row_step_down(&self, n: NodeId, col: usize) -> EdgeId {
        let p = &self.ports[n];
        for slot in 0..2 {
            let e = p.row_down[slot].expect("node has row children");
            let (_, child) = self.topo.endpoints(e);
            let (lo, hi) = self.cover_cols[child];
            if (col as u32) >= lo && (col as u32) < hi {
                return e;
            }
        }
        unreachable!("column {col} not covered below node {n}")
    }

    /// Column-tree down-edge at `n` leading toward row `row`.
    #[inline]
    pub fn col_step_down(&self, n: NodeId, row: usize) -> EdgeId {
        let p = &self.ports[n];
        for slot in 0..2 {
            let e = p.col_down[slot].expect("node has column children");
            let (_, child) = self.topo.endpoints(e);
            let (lo, hi) = self.cover_rows[child];
            if (row as u32) >= lo && (row as u32) < hi {
                return e;
            }
        }
        unreachable!("row {row} not covered below node {n}")
    }

    /// Switch count: nodes that are neither roots nor leaves — the "extra
    /// processors (albeit mere switches)" of the DMBDN model.
    pub fn switches(&self) -> usize {
        self.topo.nodes() - self.side - self.side * self.side
    }

    /// Tree depth: hops from a root to a leaf of its tree, `log₂ side`.
    pub fn depth(&self) -> usize {
        self.side.ilog2() as usize
    }

    /// Length (hops) of the full request path
    /// root → leaf → column root → leaf, one way: `3·depth`.
    pub fn request_path_len(&self) -> usize {
        3 * self.depth()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_counts() {
        for side in [2usize, 4, 8, 16] {
            let mot = MotTopology::new(side);
            let expect = side + side * side + 2 * side * (side.saturating_sub(2));
            assert_eq!(mot.graph().nodes(), expect, "side={side}");
            assert_eq!(mot.switches(), 2 * side * (side - 2));
            // Each of the 2·side trees has side-1 internal positions, each
            // with 2 duplex child links = 4(side-1) directed edges per tree.
            assert_eq!(mot.graph().edge_count(), 2 * side * 4 * (side - 1));
        }
    }

    #[test]
    fn bounded_degree() {
        // Roots: 4 duplex links (2 row children + 2 col children) = degree 8;
        // this constant is independent of side — the DMBDN requirement.
        for side in [4usize, 8, 32] {
            let mot = MotTopology::new(side);
            assert_eq!(mot.graph().max_degree(), 8, "side={side}");
        }
    }

    #[test]
    fn leaves_have_both_parents() {
        let mot = MotTopology::new(8);
        for r in 0..8 {
            for c in 0..8 {
                let p = mot.ports(mot.leaf(r, c));
                assert!(p.row_up.is_some(), "leaf ({r},{c}) lacks row parent");
                assert!(p.col_up.is_some(), "leaf ({r},{c}) lacks col parent");
                assert!(p.row_down[0].is_none());
            }
        }
    }

    #[test]
    fn roots_have_both_families() {
        let mot = MotTopology::new(8);
        for t in 0..8 {
            let p = mot.ports(mot.root(t));
            assert!(p.row_down[0].is_some() && p.row_down[1].is_some());
            assert!(p.col_down[0].is_some() && p.col_down[1].is_some());
            assert!(p.row_up.is_none() && p.col_up.is_none());
        }
    }

    #[test]
    fn row_descent_reaches_requested_leaf() {
        let side = 16;
        let mot = MotTopology::new(side);
        for t in [0usize, 5, 15] {
            for col in [0usize, 7, 8, 15] {
                // Walk down row tree t toward `col`.
                let mut node = mot.root(t);
                let mut hops = 0;
                while mot.as_leaf(node).is_none() {
                    let e = mot.row_step_down(node, col);
                    node = mot.graph().endpoints(e).1;
                    hops += 1;
                    assert!(hops <= mot.depth(), "descent too long");
                }
                assert_eq!(mot.as_leaf(node), Some((t, col)));
                assert_eq!(hops, mot.depth());
            }
        }
    }

    #[test]
    fn col_descent_reaches_requested_leaf() {
        let side = 8;
        let mot = MotTopology::new(side);
        for t in 0..side {
            for row in 0..side {
                let mut node = mot.root(t);
                while mot.as_leaf(node).is_none() {
                    let e = mot.col_step_down(node, row);
                    node = mot.graph().endpoints(e).1;
                }
                assert_eq!(mot.as_leaf(node), Some((row, t)));
            }
        }
    }

    #[test]
    fn ascent_reaches_own_roots() {
        let side = 8;
        let mot = MotTopology::new(side);
        for r in 0..side {
            for c in 0..side {
                // Row ascent from leaf (r, c) ends at root r.
                let mut node = mot.leaf(r, c);
                while let Some(e) = mot.ports(node).row_up {
                    node = mot.graph().endpoints(e).1;
                }
                assert_eq!(mot.as_root(node), Some(r));
                // Column ascent ends at root c.
                let mut node = mot.leaf(r, c);
                while let Some(e) = mot.ports(node).col_up {
                    node = mot.graph().endpoints(e).1;
                }
                assert_eq!(mot.as_root(node), Some(c));
            }
        }
    }

    #[test]
    fn smallest_mot_is_sane() {
        let mot = MotTopology::new(2);
        // 2 roots, 4 leaves, no internal switches: roots connect directly
        // to leaves.
        assert_eq!(mot.switches(), 0);
        assert_eq!(mot.depth(), 1);
        assert_eq!(mot.request_path_len(), 3);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn odd_side_rejected() {
        let _ = MotTopology::new(6);
    }
}
