// Fixture: the negative case — every would-be finding is either inside
// test code or carries a reasoned allow, so the file lints clean under
// determinism, panic-free, and hot rules at once.
use std::time::Instant; // lint: allow(wall-clock, fixture exercising the escape hatch)

pub struct W {
    buf: Vec<u64>,
}

// lint: hot
pub fn step(w: &mut W, xs: &[u64]) -> u64 {
    w.buf.clear();
    w.buf.extend_from_slice(xs);
    // lint: allow(hot-alloc, one-time warmup allocation, amortized to zero)
    let warm = xs.to_vec();
    w.buf.iter().sum::<u64>() + warm.len() as u64
}

pub fn guarded(toks: &[&str]) -> Option<u64> {
    let first = toks.first()?;
    first.parse().ok()
}

pub fn timed() -> u64 {
    // lint: allow(wall-clock, fixture exercising the escape hatch)
    Instant::now().elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_do_anything() {
        let t0 = std::time::Instant::now();
        let v: Vec<u64> = (0..4u64).collect();
        let m: std::collections::HashMap<u64, u64> = Default::default();
        assert!(v.first().unwrap() < &t0.elapsed().as_secs().max(1));
        assert!(m.is_empty());
    }
}
