// Fixture: RandomState maps in a data-plane file.
use std::collections::HashMap;
use std::collections::HashSet;

pub fn build() -> HashMap<u64, u64> {
    let mut m = HashMap::new();
    m.insert(1, 2);
    m
}

pub fn dedup(xs: &[u64]) -> usize {
    let s: HashSet<u64> = xs.iter().copied().collect();
    s.len()
}
