// Fixture: panic paths in a serving file.
pub fn parse(toks: &[&str]) -> u64 {
    let first = toks.first().unwrap();
    let n: u64 = first.parse().expect("a number");
    if n > 100 {
        panic!("too big");
    }
    let second = toks[1];
    n + second.len() as u64
}
