// Fixture: ambient entropy in a data-plane file.
pub fn roll() -> u64 {
    let mut r = rand::thread_rng();
    r.gen()
}

pub fn coin() -> bool {
    rand::random()
}
