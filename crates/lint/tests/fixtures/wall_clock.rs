// Fixture: ambient wall-clock reads in a data-plane file.
use std::time::Instant;

pub fn stamp() -> u64 {
    let t0 = Instant::now();
    t0.elapsed().as_nanos() as u64
}

pub fn epoch_ms() -> u128 {
    std::time::SystemTime::now()
        .duration_since(std::time::SystemTime::UNIX_EPOCH)
        .unwrap_or_default()
        .as_millis()
}
