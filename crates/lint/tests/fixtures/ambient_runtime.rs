// Seeded no-ambient-runtime violations: a server module reaching past
// the runtime seam. (Fixture — never compiled.)
use std::thread;

pub fn worker() {
    let t = thread::spawn(|| {});
    let (tx, rx) = std::sync::mpsc::sync_channel::<u32>(8);
    let _ = tx.send(1);
    let _ = rx.recv_timeout(core::time::Duration::from_millis(20));
    t.join().ok();
}

// Going through the seam is clean: `chan` + `recv_for` + `Runtime::spawn`
// carry the same capability without naming the banned idents.
pub fn seamed() {
    let (tx, rx) = chan::<u32>(8);
    let _ = tx.send(1);
    let _ = rx.recv_for(core::time::Duration::from_millis(20));
}
