// Fixture: allocations inside a `// lint: hot` function.
pub struct W {
    buf: Vec<u64>,
}

// lint: hot
pub fn step(w: &mut W, xs: &[u64]) -> String {
    let doubled: Vec<u64> = xs.iter().map(|x| x * 2).collect();
    w.buf = doubled.to_vec();
    let copy = w.buf.clone();
    let boxed = Box::new(copy);
    format!("{}", boxed.len())
}

// Not marked hot: the same body is fine here.
pub fn cold(xs: &[u64]) -> Vec<u64> {
    xs.to_vec()
}
