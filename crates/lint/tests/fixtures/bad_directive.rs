// Fixture: malformed lint directives are findings themselves.

// lint: allow(hot-alloc)
pub fn missing_reason() {}

// lint: allow(no-such-rule, the rule id is checked too)
pub fn unknown_rule() {}

// lint: frobnicate
pub fn unknown_directive() {}
