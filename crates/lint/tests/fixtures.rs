//! Fixture tests: one positive fixture per rule family (the linter MUST
//! find the seeded violations) and one negative fixture (allow escapes
//! and test-module masking MUST silence everything). The last test pins
//! the real workspace to zero findings — the PR-gating invariant itself.

use cr_lint::{lint_source, lint_workspace, FileContext};
use std::path::Path;

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn det() -> FileContext {
    FileContext {
        determinism: true,
        ..FileContext::default()
    }
}

fn panic_free() -> FileContext {
    FileContext {
        panic_free: true,
        ..FileContext::default()
    }
}

#[test]
fn wall_clock_fixture_is_caught() {
    let f = lint_source("wall_clock.rs", &fixture("wall_clock.rs"), det());
    assert!(f.len() >= 3, "Instant + SystemTime sites: {f:#?}");
    assert!(f.iter().all(|f| f.rule == "wall-clock"), "{f:#?}");
    // Both the import and the call site are named.
    assert!(f.iter().any(|f| f.line == 2), "import line: {f:#?}");
    assert!(f.iter().any(|f| f.line == 5), "Instant::now line: {f:#?}");
}

#[test]
fn ambient_rng_fixture_is_caught() {
    let f = lint_source("ambient_rng.rs", &fixture("ambient_rng.rs"), det());
    let rules: Vec<_> = f.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["ambient-rng", "ambient-rng"], "{f:#?}");
}

#[test]
fn default_hasher_fixture_is_caught() {
    let f = lint_source("default_hasher.rs", &fixture("default_hasher.rs"), det());
    assert!(f.len() >= 4, "imports + uses: {f:#?}");
    assert!(f.iter().all(|f| f.rule == "default-hasher"), "{f:#?}");
}

#[test]
fn hot_alloc_fixture_is_caught_only_inside_the_hot_fn() {
    // Hot rules apply regardless of crate context.
    let f = lint_source(
        "hot_alloc.rs",
        &fixture("hot_alloc.rs"),
        FileContext::default(),
    );
    let rules: Vec<_> = f.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        vec!["hot-alloc"; 5],
        "collect, to_vec, clone, Box::new, format!: {f:#?}"
    );
    // `cold` uses to_vec on line 17 and must NOT be flagged.
    assert!(f.iter().all(|f| f.line < 15), "{f:#?}");
}

#[test]
fn panic_fixture_is_caught() {
    let f = lint_source("panics.rs", &fixture("panics.rs"), panic_free());
    let rules: Vec<_> = f.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        vec!["no-unwrap", "no-unwrap", "no-panic", "index-guard"],
        "{f:#?}"
    );
}

#[test]
fn ambient_runtime_fixture_is_caught() {
    let ctx = FileContext {
        ambient_runtime: true,
        ..FileContext::default()
    };
    let f = lint_source("ambient_runtime.rs", &fixture("ambient_runtime.rs"), ctx);
    let rules: Vec<_> = f.iter().map(|f| f.rule).collect();
    assert_eq!(
        rules,
        vec!["no-ambient-runtime"; 4],
        "thread import, spawn, sync_channel, recv_timeout: {f:#?}"
    );
}

#[test]
fn bad_directives_are_findings_themselves() {
    let f = lint_source("bad_directive.rs", &fixture("bad_directive.rs"), det());
    let rules: Vec<_> = f.iter().map(|f| f.rule).collect();
    assert_eq!(rules, vec!["bad-directive"; 3], "{f:#?}");
}

#[test]
fn clean_fixture_with_allows_lints_clean_under_every_rule_family() {
    let ctx = FileContext {
        determinism: true,
        panic_free: true,
        ..FileContext::default()
    };
    let f = lint_source(
        "clean_with_allows.rs",
        &fixture("clean_with_allows.rs"),
        ctx,
    );
    assert!(f.is_empty(), "allow escapes must suppress: {f:#?}");
}

/// The tentpole's acceptance bar: the real workspace has zero findings.
/// If this fails, either new code broke an invariant (fix it or add a
/// reasoned `// lint: allow`) or a rule regressed (fix the rule).
#[test]
fn real_workspace_lints_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("crates/lint has a workspace root two levels up");
    let findings = lint_workspace(root).expect("walk workspace");
    assert!(
        findings.is_empty(),
        "workspace invariant violations:\n{}",
        cr_lint::render(&findings)
    );
}
