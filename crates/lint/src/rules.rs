//! The rule engine: directives, test-region masking, hot-region
//! discovery, and the invariant rules themselves.
//!
//! Rules operate on the comment-free token stream of one file, with a
//! [`FileContext`] saying which rule families apply (derived from the
//! file's crate and path by [`crate::lint_workspace`], or set directly by
//! fixture tests). Every finding can be suppressed at its line with
//! `// lint: allow(<rule>, <reason>)` — the reason is mandatory, so each
//! escape documents itself.

use crate::lexer::{lex, TokKind, Token};

/// Which rule families apply to one file.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileContext {
    /// Determinism rules: no ambient time, ambient randomness, or
    /// default-hasher maps (the data-plane crates plus the server).
    pub determinism: bool,
    /// Panic-freedom rules: no `unwrap`/`expect`/`panic!`/unguarded
    /// indexing (the serving path's frame-handling files).
    pub panic_free: bool,
    /// Runtime-seam rules: no direct `std::thread`, `sync_channel`, or
    /// `recv_timeout` (every `crates/server` module except the seam
    /// itself, `runtime.rs`).
    pub ambient_runtime: bool,
}

/// One rule violation (or directive problem).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Repo-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Stable rule id (what `allow(...)` names).
    pub rule: &'static str,
    /// Human-readable message.
    pub msg: String,
    /// Warnings become errors only under `-D`.
    pub warning: bool,
}

/// Rule ids, their severity, and one-line descriptions (the rule table
/// rendered by `cr-lint --rules` and DESIGN.md §9).
pub const RULES: &[(&str, &str)] = &[
    (
        "wall-clock",
        "std::time::{Instant, SystemTime} in a data-plane crate; route time through cr-core::clock",
    ),
    (
        "ambient-rng",
        "thread_rng / rand::random / OsRng / getrandom; all randomness must derive from a simrng seed",
    ),
    (
        "default-hasher",
        "HashMap/HashSet with the default RandomState; use simrng::{DetHashMap, DetHashSet} or BTreeMap",
    ),
    (
        "hot-alloc",
        "Vec::new / vec![] / collect / to_vec / clone / format! / Box::new inside a `// lint: hot` function",
    ),
    (
        "no-unwrap",
        ".unwrap() / .expect() in a panic-free serving file; convert to a ServeError path",
    ),
    (
        "no-panic",
        "panic! / todo! / unimplemented! in a panic-free serving file",
    ),
    (
        "index-guard",
        "slice/array indexing in a panic-free serving file; use get()/patterns or annotate the guard",
    ),
    (
        "no-ambient-runtime",
        "std::thread / sync_channel / recv_timeout outside the runtime seam; go through crate::runtime",
    ),
    (
        "bad-directive",
        "malformed lint directive (allow needs a rule and a reason: `// lint: allow(rule, why)`)",
    ),
];

/// A parsed `// lint: allow(rule, reason)` escape.
struct Allow {
    rule: String,
    line: usize,
    /// Set once a finding was actually suppressed by this escape.
    used: bool,
}

/// Lint one file's source under `ctx`. `file` is used verbatim in
/// findings (repo-relative by convention).
pub fn lint_source(file: &str, src: &str, ctx: FileContext) -> Vec<Finding> {
    let all = lex(src);
    let mut findings = Vec::new();

    // Pass 1 — directives. A trailing comment covers its own line; a
    // standalone comment line covers the next code line.
    let mut allows: Vec<Allow> = Vec::new();
    let mut hot_marks: Vec<usize> = Vec::new(); // lines of `// lint: hot`
    for (i, t) in all.iter().enumerate() {
        if t.kind != TokKind::Comment {
            continue;
        }
        // Directives are plain comments whose content *starts* with
        // `lint:` — doc comments and prose that merely mention the
        // directive syntax are never directives.
        let body = t.text.trim_start_matches('/').trim_start_matches('*');
        if t.text.starts_with("///") || t.text.starts_with("//!") || t.text.starts_with("/**") {
            continue;
        }
        let Some(directive) = body.trim().strip_prefix("lint:") else {
            continue;
        };
        let directive = directive.trim().trim_end_matches("*/").trim();
        let standalone = !all[..i]
            .iter()
            .any(|p| p.line == t.line && p.kind != TokKind::Comment);
        // A standalone directive governs the next code line.
        let target_line = if standalone {
            all[i + 1..]
                .iter()
                .find(|n| n.kind != TokKind::Comment)
                .map(|n| n.line)
                .unwrap_or(t.line)
        } else {
            t.line
        };
        if directive == "hot" {
            hot_marks.push(t.line);
        } else if let Some(rest) = directive.strip_prefix("allow(") {
            let body = rest.strip_suffix(')').unwrap_or(rest);
            let (rule, reason) = match body.split_once(',') {
                Some((r, why)) => (r.trim(), why.trim()),
                None => (body.trim(), ""),
            };
            if reason.is_empty() || !RULES.iter().any(|(id, _)| *id == rule) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    rule: "bad-directive",
                    msg: format!(
                        "allow needs a known rule and a reason, got `{directive}` \
                         (rules: wall-clock, ambient-rng, default-hasher, hot-alloc, \
                         no-unwrap, no-panic, index-guard, no-ambient-runtime)"
                    ),
                    warning: false,
                });
            } else {
                allows.push(Allow {
                    rule: rule.to_string(),
                    line: target_line,
                    used: false,
                });
            }
        } else {
            findings.push(Finding {
                file: file.to_string(),
                line: t.line,
                rule: "bad-directive",
                msg: format!("unknown lint directive `{directive}` (expected `hot` or `allow(rule, reason)`)"),
                warning: false,
            });
        }
    }

    // Pass 2 — comment-free code stream.
    let code: Vec<&Token> = all.iter().filter(|t| t.kind != TokKind::Comment).collect();

    // Pass 3 — mask test-only regions (`#[test]`, `#[cfg(test)]`): the
    // invariants guard shipped code; tests may unwrap and hash freely.
    let masked = test_mask(&code);

    // Pass 4 — hot regions: each `// lint: hot` marks the next `fn`; its
    // body (brace-matched) is a zero-alloc region.
    let hot = hot_mask(&code, &hot_marks, &masked);

    // Pass 5 — the rules.
    let mut raw = Vec::new();
    for i in 0..code.len() {
        if masked[i] {
            continue;
        }
        if ctx.determinism {
            determinism_rules(&code, i, &mut raw);
        }
        if ctx.panic_free {
            panic_rules(&code, i, &mut raw);
        }
        if ctx.ambient_runtime {
            runtime_rules(&code, i, &mut raw);
        }
        if hot[i] {
            hot_rules(&code, i, &mut raw);
        }
    }

    // Pass 6 — apply allows.
    for (line, rule, msg) in raw {
        if let Some(a) = allows.iter_mut().find(|a| a.line == line && a.rule == rule) {
            a.used = true;
            continue;
        }
        findings.push(Finding {
            file: file.to_string(),
            line,
            rule,
            msg,
            warning: false,
        });
    }
    findings.sort_by_key(|f| f.line);
    findings
}

/// Mark every token inside a `#[test]` / `#[cfg(test)]` item (attributes
/// included). The masked item is the attribute's target: the next item's
/// body up to its matching close brace, or through a `;` for bodiless
/// items.
fn test_mask(code: &[&Token]) -> Vec<bool> {
    let mut masked = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if code[i].is_punct('#') && i + 1 < code.len() && code[i + 1].is_punct('[') {
            // Collect the attribute tokens.
            let attr_start = i;
            let mut j = i + 2;
            let mut depth = 1;
            let mut is_test = false;
            while j < code.len() && depth > 0 {
                if code[j].is_punct('[') {
                    depth += 1;
                } else if code[j].is_punct(']') {
                    depth -= 1;
                } else if code[j].is_ident("test") {
                    is_test = true;
                }
                j += 1;
            }
            if !is_test {
                i = j;
                continue;
            }
            // Mask from the attribute through the end of the item.
            let mut k = j;
            let mut brace = 0usize;
            let mut entered = false;
            while k < code.len() {
                if code[k].is_punct('{') {
                    brace += 1;
                    entered = true;
                } else if code[k].is_punct('}') {
                    brace = brace.saturating_sub(1);
                    if entered && brace == 0 {
                        k += 1;
                        break;
                    }
                } else if code[k].is_punct(';') && !entered {
                    k += 1;
                    break;
                }
                k += 1;
            }
            for m in masked.iter_mut().take(k).skip(attr_start) {
                *m = true;
            }
            i = k;
        } else {
            i += 1;
        }
    }
    masked
}

/// Mark every token inside the body of each `// lint: hot` function.
fn hot_mask(code: &[&Token], hot_marks: &[usize], masked: &[bool]) -> Vec<bool> {
    let mut hot = vec![false; code.len()];
    for &mark_line in hot_marks {
        // First unmasked `fn` at or after the marker's line.
        let Some(fn_i) = code
            .iter()
            .enumerate()
            .position(|(i, t)| !masked[i] && t.is_ident("fn") && t.line >= mark_line)
        else {
            continue;
        };
        // Body = first brace after the signature, to its match.
        let Some(open) = (fn_i..code.len()).find(|&i| code[i].is_punct('{')) else {
            continue;
        };
        let mut depth = 0;
        for i in open..code.len() {
            if code[i].is_punct('{') {
                depth += 1;
            } else if code[i].is_punct('}') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            hot[i] = true;
        }
    }
    hot
}

/// Rust keywords that can directly precede `[` without it being an index
/// expression (`&mut [T]`, `dyn [..]`, `return [..]`, …).
const NONINDEX_KEYWORDS: &[&str] = &[
    "mut", "dyn", "ref", "move", "return", "break", "continue", "in", "as", "if", "else", "match",
    "impl", "for", "where", "let", "static", "const", "type", "fn", "pub", "use", "mod", "struct",
    "enum", "trait", "unsafe", "async", "await", "box", "yield", "while", "loop",
];

fn push(out: &mut Vec<(usize, &'static str, String)>, t: &Token, rule: &'static str, msg: String) {
    out.push((t.line, rule, msg));
}

/// Determinism rules at position `i`.
fn determinism_rules(code: &[&Token], i: usize, out: &mut Vec<(usize, &'static str, String)>) {
    let t = code[i];
    if t.kind != TokKind::Ident {
        return;
    }
    match t.text.as_str() {
        "Instant" | "SystemTime" => push(
            out,
            t,
            "wall-clock",
            format!(
                "`{}` reads ambient wall-clock time; route it through cr_core::clock::SimClock",
                t.text
            ),
        ),
        "thread_rng" | "OsRng" | "getrandom" => push(
            out,
            t,
            "ambient-rng",
            format!(
                "`{}` draws ambient entropy; derive all randomness from a simrng seed",
                t.text
            ),
        ),
        "random"
            if i >= 2
                && code[i - 1].is_punct(':')
                && code[i - 2].is_punct(':')
                && i >= 3
                && code[i - 3].is_ident("rand") =>
        {
            push(
                out,
                t,
                "ambient-rng",
                "`rand::random` draws ambient entropy; derive all randomness from a simrng seed"
                    .to_string(),
            )
        }
        "HashMap" | "HashSet" if !has_explicit_hasher(code, i) => {
            push(
                out,
                t,
                "default-hasher",
                format!(
                    "`{}` with the default RandomState iterates in a per-process random \
                     order; use simrng::{{DetHashMap, DetHashSet}} or a BTreeMap",
                    t.text
                ),
            );
        }
        _ => {}
    }
}

/// Whether the `HashMap`/`HashSet` identifier at `i` names its hasher
/// explicitly: `HashMap<K, V, S>` (2 top-level commas) or
/// `HashSet<T, S>` (1). `HashMap::new()`, bare imports, and
/// default-hasher generics all return false.
fn has_explicit_hasher(code: &[&Token], i: usize) -> bool {
    let need_commas = if code[i].text == "HashMap" { 2 } else { 1 };
    let mut j = i + 1;
    // Skip a turbofish `::` before the generic list.
    if j + 1 < code.len() && code[j].is_punct(':') && code[j + 1].is_punct(':') {
        if j + 2 < code.len() && code[j + 2].is_punct('<') {
            j += 2;
        } else {
            return false; // `HashMap::new()` and friends
        }
    }
    if j >= code.len() || !code[j].is_punct('<') {
        return false;
    }
    let mut depth = 0i32;
    let mut commas = 0;
    while j < code.len() {
        let t = code[j];
        if t.is_punct('<') {
            depth += 1;
        } else if t.is_punct('>') {
            // `->` inside fn-pointer generic args is not a closer.
            if !(j > 0 && code[j - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    return commas >= need_commas;
                }
            }
        } else if t.is_punct(',') && depth == 1 {
            commas += 1;
        }
        j += 1;
    }
    false
}

/// Panic-freedom rules at position `i`.
fn panic_rules(code: &[&Token], i: usize, out: &mut Vec<(usize, &'static str, String)>) {
    let t = code[i];
    if t.kind == TokKind::Ident {
        match t.text.as_str() {
            // `.unwrap()` / `.expect(` — exact method names only, so
            // `unwrap_or_else` and `expect_err` stay legal.
            "unwrap" | "expect" if i > 0 && code[i - 1].is_punct('.') => push(
                out,
                t,
                "no-unwrap",
                format!(
                    "`.{}()` can panic the serving path; return a ServeError instead",
                    t.text
                ),
            ),
            "panic" | "todo" | "unimplemented"
                if i + 1 < code.len() && code[i + 1].is_punct('!') =>
            {
                push(
                    out,
                    t,
                    "no-panic",
                    format!(
                        "`{}!` aborts the shard worker; return a ServeError instead",
                        t.text
                    ),
                )
            }
            _ => {}
        }
        return;
    }
    // Unguarded indexing: `expr[...]` — a `[` directly after an
    // identifier (non-keyword), `)`, `]`, or a literal.
    if t.is_punct('[') && i > 0 {
        let p = code[i - 1];
        let indexes = match p.kind {
            TokKind::Ident => !NONINDEX_KEYWORDS.contains(&p.text.as_str()),
            TokKind::Punct => p.is_punct(')') || p.is_punct(']'),
            TokKind::Literal => true,
            _ => false,
        };
        if indexes {
            push(
                out,
                t,
                "index-guard",
                "indexing can panic on out-of-range; use get()/slice patterns or annotate the guard"
                    .to_string(),
            );
        }
    }
}

/// Runtime-seam rules at position `i`: server modules must not reach for
/// OS threads or raw mpsc channels directly — spawning, sleeping, and
/// bounded channels all go through `crate::runtime`, which is what lets
/// `cr-sim` drive the same code single-threaded under virtual time.
fn runtime_rules(code: &[&Token], i: usize, out: &mut Vec<(usize, &'static str, String)>) {
    let t = code[i];
    if t.kind != TokKind::Ident {
        return;
    }
    match t.text.as_str() {
        // `std::thread` / `thread::spawn` — the ident is part of a path
        // (`::` on either side), so a local named `thread` stays legal.
        "thread"
            if (i >= 2 && code[i - 1].is_punct(':') && code[i - 2].is_punct(':'))
                || (i + 2 < code.len()
                    && code[i + 1].is_punct(':')
                    && code[i + 2].is_punct(':')) =>
        {
            push(
                out,
                t,
                "no-ambient-runtime",
                "`std::thread` bypasses the runtime seam; spawn/sleep through a `Runtime`"
                    .to_string(),
            )
        }
        "sync_channel" => push(
            out,
            t,
            "no-ambient-runtime",
            "`sync_channel` bypasses the runtime seam; use `crate::runtime::chan`".to_string(),
        ),
        "recv_timeout" => push(
            out,
            t,
            "no-ambient-runtime",
            "`recv_timeout` bypasses the runtime seam; use `ChanRx::recv_for`".to_string(),
        ),
        _ => {}
    }
}

/// Zero-alloc hot-path rules at position `i`.
fn hot_rules(code: &[&Token], i: usize, out: &mut Vec<(usize, &'static str, String)>) {
    let t = code[i];
    if t.kind != TokKind::Ident {
        return;
    }
    let path_new = |head: &str| -> bool {
        t.is_ident("new")
            && i >= 3
            && code[i - 1].is_punct(':')
            && code[i - 2].is_punct(':')
            && code[i - 3].is_ident(head)
    };
    if path_new("Vec") || path_new("Box") {
        let head = &code[i - 3].text;
        push(
            out,
            t,
            "hot-alloc",
            format!("`{head}::new` allocates on the hot path; reuse a workspace buffer"),
        );
        return;
    }
    match t.text.as_str() {
        "vec" | "format" if i + 1 < code.len() && code[i + 1].is_punct('!') => push(
            out,
            t,
            "hot-alloc",
            format!(
                "`{}!` allocates on the hot path; reuse a workspace buffer",
                t.text
            ),
        ),
        "collect" | "to_vec" | "clone" if i > 0 && code[i - 1].is_punct('.') => push(
            out,
            t,
            "hot-alloc",
            format!(
                "`.{}()` allocates on the hot path; write into a reusable buffer",
                t.text
            ),
        ),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det(src: &str) -> Vec<Finding> {
        lint_source(
            "x.rs",
            src,
            FileContext {
                determinism: true,
                ..FileContext::default()
            },
        )
    }

    fn rules_of(f: &[Finding]) -> Vec<&'static str> {
        f.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn explicit_hashers_pass_default_hashers_fail() {
        let ok = det("type M = HashMap<u64, u32, FnvBuildHasher>; type S = HashSet<u64, F>;");
        assert!(ok.is_empty(), "{ok:?}");
        let bad = det("let m: HashMap<u64, u32> = HashMap::new();");
        assert_eq!(rules_of(&bad), vec!["default-hasher", "default-hasher"]);
    }

    #[test]
    fn test_modules_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n fn f() { let t = Instant::now(); }\n}\n";
        assert!(det(src).is_empty());
        let live = "fn f() { let t = Instant::now(); }";
        assert_eq!(rules_of(&det(live)), vec!["wall-clock"]);
    }

    #[test]
    fn trailing_and_standalone_allows_suppress() {
        let trailing = "let t = Instant::now(); // lint: allow(wall-clock, seam impl)\n";
        assert!(det(trailing).is_empty());
        let standalone = "// lint: allow(wall-clock, seam impl)\nlet t = Instant::now();\n";
        assert!(det(standalone).is_empty());
        // The escape is rule-specific.
        let wrong = "let t = Instant::now(); // lint: allow(ambient-rng, nope)\n";
        assert_eq!(rules_of(&det(wrong)), vec!["wall-clock"]);
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let src = "let t = Instant::now(); // lint: allow(wall-clock)\n";
        let f = det(src);
        assert_eq!(rules_of(&f), vec!["bad-directive", "wall-clock"]);
    }

    #[test]
    fn hot_marker_scopes_alloc_rules_to_one_fn() {
        let src = "\
fn cold() -> Vec<u32> { (0..3).collect() }
// lint: hot
fn hot(out: &mut Vec<u32>) { let v = Vec::new(); let w = x.clone(); }
fn cold2() { let v = vec![1]; }
";
        let f = lint_source("x.rs", src, FileContext::default());
        assert_eq!(rules_of(&f), vec!["hot-alloc", "hot-alloc"]);
        assert!(f.iter().all(|f| f.line == 3));
    }

    #[test]
    fn panic_rules_catch_exact_methods_only() {
        let ctx = FileContext {
            panic_free: true,
            ..FileContext::default()
        };
        let f = lint_source(
            "x.rs",
            "fn f() { a.unwrap(); b.unwrap_or_else(|| 0); c.expect(\"x\"); panic!(\"y\"); }",
            ctx,
        );
        assert_eq!(rules_of(&f), vec!["no-unwrap", "no-unwrap", "no-panic"]);
    }

    #[test]
    fn indexing_is_flagged_but_patterns_are_not() {
        let ctx = FileContext {
            panic_free: true,
            ..FileContext::default()
        };
        let bad = lint_source("x.rs", "fn f() { let x = toks[0]; }", ctx);
        assert_eq!(rules_of(&bad), vec!["index-guard"]);
        let ok = lint_source(
            "x.rs",
            "fn f(t: &[u8]) { let [a, b] = t else { return }; let s: &mut [u8] = x; }",
            ctx,
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn ambient_runtime_catches_thread_channel_and_timeout() {
        let ctx = FileContext {
            ambient_runtime: true,
            ..FileContext::default()
        };
        let f = lint_source(
            "x.rs",
            "fn f() { std::thread::spawn(|| {}); let (tx, rx) = sync_channel(8); \
             let r = rx.recv_timeout(d); }",
            ctx,
        );
        assert_eq!(
            rules_of(&f),
            vec![
                "no-ambient-runtime",
                "no-ambient-runtime",
                "no-ambient-runtime"
            ]
        );
        // A plain local named `thread` is not a path segment.
        let ok = lint_source("x.rs", "fn f() { let thread = 3; use_it(thread); }", ctx);
        assert!(ok.is_empty(), "{ok:?}");
        // The seam's own call sites use `recv_for` / `chan` and stay clean.
        let seam = lint_source(
            "x.rs",
            "fn f() { let (tx, rx) = chan(8); let r = rx.recv_for(d); }",
            ctx,
        );
        assert!(seam.is_empty(), "{seam:?}");
    }
}
