//! A small hand-rolled Rust lexer — just enough structure for the rule
//! engine: identifiers, punctuation, literals, and comments, each tagged
//! with its source line.
//!
//! The lexer must never *misclassify* (a banned identifier inside a
//! string or comment is not code), so strings (plain, raw, byte, and
//! C variants), char literals vs. lifetimes, nested block comments, and
//! numeric literals are all handled. It does not need to *parse*: the
//! rules operate on the flat token stream plus brace matching.

/// What one token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers are unescaped: `r#type` → `type`).
    Ident,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// String/char/byte/numeric literal — content never matters to a rule.
    Literal,
    /// Lifetime such as `'a` (kept distinct so `'a` is never a char literal).
    Lifetime,
    /// Line or block comment, text preserved for `lint:` directives.
    Comment,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokKind,
    /// Source text (for `Punct`, exactly one character).
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: usize,
}

impl Token {
    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this is a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.as_bytes()[0] == c as u8
    }
}

/// Lex `src` into a token stream. Unterminated constructs (string,
/// comment) consume to end of input rather than erroring: the linter
/// must degrade gracefully on code rustc would reject anyway.
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1usize;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                toks.push(Token {
                    kind: TokKind::Comment,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let (start, start_line) = (i, line);
                let mut depth = 1;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Token {
                    kind: TokKind::Comment,
                    text: src[start..i].to_string(),
                    line: start_line,
                });
            }
            b'r' | b'b' | b'c' if is_string_start(b, i) => {
                let start_line = line;
                i = skip_string(b, i, &mut line);
                toks.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'"' => {
                let start_line = line;
                i = skip_quoted(b, i + 1, b'"', &mut line);
                toks.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line: start_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`, `'\u{7}'`).
                let mut j = i + 1;
                if j < b.len() && (b[j].is_ascii_alphabetic() || b[j] == b'_') && b[j] != b'\\' {
                    let mut k = j;
                    while k < b.len() && (b[k].is_ascii_alphanumeric() || b[k] == b'_') {
                        k += 1;
                    }
                    if b.get(k) != Some(&b'\'') {
                        toks.push(Token {
                            kind: TokKind::Lifetime,
                            text: src[i..k].to_string(),
                            line,
                        });
                        i = k;
                        continue;
                    }
                }
                j = skip_quoted(b, i + 1, b'\'', &mut line);
                toks.push(Token {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                // Integer body: digits, radix letters, underscores.
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    // `1e5` is a float only after a `.`; `0x1e5` is hex.
                    // Either way these are literal characters; exponent
                    // signs are handled below.
                    i += 1;
                }
                // Fractional part only when `.` is followed by a digit
                // (so `0..n` stays two range dots).
                if i < b.len() && b[i] == b'.' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit()) {
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        if (b[i] == b'e' || b[i] == b'E')
                            && matches!(b.get(i + 1), Some(&b'+') | Some(&b'-'))
                        {
                            i += 1; // consume the exponent sign too
                        }
                        i += 1;
                    }
                }
                toks.push(Token {
                    kind: TokKind::Literal,
                    text: src[start..i].to_string(),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                // Raw identifier `r#name` — strip the escape, keep `name`.
                let text = if b[start] == b'r'
                    && i == start + 1
                    && b.get(i) == Some(&b'#')
                    && b.get(i + 1)
                        .is_some_and(|d| d.is_ascii_alphanumeric() || *d == b'_')
                {
                    i += 1;
                    let rstart = i;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    src[rstart..i].to_string()
                } else {
                    src[start..i].to_string()
                };
                toks.push(Token {
                    kind: TokKind::Ident,
                    text,
                    line,
                });
            }
            _ => {
                toks.push(Token {
                    kind: TokKind::Punct,
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    toks
}

/// Whether position `i` (at `r`, `b`, or `c`) starts a string-ish
/// literal: `r"`, `r#"`, `b"`, `b'`, `br"`, `br#"`, `c"`, `cr#"` …
fn is_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters (`br`, `cr`).
    while j < b.len() && (b[j] == b'r' || b[j] == b'b' || b[j] == b'c') && j - i < 2 {
        j += 1;
    }
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && (b[j] == b'"' || (b[j] == b'\'' && j == i + 1 && b[i] == b'b'))
}

/// Skip a string-ish literal starting at `i`; returns the index just past
/// it and counts newlines into `line`.
fn skip_string(b: &[u8], mut i: usize, line: &mut usize) -> usize {
    let mut raw = false;
    while i < b.len() && (b[i] == b'r' || b[i] == b'b' || b[i] == b'c') {
        raw |= b[i] == b'r';
        i += 1;
    }
    let mut hashes = 0;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= b.len() {
        return i;
    }
    let quote = b[i];
    i += 1;
    if raw || hashes > 0 {
        // Raw string: ends at quote followed by `hashes` hash marks.
        while i < b.len() {
            if b[i] == b'\n' {
                *line += 1;
            }
            if b[i] == quote
                && b[i + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&h| h == b'#')
                    .count()
                    == hashes
            {
                return i + 1 + hashes;
            }
            i += 1;
        }
        i
    } else {
        skip_quoted(b, i, quote, line)
    }
}

/// Skip to the closing `quote`, honoring backslash escapes; returns the
/// index just past it.
fn skip_quoted(b: &[u8], mut i: usize, quote: u8, line: &mut usize) -> usize {
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            c if c == quote => return i + 1,
            _ => i += 1,
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_identifiers() {
        let src = r##"
            let a = "Instant::now()"; // Instant in a comment
            /* HashMap */ let b = r#"thread_rng"#;
            let c = b"SystemTime";
        "##;
        let ids = idents(src);
        assert!(ids.iter().all(|i| i != "Instant" && i != "HashMap"));
        assert_eq!(ids, vec!["let", "a", "let", "b", "let", "c"]);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(toks.iter().any(|t| t.kind == TokKind::Literal));
    }

    #[test]
    fn ranges_do_not_eat_dots() {
        let toks = lex("for i in 0..n { x[i] = 1.5e-3; }");
        assert!(toks.iter().any(|t| t.is_punct('.')));
        assert!(toks
            .iter()
            .any(|t| t.kind == TokKind::Literal && t.text == "1.5e-3"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = lex("/* a /* b */ c */ fn x() {}");
        assert!(toks.iter().any(|t| t.is_ident("fn")));
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Comment).count(),
            1
        );
    }

    #[test]
    fn raw_identifiers_unescape() {
        let ids = idents("let r#type = 1;");
        assert_eq!(ids, vec!["let", "type"]);
    }

    #[test]
    fn lines_are_tracked_through_multiline_constructs() {
        let src = "let a = \"x\ny\";\nlet b = 2;";
        let toks = lex(src);
        let b = toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b.line, 3);
    }
}
