//! `cr-lint` — lint the workspace's invariants (see the crate docs and
//! DESIGN.md §9).
//!
//! ```text
//! cr-lint                    # lint the enclosing workspace, exit 1 on findings
//! cr-lint --root PATH        # lint an explicit workspace root
//! cr-lint -D                 # deny warnings too (CI mode)
//! cr-lint --json PATH        # also write findings as a JSON artifact
//! cr-lint --rules            # print the rule table
//! ```

use std::path::PathBuf;

fn main() {
    let mut root: Option<PathBuf> = None;
    let mut deny_warnings = false;
    let mut json_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--root needs a path");
                    std::process::exit(2);
                })));
            }
            "-D" | "--deny-warnings" => deny_warnings = true,
            "--json" => {
                json_out = Some(PathBuf::from(args.next().unwrap_or_else(|| {
                    eprintln!("--json needs a path");
                    std::process::exit(2);
                })));
            }
            "--rules" => {
                println!("{:<16} meaning", "rule");
                for (id, desc) in cr_lint::RULES {
                    println!("{id:<16} {desc}");
                }
                return;
            }
            other => {
                eprintln!("cr-lint: unknown flag {other} (--root, -D, --json, --rules)");
                std::process::exit(2);
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        let cwd = std::env::current_dir().unwrap_or_default();
        match cr_lint::find_root(&cwd) {
            Some(r) => r,
            None => {
                eprintln!("cr-lint: no workspace root found above the current directory");
                std::process::exit(2);
            }
        }
    });
    let findings = match cr_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cr-lint: cannot walk {}: {e}", root.display());
            std::process::exit(2);
        }
    };
    if let Some(path) = json_out {
        if let Err(e) = std::fs::write(&path, cr_lint::to_json(&findings)) {
            eprintln!("cr-lint: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
    }
    let errors = findings.iter().filter(|f| !f.warning).count();
    let warnings = findings.len() - errors;
    print!("{}", cr_lint::render(&findings));
    if findings.is_empty() {
        println!("cr-lint: workspace invariants hold (0 findings)");
    } else {
        println!("cr-lint: {errors} error(s), {warnings} warning(s)");
    }
    if errors > 0 || (deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}
