//! `cr-lint` — the workspace invariant linter (DESIGN.md §9).
//!
//! The paper's guarantee is *deterministic* constant-redundancy
//! simulation, and the repo enforces it at runtime (golden snapshots,
//! trace hashes, a counting allocator). This crate enforces the same
//! invariants *statically*, so one stray `Instant::now()`, default-hasher
//! map, or `unwrap()` in the TCP path is caught at CI time instead of as
//! a flaky snapshot three PRs later:
//!
//! * **Determinism** (`wall-clock`, `ambient-rng`, `default-hasher`) —
//!   the data-plane crates and the server must take time from
//!   `cr_core::clock` and randomness from `simrng`, and must not iterate
//!   default-hasher maps.
//! * **Zero-alloc hot paths** (`hot-alloc`) — functions marked
//!   `// lint: hot` must not allocate (`Vec::new`, `vec!`, `collect`,
//!   `to_vec`, `clone`, `format!`, `Box::new`).
//! * **Panic-free serving** (`no-unwrap`, `no-panic`, `index-guard`) —
//!   every shipped module of `crates/server` must degrade to `ERR`
//!   replies, never panic a shard or connection thread.
//! * **Runtime seam** (`no-ambient-runtime`) — server modules outside
//!   `runtime.rs` must not touch `std::thread`, `sync_channel`, or
//!   `recv_timeout` directly; spawning, sleeping, and channels go
//!   through `crate::runtime`, which is what lets `cr-sim` run the
//!   whole service single-threaded under virtual time.
//!
//! Escapes are per-line and self-documenting:
//! `// lint: allow(<rule>, <reason>)`. Test code (`#[test]`,
//! `#[cfg(test)]` items) is exempt. Run it as `cargo run -p cr-lint`,
//! `repro lint`, or the `lint-invariants` CI job.

pub mod lexer;
pub mod rules;

pub use rules::{lint_source, FileContext, Finding, RULES};

use std::path::{Path, PathBuf};

/// Crates whose shipped code must be deterministic (the data plane plus
/// the serving layer; `bench`, `criterion`, `models`, and `pram-machine`
/// are measurement/reference layers and may read real time).
pub const DATA_PLANE_CRATES: &[&str] = &[
    "core",
    "galois",
    "ida",
    "memdist",
    "mot",
    "netsim",
    "faults",
    "workloads",
    "simrng",
    "server",
    "obs",
    "verify",
    "sim",
];

/// The one server module allowed to touch `std::thread` and raw mpsc
/// channels: the runtime seam itself (`no-ambient-runtime` exemption).
pub const RUNTIME_SEAM_FILE: &str = "crates/server/src/runtime.rs";

/// Prefix of the serving-path sources that must be panic-free
/// (repo-relative). Originally a four-file list (protocol, tcp, shard,
/// service); now the whole crate, so new modules — STEPN batching,
/// session stepping — are governed the day they land rather than when
/// someone remembers to enrol them.
pub const PANIC_FREE_PREFIX: &str = "crates/server/src/";

/// The [`FileContext`] for one repo-relative path (`None` when no rule
/// family applies — the file need not be lexed at all).
pub fn context_for(rel: &str) -> Option<FileContext> {
    let mut ctx = FileContext::default();
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some((krate, sub)) = rest.split_once('/') {
            // Only shipped sources: a crate's tests/, benches/, and
            // examples/ are exercise code, not the data plane.
            if sub.starts_with("src/") && DATA_PLANE_CRATES.contains(&krate) {
                ctx.determinism = true;
            }
        }
    }
    ctx.panic_free = rel.starts_with(PANIC_FREE_PREFIX);
    ctx.ambient_runtime = rel.starts_with(PANIC_FREE_PREFIX) && rel != RUNTIME_SEAM_FILE;
    if ctx.determinism || ctx.panic_free || ctx.ambient_runtime {
        Some(ctx)
    } else {
        None
    }
}

/// Walk the workspace at `root` and lint every governed file. Hot-path
/// (`// lint: hot`) rules apply wherever the marker appears, so every
/// `crates/*/src` tree is scanned even when no determinism rule applies.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    let crates_dir = root.join("crates");
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs(&src, &mut sources)?;
        }
    }
    sources.sort();
    for path in sources {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let ctx = context_for(&rel).unwrap_or_default();
        let src = std::fs::read_to_string(&path)?;
        // Hot markers are honored in every crate; skip the lex only when
        // nothing could possibly fire.
        if !(ctx.determinism || ctx.panic_free || ctx.ambient_runtime || src.contains("lint:")) {
            continue;
        }
        findings.extend(lint_source(&rel, &src, ctx));
    }
    Ok(findings)
}

/// Walk up from `start` to the first directory that has both a
/// `Cargo.toml` and a `crates/` tree — the workspace root the binaries
/// lint when `--root` is not given.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Render findings as `file:line: [rule] message` lines.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {}{}\n",
            f.file,
            f.line,
            f.rule,
            f.msg,
            if f.warning { " (warning)" } else { "" }
        ));
    }
    out
}

/// Render findings as a JSON array (the CI failure artifact).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"warning\":{},\"msg\":\"{}\"}}",
            f.file,
            f.line,
            f.rule,
            f.warning,
            f.msg.replace('\\', "\\\\").replace('"', "\\\""),
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn context_routing() {
        assert!(
            context_for("crates/core/src/protocol.rs")
                .unwrap()
                .determinism
        );
        assert!(context_for("crates/server/src/tcp.rs").unwrap().panic_free);
        assert!(
            context_for("crates/server/src/session.rs")
                .unwrap()
                .determinism
        );
        assert!(
            context_for("crates/server/src/session.rs")
                .unwrap()
                .panic_free
        );
        // The prefix rule enrols server modules that do not exist yet.
        assert!(
            context_for("crates/server/src/new_module.rs")
                .unwrap()
                .panic_free
        );
        // The runtime seam keeps its determinism/panic rules but is the
        // one file exempt from no-ambient-runtime.
        let seam = context_for(RUNTIME_SEAM_FILE).unwrap();
        assert!(seam.panic_free && !seam.ambient_runtime);
        assert!(
            context_for("crates/server/src/shard.rs")
                .unwrap()
                .ambient_runtime
        );
        // cr-sim is data plane: its executor must be deterministic.
        assert!(context_for("crates/sim/src/lib.rs").unwrap().determinism);
        // ...but not the crate's test/bench trees.
        assert!(context_for("crates/server/tests/tcp.rs").is_none());
        assert!(
            context_for("crates/obs/src/handles.rs")
                .unwrap()
                .determinism
        );
        assert!(
            context_for("crates/verify/src/checker.rs")
                .unwrap()
                .determinism
        );
        assert!(context_for("crates/bench/src/experiments.rs").is_none());
        assert!(context_for("crates/core/tests/x.rs").is_none());
    }

    #[test]
    fn json_escapes_quotes() {
        let f = vec![Finding {
            file: "a.rs".into(),
            line: 3,
            rule: "no-panic",
            msg: "say \"no\"".into(),
            warning: false,
        }];
        let j = to_json(&f);
        assert!(j.contains("\\\"no\\\""), "{j}");
    }
}
