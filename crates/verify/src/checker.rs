//! The online VPC-read checker.
//!
//! Wei et al.'s VPC-read algorithm verifies PRAM consistency of a
//! read/write trace by checking, per writer, that reads respect that
//! writer's program order and that every read returns a legally
//! writable value. A session is a single writer driving its own scheme,
//! so the frontier the algorithm maintains collapses to one entry per
//! cell — the latest program-order write — and each appended op is
//! checked in O(1): a write advances the cell's frontier, a read must
//! return the frontier value (or the initial zero before any write).
//!
//! State is dense — one [`CellState`] per simulated cell, allocated
//! once when the session opens (`m` is capped by the server) — so the
//! append path does no hashing, no allocation, and no search. The first
//! illegal op is captured as a structured [`Violation`]; the checker
//! keeps absorbing ops afterwards (counters and frontiers stay live) so
//! a `VERIFY` issued later still reports totals for the whole run.

use crate::trace::TraceOp;
use pram_machine::Word;

/// Why a read's value was illegal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// The read returned the value the cell held *before* its latest
    /// write — the scheme served a stale copy.
    StaleValue,
    /// The read returned a value no program-order write ever stored in
    /// the cell (nor the initial zero) — the store is corrupted.
    UnknownValue,
}

impl ViolationKind {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            ViolationKind::StaleValue => "stale",
            ViolationKind::UnknownValue => "unknown",
        }
    }
}

/// The first PRAM-inconsistent operation of a session, with enough
/// structure to explain *why* it is illegal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Violation {
    /// Lifetime index of the violating op (0-based append order).
    pub op: u64,
    /// Tick stamped on the violating record.
    pub tick: u64,
    /// The cell whose read went wrong.
    pub addr: u32,
    /// What the read returned.
    pub got: Word,
    /// What PRAM consistency required it to return.
    pub expected: Word,
    /// Lifetime index of the cell's latest write (`None`: never
    /// written, the expected value is the initial zero).
    pub write_op: Option<u64>,
    /// Classification of the illegal value.
    pub kind: ViolationKind,
}

/// Per-cell frontier: the latest program-order write and the value it
/// displaced (kept to tell a stale read from a corrupted one).
#[derive(Debug, Clone, Copy, Default)]
struct CellState {
    /// Value of the latest write (initially 0 — the P-RAM's cleared
    /// memory).
    value: Word,
    /// Value the latest write overwrote.
    prev: Word,
    /// Lifetime op index of the latest write.
    last_write_op: u64,
    /// Writes recorded to this cell.
    writes: u64,
}

/// Online single-writer PRAM-consistency checker over a session trace.
#[derive(Debug)]
pub struct PramChecker {
    cells: Vec<CellState>,
    ops: u64,
    reads: u64,
    writes: u64,
    excused: u64,
    violation: Option<Violation>,
}

impl PramChecker {
    /// A checker for an `m`-cell machine (state allocated here, once).
    pub fn new(m: usize) -> PramChecker {
        PramChecker {
            cells: vec![CellState::default(); m],
            ops: 0,
            reads: 0,
            writes: 0,
            excused: 0,
            violation: None,
        }
    }

    /// Absorb one op. Returns `true` exactly when this op became the
    /// session's *first* violation (the clean → violated transition the
    /// shard turns into a counter bump and a trace event).
    // lint: hot
    #[inline]
    pub fn append(&mut self, op: TraceOp) -> bool {
        let idx = self.ops;
        self.ops += 1;
        let Some(cell) = self.cells.get_mut(op.addr as usize) else {
            // Out-of-range addresses cannot come from a validated step;
            // absorb defensively rather than panic on a shard thread.
            return false;
        };
        if op.is_write() {
            self.writes += 1;
            cell.prev = cell.value;
            cell.value = op.value;
            cell.last_write_op = idx;
            cell.writes += 1;
            return false;
        }
        self.reads += 1;
        if op.is_excused() {
            self.excused += 1;
            return false;
        }
        if op.value == cell.value {
            return false;
        }
        let fresh = self.violation.is_none();
        if fresh {
            let kind = if cell.writes > 0 && op.value == cell.prev {
                ViolationKind::StaleValue
            } else {
                ViolationKind::UnknownValue
            };
            self.violation = Some(Violation {
                op: idx,
                tick: op.tick,
                addr: op.addr,
                got: op.value,
                expected: cell.value,
                write_op: (cell.writes > 0).then_some(cell.last_write_op),
                kind,
            });
        }
        fresh
    }

    /// Ops absorbed so far.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Reads absorbed so far.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Writes absorbed so far.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Reads excused from value legality (fault-lost cells).
    pub fn excused(&self) -> u64 {
        self.excused
    }

    /// The first violation, if any op has been illegal.
    pub fn violation(&self) -> Option<&Violation> {
        self.violation.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(addr: u32, v: Word) -> TraceOp {
        TraceOp::write(0, addr, v)
    }

    fn r(addr: u32, v: Word) -> TraceOp {
        TraceOp::read(0, addr, v, false)
    }

    #[test]
    fn clean_trace_stays_clean() {
        let mut c = PramChecker::new(8);
        assert!(!c.append(r(3, 0)), "initial memory reads zero");
        assert!(!c.append(w(3, 7)));
        assert!(!c.append(r(3, 7)));
        assert!(!c.append(w(3, 9)));
        assert!(!c.append(r(3, 9)));
        assert!(c.violation().is_none());
        assert_eq!((c.ops(), c.reads(), c.writes()), (5, 3, 2));
    }

    #[test]
    fn stale_read_is_flagged_as_stale() {
        let mut c = PramChecker::new(8);
        c.append(w(2, 5));
        c.append(w(2, 6));
        assert!(c.append(r(2, 5)), "read of the overwritten value");
        let v = c.violation().unwrap();
        assert_eq!(v.kind, ViolationKind::StaleValue);
        assert_eq!(v.op, 2);
        assert_eq!(v.addr, 2);
        assert_eq!(v.got, 5);
        assert_eq!(v.expected, 6);
        assert_eq!(v.write_op, Some(1));
    }

    #[test]
    fn corrupted_read_is_flagged_as_unknown() {
        let mut c = PramChecker::new(8);
        c.append(w(1, 10));
        assert!(c.append(r(1, -42)));
        let v = c.violation().unwrap();
        assert_eq!(v.kind, ViolationKind::UnknownValue);
        assert_eq!(v.expected, 10);
        assert_eq!(v.write_op, Some(0));
    }

    #[test]
    fn nonzero_read_of_unwritten_cell_is_unknown() {
        let mut c = PramChecker::new(4);
        assert!(c.append(r(0, 1)));
        let v = c.violation().unwrap();
        assert_eq!(v.kind, ViolationKind::UnknownValue);
        assert_eq!(v.expected, 0);
        assert_eq!(v.write_op, None);
    }

    #[test]
    fn only_the_first_violation_is_kept() {
        let mut c = PramChecker::new(4);
        c.append(w(0, 1));
        assert!(c.append(r(0, 2)));
        assert!(!c.append(r(1, 9)), "later violations do not re-flag");
        let v = c.violation().unwrap();
        assert_eq!((v.op, v.addr), (1, 0));
        assert_eq!(c.ops(), 3, "counters keep running past the violation");
    }

    #[test]
    fn excused_reads_skip_value_legality() {
        let mut c = PramChecker::new(4);
        c.append(w(2, 7));
        assert!(!c.append(TraceOp::read(0, 2, 0, true)), "lost cell reads 0");
        assert_eq!(c.excused(), 1);
        assert!(c.violation().is_none());
        // A non-excused wrong read afterwards still trips it.
        assert!(c.append(r(2, 0)));
    }

    #[test]
    fn out_of_range_addresses_are_absorbed_not_panicked() {
        let mut c = PramChecker::new(2);
        assert!(!c.append(w(9, 1)));
        assert!(!c.append(r(9, 5)));
        assert!(c.violation().is_none());
    }
}
