//! Compact per-session trace records and the fixed-capacity ring that
//! holds them.
//!
//! A [`TraceOp`] is 24 bytes with no heap parts — tick, value, cell
//! address, and a flags word packing the op kind — so recording one is
//! an index write, the same discipline as `cr-obs::EventRing`. The op's
//! position in the session's lifetime (its *op index*) is implicit:
//! the verifier knows how many ops it has appended and how many the
//! ring has truncated, so indices are recovered arithmetically instead
//! of being stored per record.

use pram_machine::Word;

/// `flags` bit 0: set for writes, clear for reads.
const FLAG_WRITE: u32 = 1;

/// `flags` bit 1: the read was *excused* — the fault layer reported the
/// cell statically lost, so value legality is not checked.
const FLAG_EXCUSED: u32 = 2;

/// One recorded memory operation: fixed-size, `Copy`, no heap parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceOp {
    /// Virtual time (`SimClock` tick nanos) when the op was recorded.
    pub tick: u64,
    /// Value written, or value the read returned.
    pub value: Word,
    /// The shared-memory cell touched.
    pub addr: u32,
    /// Kind bits (see [`TraceOp::is_write`], [`TraceOp::is_excused`]).
    pub flags: u32,
}

impl TraceOp {
    /// A read record; `excused` marks a fault-lost cell whose value is
    /// exempt from the legality check.
    #[inline]
    pub fn read(tick: u64, addr: u32, value: Word, excused: bool) -> TraceOp {
        TraceOp {
            tick,
            value,
            addr,
            flags: if excused { FLAG_EXCUSED } else { 0 },
        }
    }

    /// A write record.
    #[inline]
    pub fn write(tick: u64, addr: u32, value: Word) -> TraceOp {
        TraceOp {
            tick,
            value,
            addr,
            flags: FLAG_WRITE,
        }
    }

    /// Whether this records a write (else a read).
    pub fn is_write(self) -> bool {
        self.flags & FLAG_WRITE != 0
    }

    /// Whether this read's value legality is excused (lost cell).
    pub fn is_excused(self) -> bool {
        self.flags & FLAG_EXCUSED != 0
    }

    /// Stable kind tag for rendering.
    pub fn kind_name(self) -> &'static str {
        if self.is_write() {
            "w"
        } else if self.is_excused() {
            "r!"
        } else {
            "r"
        }
    }
}

/// A fixed-capacity overwrite-oldest ring of [`TraceOp`]s.
///
/// Allocated once at session open; appending afterwards is an index
/// write. Iteration yields ops oldest-first. Overwrites are reported to
/// the caller (the verifier decides whether the overwritten op was
/// *truncated* — lost entirely — or still retained by a spill).
#[derive(Debug)]
pub struct TraceRing {
    buf: Vec<TraceOp>,
    head: usize,
    len: usize,
}

impl TraceRing {
    /// A ring holding at most `capacity` ops (capacity 0 records none).
    pub fn with_capacity(capacity: usize) -> TraceRing {
        TraceRing {
            buf: vec![TraceOp::default(); capacity],
            head: 0,
            len: 0,
        }
    }

    /// Append an op, overwriting the oldest when full. Returns `true`
    /// when something was overwritten (or the capacity is zero).
    /// Wrapping is a compare-and-subtract, not `%`: the capacity is a
    /// runtime value, so a modulo here would be a hardware divide on
    /// every recorded op.
    // lint: hot
    #[inline]
    pub fn push(&mut self, op: TraceOp) -> bool {
        let cap = self.buf.len();
        if cap == 0 {
            return true;
        }
        if self.len < cap {
            let mut at = self.head + self.len;
            if at >= cap {
                at -= cap;
            }
            self.buf[at] = op;
            self.len += 1;
            false
        } else {
            self.buf[self.head] = op;
            self.head += 1;
            if self.head == cap {
                self.head = 0;
            }
            true
        }
    }

    /// Ops currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum ops held before overwriting begins.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Iterate oldest-first over the buffered ops.
    pub fn iter(&self) -> impl Iterator<Item = &TraceOp> {
        let cap = self.buf.len().max(1);
        (0..self.len).map(move |i| &self.buf[(self.head + i) % cap])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_packing_round_trips() {
        let r = TraceOp::read(7, 12, -3, false);
        assert!(!r.is_write());
        assert!(!r.is_excused());
        assert_eq!((r.tick, r.addr, r.value), (7, 12, -3));
        assert_eq!(r.kind_name(), "r");
        let e = TraceOp::read(7, 12, 0, true);
        assert!(e.is_excused());
        assert_eq!(e.kind_name(), "r!");
        let w = TraceOp::write(9, 3, 44);
        assert!(w.is_write());
        assert!(!w.is_excused());
        assert_eq!(w.kind_name(), "w");
        assert_eq!(std::mem::size_of::<TraceOp>(), 24, "records stay compact");
    }

    #[test]
    fn ring_fills_then_wraps_oldest_first() {
        let mut r = TraceRing::with_capacity(4);
        assert!(r.is_empty());
        for t in 0..4 {
            assert!(!r.push(TraceOp::write(t, 0, 0)), "no overwrite filling");
        }
        assert_eq!(r.len(), 4);
        assert!(r.push(TraceOp::write(4, 0, 0)));
        assert!(r.push(TraceOp::write(5, 0, 0)));
        assert_eq!(r.len(), 4);
        let ticks: Vec<u64> = r.iter().map(|o| o.tick).collect();
        assert_eq!(ticks, vec![2, 3, 4, 5], "oldest-first after wrap");
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut r = TraceRing::with_capacity(0);
        assert!(r.push(TraceOp::write(0, 0, 0)));
        assert_eq!(r.len(), 0);
        assert_eq!(r.iter().count(), 0);
    }
}
