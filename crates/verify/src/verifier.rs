//! The session-facing facade: recording + checking in one append path.
//!
//! `cr-serve`'s `Session::step` calls [`SessionVerifier::record_step`]
//! once per simulation step, right next to the trace-hash update. The
//! verifier turns the step's read/write batch into [`TraceOp`]s, feeds
//! each through the online [`PramChecker`], lands it in the
//! [`TraceRing`] (and the spill, in `full` mode), and hands back a
//! [`VerifyDelta`] of what changed — the shard worker's counter bumps
//! and trace events come from those deltas, never from re-scanning.
//!
//! Everything is preallocated at construction: the ring, the spill
//! (`full` mode, `with_capacity` so pushes never grow it), and the
//! checker's per-cell table. The steady-state append path allocates
//! nothing.

use crate::checker::{PramChecker, Violation};
use crate::trace::{TraceOp, TraceRing};
use crate::{Coverage, VerifyMode, RING_CAPACITY, SPILL_CAPACITY};
use pram_machine::Word;

/// What one recorded step changed — the shard's metrics feed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VerifyDelta {
    /// Ops recorded and checked by this step batch.
    pub ops: u64,
    /// Records truncated (overwritten with no spill copy) by this batch.
    pub truncated: u64,
    /// Whether this batch produced the session's *first* violation.
    pub violated: bool,
}

impl VerifyDelta {
    /// Fold another delta in (per-command accumulation over steps).
    #[inline]
    pub fn merge(&mut self, other: VerifyDelta) {
        self.ops += other.ops;
        self.truncated += other.truncated;
        self.violated |= other.violated;
    }
}

/// A `VERIFY`-time snapshot of one session's checking state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifyReport {
    /// The session's recording mode.
    pub mode: VerifyMode,
    /// Ops recorded and checked over the session's lifetime.
    pub ops: u64,
    /// Reads among them.
    pub reads: u64,
    /// Writes among them.
    pub writes: u64,
    /// Reads excused from value legality (fault-lost cells).
    pub excused: u64,
    /// Records still retained for re-examination (spill prefix + ring).
    pub retained: u64,
    /// Records truncated — overwritten with no spill copy.
    pub truncated: u64,
    /// `full` until the first truncation, `window` after.
    pub coverage: Coverage,
    /// The first PRAM violation, if the trace has one.
    pub violation: Option<Violation>,
}

impl VerifyReport {
    /// Stable verdict tag: `off`, `consistent`, or `violation`.
    pub fn verdict(&self) -> &'static str {
        if !self.mode.enabled() {
            "off"
        } else if self.violation.is_some() {
            "violation"
        } else {
            "consistent"
        }
    }
}

/// Per-session recording + online checking, owned by the session.
#[derive(Debug)]
pub struct SessionVerifier {
    mode: VerifyMode,
    ring: TraceRing,
    /// `full` mode's complete trace prefix, preallocated and bounded.
    spill: Vec<TraceOp>,
    checker: PramChecker,
    truncated: u64,
}

impl SessionVerifier {
    /// A verifier for an `m`-cell session. `off` allocates nothing.
    pub fn new(mode: VerifyMode, m: usize) -> SessionVerifier {
        let (ring_cap, spill_cap, cells) = match mode {
            VerifyMode::Off => (0, 0, 0),
            VerifyMode::Ring => (RING_CAPACITY, 0, m),
            VerifyMode::Full => (RING_CAPACITY, SPILL_CAPACITY, m),
        };
        SessionVerifier {
            mode,
            ring: TraceRing::with_capacity(ring_cap),
            spill: Vec::with_capacity(spill_cap),
            checker: PramChecker::new(cells),
            truncated: 0,
        }
    }

    /// The recording mode.
    pub fn mode(&self) -> VerifyMode {
        self.mode
    }

    /// Whether a violation has been flagged.
    pub fn violated(&self) -> bool {
        self.checker.violation().is_some()
    }

    /// Record one op: check online, land it in the ring (and spill),
    /// and account truncation. Folds into the step's running delta
    /// rather than returning one — the recording path runs per op, and
    /// a per-op struct round trip is measurable on the cheapest schemes.
    // lint: hot
    #[inline]
    fn record_op(&mut self, op: TraceOp, delta: &mut VerifyDelta) {
        let idx = self.checker.ops();
        delta.violated |= self.checker.append(op);
        delta.ops += 1;
        if self.ring.push(op) {
            // The overwritten op is the one `capacity` appends back; it
            // is truncated unless the spill holds a copy.
            let lost = idx.saturating_sub(self.ring.capacity() as u64);
            if lost >= self.spill.len() as u64 {
                delta.truncated += 1;
                self.truncated += 1;
            }
        }
        if self.spill.len() < self.spill.capacity() {
            self.spill.push(op);
        }
    }

    /// Record one simulation step: `reads[i]` returned `read_values[i]`,
    /// then `writes` stored their values (addresses within a step are
    /// distinct, so the read/write order inside the step is immaterial —
    /// this fixed order keeps the trace deterministic). `lost` reports
    /// whether the fault layer considers a cell statically
    /// unrecoverable; those reads are recorded excused.
    // lint: hot
    #[inline]
    pub fn record_step(
        &mut self,
        tick: u64,
        reads: &[usize],
        read_values: &[Word],
        writes: &[(usize, Word)],
        mut lost: impl FnMut(usize) -> bool,
    ) -> VerifyDelta {
        let mut delta = VerifyDelta::default();
        if !self.mode.enabled() {
            return delta;
        }
        for (i, &addr) in reads.iter().enumerate() {
            let value = read_values.get(i).copied().unwrap_or_default();
            let excused = lost(addr);
            self.record_op(TraceOp::read(tick, addr as u32, value, excused), &mut delta);
        }
        for &(addr, value) in writes {
            self.record_op(TraceOp::write(tick, addr as u32, value), &mut delta);
        }
        delta
    }

    /// Snapshot the checking state for a `VERIFY` reply.
    pub fn report(&self) -> VerifyReport {
        VerifyReport {
            mode: self.mode,
            ops: self.checker.ops(),
            reads: self.checker.reads(),
            writes: self.checker.writes(),
            excused: self.checker.excused(),
            retained: self.checker.ops() - self.truncated,
            truncated: self.truncated,
            coverage: if self.truncated == 0 {
                Coverage::Full
            } else {
                Coverage::Window
            },
            violation: self.checker.violation().copied(),
        }
    }

    /// The retained recent window (oldest-first). The spill prefix is
    /// [`spill`](Self::spill); together they are every retained record.
    pub fn window(&self) -> impl Iterator<Item = &TraceOp> {
        self.ring.iter()
    }

    /// The retained complete prefix (`full` mode; empty under `ring`).
    pub fn spill(&self) -> &[TraceOp] {
        &self.spill
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step(v: &mut SessionVerifier, tick: u64, w: &[(usize, Word)], r: &[(usize, Word)]) {
        let reads: Vec<usize> = r.iter().map(|&(a, _)| a).collect();
        let vals: Vec<Word> = r.iter().map(|&(_, x)| x).collect();
        v.record_step(tick, &reads, &vals, w, |_| false);
    }

    #[test]
    fn off_records_nothing() {
        let mut v = SessionVerifier::new(VerifyMode::Off, 16);
        step(&mut v, 0, &[(1, 5)], &[(1, 99)]);
        let rep = v.report();
        assert_eq!(rep.ops, 0);
        assert_eq!(rep.verdict(), "off");
    }

    #[test]
    fn ring_mode_checks_and_reports() {
        let mut v = SessionVerifier::new(VerifyMode::Ring, 16);
        step(&mut v, 1, &[(3, 7)], &[]);
        step(&mut v, 2, &[], &[(3, 7)]);
        let rep = v.report();
        assert_eq!(rep.verdict(), "consistent");
        assert_eq!((rep.ops, rep.reads, rep.writes), (2, 1, 1));
        assert_eq!(rep.coverage, Coverage::Full);
        assert_eq!(rep.retained, 2);
    }

    #[test]
    fn violation_is_surfaced_with_structure() {
        let mut v = SessionVerifier::new(VerifyMode::Ring, 16);
        let d1 = {
            let mut d = VerifyDelta::default();
            d.merge(v.record_step(0, &[], &[], &[(2, 10)], |_| false));
            d
        };
        assert!(!d1.violated);
        let d2 = v.record_step(1, &[2], &[11], &[], |_| false);
        assert!(d2.violated, "first violation reported as a delta");
        let d3 = v.record_step(2, &[2], &[12], &[], |_| false);
        assert!(!d3.violated, "only the transition is reported");
        let rep = v.report();
        assert_eq!(rep.verdict(), "violation");
        let viol = rep.violation.unwrap();
        assert_eq!(viol.addr, 2);
        assert_eq!(viol.got, 11);
        assert_eq!(viol.expected, 10);
    }

    #[test]
    fn excused_reads_keep_faulty_sessions_clean() {
        let mut v = SessionVerifier::new(VerifyMode::Ring, 16);
        v.record_step(0, &[], &[], &[(5, 9)], |_| false);
        // The cell is lost: the quorum returns 0, the fault layer says so.
        let d = v.record_step(1, &[5], &[0], &[], |a| a == 5);
        assert!(!d.violated);
        let rep = v.report();
        assert_eq!(rep.verdict(), "consistent");
        assert_eq!(rep.excused, 1);
    }

    #[test]
    fn ring_truncation_degrades_coverage_to_window_exactly_then() {
        let mut v = SessionVerifier::new(VerifyMode::Ring, 4);
        // Fill the ring exactly: still full coverage.
        for i in 0..RING_CAPACITY as u64 {
            let d = v.record_step(i, &[], &[], &[(0, i as Word)], |_| false);
            assert_eq!(d.truncated, 0);
        }
        assert_eq!(v.report().coverage, Coverage::Full);
        assert_eq!(v.report().retained, RING_CAPACITY as u64);
        // One more op truncates exactly one record.
        let d = v.record_step(99, &[], &[], &[(0, -1)], |_| false);
        assert_eq!(d.truncated, 1);
        let rep = v.report();
        assert_eq!(rep.coverage, Coverage::Window);
        assert_eq!(rep.truncated, 1);
        assert_eq!(rep.retained, RING_CAPACITY as u64);
        assert_eq!(rep.verdict(), "consistent", "truncation is not an error");
    }

    #[test]
    fn full_mode_spill_defers_truncation() {
        let mut v = SessionVerifier::new(VerifyMode::Full, 4);
        // Overflow the ring by far: everything is still in the spill.
        for i in 0..(RING_CAPACITY as u64 + 100) {
            let d = v.record_step(i, &[], &[], &[(1, i as Word)], |_| false);
            assert_eq!(d.truncated, 0);
        }
        let rep = v.report();
        assert_eq!(rep.coverage, Coverage::Full);
        assert_eq!(rep.truncated, 0);
        assert_eq!(v.spill().len(), RING_CAPACITY + 100);
        assert_eq!(v.window().count(), RING_CAPACITY);
        // The spill itself is bounded: once it fills, truncation resumes.
        for i in 0..SPILL_CAPACITY as u64 {
            v.record_step(i, &[], &[], &[(1, 0)], |_| false);
        }
        let rep = v.report();
        assert_eq!(rep.coverage, Coverage::Window);
        assert!(rep.truncated > 0);
        assert_eq!(v.spill().len(), SPILL_CAPACITY, "spill never regrows");
        assert_eq!(rep.retained, SPILL_CAPACITY as u64 + RING_CAPACITY as u64);
    }

    #[test]
    fn checker_state_survives_truncation() {
        // Violations are never missed just because the ring wrapped.
        let mut v = SessionVerifier::new(VerifyMode::Ring, 4);
        v.record_step(0, &[], &[], &[(2, 42)], |_| false);
        for i in 0..(RING_CAPACITY as u64 * 3) {
            v.record_step(i, &[], &[], &[(3, i as Word)], |_| false);
        }
        // The write of 42 left the ring long ago; the checker remembers.
        let d = v.record_step(9, &[2], &[0], &[], |_| false);
        assert!(
            d.violated,
            "stale read caught after its write was truncated"
        );
        assert_eq!(
            v.report().violation.unwrap().kind,
            crate::ViolationKind::StaleValue
        );
    }
}
