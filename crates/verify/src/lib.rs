//! `cr-verify` — online PRAM-consistency checking of session read/write
//! traces (DESIGN.md §12).
//!
//! A session's FNV-1a trace hash proves *determinism* — two runs of the
//! same spec produce the same bytes — but a hash cannot tell a correct
//! run from a deterministically wrong one. This crate closes that gap
//! with the check of Wei et al. ("Verifying PRAM Consistency over
//! Read/Write Traces of Data Replicas"): record every read and write a
//! session drives through its scheme as a compact numeric [`TraceOp`],
//! and validate **PRAM consistency** online as the ops are appended —
//! per-writer program order plus read-value legality. A session is its
//! own (single) writer, so PRAM consistency specializes to
//! read-your-own-writes-in-order: every read of cell `a` must return the
//! latest preceding write to `a` in program order, or the initial zero.
//! The VPC-read algorithm maintains exactly that frontier per cell, so
//! each appended op is checked in O(1) and the first violating op is
//! flagged with a structured [`Violation`] instead of a bare boolean.
//!
//! Three [`VerifyMode`]s, same zero-alloc discipline as
//! `cr-obs::EventRing`:
//!
//! * `off` — nothing recorded, nothing checked (the session pays only a
//!   branch per step);
//! * `ring` (the default — the service self-checks) — ops land in a
//!   fixed-capacity overwrite-oldest [`TraceRing`]; the checker still
//!   sees **every** op before it can be overwritten, so violations are
//!   never missed — truncation only narrows which raw records can be
//!   re-examined afterwards ([`Coverage::Window`]);
//! * `full` — ring plus a bounded, preallocated spill retaining the
//!   complete trace prefix, for offline re-verification.
//!
//! Fault-injected sessions stay honest: reads the fault layer counts as
//! *lost* (every copy of the cell destroyed — the quorum machinery
//! returns a default, not a stale value) are recorded **excused** and
//! skip the value-legality check, so a masked fault run verifies clean
//! while a genuinely corrupted store (or a stale quorum read under a
//! transient plan) still trips the checker.

pub mod checker;
pub mod trace;
pub mod verifier;

pub use checker::{PramChecker, Violation, ViolationKind};
pub use trace::{TraceOp, TraceRing};
pub use verifier::{SessionVerifier, VerifyDelta, VerifyReport};

/// Default per-session trace-ring capacity (ops retained for
/// re-examination; the online check itself is unwindowed).
pub const RING_CAPACITY: usize = 1024;

/// Bounded spill capacity of `full` mode — the complete trace prefix
/// retained beyond the ring, preallocated at session open so the append
/// path never grows it.
pub const SPILL_CAPACITY: usize = 1 << 16;

/// How much trace a session records and checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyMode {
    /// Record nothing, check nothing.
    Off,
    /// Ring-buffered recording + online checking (the default).
    #[default]
    Ring,
    /// Ring + bounded full-trace spill ([`SPILL_CAPACITY`] ops).
    Full,
}

impl VerifyMode {
    /// Stable wire name (`OPEN ... verify=<name>`, `VERIFY` replies).
    pub fn name(self) -> &'static str {
        match self {
            VerifyMode::Off => "off",
            VerifyMode::Ring => "ring",
            VerifyMode::Full => "full",
        }
    }

    /// Whether any recording/checking happens at all.
    pub fn enabled(self) -> bool {
        !matches!(self, VerifyMode::Off)
    }
}

impl std::str::FromStr for VerifyMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "off" => Ok(VerifyMode::Off),
            "ring" => Ok(VerifyMode::Ring),
            "full" => Ok(VerifyMode::Full),
            other => Err(format!("unknown verify mode {other} (off, ring, full)")),
        }
    }
}

/// How much of the recorded trace is still available for re-examination.
///
/// The online checker sees every op regardless; coverage degrades from
/// `full` to `window` at the exact moment the first record is truncated
/// (overwritten in the ring without a spill copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coverage {
    /// Every recorded op is still retained.
    Full,
    /// Only a recent window (plus any spill prefix) is retained.
    Window,
}

impl Coverage {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Coverage::Full => "full",
            Coverage::Window => "window",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for m in [VerifyMode::Off, VerifyMode::Ring, VerifyMode::Full] {
            assert_eq!(m.name().parse::<VerifyMode>().unwrap(), m);
        }
        assert!("sometimes".parse::<VerifyMode>().is_err());
        assert_eq!(VerifyMode::default(), VerifyMode::Ring);
        assert!(!VerifyMode::Off.enabled());
        assert!(VerifyMode::Full.enabled());
    }

    #[test]
    fn coverage_names() {
        assert_eq!(Coverage::Full.name(), "full");
        assert_eq!(Coverage::Window.name(), "window");
    }
}
