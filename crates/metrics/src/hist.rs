//! Fixed-bucket latency histogram.
//!
//! The serving layer (`cr-serve`) and the throughput experiment (E15) both
//! need tail quantiles — p50/p99 step latency — without unbounded memory
//! or per-sample allocation. [`Histogram`] uses 64 fixed power-of-two
//! buckets (bucket `i` holds values in `[2^(i-1), 2^i)`; bucket 0 holds
//! zero), so `record` is a shift and an increment, the footprint is one
//! cache line's worth of counters, and two histograms recorded on
//! different shards [`merge`](Histogram::merge) exactly — the property a
//! sharded service needs to report one service-wide p99.
//!
//! **Quantile resolution.** A quantile is *linearly interpolated* within
//! its covering bucket: if the `⌈q·count⌉`-th smallest sample is the
//! `k`-th of `c` samples in bucket `[2^(i−1), 2^i)`, the reported value
//! is `lo + width·(k − ½)/c` — the sample's expected position under a
//! uniform in-bucket distribution — clamped to the exact observed
//! `[min, max]`. (Earlier revisions reported the bucket's geometric
//! midpoint `lo·√2`, which pinned p50/p99 to power-of-two edge artifacts
//! like 5.79 µs and overstated sparse tails by up to 2x.) The value is
//! still bucket-resolution: the true sample lies within a factor of 2 of
//! the report, and exactly at it when the bucket holds uniform traffic.
//! Exact `min`, `max`, `count`, and `sum` (hence mean) are tracked
//! alongside the buckets.

/// Number of power-of-two buckets — enough for the full `u64` range.
pub const BUCKETS: usize = 64;

/// A mergeable fixed-bucket histogram over `u64` samples (typically
/// latencies in nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket index of a value: 0 for 0, else `floor(log2 v) + 1`, capped.
/// Public so lock-free recorders (e.g. `cr-obs`'s shared histogram) can
/// bucket identically and later rebuild a [`Histogram`] via
/// [`Histogram::from_parts`].
#[inline]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Rebuild a histogram from externally accumulated parts — the bridge
    /// for lock-free recorders that keep per-bucket atomic counters (and
    /// exact `sum`/`min`/`max`) and snapshot them into a mergeable
    /// [`Histogram`] on read. `count` is derived from the bucket counts;
    /// an empty snapshot yields exactly [`Histogram::new`].
    pub fn from_parts(counts: [u64; BUCKETS], sum: u128, min: u64, max: u64) -> Self {
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return Histogram::new();
        }
        Histogram {
            counts,
            count,
            sum,
            min,
            max,
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one. Bucket-exact: merging per-shard
    /// histograms yields the same counts as recording every sample into one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The quantile `q ∈ [0, 1]`, linearly interpolated within the bucket
    /// containing the `⌈q·count⌉`-th smallest sample (see the module docs
    /// for the resolution guarantee), clamped to the exact observed
    /// `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c > 0 && seen + c >= rank {
                let v = if i == 0 {
                    0 // bucket 0 holds only zeros
                } else {
                    // Bucket i covers [2^(i-1), 2^i); the rank'th sample
                    // is the k-th of this bucket's c. Interpolate to its
                    // expected position under a uniform in-bucket
                    // distribution: lo + width * (k - 1/2) / c.
                    let lo = (1u64 << (i - 1)) as f64;
                    let k = (rank - seen) as f64;
                    (lo + lo * (k - 0.5) / c as f64) as u64
                };
                return v.clamp(self.min, self.max);
            }
            seen += c;
        }
        self.max
    }

    /// Shorthand: the median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// Shorthand: the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn exact_stats_and_bucketed_quantiles() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 220.0).abs() < 1e-9);
        // p50 lands in the bucket of 20..30; within a factor of sqrt(2).
        let p50 = h.p50() as f64;
        assert!((16.0..=32.0).contains(&p50), "p50 = {p50}");
        // p99 lands in the top sample's bucket, clamped to max.
        let p99 = h.p99();
        assert!((512..=1000).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn quantile_is_monotone_and_clamped() {
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let mut last = 0;
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            let x = h.quantile(q);
            assert!(x >= last, "quantile must be monotone");
            assert!(x <= h.max());
            last = x;
        }
        assert_eq!(h.quantile(0.0), h.min());
    }

    #[test]
    fn interpolation_tracks_uniform_data() {
        // 0..1000 uniform: interpolation lands within ~1 of the true
        // order statistic, where a bucket-edge report would be off by
        // hundreds (the 5.79µs-edge artifact this fixes).
        let mut h = Histogram::new();
        for v in 0..1000u64 {
            h.record(v);
        }
        let p50 = h.p50() as i64;
        assert!((p50 - 499).abs() <= 1, "p50 = {p50}");
        let p99 = h.p99() as i64;
        // rank 990 sits in [512, 1024), which the data only half fills
        // (512..999): interpolation overshoots slightly and the max
        // clamp catches it — still within 1% of the true 989.
        assert!((989..=999).contains(&p99), "p99 = {p99}");
    }

    #[test]
    fn single_sample_bucket_clamps_to_exact_value() {
        let mut h = Histogram::new();
        h.record(100);
        assert_eq!(h.p50(), 100, "min/max clamp makes one sample exact");
        assert_eq!(h.p99(), 100);
    }

    #[test]
    fn merge_equals_recording_everything_in_one() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in 0..500u64 {
            let x = v * v % 7919;
            if v % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
            all.record(x);
        }
        a.merge(&b);
        assert_eq!(a, all);
        assert_eq!(a.p99(), all.p99());
    }

    #[test]
    fn from_parts_round_trips() {
        let mut h = Histogram::new();
        let mut counts = [0u64; BUCKETS];
        let (mut sum, mut min, mut max) = (0u128, u64::MAX, 0u64);
        for v in [0u64, 1, 7, 300, 4096, 4097, u64::MAX] {
            h.record(v);
            counts[bucket_of(v)] += 1;
            sum += v as u128;
            min = min.min(v);
            max = max.max(v);
        }
        assert_eq!(Histogram::from_parts(counts, sum, min, max), h);
        // Empty parts yield exactly the canonical empty histogram.
        assert_eq!(
            Histogram::from_parts([0; BUCKETS], 0, u64::MAX, 0),
            Histogram::new()
        );
    }

    #[test]
    fn merge_into_empty() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.record(42);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.min(), 42);
        assert_eq!(a.max(), 42);
    }
}
