//! Experiment support: summaries, scaling-law fits, and table rendering.
//!
//! The reproduction's claims are about *growth rates* (is time `log² n` or
//! `n^ε`? is redundancy flat or `log n`?), so the crate provides
//! least-squares fits against the two model families the paper uses —
//! `y = a·(log₂ x)^p` and `y = a·x^p` — plus plain ASCII tables for the
//! `repro` harness (experiment index in DESIGN.md §4), the
//! [`counting`] allocator behind E15's `allocs/step` column, and the
//! mergeable fixed-bucket [`Histogram`] behind the p50/p99 latency
//! columns of E15 and the serving layer (`cr-serve`).

pub mod counting;
pub mod hist;

pub use hist::{bucket_of, Histogram, BUCKETS};

/// Basic descriptive statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Population standard deviation.
    pub std: f64,
}

impl Summary {
    /// Summarize a sample (empty samples yield zeros).
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                std: 0.0,
            };
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        Summary {
            count: xs.len(),
            mean,
            min: xs.iter().copied().fold(f64::INFINITY, f64::min),
            max: xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            std: var.sqrt(),
        }
    }

    /// Summarize integer samples.
    pub fn of_u64(xs: &[u64]) -> Summary {
        Summary::of(&xs.iter().map(|&x| x as f64).collect::<Vec<_>>())
    }
}

/// A fitted model `y = a·f(x)^p` with its residual quality.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fit {
    /// Multiplicative constant.
    pub a: f64,
    /// Exponent.
    pub p: f64,
    /// Coefficient of determination on the transformed (log) scale.
    pub r2: f64,
}

fn linfit(xs: &[f64], ys: &[f64]) -> (f64, f64, f64) {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = if sxx.abs() < 1e-12 { 0.0 } else { sxy / sxx };
    let intercept = my - slope * mx;
    let ss_tot: f64 = ys.iter().map(|y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let e = y - (intercept + slope * x);
            e * e
        })
        .sum();
    let r2 = if ss_tot.abs() < 1e-12 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    (intercept, slope, r2)
}

/// Fit `y = a·x^p` (log-log least squares). Requires positive data.
pub fn fit_power(xs: &[f64], ys: &[f64]) -> Fit {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit");
    let lx: Vec<f64> = xs.iter().map(|&x| x.max(1e-12).ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.max(1e-12).ln()).collect();
    let (b, p, r2) = linfit(&lx, &ly);
    Fit { a: b.exp(), p, r2 }
}

/// Fit `y = a·(log₂ x)^p` — the polylog family the paper's bounds live in.
pub fn fit_polylog(xs: &[f64], ys: &[f64]) -> Fit {
    assert_eq!(xs.len(), ys.len());
    assert!(xs.len() >= 2, "need at least two points to fit");
    let lx: Vec<f64> = xs.iter().map(|&x| x.max(2.0).log2().ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|&y| y.max(1e-12).ln()).collect();
    let (b, p, r2) = linfit(&lx, &ly);
    Fit { a: b.exp(), p, r2 }
}

/// A plain-text table with aligned columns (also renders as markdown).
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                w[i] = w[i].max(c.len());
            }
        }
        w
    }

    /// Render with aligned columns and a separator rule.
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        let fmt_row = |cells: &[String], w: &[usize]| {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", c, width = w[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &w));
        out.push('\n');
        out.push_str(&"-".repeat(w.iter().sum::<usize>() + 2 * (w.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &w));
            out.push('\n');
        }
        out
    }

    /// Render as a GitHub-flavored markdown table.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}|\n",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Format a float compactly for tables.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.std - (1.25f64).sqrt()).abs() < 1e-12);
        let e = Summary::of(&[]);
        assert_eq!(e.count, 0);
    }

    #[test]
    fn power_fit_recovers_exponent() {
        let xs: Vec<f64> = (1..=6).map(|i| (1 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 3.0 * x.powf(1.5)).collect();
        let f = fit_power(&xs, &ys);
        assert!((f.p - 1.5).abs() < 1e-6, "p = {}", f.p);
        assert!((f.a - 3.0).abs() < 1e-6);
        assert!(f.r2 > 0.999);
    }

    #[test]
    fn polylog_fit_recovers_exponent() {
        let xs: Vec<f64> = (3..=10).map(|i| (1u64 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x.log2().powf(2.0)).collect();
        let f = fit_polylog(&xs, &ys);
        assert!((f.p - 2.0).abs() < 1e-6, "p = {}", f.p);
        assert!(f.r2 > 0.999);
    }

    #[test]
    fn polylog_distinguishes_linear_from_log() {
        let xs: Vec<f64> = (3..=12).map(|i| (1u64 << i) as f64).collect();
        let linear: Vec<f64> = xs.clone();
        let logly: Vec<f64> = xs.iter().map(|&x| x.log2()).collect();
        let f_lin = fit_polylog(&xs, &linear);
        let f_log = fit_polylog(&xs, &logly);
        // A linear function looks like a very high polylog power; log n is
        // power 1.
        assert!((f_log.p - 1.0).abs() < 1e-6);
        assert!(f_lin.p > 3.0);
    }

    #[test]
    fn table_rendering() {
        let mut t = Table::new(vec!["n", "phases"]);
        t.row(vec!["16", "12"]);
        t.row(vec!["256", "20"]);
        let s = t.render();
        assert!(s.contains("n"));
        assert!(s.lines().count() == 4);
        let md = t.render_markdown();
        assert!(md.starts_with("| n | phases |"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only one"]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1.23456), "1.23");
        assert_eq!(fnum(42.5), "42.5");
        assert_eq!(fnum(12345.6), "12346");
    }
}
