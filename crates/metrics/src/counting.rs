//! A counting global allocator, for measuring the data plane's
//! steady-state allocation behavior (E15's `allocs/step` column and the
//! zero-allocation regression test).
//!
//! The workspace is offline, so this is hand-rolled: a [`GlobalAlloc`]
//! that forwards to [`System`] and bumps one relaxed atomic per
//! allocation. A binary or test opts in with
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: metrics::counting::CountingAlloc = metrics::counting::CountingAlloc;
//! ```
//!
//! and reads [`allocations`] before/after the region of interest. When
//! the counting allocator is *not* installed the counter stays at zero
//! forever — [`is_active`] lets measurement code report "n/a" instead of
//! a fake zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Const-initialized `Cell<u64>` with no destructor: TLS access from
    // inside the allocator neither allocates nor registers teardown
    // hooks, so this is safe on the allocation path.
    static THREAD_ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_one() {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    // `try_with` instead of `with`: during thread teardown TLS may be
    // gone while the runtime still allocates; skip the thread count then.
    let _ = THREAD_ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

/// Forwards to the system allocator, counting every allocation
/// (`alloc`, `alloc_zeroed`, and growth via `realloc`).
pub struct CountingAlloc;

// SAFETY: defers entirely to `System`; the only addition is a relaxed
// atomic increment plus a const-initialized TLS bump, neither of which
// allocates or unwinds.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_one();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_one();
        System.realloc(ptr, layout, new_size)
    }
}

/// Total allocations since process start (0 if the counting allocator is
/// not installed as the global allocator).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Allocations made by the *calling thread* (0 if the counting allocator
/// is not installed). Counting windows on this counter are immune to
/// other threads in the process (the test harness, sibling tests,
/// parallel sweep workers) allocating concurrently.
pub fn thread_allocations() -> u64 {
    THREAD_ALLOCATIONS.with(|c| c.get())
}

/// Whether allocation counting is live in this process. Any Rust process
/// allocates long before user code runs, so a zero counter means the
/// counting allocator was never installed.
pub fn is_active() -> bool {
    allocations() > 0
}
