//! The probabilistic baseline: hashed memory distribution without
//! redundancy (Mehlhorn & Vishkin 1984 / Karlin & Upfal 1986 family).
//!
//! Each variable lives in exactly one module, chosen by a seeded hash. A
//! step's time is the maximum module congestion (each module serves one
//! request per phase). The classical facts this reproduces (experiment
//! E11):
//!
//! * with `M = n` modules, the expected worst-case congestion of a random
//!   step is `Θ(log n / log log n)`;
//! * with `M = n^{1+ε}` (the paper's fine granularity) it drops to `O(1)`
//!   for random steps — but an **adversary who knows the hash** can still
//!   aim `n` variables at one module, which is exactly why the
//!   deterministic schemes exist.

use crate::congestion::CongestionCounter;
use crate::majority::StepReport;
use crate::scheme::{Scheme, SchemeKind, SchemeParams};
use pram_machine::{AccessResult, SharedMemory, StepCost, Word};

/// Hashed single-copy shared memory on a DMMPC.
///
/// The per-step congestion count runs on flat reusable counters, so a
/// steady-state step's only allocation is the returned `read_values`
/// vector (the workspace-wide ≤ 1 alloc/step standard, DESIGN.md §7).
#[derive(Debug)]
pub struct HashedDmmpc {
    n: usize,
    modules: usize,
    seed: u64,
    cells: Vec<Word>,
    last_congestion: u64,
    worst_congestion: u64,
    last: StepReport,
    total: StepReport,
    steps: u64,
    /// Flat per-step congestion counter (replaces the old per-step
    /// `HashMap`).
    congestion: CongestionCounter,
}

impl HashedDmmpc {
    /// A memory of `m` cells hashed over `modules` modules.
    pub fn new(n: usize, m: usize, modules: usize, seed: u64) -> Self {
        assert!(n >= 1 && m >= 1 && modules >= 1);
        HashedDmmpc {
            n,
            modules,
            seed,
            cells: vec![0; m],
            last_congestion: 0,
            worst_congestion: 0,
            last: StepReport::default(),
            total: StepReport::default(),
            steps: 0,
            congestion: CongestionCounter::new(modules),
        }
    }

    /// The module holding variable `v`.
    pub fn module_of(&self, v: usize) -> usize {
        (simrng::mix64(v as u64 ^ self.seed) % self.modules as u64) as usize
    }

    /// Congestion (max requests on one module) of the last step.
    pub fn last_congestion(&self) -> u64 {
        self.last_congestion
    }

    /// Worst congestion over all steps.
    pub fn worst_congestion(&self) -> u64 {
        self.worst_congestion
    }
}

impl SharedMemory for HashedDmmpc {
    fn size(&self) -> usize {
        self.cells.len()
    }

    fn access(&mut self, reads: &[usize], writes: &[(usize, Word)]) -> AccessResult {
        assert!(reads.len() + writes.len() <= self.n.max(1));
        for &a in reads.iter().chain(writes.iter().map(|(a, _)| a)) {
            let md = self.module_of(a);
            self.congestion.touch(md);
        }
        let congestion = self.congestion.finish();
        // The step's one allocation: the returned result vector.
        let read_values = reads.iter().map(|&a| self.cells[a]).collect();
        for &(a, v) in writes {
            self.cells[a] = v;
        }
        self.last_congestion = congestion;
        self.worst_congestion = self.worst_congestion.max(congestion);
        let requests = reads.len() + writes.len();
        let report = StepReport {
            requests,
            phases: congestion,
            cycles: congestion,
            messages: requests as u64 * 2,
            protocol: Default::default(),
        };
        self.last = report;
        self.total.requests += report.requests;
        self.total.phases += report.phases;
        self.total.cycles += report.cycles;
        self.total.messages += report.messages;
        self.steps += 1;
        AccessResult {
            read_values,
            cost: StepCost {
                phases: congestion,
                cycles: congestion,
                messages: report.messages,
            },
        }
    }
}

impl Scheme for HashedDmmpc {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Hashed
    }

    fn redundancy(&self) -> f64 {
        1.0 // a single copy of every variable — the whole point
    }

    fn modules(&self) -> usize {
        self.modules
    }

    fn last_step(&self) -> StepReport {
        self.last
    }

    fn totals(&self) -> (StepReport, u64) {
        (self.total, self.steps)
    }

    fn params(&self) -> SchemeParams {
        SchemeParams {
            kind: SchemeKind::Hashed,
            n: self.n,
            m: self.cells.len(),
            modules: self.modules,
            redundancy: 1.0,
            seed: self.seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rng_from_seed, Rng};

    #[test]
    fn basic_read_write() {
        let mut h = HashedDmmpc::new(8, 64, 8, 1);
        h.access(&[], &[(3, 30), (4, 40)]);
        let r = h.access(&[3, 4], &[]);
        assert_eq!(r.read_values, vec![30, 40]);
        let (tot, steps) = h.totals();
        assert_eq!(steps, 2);
        assert_eq!(tot.requests, 4);
    }

    #[test]
    fn congestion_counts_collisions() {
        let h = HashedDmmpc::new(8, 64, 8, 1);
        // Find two variables in the same module.
        let m0 = h.module_of(0);
        let twin = (1..64)
            .find(|&v| h.module_of(v) == m0)
            .expect("collision exists");
        let mut h = h;
        let rep = h.access(&[0, twin], &[]);
        assert_eq!(rep.cost.phases, 2);
        assert_eq!(h.last_congestion(), 2);
        assert_eq!(h.last_step().phases, 2);
    }

    #[test]
    fn fine_granularity_reduces_congestion() {
        // Random steps: M = n vs M = n^1.5. More modules, less congestion.
        let n = 64;
        let m = 4096;
        let mut coarse = HashedDmmpc::new(n, m, n, 3);
        let mut fine = HashedDmmpc::new(n, m, 512, 3);
        let mut rng = rng_from_seed(17);
        let mut sum_coarse = 0;
        let mut sum_fine = 0;
        for _ in 0..50 {
            let addrs: Vec<usize> = rng
                .sample_distinct(m as u64, n)
                .into_iter()
                .map(|x| x as usize)
                .collect();
            sum_coarse += coarse.access(&addrs, &[]).cost.phases;
            sum_fine += fine.access(&addrs, &[]).cost.phases;
        }
        assert!(
            sum_fine * 3 <= sum_coarse * 2,
            "fine {sum_fine} should be well below coarse {sum_coarse}"
        );
    }

    #[test]
    fn adversary_defeats_hashing() {
        // Someone who knows the hash aims every request at one module:
        // congestion = request count. This is the motivation for the
        // deterministic schemes.
        let h = HashedDmmpc::new(16, 1 << 12, 64, 5);
        let target = h.module_of(0);
        let evil: Vec<usize> = (0..1 << 12)
            .filter(|&v| h.module_of(v) == target)
            .take(16)
            .collect();
        assert!(evil.len() >= 8, "enough colliding variables exist");
        let mut h = h;
        let rep = h.access(&evil, &[]);
        assert_eq!(rep.cost.phases, evil.len() as u64);
    }
}
