//! Phase executors: how one protocol phase meets the interconnect.
//!
//! Both executors follow the flat data plane's discipline (DESIGN.md §7):
//! they write outcomes into the caller's reusable buffer and keep their
//! own scratch (`BipartiteExec`'s load counters, `MotExec`'s request
//! batch and routed-batch buffers) across phases, so a steady-state phase
//! allocates nothing.

use crate::protocol::{AttemptOutcome, CopyAttempt, PhaseExecutor};
use mot::{BatchBuffers, MotNetwork, MotRequest};
use pram_machine::StepCost;

/// Complete-interconnect executor (MPC's `K_n`, DMMPC's `K_{n,M}`): every
/// attempt reaches its module in unit time; each module serves at most
/// `pipeline` attempts per phase, in deterministic arrival order.
#[derive(Debug)]
pub struct BipartiteExec {
    modules: usize,
    /// Scratch: per-module `(epoch << 32) | load`, valid only where the
    /// epoch half matches the current phase — an epoch stamp instead of a
    /// reset loop, packed into one word so each attempt costs a single
    /// random access into the per-module state (the fine-grain regimes
    /// have `M ≫ n` modules, so this array is the executor's cache
    /// footprint).
    state: Vec<u64>,
    phase_epoch: u32,
    /// Highest per-module demand seen in any phase (congestion diagnostic).
    pub max_module_demand: u32,
}

impl BipartiteExec {
    /// An executor over `modules` contention units.
    pub fn new(modules: usize) -> Self {
        BipartiteExec {
            modules,
            state: vec![0; modules],
            phase_epoch: 0,
            max_module_demand: 0,
        }
    }
}

impl PhaseExecutor for BipartiteExec {
    // lint: hot
    fn execute(
        &mut self,
        attempts: &[CopyAttempt],
        pipeline: usize,
        outcome: &mut Vec<AttemptOutcome>,
    ) -> StepCost {
        // A fresh epoch invalidates every load counter in O(1); on the
        // (once per 2^32 phases) wrap, fall back to an explicit reset.
        self.phase_epoch = self.phase_epoch.wrapping_add(1);
        if self.phase_epoch == 0 {
            self.state.iter_mut().for_each(|s| *s = 0);
            self.phase_epoch = 1;
        }
        let epoch_tag = (self.phase_epoch as u64) << 32;
        outcome.clear();
        outcome.reserve(attempts.len());
        for a in attempts {
            let m = a.module as usize;
            debug_assert!(m < self.modules);
            let s = self.state[m];
            let served = if s & 0xFFFF_FFFF_0000_0000 == epoch_tag {
                (s as u32) + 1
            } else {
                1
            };
            self.state[m] = epoch_tag | served as u64;
            // The demand diagnostic folds into the admission loop: load
            // only grows within a phase, so the running max equals the
            // post-phase max.
            self.max_module_demand = self.max_module_demand.max(served);
            outcome.push(if served <= pipeline as u32 {
                AttemptOutcome::Served
            } else {
                AttemptOutcome::Killed
            });
        }
        // A phase on a complete interconnect is one routing round:
        // one time unit, one cycle; message per attempt and reply.
        StepCost {
            phases: 1,
            cycles: 1,
            messages: 2 * attempts.len() as u64,
        }
    }
}

/// 2DMOT executor: attempts become routed requests through the cycle-level
/// mesh; `pipeline` is the per-column admission bound. Costs are measured
/// cycles and hops. The request batch and the routed-batch buffers are
/// owned here and recycled every phase.
#[derive(Debug)]
pub struct MotExec {
    net: MotNetwork<usize>,
    side: usize,
    /// Serve requests at column roots (the Luccio et al. scheme) instead of
    /// at leaves (the paper's Theorem 3 scheme).
    to_root: bool,
    /// Reusable request batch (payload = attempt index).
    reqs: Vec<MotRequest<usize>>,
    /// Reusable served/killed/faulted buffers.
    bufs: BatchBuffers<usize>,
}

impl MotExec {
    /// Memory-at-the-**leaves** executor (Theorem 3, Fig. 8).
    pub fn leaves(side: usize) -> Self {
        MotExec {
            net: MotNetwork::new(side),
            side,
            to_root: false,
            reqs: Vec::new(),
            bufs: BatchBuffers::new(),
        }
    }

    /// Memory-at-the-**roots** executor (Luccio et al. baseline).
    pub fn roots(side: usize) -> Self {
        MotExec {
            net: MotNetwork::new(side),
            side,
            to_root: true,
            reqs: Vec::new(),
            bufs: BatchBuffers::new(),
        }
    }

    /// Grid side.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Switches introduced by the interconnect.
    pub fn switches(&self) -> usize {
        self.net.topology().switches()
    }

    /// The underlying routed network — mutable, so fault injection can
    /// kill links ([`MotNetwork::fail_links`] / `fail_random_links`)
    /// before the executor is handed to a scheme.
    pub fn network_mut(&mut self) -> &mut MotNetwork<usize> {
        &mut self.net
    }

    /// The underlying routed network (read-only diagnostics).
    pub fn network(&self) -> &MotNetwork<usize> {
        &self.net
    }
}

impl PhaseExecutor for MotExec {
    // lint: hot
    fn execute(
        &mut self,
        attempts: &[CopyAttempt],
        pipeline: usize,
        outcome: &mut Vec<AttemptOutcome>,
    ) -> StepCost {
        self.reqs.clear();
        self.reqs.extend(attempts.iter().enumerate().map(|(i, a)| {
            debug_assert!((a.module as usize) < self.side, "column out of grid");
            debug_assert!((a.src as usize) < self.side, "processor beyond the roots");
            MotRequest {
                to_root: self.to_root,
                src_root: a.src as usize,
                row: a.row as usize % self.side,
                col: a.module as usize,
                payload: i,
            }
        }));
        // Copy values travel with replies in the real machine; timing-wise
        // the payload index suffices (the store is updated post-phase —
        // each copy slot is touched at most once per step, so order within
        // the phase cannot matter).
        let stats =
            self.net
                .route_batch_into(&mut self.reqs, pipeline, |_, _, _| {}, &mut self.bufs);
        outcome.clear();
        outcome.resize(attempts.len(), AttemptOutcome::Killed);
        for s in &self.bufs.served {
            outcome[s.payload] = AttemptOutcome::Served;
        }
        // Link-faulted attempts are also Killed, not Dead: the dead link
        // is permanent, but the *route* is not — the protocol rotates the
        // issuing cluster member, so a retry of the same copy from a
        // different source root can route around the fault. Copies that
        // are unreachable from every source exhaust the protocol's stage-2
        // budget instead, and the request is written off there (the
        // executor reports `lossy()`, so that abort is permitted).
        // `faulted` stays distinct in the batch buffers for diagnostics;
        // timing-wise both kill classes already cost their measured
        // cycles.
        StepCost {
            phases: 1,
            cycles: stats.cycles,
            messages: stats.hops,
        }
    }

    fn lossy(&self) -> bool {
        // With dead links injected, requests can fail permanently — the
        // protocol may legitimately end a step below quorum.
        self.net.dead_links() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attempt(req: u32, module: u32, src: u32) -> CopyAttempt {
        CopyAttempt {
            req,
            var: req,
            copy: 0,
            module,
            row: req % 4,
            src,
        }
    }

    use AttemptOutcome::{Killed, Served};

    /// Test convenience: run one phase into a fresh outcome buffer.
    fn exec_phase<E: PhaseExecutor>(
        ex: &mut E,
        attempts: &[CopyAttempt],
        pipeline: usize,
    ) -> (Vec<AttemptOutcome>, StepCost) {
        let mut outcome = Vec::new();
        let cost = ex.execute(attempts, pipeline, &mut outcome);
        (outcome, cost)
    }

    #[test]
    fn bipartite_serializes_per_module() {
        let mut ex = BipartiteExec::new(8);
        let attempts = vec![attempt(0, 3, 0), attempt(1, 3, 1), attempt(2, 5, 2)];
        let (out, cost) = exec_phase(&mut ex, &attempts, 1);
        assert_eq!(out, vec![Served, Killed, Served]);
        assert_eq!(cost.cycles, 1);
        // Pipeline 2 admits both module-3 attempts.
        let (out, _) = exec_phase(&mut ex, &attempts, 2);
        assert_eq!(out, vec![Served, Served, Served]);
        assert_eq!(ex.max_module_demand, 2);
    }

    #[test]
    fn bipartite_state_resets_between_phases() {
        let mut ex = BipartiteExec::new(4);
        let a = vec![attempt(0, 1, 0)];
        assert_eq!(exec_phase(&mut ex, &a, 1).0, vec![Served]);
        assert_eq!(
            exec_phase(&mut ex, &a, 1).0,
            vec![Served],
            "fresh phase, fresh budget"
        );
    }

    #[test]
    fn bipartite_reuses_the_outcome_buffer() {
        // A shrinking phase must truncate the buffer, not leave stale
        // outcomes behind.
        let mut ex = BipartiteExec::new(8);
        let mut outcome = Vec::new();
        let big = vec![attempt(0, 1, 0), attempt(1, 2, 1), attempt(2, 3, 2)];
        ex.execute(&big, 1, &mut outcome);
        assert_eq!(outcome.len(), 3);
        let small = vec![attempt(0, 4, 0)];
        ex.execute(&small, 1, &mut outcome);
        assert_eq!(outcome, vec![Served]);
    }

    #[test]
    fn mot_exec_leaves_roundtrip() {
        let mut ex = MotExec::leaves(8);
        let attempts = vec![attempt(0, 2, 0), attempt(1, 5, 1), attempt(2, 2, 3)];
        let (out, cost) = exec_phase(&mut ex, &attempts, 1);
        // Two column-2 attempts: one survives.
        assert_eq!(out.iter().filter(|&&s| s == Served).count(), 2);
        assert!(cost.cycles >= 6 * 3, "full path is 6·depth cycles");
        // Pipelined phase admits both.
        let (out, _) = exec_phase(&mut ex, &attempts, 2);
        assert_eq!(out, vec![Served, Served, Served]);
    }

    #[test]
    fn mot_exec_dead_links_kill_attempts_transiently() {
        let mut ex = MotExec::leaves(8);
        // Kill root 0's row-tree down-links: attempts issued *from source
        // root 0* cannot route — but the same copy retried from another
        // root could, so the outcome is Killed (retry), never Dead.
        let root = ex.network().topology().root(0);
        let dead: Vec<_> = ex.network().topology().graph().out_edges(root).to_vec();
        ex.network_mut().fail_links(&dead);
        assert!(ex.lossy(), "dead links permit protocol degradation");
        let attempts = vec![attempt(0, 2, 0), attempt(1, 5, 1)];
        let (out, _) = exec_phase(&mut ex, &attempts, 1);
        assert_eq!(out[0], Killed);
        assert_eq!(out[1], Served);
        // The identical attempt from a live root succeeds — the fault is
        // per-route, which is why it must not write the copy off.
        let retry = vec![attempt(0, 2, 3)];
        let (out, _) = exec_phase(&mut ex, &retry, 1);
        assert_eq!(out[0], Served);
    }

    #[test]
    fn mot_exec_roots_shorter_path() {
        let mut leaves = MotExec::leaves(16);
        let mut roots = MotExec::roots(16);
        let attempts = vec![attempt(0, 9, 2)];
        let cl = exec_phase(&mut leaves, &attempts, 1).1.cycles;
        let cr = exec_phase(&mut roots, &attempts, 1).1.cycles;
        // Root service skips the column-down and reply-column-up legs.
        assert!(cr < cl, "root path {cr} should beat leaf path {cl}");
        assert!(leaves.switches() > 0);
    }
}
