//! Phase executors: how one protocol phase meets the interconnect.

use crate::protocol::{AttemptOutcome, CopyAttempt, PhaseExecutor, PhaseResult};
use mot::{MotNetwork, MotRequest};
use pram_machine::StepCost;

/// Complete-interconnect executor (MPC's `K_n`, DMMPC's `K_{n,M}`): every
/// attempt reaches its module in unit time; each module serves at most
/// `pipeline` attempts per phase, in deterministic arrival order.
#[derive(Debug)]
pub struct BipartiteExec {
    modules: usize,
    /// Scratch: per-module served count (reset each phase).
    load: Vec<u32>,
    touched: Vec<usize>,
    /// Highest per-module demand seen in any phase (congestion diagnostic).
    pub max_module_demand: u32,
}

impl BipartiteExec {
    /// An executor over `modules` contention units.
    pub fn new(modules: usize) -> Self {
        BipartiteExec {
            modules,
            load: vec![0; modules],
            touched: Vec::new(),
            max_module_demand: 0,
        }
    }
}

impl PhaseExecutor for BipartiteExec {
    fn execute(&mut self, attempts: &[CopyAttempt], pipeline: usize) -> PhaseResult {
        // Reset only the touched counters (phases are sparse in M).
        for &m in &self.touched {
            self.load[m] = 0;
        }
        self.touched.clear();
        let mut demand = vec![];
        let mut outcome = Vec::with_capacity(attempts.len());
        for a in attempts {
            debug_assert!(a.module < self.modules);
            if self.load[a.module] == 0 {
                self.touched.push(a.module);
            }
            self.load[a.module] += 1;
            outcome.push(if self.load[a.module] <= pipeline as u32 {
                AttemptOutcome::Served
            } else {
                AttemptOutcome::Killed
            });
            demand.push(a.module);
        }
        for &m in &demand {
            self.max_module_demand = self.max_module_demand.max(self.load[m]);
        }
        PhaseResult {
            outcome,
            // A phase on a complete interconnect is one routing round:
            // one time unit, one cycle; message per attempt and reply.
            cost: StepCost {
                phases: 1,
                cycles: 1,
                messages: 2 * attempts.len() as u64,
            },
        }
    }
}

/// 2DMOT executor: attempts become routed requests through the cycle-level
/// mesh; `pipeline` is the per-column admission bound. Costs are measured
/// cycles and hops.
#[derive(Debug)]
pub struct MotExec {
    net: MotNetwork<usize>,
    side: usize,
    /// Serve requests at column roots (the Luccio et al. scheme) instead of
    /// at leaves (the paper's Theorem 3 scheme).
    to_root: bool,
}

impl MotExec {
    /// Memory-at-the-**leaves** executor (Theorem 3, Fig. 8).
    pub fn leaves(side: usize) -> Self {
        MotExec {
            net: MotNetwork::new(side),
            side,
            to_root: false,
        }
    }

    /// Memory-at-the-**roots** executor (Luccio et al. baseline).
    pub fn roots(side: usize) -> Self {
        MotExec {
            net: MotNetwork::new(side),
            side,
            to_root: true,
        }
    }

    /// Grid side.
    pub fn side(&self) -> usize {
        self.side
    }

    /// Switches introduced by the interconnect.
    pub fn switches(&self) -> usize {
        self.net.topology().switches()
    }

    /// The underlying routed network — mutable, so fault injection can
    /// kill links ([`MotNetwork::fail_links`] / `fail_random_links`)
    /// before the executor is handed to a scheme.
    pub fn network_mut(&mut self) -> &mut MotNetwork<usize> {
        &mut self.net
    }

    /// The underlying routed network (read-only diagnostics).
    pub fn network(&self) -> &MotNetwork<usize> {
        &self.net
    }
}

impl PhaseExecutor for MotExec {
    fn execute(&mut self, attempts: &[CopyAttempt], pipeline: usize) -> PhaseResult {
        let reqs: Vec<MotRequest<usize>> = attempts
            .iter()
            .enumerate()
            .map(|(i, a)| {
                debug_assert!(a.module < self.side, "column out of grid");
                debug_assert!(a.src < self.side, "processor beyond the roots");
                MotRequest {
                    to_root: self.to_root,
                    src_root: a.src,
                    row: a.row % self.side,
                    col: a.module,
                    payload: i,
                }
            })
            .collect();
        // Copy values travel with replies in the real machine; timing-wise
        // the payload index suffices (the store is updated post-phase —
        // each copy slot is touched at most once per step, so order within
        // the phase cannot matter).
        let out = self.net.route_batch(reqs, pipeline, |_, _, _| {});
        let mut outcome = vec![AttemptOutcome::Killed; attempts.len()];
        for s in &out.served {
            outcome[s.payload] = AttemptOutcome::Served;
        }
        // Link-faulted attempts are also Killed, not Dead: the dead link
        // is permanent, but the *route* is not — the protocol rotates the
        // issuing cluster member, so a retry of the same copy from a
        // different source root can route around the fault. Copies that
        // are unreachable from every source exhaust the protocol's stage-2
        // budget instead, and the request is written off there (the
        // executor reports `lossy()`, so that abort is permitted).
        // `out.faulted` stays distinct in the batch outcome for
        // diagnostics; timing-wise both kill classes already cost their
        // measured cycles.
        PhaseResult {
            outcome,
            cost: StepCost {
                phases: 1,
                cycles: out.stats.cycles,
                messages: out.stats.hops,
            },
        }
    }

    fn lossy(&self) -> bool {
        // With dead links injected, requests can fail permanently — the
        // protocol may legitimately end a step below quorum.
        self.net.dead_links() > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attempt(req: usize, module: usize, src: usize) -> CopyAttempt {
        CopyAttempt {
            req,
            var: req,
            copy: 0,
            module,
            row: req % 4,
            src,
        }
    }

    use AttemptOutcome::{Killed, Served};

    #[test]
    fn bipartite_serializes_per_module() {
        let mut ex = BipartiteExec::new(8);
        let attempts = vec![attempt(0, 3, 0), attempt(1, 3, 1), attempt(2, 5, 2)];
        let r = ex.execute(&attempts, 1);
        assert_eq!(r.outcome, vec![Served, Killed, Served]);
        assert_eq!(r.cost.cycles, 1);
        // Pipeline 2 admits both module-3 attempts.
        let r = ex.execute(&attempts, 2);
        assert_eq!(r.outcome, vec![Served, Served, Served]);
        assert_eq!(ex.max_module_demand, 2);
    }

    #[test]
    fn bipartite_state_resets_between_phases() {
        let mut ex = BipartiteExec::new(4);
        let a = vec![attempt(0, 1, 0)];
        assert_eq!(ex.execute(&a, 1).outcome, vec![Served]);
        assert_eq!(
            ex.execute(&a, 1).outcome,
            vec![Served],
            "fresh phase, fresh budget"
        );
    }

    #[test]
    fn mot_exec_leaves_roundtrip() {
        let mut ex = MotExec::leaves(8);
        let attempts = vec![attempt(0, 2, 0), attempt(1, 5, 1), attempt(2, 2, 3)];
        let r = ex.execute(&attempts, 1);
        // Two column-2 attempts: one survives.
        assert_eq!(r.outcome.iter().filter(|&&s| s == Served).count(), 2);
        assert!(r.cost.cycles >= 6 * 3, "full path is 6·depth cycles");
        // Pipelined phase admits both.
        let r = ex.execute(&attempts, 2);
        assert_eq!(r.outcome, vec![Served, Served, Served]);
    }

    #[test]
    fn mot_exec_dead_links_kill_attempts_transiently() {
        let mut ex = MotExec::leaves(8);
        // Kill root 0's row-tree down-links: attempts issued *from source
        // root 0* cannot route — but the same copy retried from another
        // root could, so the outcome is Killed (retry), never Dead.
        let root = ex.network().topology().root(0);
        let dead: Vec<_> = ex.network().topology().graph().out_edges(root).to_vec();
        ex.network_mut().fail_links(&dead);
        assert!(ex.lossy(), "dead links permit protocol degradation");
        let attempts = vec![attempt(0, 2, 0), attempt(1, 5, 1)];
        let r = ex.execute(&attempts, 1);
        assert_eq!(r.outcome[0], Killed);
        assert_eq!(r.outcome[1], Served);
        // The identical attempt from a live root succeeds — the fault is
        // per-route, which is why it must not write the copy off.
        let retry = vec![attempt(0, 2, 3)];
        let r = ex.execute(&retry, 1);
        assert_eq!(r.outcome[0], Served);
    }

    #[test]
    fn mot_exec_roots_shorter_path() {
        let mut leaves = MotExec::leaves(16);
        let mut roots = MotExec::roots(16);
        let attempts = vec![attempt(0, 9, 2)];
        let cl = leaves.execute(&attempts, 1).cost.cycles;
        let cr = roots.execute(&attempts, 1).cost.cycles;
        // Root service skips the column-down and reply-column-up legs.
        assert!(cr < cl, "root path {cr} should beat leaf path {cl}");
        assert!(leaves.switches() > 0);
    }
}
