//! Schuster's IDA-based scheme as a [`SharedMemory`] (experiment E8).
//!
//! Wraps [`ida::SchusterStore`] with DMMPC-style step accounting: a step's
//! phase count is the maximum module congestion induced by the quorum
//! accesses (each module serves one share request per phase), and the
//! per-access work (`Θ(log n)` shares touched) is reported alongside.

use crate::majority::StepReport;
use crate::scheme::{Scheme, SchemeKind, SchemeParams};
use ida::SchusterStore;
use pram_machine::{AccessResult, SharedMemory, StepCost, Word};

/// IDA-backed shared memory with constant storage blowup `d/b`.
#[derive(Debug)]
pub struct IdaShared {
    n: usize,
    modules: usize,
    store: SchusterStore,
    last: StepReport,
    total: StepReport,
    steps: u64,
    total_shares: u64,
}

impl IdaShared {
    /// Fully explicit construction: `m` variables in blocks of `b`
    /// dispersed into `d` shares over `modules` modules. Prefer
    /// `SimBuilder::new(n, m).kind(SchemeKind::Ida)`, which derives
    /// `b, d = Θ(log n)` (blowup 1.5) over `M = max(4d, n)` modules.
    pub fn new(n: usize, m: usize, modules: usize, b: usize, d: usize) -> Self {
        IdaShared {
            n,
            modules,
            store: SchusterStore::new(m, modules, b, d),
            last: StepReport::default(),
            total: StepReport::default(),
            steps: 0,
            total_shares: 0,
        }
    }

    /// Storage blowup `d/b` — the scheme's "redundancy" analogue.
    pub fn blowup(&self) -> f64 {
        self.store.blowup()
    }

    /// Quorum size `(d+b)/2` (shares touched per access).
    pub fn quorum(&self) -> usize {
        self.store.quorum()
    }

    /// Total shares touched across all steps (the `Θ(log n)` work factor
    /// the messages column of [`StepReport`] also records).
    pub fn total_shares(&self) -> u64 {
        self.total_shares
    }
}

impl SharedMemory for IdaShared {
    fn size(&self) -> usize {
        self.store.size()
    }

    fn access(&mut self, reads: &[usize], writes: &[(usize, Word)]) -> AccessResult {
        assert!(reads.len() + writes.len() <= self.n.max(1));
        let mut module_load = std::collections::HashMap::new();
        let mut shares = 0u64;

        // Reads observe pre-step state.
        let read_values: Vec<Word> = reads
            .iter()
            .map(|&a| {
                let (v, st) = self.store.read(a);
                shares += st.shares_touched;
                v
            })
            .collect();
        for &(a, v) in writes {
            let st = self.store.write(a, v);
            shares += st.shares_touched;
        }
        // Module congestion: each access's quorum lands on its block's
        // first q share modules (the store's deterministic touch order).
        let q = self.store.quorum();
        let blk_vars = self.store.vars_per_block();
        for &a in reads.iter().chain(writes.iter().map(|(a, _)| a)) {
            let blk = a / blk_vars;
            for i in 0..q {
                *module_load
                    .entry(self.store.module_of_share(blk, i))
                    .or_insert(0u64) += 1;
            }
        }
        let congestion = module_load.values().copied().max().unwrap_or(0);
        let report = StepReport {
            requests: reads.len() + writes.len(),
            phases: congestion,
            cycles: congestion,
            messages: shares,
            protocol: Default::default(),
        };
        self.last = report;
        self.total.requests += report.requests;
        self.total.phases += report.phases;
        self.total.cycles += report.cycles;
        self.total.messages += report.messages;
        self.steps += 1;
        self.total_shares += shares;
        AccessResult {
            read_values,
            cost: StepCost {
                phases: congestion,
                cycles: congestion,
                messages: shares,
            },
        }
    }
}

impl Scheme for IdaShared {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Ida
    }

    fn redundancy(&self) -> f64 {
        self.store.blowup()
    }

    fn modules(&self) -> usize {
        self.modules
    }

    fn last_step(&self) -> StepReport {
        self.last
    }

    fn totals(&self) -> (StepReport, u64) {
        (self.total, self.steps)
    }

    fn params(&self) -> SchemeParams {
        SchemeParams {
            kind: SchemeKind::Ida,
            n: self.n,
            m: self.store.size(),
            modules: self.modules,
            redundancy: self.store.blowup(),
            seed: 0, // share placement is deterministic, not seeded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SimBuilder;

    fn ida_for(n: usize, m: usize) -> Box<dyn Scheme> {
        SimBuilder::new(n, m).kind(SchemeKind::Ida).build().unwrap()
    }

    #[test]
    fn linearizable_against_reference() {
        use simrng::{rng_from_seed, Rng};
        let m = 128;
        let mut s = ida_for(16, m);
        let mut reference = vec![0i64; m];
        let mut rng = rng_from_seed(3);
        for step in 0..50 {
            let addrs = rng.sample_distinct(m as u64, 8);
            let reads: Vec<usize> = addrs[..4].iter().map(|&a| a as usize).collect();
            let writes: Vec<(usize, i64)> = addrs[4..]
                .iter()
                .map(|&a| (a as usize, step * 7 + a as i64))
                .collect();
            let res = s.access(&reads, &writes);
            for (i, &a) in reads.iter().enumerate() {
                assert_eq!(res.read_values[i], reference[a], "step {step}");
            }
            for &(a, v) in &writes {
                reference[a] = v;
            }
        }
    }

    #[test]
    fn constant_blowup_log_work() {
        let small = ida_for(16, 64);
        let big = ida_for(1 << 16, 64);
        // Blowup constant...
        assert!((small.redundancy() - big.redundancy()).abs() < 1e-9);
        // ...but per-access work grows with log n.
        let (qs, qb) = (ida::params_for_n(16), ida::params_for_n(1 << 16));
        assert!((qb.0 + qb.1) / 2 > (qs.0 + qs.1) / 2);
    }

    #[test]
    fn step_cost_reports_share_traffic() {
        let (b, d) = ida::params_for_n(8);
        let mut s = IdaShared::new(8, 64, (4 * d).max(8), b, d);
        let res = s.access(&[1], &[]);
        assert_eq!(res.cost.messages, s.quorum() as u64);
        assert!(res.cost.phases >= 1);
        assert_eq!(s.last_step().messages, s.total_shares());
    }
}
