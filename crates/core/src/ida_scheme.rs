//! Schuster's IDA-based scheme as a [`SharedMemory`] (experiment E8).
//!
//! Wraps [`ida::SchusterStore`] with DMMPC-style step accounting: a step's
//! phase count is the maximum module congestion induced by the quorum
//! accesses (each module serves one share request per phase), and the
//! per-access work (`Θ(log n)` shares touched) is reported alongside.

use crate::congestion::CongestionCounter;
use crate::majority::StepReport;
use crate::scheme::{Scheme, SchemeKind, SchemeParams};
use ida::{IdaWorkspace, SchusterStore};
use pram_machine::{AccessResult, SharedMemory, StepCost, Word};

/// IDA-backed shared memory with constant storage blowup `d/b`.
///
/// Owns the [`IdaWorkspace`] its accesses run in (decode-matrix cache +
/// recover/encode scratch) plus flat congestion counters, so a
/// steady-state step's only allocation is the returned `read_values`
/// vector — the same standard `MajorityScheme` holds (DESIGN.md §7).
#[derive(Debug)]
pub struct IdaShared {
    n: usize,
    modules: usize,
    store: SchusterStore,
    /// Per-module unavailability mask (fault injection): accesses recover
    /// from surviving shares; a block with fewer than quorum survivors is
    /// lost. All-false on a healthy machine.
    unavailable: Vec<bool>,
    /// Whether any entry of `unavailable` is set. A healthy machine
    /// passes the store an empty mask, unlocking its no-fault fast path
    /// (no share→module arithmetic in the quorum walk).
    has_faults: bool,
    /// `(i · module_stride) % modules` per share index — the congestion
    /// charge below reduces each share's module to one add + compare.
    stride_mod: Vec<usize>,
    /// `⌊2³² / vars_per_block⌋` and `⌊2³² / modules⌋`: the per-access
    /// `(a / vars_per_block) % modules` runs as two multiplies plus
    /// fixups instead of two runtime divisions (same trick as the
    /// store's `locate`; valid because `a < m ≤ 2³²`).
    vpb_recip: u64,
    mod_recip: u64,
    /// Accesses that found no reachable quorum (lost cells under faults).
    quorum_failures: u64,
    last: StepReport,
    total: StepReport,
    steps: u64,
    total_shares: u64,
    /// Decode cache + per-access scratch, threaded through every store
    /// access (prewarmed for the healthy rotation masks at build time).
    ws: IdaWorkspace,
    /// Flat per-step congestion counter (replaces the old per-step
    /// `HashMap`).
    congestion: CongestionCounter,
}

impl IdaShared {
    /// Fully explicit construction: `m` variables in blocks of `b`
    /// dispersed into `d` shares over `modules` modules. Prefer
    /// `SimBuilder::new(n, m).kind(SchemeKind::Ida)`, which derives
    /// `b, d = Θ(log n)` (blowup 1.5) over `M = max(4d, n)` modules.
    pub fn new(n: usize, m: usize, modules: usize, b: usize, d: usize) -> Self {
        let store = SchusterStore::new(m, modules, b, d);
        let mut ws = IdaWorkspace::new();
        store.prewarm_decode(&mut ws);
        let stride_mod = (0..d).map(|i| store.module_of_share(0, i)).collect();
        let vpb_recip = (1u64 << 32) / store.vars_per_block() as u64;
        let mod_recip = (1u64 << 32) / modules as u64;
        IdaShared {
            n,
            modules,
            store,
            unavailable: vec![false; modules],
            has_faults: false,
            stride_mod,
            vpb_recip,
            mod_recip,
            quorum_failures: 0,
            last: StepReport::default(),
            total: StepReport::default(),
            steps: 0,
            total_shares: 0,
            ws,
            congestion: CongestionCounter::new(modules),
        }
    }

    /// Mark modules unavailable (fault injection): `dead[j]` means module
    /// `j` no longer serves shares. Accesses degrade to the surviving
    /// shares; a block left below its quorum is lost (reads return 0,
    /// counted in [`Self::quorum_failures`]). Copied into the scheme's
    /// retained mask — no per-call ownership transfer.
    pub fn set_unavailable(&mut self, dead: &[bool]) {
        assert_eq!(dead.len(), self.modules, "mask must cover every module");
        self.unavailable.copy_from_slice(dead);
        self.has_faults = dead.iter().any(|&x| x);
    }

    /// Accesses that found no reachable quorum so far.
    pub fn quorum_failures(&self) -> u64 {
        self.quorum_failures
    }

    /// The underlying dispersed store (share placement diagnostics —
    /// fault planners use `module_of_share` to aim at a block's shares).
    pub fn store(&self) -> &SchusterStore {
        &self.store
    }

    /// Storage blowup `d/b` — the scheme's "redundancy" analogue.
    pub fn blowup(&self) -> f64 {
        self.store.blowup()
    }

    /// Quorum size `(d+b)/2` (shares touched per access).
    pub fn quorum(&self) -> usize {
        self.store.quorum()
    }

    /// Total shares touched across all steps (the `Θ(log n)` work factor
    /// the messages column of [`StepReport`] also records).
    pub fn total_shares(&self) -> u64 {
        self.total_shares
    }

    /// Decode-matrix cache statistics `(cached_sets, hits, misses)` —
    /// after the build-time prewarm, healthy traffic should only add
    /// hits.
    pub fn decode_cache_stats(&self) -> (usize, u64, u64) {
        self.ws.cache_stats()
    }
}

/// `x / d` via a precomputed `recip = ⌊2³² / d⌋` (requires `x < 2³²`):
/// the multiply's estimate is exact or one short, so a single fixup
/// lands it (the error term is `x·(2³² mod d) / (d·2³²) < x/2³² < 1`).
// lint: hot
#[inline]
fn div_recip(x: usize, d: usize, recip: u64) -> usize {
    let mut q = ((x as u64 * recip) >> 32) as usize;
    if x - q * d >= d {
        q += 1;
    }
    q
}

impl SharedMemory for IdaShared {
    fn size(&self) -> usize {
        self.store.size()
    }

    fn access(&mut self, reads: &[usize], writes: &[(usize, Word)]) -> AccessResult {
        assert!(reads.len() + writes.len() <= self.n.max(1));
        let mut shares = 0u64;
        let blk_vars = self.store.vars_per_block();
        let modules = self.modules;
        let has_faults = self.has_faults;
        let (vpb_recip, mod_recip) = (self.vpb_recip, self.mod_recip);

        // Module congestion is charged per access as it happens, from the
        // quorum the store just walked (`ws.touched`): each access lands
        // on its block's first q *available* share modules — the store's
        // deterministic probe order under the unavailability mask — so
        // dead modules are never charged and faulted machines route real
        // extra load onto the survivors. A lost block (fewer than q
        // survivors) still charges the shares it probed before giving up.
        // Identical multiset of touches as a separate post-loop, fused so
        // the quorum is derived exactly once.
        //
        // Reads observe pre-step state. Recovery uses whatever shares
        // survive the unavailability mask; a block below quorum is lost
        // (reads return 0 — the fault layer classifies these). The
        // collect below is the step's one allocation (the returned
        // result vector); everything else runs on the workspace.
        let read_values: Vec<Word> = reads
            .iter()
            .map(|&a| {
                let ua: &[bool] = if has_faults { &self.unavailable } else { &[] };
                let r = self.store.read_in(a, ua, &mut self.ws);
                let blk = div_recip(a, blk_vars, vpb_recip);
                let bm = blk - div_recip(blk, modules, mod_recip) * modules;
                for &i in self.ws.touched() {
                    let md = bm + self.stride_mod[i];
                    self.congestion
                        .touch(if md >= modules { md - modules } else { md });
                }
                match r {
                    Some((v, st)) => {
                        shares += st.shares_touched;
                        v
                    }
                    None => {
                        self.quorum_failures += 1;
                        0
                    }
                }
            })
            .collect();
        for &(a, v) in writes {
            let ua: &[bool] = if has_faults { &self.unavailable } else { &[] };
            let r = self.store.write_in(a, v, ua, &mut self.ws);
            let bm = (a / blk_vars) % modules;
            for &i in self.ws.touched() {
                let md = bm + self.stride_mod[i];
                self.congestion
                    .touch(if md >= modules { md - modules } else { md });
            }
            match r {
                Some(st) => shares += st.shares_touched,
                None => self.quorum_failures += 1,
            }
        }
        let congestion = self.congestion.finish();
        let report = StepReport {
            requests: reads.len() + writes.len(),
            phases: congestion,
            cycles: congestion,
            messages: shares,
            protocol: Default::default(),
        };
        self.last = report;
        self.total.requests += report.requests;
        self.total.phases += report.phases;
        self.total.cycles += report.cycles;
        self.total.messages += report.messages;
        self.steps += 1;
        self.total_shares += shares;
        AccessResult {
            read_values,
            cost: StepCost {
                phases: congestion,
                cycles: congestion,
                messages: shares,
            },
        }
    }
}

impl Scheme for IdaShared {
    fn kind(&self) -> SchemeKind {
        SchemeKind::Ida
    }

    fn redundancy(&self) -> f64 {
        self.store.blowup()
    }

    fn modules(&self) -> usize {
        self.modules
    }

    fn last_step(&self) -> StepReport {
        self.last
    }

    fn totals(&self) -> (StepReport, u64) {
        (self.total, self.steps)
    }

    fn params(&self) -> SchemeParams {
        SchemeParams {
            kind: SchemeKind::Ida,
            n: self.n,
            m: self.store.size(),
            modules: self.modules,
            redundancy: self.store.blowup(),
            seed: 0, // share placement is deterministic, not seeded
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SimBuilder;

    fn ida_for(n: usize, m: usize) -> Box<dyn Scheme> {
        SimBuilder::new(n, m).kind(SchemeKind::Ida).build().unwrap()
    }

    #[test]
    fn linearizable_against_reference() {
        use simrng::{rng_from_seed, Rng};
        let m = 128;
        let mut s = ida_for(16, m);
        let mut reference = vec![0i64; m];
        let mut rng = rng_from_seed(3);
        for step in 0..50 {
            let addrs = rng.sample_distinct(m as u64, 8);
            let reads: Vec<usize> = addrs[..4].iter().map(|&a| a as usize).collect();
            let writes: Vec<(usize, i64)> = addrs[4..]
                .iter()
                .map(|&a| (a as usize, step * 7 + a as i64))
                .collect();
            let res = s.access(&reads, &writes);
            for (i, &a) in reads.iter().enumerate() {
                assert_eq!(res.read_values[i], reference[a], "step {step}");
            }
            for &(a, v) in &writes {
                reference[a] = v;
            }
        }
    }

    #[test]
    fn constant_blowup_log_work() {
        let small = ida_for(16, 64);
        let big = ida_for(1 << 16, 64);
        // Blowup constant...
        assert!((small.redundancy() - big.redundancy()).abs() < 1e-9);
        // ...but per-access work grows with log n.
        let (qs, qb) = (ida::params_for_n(16), ida::params_for_n(1 << 16));
        assert!((qb.0 + qb.1) / 2 > (qs.0 + qs.1) / 2);
    }

    #[test]
    fn unavailability_mask_recovers_then_loses() {
        // b=8 (2 vars/block), d=12 over 32 modules: margin d-q = 2.
        let (b, d) = (8, 12);
        let mut s = IdaShared::new(8, 64, 32, b, d);
        s.access(&[], &[(10, 777)]);
        let blk = 10 / s.store().vars_per_block();
        // Two dead share modules: recovery shifts to surviving shares.
        let mut dead = vec![false; 32];
        dead[s.store().module_of_share(blk, 0)] = true;
        dead[s.store().module_of_share(blk, 1)] = true;
        s.set_unavailable(&dead);
        let res = s.access(&[10], &[]);
        assert_eq!(res.read_values, vec![777]);
        assert_eq!(s.quorum_failures(), 0);
        // The dead modules are never charged congestion.
        assert!(res.cost.phases >= 1);
        // A third dead share module breaks the block's quorum: lost.
        dead[s.store().module_of_share(blk, 2)] = true;
        s.set_unavailable(&dead);
        let res = s.access(&[10], &[]);
        assert_eq!(res.read_values, vec![0], "lost cells read as 0");
        assert_eq!(s.quorum_failures(), 1);
    }

    #[test]
    fn step_cost_reports_share_traffic() {
        let (b, d) = ida::params_for_n(8);
        let mut s = IdaShared::new(8, 64, (4 * d).max(8), b, d);
        let res = s.access(&[1], &[]);
        assert_eq!(res.cost.messages, s.quorum() as u64);
        assert!(res.cost.phases >= 1);
        assert_eq!(s.last_step().messages, s.total_shares());
    }
}
