//! The workspace's one seam to wall-clock time.
//!
//! Everything time-dependent in the data plane and the serving layer —
//! the idle-TTL sweeper, session touch stamps, per-step latency samples —
//! reads a [`SimClock`] instead of calling `Instant::now()` directly.
//! That buys two things:
//!
//! * **Auditability.** `cr-lint`'s `wall-clock` rule bans ambient time in
//!   the governed crates, so this module is (by construction) the only
//!   place real time enters. A determinism review reads one file.
//! * **Virtualizability.** A [`SimClock::manual`] clock is an atomic
//!   counter the test (or a future whole-service simulation) advances
//!   explicitly: TTL eviction, latency accounting, and any future
//!   timeout logic become deterministic, instantaneous, and schedulable —
//!   the prerequisite for ROADMAP's deterministic whole-service runs.
//!
//! Reading the clock yields a [`Tick`]: nanoseconds since the clock's
//! origin, a plain `u64` with no platform `Instant` inside, so ticks can
//! be stored, compared, and hashed deterministically.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
// The sanctioned wall-clock import: everything else goes through SimClock.
use std::time::Duration;
use std::time::Instant; // lint: allow(wall-clock, this module IS the seam)

/// An instant on a [`SimClock`]: nanoseconds since the clock's origin.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tick(u64);

impl Tick {
    /// The clock origin.
    pub const ZERO: Tick = Tick(0);

    /// Nanoseconds since the clock origin.
    pub fn nanos(self) -> u64 {
        self.0
    }

    /// Time elapsed from `earlier` to `self` (zero if `earlier` is later:
    /// ticks from one clock never run backwards, but a saturating
    /// difference keeps mixed-clock bugs from panicking).
    pub fn since(self, earlier: Tick) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

/// A monotonic clock the serving layer reads instead of ambient time:
/// real (`Instant`-backed) in production, manually advanced in
/// deterministic tests. Clones share the same time source, so one clock
/// handed to N shards stays coherent.
#[derive(Debug, Clone)]
pub enum SimClock {
    /// Real time, measured from the clock's creation.
    Monotonic(Instant), // lint: allow(wall-clock, this module IS the seam)
    /// Virtual time: advances only when [`SimClock::advance`] is called.
    Manual(Arc<AtomicU64>),
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::monotonic()
    }
}

impl SimClock {
    /// A real-time clock (origin = now).
    pub fn monotonic() -> SimClock {
        SimClock::Monotonic(Instant::now()) // lint: allow(wall-clock, this module IS the seam)
    }

    /// A virtual clock starting at [`Tick::ZERO`]; advance it with
    /// [`SimClock::advance`].
    pub fn manual() -> SimClock {
        SimClock::Manual(Arc::new(AtomicU64::new(0)))
    }

    /// The current tick.
    pub fn now(&self) -> Tick {
        match self {
            SimClock::Monotonic(origin) => Tick(origin.elapsed().as_nanos() as u64),
            SimClock::Manual(t) => Tick(t.load(Ordering::SeqCst)),
        }
    }

    /// Advance a [`SimClock::manual`] clock by `d`; every clone observes
    /// the new time. No-op on a monotonic clock (real time cannot be
    /// steered), returning `false` so tests that *require* virtual time
    /// can assert they got it.
    pub fn advance(&self, d: Duration) -> bool {
        match self {
            SimClock::Monotonic(_) => false,
            SimClock::Manual(t) => {
                t.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic_and_shared() {
        let c = SimClock::manual();
        let c2 = c.clone();
        assert_eq!(c.now(), Tick::ZERO);
        assert!(c.advance(Duration::from_millis(5)));
        assert_eq!(c2.now().nanos(), 5_000_000, "clones share the source");
        assert_eq!(c.now().since(Tick::ZERO), Duration::from_millis(5));
    }

    #[test]
    fn since_saturates() {
        let later = Tick(10);
        let earlier = Tick(3);
        assert_eq!(later.since(earlier), Duration::from_nanos(7));
        assert_eq!(earlier.since(later), Duration::ZERO);
    }

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let c = SimClock::monotonic();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
        assert!(
            !c.advance(Duration::from_secs(1)),
            "real time cannot be steered"
        );
    }
}
