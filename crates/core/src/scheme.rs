//! The unified public API over the scheme zoo.
//!
//! The paper's headline is a *comparison* across six simulation schemes;
//! everything downstream (experiments, benches, examples, the `repro`
//! binary) wants to treat them uniformly. Three pieces make that possible:
//!
//! * [`Scheme`] — an object-safe trait, supertrait of
//!   [`pram_machine::SharedMemory`], adding the uniform diagnostics every
//!   scheme can answer (`name`, `redundancy`, `last_step`, `totals`,
//!   `modules`, `params`);
//! * [`SchemeKind`] — the closed enumeration of the zoo, with stable
//!   string names for CLI selection (`repro --scheme hp-2dmot`);
//! * [`SimBuilder`] — the one validated construction path: every scheme is
//!   built from `(n, m)` plus optional overrides, returning
//!   `Result<Box<dyn Scheme>, BuildError>` instead of panicking on bad
//!   parameter regimes.
//!
//! Adding a scheme or a parameter regime is one new `SchemeKind` arm, not
//! a cross-repo edit. Direct construction (`HpDmmpc::new(&SchemeConfig)`)
//! remains available for power users who need knobs the builder does not
//! expose (e.g. `stage1_phases` ablations).

use std::fmt;
use std::str::FromStr;

use crate::config::SchemeConfig;
use crate::hashed::HashedDmmpc;
use crate::ida_scheme::IdaShared;
use crate::majority::StepReport;
use crate::schemes::{Hp2dmotLeaves, HpDmmpc, Lpp2dmot, UwMpc};
use models::params::{ipow_ceil, pow2_at_least};
use models::PaperParams;
use pram_machine::SharedMemory;

/// The closed set of simulation schemes the reproduction implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Upfal–Wigderson majority baseline on the MPC (`M = n`, Lemma 1).
    UwMpc,
    /// The paper's Theorem 2: constant redundancy on the DMMPC.
    HpDmmpc,
    /// The paper's Theorem 3: 2DMOT with memory at the leaves.
    Hp2dmotLeaves,
    /// Luccio–Pietracaprina–Pucci baseline: 2DMOT, memory at the roots.
    Lpp2dmot,
    /// Probabilistic baseline: hashed single-copy distribution.
    Hashed,
    /// Schuster's alternative: Rabin information dispersal.
    Ida,
}

impl SchemeKind {
    /// Every scheme, in the paper's presentation order.
    pub const ALL: [SchemeKind; 6] = [
        SchemeKind::UwMpc,
        SchemeKind::HpDmmpc,
        SchemeKind::Hp2dmotLeaves,
        SchemeKind::Lpp2dmot,
        SchemeKind::Hashed,
        SchemeKind::Ida,
    ];

    /// Stable CLI/config name (what `repro --scheme` accepts and prints).
    pub fn name(self) -> &'static str {
        match self {
            SchemeKind::UwMpc => "uw-mpc",
            SchemeKind::HpDmmpc => "hp-dmmpc",
            SchemeKind::Hp2dmotLeaves => "hp-2dmot",
            SchemeKind::Lpp2dmot => "lpp-2dmot",
            SchemeKind::Hashed => "hashed",
            SchemeKind::Ida => "ida",
        }
    }

    /// One-line description for `--list`-style output.
    pub fn describe(self) -> &'static str {
        match self {
            SchemeKind::UwMpc => "Upfal-Wigderson majority on the MPC (M = n, Lemma 1)",
            SchemeKind::HpDmmpc => "Theorem 2: constant redundancy on the DMMPC",
            SchemeKind::Hp2dmotLeaves => "Theorem 3: 2DMOT, memory at the leaves (Fig. 8)",
            SchemeKind::Lpp2dmot => "Luccio et al. baseline: 2DMOT, memory at the roots",
            SchemeKind::Hashed => "Mehlhorn-Vishkin probabilistic hashing (no copies)",
            SchemeKind::Ida => "Schuster/Rabin information dispersal",
        }
    }
}

impl fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for SchemeKind {
    type Err = BuildError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "uw-mpc" | "uw" | "uwmpc" | "mpc" => Ok(SchemeKind::UwMpc),
            "hp-dmmpc" | "hp" | "dmmpc" => Ok(SchemeKind::HpDmmpc),
            "hp-2dmot" | "hp-2dmot-leaves" | "2dmot" | "mot" => Ok(SchemeKind::Hp2dmotLeaves),
            "lpp-2dmot" | "lpp" => Ok(SchemeKind::Lpp2dmot),
            "hashed" | "hash" => Ok(SchemeKind::Hashed),
            "ida" | "schuster" => Ok(SchemeKind::Ida),
            _ => Err(BuildError::UnknownScheme(s.to_string())),
        }
    }
}

/// Uniform configuration snapshot of a constructed scheme — what every
/// member of the zoo can report about itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeParams {
    /// Which scheme this is.
    pub kind: SchemeKind,
    /// Simulated P-RAM processors.
    pub n: usize,
    /// Simulated shared-memory cells.
    pub m: usize,
    /// Contention units (memory modules; grid columns on the 2DMOT).
    pub modules: usize,
    /// Storage blowup per variable: `2c − 1` for copy-based schemes, `1`
    /// for hashing, `d/b` for IDA.
    pub redundancy: f64,
    /// Seed of the scheme's memory distribution.
    pub seed: u64,
}

/// The uniform interface every simulation scheme implements.
///
/// Object-safe: experiments hold a `Vec<Box<dyn Scheme>>` and drive the
/// whole zoo through one loop. The supertrait carries the memory
/// semantics; this trait adds the diagnostics the experiments tabulate.
///
/// `Send` is a supertrait so a built scheme can be handed off to another
/// thread — the sharded session service (`cr-serve`) routes every
/// `Box<dyn Scheme>` to a shard worker, and the E15 sweep driver measures
/// points on scoped threads. No scheme holds `Rc`/raw-pointer state, so
/// this costs implementors nothing.
pub trait Scheme: SharedMemory + fmt::Debug + Send {
    /// Which member of the zoo this is.
    fn kind(&self) -> SchemeKind;

    /// Stable display name.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Storage blowup per simulated variable (the paper's `r = 2c − 1` for
    /// copy-based schemes, `1` for hashing, `d/b` for IDA).
    fn redundancy(&self) -> f64;

    /// Contention units the scheme distributes memory over.
    fn modules(&self) -> usize;

    /// Report for the most recent access step.
    fn last_step(&self) -> StepReport;

    /// Accumulated totals and the number of steps executed.
    fn totals(&self) -> (StepReport, u64);

    /// Configuration snapshot.
    fn params(&self) -> SchemeParams;

    /// Running fault-exposure counters, for schemes that inject faults
    /// (`cr-faults`' `FaultyScheme` overrides this). `None` means the
    /// scheme is fault-free and has nothing to report — callers use this
    /// to decide whether to emit fault events.
    fn fault_counters(&self) -> Option<FaultTotals> {
        None
    }

    /// Whether `addr` is statically *lost* — every stored copy of the
    /// cell destroyed, so reads return a default rather than a value the
    /// program wrote. Fault-free schemes lose nothing; `cr-faults`'
    /// `FaultyScheme` overrides this from its fault plan. The trace
    /// verifier (`cr-verify`) uses it to excuse exactly these reads from
    /// value-legality checking — a masked fault run must verify clean.
    fn cell_lost(&self, _addr: usize) -> bool {
        false
    }
}

/// Cumulative fault-exposure counters of a fault-injecting scheme
/// (absolute values since construction; callers diff successive reads to
/// get per-command deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTotals {
    /// Copy-access attempts that hit a dead module or link.
    pub dead_attempts: u64,
    /// Messages dropped by the faulty network.
    pub dropped_messages: u64,
    /// Memory modules declared permanently dead.
    pub dead_modules: u64,
}

/// Why a [`SimBuilder`] configuration cannot be realized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// `n` or `m` is zero — there is no machine to simulate.
    EmptyMachine {
        /// Requested processor count.
        n: usize,
        /// Requested memory size.
        m: usize,
    },
    /// An explicitly requested copy parameter `c` needs `2c − 1` distinct
    /// modules, but fewer contention units exist.
    InfeasibleQuorum {
        /// The scheme being built.
        kind: SchemeKind,
        /// Requested copy parameter.
        c: usize,
        /// Available contention units.
        modules: usize,
    },
    /// An explicit module count is below what the scheme requires.
    TooFewModules {
        /// The scheme being built.
        kind: SchemeKind,
        /// Requested module count.
        modules: usize,
        /// Minimum the scheme needs.
        required: usize,
    },
    /// The MPC baseline is defined with one module per processor.
    NotOneModulePerProcessor {
        /// Processor count.
        n: usize,
        /// Requested module count.
        modules: usize,
    },
    /// A parameter that must be positive was zero.
    ZeroParam(&'static str),
    /// A scheme name did not match any [`SchemeKind`].
    UnknownScheme(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::EmptyMachine { n, m } => {
                write!(f, "cannot simulate an empty machine (n = {n}, m = {m})")
            }
            BuildError::InfeasibleQuorum { kind, c, modules } => write!(
                f,
                "{kind}: c = {c} needs r = 2c-1 = {} distinct modules, only {modules} exist",
                2 * c - 1
            ),
            BuildError::TooFewModules {
                kind,
                modules,
                required,
            } => {
                write!(
                    f,
                    "{kind}: needs at least {required} modules, got {modules}"
                )
            }
            BuildError::NotOneModulePerProcessor { n, modules } => write!(
                f,
                "the MPC has one module per processor: n = {n} but modules = {modules}"
            ),
            BuildError::ZeroParam(what) => write!(f, "{what} must be positive"),
            BuildError::UnknownScheme(s) => {
                write!(f, "unknown scheme '{s}' (try one of: ")?;
                for (i, k) in SchemeKind::ALL.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str(k.name())?;
                }
                f.write_str(")")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Fluent construction of any scheme in the zoo from one validated
/// configuration path.
///
/// ```
/// use cr_core::{Scheme, SchemeKind, SimBuilder};
///
/// let mut scheme = SimBuilder::new(16, 256)
///     .kind(SchemeKind::HpDmmpc)
///     .seed(7)
///     .build()
///     .unwrap();
/// scheme.access(&[], &[(3, 42)]);
/// assert_eq!(scheme.access(&[3], &[]).read_values, vec![42]);
/// assert_eq!(scheme.name(), "hp-dmmpc");
/// ```
#[derive(Debug, Clone)]
pub struct SimBuilder {
    n: usize,
    m: usize,
    kind: SchemeKind,
    seed: u64,
    c: Option<usize>,
    modules: Option<usize>,
    pipeline: Option<usize>,
}

impl SimBuilder {
    /// Start a configuration for an `n`-processor program over `m` shared
    /// cells. Defaults: the paper's Theorem 2 scheme ([`SchemeKind::HpDmmpc`])
    /// with its fine-granularity parameter derivation and the workspace's
    /// default seed.
    pub fn new(n: usize, m: usize) -> Self {
        SimBuilder {
            n,
            m,
            kind: SchemeKind::HpDmmpc,
            seed: simrng::DEFAULT_SEED,
            c: None,
            modules: None,
            pipeline: None,
        }
    }

    /// Select the scheme to build.
    pub fn kind(mut self, kind: SchemeKind) -> Self {
        self.kind = kind;
        self
    }

    /// Seed of the memory distribution (map, hash, or share placement).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the copy parameter `c` (redundancy `2c − 1`). Applies to
    /// the copy-based schemes; ignored by `hashed` and `ida`, whose
    /// redundancy is structural. Validated against the module count at
    /// [`build`](Self::build) time.
    pub fn c(mut self, c: usize) -> Self {
        self.c = Some(c);
        self
    }

    /// Override the contention-unit count (memory modules; on the 2DMOT
    /// the column count, which the scheme rounds up to its grid side).
    pub fn modules(mut self, modules: usize) -> Self {
        self.modules = Some(modules);
        self
    }

    /// Override stage-2 per-module pipelining. Only the cycle-level 2DMOT
    /// schemes (`hp-2dmot`, `lpp-2dmot`) honor it — pipelining amortizes
    /// tree latency, which unit-latency interconnects do not have, so the
    /// DMMPC/MPC schemes pin it to 1; `hashed` and `ida` have no stages at
    /// all.
    pub fn pipeline(mut self, pipeline: usize) -> Self {
        self.pipeline = Some(pipeline);
        self
    }

    /// Validate and construct the scheme.
    pub fn build(&self) -> Result<Box<dyn Scheme>, BuildError> {
        self.validate_common()?;
        match self.kind {
            SchemeKind::HpDmmpc => Ok(Box::new(HpDmmpc::new(&self.fine_config()?))),
            SchemeKind::Hp2dmotLeaves => Ok(Box::new(Hp2dmotLeaves::new(&self.fine_config()?))),
            SchemeKind::UwMpc => {
                let cfg = self.coarse_config(self.n)?;
                Ok(Box::new(UwMpc::try_new(&cfg)?))
            }
            SchemeKind::Lpp2dmot => {
                let cfg = self.coarse_config(self.n.max(2))?;
                Ok(Box::new(Lpp2dmot::try_new(&cfg)?))
            }
            SchemeKind::Hashed => Ok(Box::new(HashedDmmpc::new(
                self.n,
                self.m,
                self.hashed_modules(),
                self.seed,
            ))),
            SchemeKind::Ida => {
                let (modules, b, d) = self.ida_layout()?;
                Ok(Box::new(IdaShared::new(self.n, self.m, modules, b, d)))
            }
        }
    }

    /// The module count the `hashed` baseline would be built with —
    /// `M = 2^⌈log₂ n^1.5⌉` unless overridden. Named (like
    /// [`fine_config`](Self::fine_config)) so external composers derive
    /// the identical geometry.
    pub fn hashed_modules(&self) -> usize {
        self.modules
            .unwrap_or_else(|| pow2_at_least(ipow_ceil(self.n, 1.5)))
    }

    /// The validated `(modules, b, d)` layout the `ida` scheme would be
    /// built with: `b, d = Θ(log n)` shares over `M = max(4d, n)` modules
    /// unless overridden.
    pub fn ida_layout(&self) -> Result<(usize, usize, usize), BuildError> {
        let (b, d) = ida::params_for_n(self.n);
        let modules = self.modules.unwrap_or_else(|| (4 * d).max(self.n));
        if modules < d {
            return Err(BuildError::TooFewModules {
                kind: SchemeKind::Ida,
                modules,
                required: d,
            });
        }
        Ok((modules, b, d))
    }

    /// The validated [`SchemeConfig`] this builder would hand to a
    /// fine-granularity (Theorem 2 / Theorem 3) scheme — exposed so power
    /// users can tweak fields the builder does not cover (e.g.
    /// `stage1_phases`) and construct directly.
    pub fn fine_config(&self) -> Result<SchemeConfig, BuildError> {
        self.validate_common()?;
        let base = SchemeConfig::for_pram(self.n, self.m);
        let c = self.c.unwrap_or(base.c);
        let modules = self.modules.unwrap_or(base.modules);
        self.check_quorum(c, modules)?;
        let p = PaperParams::explicit(self.n, self.m, modules, base.b, c);
        let mut cfg = SchemeConfig::from_params(p, self.seed);
        if let Some(pipe) = self.pipeline {
            cfg.stage2_pipeline = pipe;
        }
        Ok(cfg)
    }

    /// The validated coarse-granularity (MPC-style) configuration with
    /// `modules_default` contention units unless overridden — public for
    /// the same reason as [`fine_config`](Self::fine_config): external
    /// composers (e.g. the fault-injection layer in `cr-faults`) rebuild
    /// the coarse baselines around decorated executors and must derive the
    /// *identical* configuration the builder would.
    pub fn coarse_config(&self, modules_default: usize) -> Result<SchemeConfig, BuildError> {
        self.validate_common()?;
        let modules = self.modules.unwrap_or(modules_default);
        let c = match self.c {
            Some(c) => {
                self.check_quorum(c, modules)?;
                c
            }
            // Lemma 1's growing c, clamped to the feasible regime — the
            // one clamping site for every coarse-grain baseline.
            None => SchemeConfig::coarse_c(self.m, modules),
        };
        let p = PaperParams::explicit(self.n, self.m, modules, 8, c);
        let mut cfg = SchemeConfig::from_params(p, self.seed);
        if let Some(pipe) = self.pipeline {
            cfg.stage2_pipeline = pipe;
        }
        Ok(cfg)
    }

    /// The zero/emptiness checks shared by every construction path, so
    /// [`fine_config`](Self::fine_config) rejects the same degenerate
    /// inputs [`build`](Self::build) does instead of panicking downstream.
    fn validate_common(&self) -> Result<(), BuildError> {
        if self.n == 0 || self.m == 0 {
            return Err(BuildError::EmptyMachine {
                n: self.n,
                m: self.m,
            });
        }
        if self.c == Some(0) {
            return Err(BuildError::ZeroParam("c"));
        }
        if self.modules == Some(0) {
            return Err(BuildError::ZeroParam("modules"));
        }
        if self.pipeline == Some(0) {
            return Err(BuildError::ZeroParam("pipeline"));
        }
        Ok(())
    }

    fn check_quorum(&self, c: usize, modules: usize) -> Result<(), BuildError> {
        let r = 2 * c - 1;
        if modules < r {
            return Err(if self.c.is_some() {
                BuildError::InfeasibleQuorum {
                    kind: self.kind,
                    c,
                    modules,
                }
            } else {
                BuildError::TooFewModules {
                    kind: self.kind,
                    modules,
                    required: r,
                }
            });
        }
        Ok(())
    }
}

// Compile-time proof that scheme objects cross shard boundaries: the
// serving layer moves sessions onto worker threads, so this must never
// regress to a `!Send` implementation (an `Rc`, a raw pointer).
const _: () = {
    const fn assert_send<T: Send + ?Sized>() {}
    assert_send::<Box<dyn Scheme>>();
    assert_send::<dyn Scheme>();
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_dyn_scheme_is_send() {
        fn takes_send<T: Send>(_: T) {}
        let s = SimBuilder::new(8, 64).build().unwrap();
        takes_send(s);
    }

    #[test]
    fn every_kind_builds_and_linearizes() {
        for kind in SchemeKind::ALL {
            let mut s = SimBuilder::new(8, 64).kind(kind).build().unwrap();
            assert_eq!(s.kind(), kind);
            assert_eq!(s.size(), 64);
            s.access(&[], &[(5, 55)]);
            let r = s.access(&[5], &[]);
            assert_eq!(r.read_values, vec![55], "{kind} must store and recall");
            let (tot, steps) = s.totals();
            assert_eq!(steps, 2);
            assert_eq!(tot.requests, 2);
            assert!(s.redundancy() >= 1.0);
            assert!(s.modules() >= 1);
            assert_eq!(s.params().kind, kind);
        }
    }

    #[test]
    fn names_round_trip() {
        for kind in SchemeKind::ALL {
            assert_eq!(kind.name().parse::<SchemeKind>().unwrap(), kind);
        }
        assert!(matches!(
            "no-such-scheme".parse::<SchemeKind>(),
            Err(BuildError::UnknownScheme(_))
        ));
    }

    #[test]
    fn empty_machine_rejected() {
        assert!(matches!(
            SimBuilder::new(0, 64).build(),
            Err(BuildError::EmptyMachine { n: 0, .. })
        ));
        assert!(matches!(
            SimBuilder::new(8, 0).build(),
            Err(BuildError::EmptyMachine { m: 0, .. })
        ));
    }

    #[test]
    fn infeasible_quorum_is_an_error_not_a_clamp() {
        // 8 modules cannot hold 2*5-1 = 9 distinct copies.
        let err = SimBuilder::new(8, 64)
            .kind(SchemeKind::UwMpc)
            .c(5)
            .build()
            .unwrap_err();
        assert!(
            matches!(
                err,
                BuildError::InfeasibleQuorum {
                    c: 5,
                    modules: 8,
                    ..
                }
            ),
            "{err}"
        );
        // Without an explicit c, the coarse derivation clamps instead.
        assert!(SimBuilder::new(8, 64)
            .kind(SchemeKind::UwMpc)
            .build()
            .is_ok());
    }

    #[test]
    fn too_few_modules_rejected() {
        let err = SimBuilder::new(16, 256)
            .kind(SchemeKind::HpDmmpc)
            .modules(3)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::TooFewModules { .. }), "{err}");
        let err = SimBuilder::new(64, 256)
            .kind(SchemeKind::Ida)
            .modules(2)
            .build()
            .unwrap_err();
        assert!(matches!(err, BuildError::TooFewModules { .. }), "{err}");
    }

    #[test]
    fn zero_params_rejected() {
        for b in [
            SimBuilder::new(8, 64).c(0),
            SimBuilder::new(8, 64).modules(0),
            SimBuilder::new(8, 64).pipeline(0),
        ] {
            assert!(matches!(b.build(), Err(BuildError::ZeroParam(_))));
        }
        // The power-user config path rejects the same degenerate inputs.
        assert!(matches!(
            SimBuilder::new(8, 64).c(0).fine_config(),
            Err(BuildError::ZeroParam("c"))
        ));
        assert!(matches!(
            SimBuilder::new(0, 64).fine_config(),
            Err(BuildError::EmptyMachine { .. })
        ));
    }

    #[test]
    fn redundancy_profile_matches_the_paper() {
        // The paper's E9 headline, now one loop over the trait.
        let r_of = |kind| {
            SimBuilder::new(256, 256 * 256)
                .kind(kind)
                .build()
                .unwrap()
                .redundancy()
        };
        assert_eq!(r_of(SchemeKind::Hashed), 1.0);
        assert!((r_of(SchemeKind::Ida) - 1.5).abs() < 1e-9);
        // Constant-redundancy schemes agree and stay flat in n.
        let hp_small = SimBuilder::new(16, 256).build().unwrap().redundancy();
        assert_eq!(r_of(SchemeKind::HpDmmpc), hp_small);
        // The coarse baseline has grown past the fine-grain constant at
        // large m.
        let uw_big = SimBuilder::new(1 << 10, 1 << 20)
            .kind(SchemeKind::UwMpc)
            .build()
            .unwrap()
            .redundancy();
        let uw_small = SimBuilder::new(16, 256)
            .kind(SchemeKind::UwMpc)
            .build()
            .unwrap()
            .redundancy();
        assert!(uw_big > uw_small);
    }

    #[test]
    fn seed_changes_the_map_but_not_results() {
        let mut a = SimBuilder::new(8, 64).seed(1).build().unwrap();
        let mut b = SimBuilder::new(8, 64).seed(999).build().unwrap();
        for (addr, val) in [(0usize, 5i64), (13, -2), (63, 7)] {
            a.access(&[], &[(addr, val)]);
            b.access(&[], &[(addr, val)]);
            assert_eq!(
                a.access(&[addr], &[]).read_values,
                b.access(&[addr], &[]).read_values
            );
        }
    }

    #[test]
    fn builder_errors_render() {
        let err = SimBuilder::new(4, 4)
            .kind(SchemeKind::Lpp2dmot)
            .c(9)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("lpp-2dmot"), "{err}");
        let err = "wat".parse::<SchemeKind>().unwrap_err();
        assert!(err.to_string().contains("hp-2dmot"), "{err}");
    }

    #[test]
    fn unknown_scheme_error_lists_every_valid_name() {
        // `repro --scheme <typo>` surfaces this message; it must teach the
        // full vocabulary.
        let err = "not-a-scheme"
            .parse::<SchemeKind>()
            .unwrap_err()
            .to_string();
        for kind in SchemeKind::ALL {
            assert!(err.contains(kind.name()), "missing {kind} in: {err}");
        }
    }
}
