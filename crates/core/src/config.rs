//! Scheme configuration, derived from the paper's parameter conventions.

use models::params::{ipow_ceil, pow2_at_least};
use models::PaperParams;

/// Everything a copy-based scheme needs to size itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SchemeConfig {
    /// P-RAM processors `n`.
    pub n: usize,
    /// Shared variables `m`.
    pub m: usize,
    /// Contention units `M` — memory modules on a DMMPC; on the 2DMOT this
    /// is `√M` (the columns), per Theorem 3's proof.
    pub modules: usize,
    /// Copy quorum parameter; redundancy is `2c−1`.
    pub c: usize,
    /// Expansion slack of the map lemma in force.
    pub b: usize,
    /// Seed for the memory map (the instantiation of the papers'
    /// probabilistic existence argument).
    pub seed: u64,
    /// Stage-1 budget: phases before leftovers move to stage 2 — the
    /// `O(log log n)` interleaving of Luccio et al.
    pub stage1_phases: usize,
    /// Stage-2 per-module (per-column) pipelining: `Θ(log n)` on the 2DMOT
    /// to amortize tree latency, 1 where latency is O(1).
    pub stage2_pipeline: usize,
    /// Phases charged for the concurrent-access combining pre-pass
    /// (DESIGN.md §3); EREW programs never pay it because the executor
    /// deduplicates to singletons anyway — it is charged per step.
    pub combine_phases: u64,
}

impl SchemeConfig {
    /// Fine-granularity configuration from the paper's exponents
    /// (Theorem 2 defaults: `k`, `ε`, `b`, Lemma 2's `c`).
    pub fn fine(n: usize, k: f64, eps: f64, b: usize, seed: u64) -> Self {
        let p = PaperParams::fine_grain(n, k, eps, b);
        Self::from_params(p, seed)
    }

    /// Coarse configuration (MPC baseline: `M = n`, Lemma 1's growing `c`).
    pub fn coarse(n: usize, k: f64, b: usize, seed: u64) -> Self {
        let p = PaperParams::coarse_grain(n, k, b);
        Self::from_params(p, seed)
    }

    /// From explicit [`PaperParams`].
    pub fn from_params(p: PaperParams, seed: u64) -> Self {
        let n = p.n;
        let lg = (n.max(2) as f64).log2();
        let lglg = lg.log2().max(1.0);
        SchemeConfig {
            n,
            m: p.m,
            modules: p.modules,
            c: p.c,
            b: p.b,
            seed,
            stage1_phases: (p.redundancy() as f64 * lglg).ceil() as usize,
            stage2_pipeline: lg.ceil() as usize,
            combine_phases: lg.ceil() as u64,
        }
    }

    /// Practical configuration for running a P-RAM **program** with `m`
    /// memory cells on `n` processors: fine granularity `M =
    /// max(⌈n^{1.5}⌉, 4r)` rounded to an even power of two, constant `c`
    /// from Lemma 2 with the implied exponents.
    pub fn for_pram(n: usize, m: usize) -> Self {
        assert!(n >= 1 && m >= 1);
        let n2 = n.max(2);
        let eps = 0.5;
        let b = 4;
        // The implied memory exponent; clamp so Lemma 2's formula stays in
        // its intended regime (k > 1).
        let k = ((m.max(2) as f64).ln() / (n2 as f64).ln()).max(1.0 + eps + 0.1);
        let c = PaperParams::c_lemma2(k, eps, b);
        let r = 2 * c - 1;
        let modules = pow2_at_least(ipow_ceil(n2, 1.0 + eps).max(4 * r));
        let p = PaperParams::explicit(n, m, modules, b, c);
        Self::from_params(p, simrng::DEFAULT_SEED)
    }

    /// Largest feasible copy parameter when `modules` contention units
    /// must hold `r = 2c − 1` distinct copies.
    pub fn max_feasible_c(modules: usize) -> usize {
        modules.div_ceil(2).max(1)
    }

    /// Lemma 1's coarse-grain copy parameter for a memory of `m` cells,
    /// clamped to the feasible regime of `modules` contention units.
    ///
    /// This is the single clamping site for every coarse-grain baseline
    /// (UW-MPC and LPP-2DMOT); an *explicitly requested* infeasible `c` is
    /// rejected by `SimBuilder` instead of silently clamped here.
    pub fn coarse_c(m: usize, modules: usize) -> usize {
        PaperParams::c_lemma1(m, 8).min(Self::max_feasible_c(modules))
    }

    /// Coarse-grain (MPC, `M = n`) configuration for an `n`-processor
    /// program with `m` cells: Lemma 1's `c`, clamped so the `2c − 1`
    /// copies fit distinct modules.
    pub fn coarse_for_pram(n: usize, m: usize) -> Self {
        assert!(n >= 1 && m >= 1);
        let c = Self::coarse_c(m, n);
        let p = PaperParams::explicit(n, m, n, 8, c);
        Self::from_params(p, simrng::DEFAULT_SEED)
    }

    /// Redundancy `r = 2c − 1`.
    pub fn redundancy(&self) -> usize {
        2 * self.c - 1
    }

    /// Cluster size (= redundancy).
    pub fn cluster_size(&self) -> usize {
        self.redundancy()
    }

    /// Grid side for a 2DMOT realization: a power of two that is both
    /// `≥ n` (the processors live at the first `n` roots) and `≥ modules`
    /// (the contention analysis is per column, so columns are the modules).
    pub fn mot_side(&self) -> usize {
        pow2_at_least(self.n.max(self.modules))
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the copy parameter `c` (for ablations).
    pub fn with_c(mut self, c: usize) -> Self {
        assert!(c >= 1);
        self.c = c;
        self
    }

    /// Override the module count (for granularity sweeps).
    pub fn with_modules(mut self, modules: usize) -> Self {
        assert!(modules >= self.redundancy());
        self.modules = modules;
        self
    }

    /// Override stage-2 pipelining.
    pub fn with_pipeline(mut self, p: usize) -> Self {
        assert!(p >= 1);
        self.stage2_pipeline = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fine_config_constant_c() {
        let a = SchemeConfig::fine(16, 2.0, 0.5, 4, 1);
        let b = SchemeConfig::fine(256, 2.0, 0.5, 4, 1);
        assert_eq!(a.c, b.c, "Lemma 2's c is constant in n");
        assert!(b.modules > a.modules);
    }

    #[test]
    fn coarse_config_growing_c() {
        let a = SchemeConfig::coarse(16, 2.0, 8, 1);
        let b = SchemeConfig::coarse(1 << 12, 2.0, 8, 1);
        assert!(b.c > a.c, "Lemma 1's c grows with m");
        assert_eq!(b.modules, b.n);
    }

    #[test]
    fn for_pram_accepts_small_memories() {
        let cfg = SchemeConfig::for_pram(8, 24);
        assert!(cfg.modules >= 4 * cfg.redundancy());
        assert!(cfg.modules.is_power_of_two());
        assert_eq!(cfg.m, 24);
        // Tiny machine still sane.
        let tiny = SchemeConfig::for_pram(1, 1);
        assert!(tiny.redundancy() >= 1);
    }

    #[test]
    fn mot_side_fits_processors_and_modules() {
        let cfg = SchemeConfig::for_pram(64, 4096);
        let side = cfg.mot_side();
        assert!(side >= 64 && side >= cfg.modules);
        assert!(side.is_power_of_two());
    }

    #[test]
    fn coarse_clamp_is_centralized() {
        // Tiny machine: Lemma 1's c would exceed what n modules can hold.
        let cfg = SchemeConfig::coarse_for_pram(4, 1 << 20);
        assert_eq!(cfg.c, SchemeConfig::max_feasible_c(4));
        assert!(cfg.modules >= cfg.redundancy());
        // Large machine: the clamp is inactive and Lemma 1 rules.
        let big = SchemeConfig::coarse_for_pram(1 << 12, 1 << 20);
        assert_eq!(big.c, models::PaperParams::c_lemma1(1 << 20, 8));
        assert_eq!(big.modules, 1 << 12);
    }

    #[test]
    fn builders() {
        let cfg = SchemeConfig::for_pram(16, 64)
            .with_seed(7)
            .with_c(3)
            .with_pipeline(2);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.redundancy(), 5);
        assert_eq!(cfg.stage2_pipeline, 2);
    }
}
