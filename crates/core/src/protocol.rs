//! The two-stage cluster access protocol (Upfal & Wigderson 1987, as
//! organized by Luccio, Pietracaprina & Pucci 1990 and adopted by the
//! paper's Theorems 2 and 3).
//!
//! Processors form clusters of `2c−1`. To access a variable, the cluster
//! assigns one member to each of its still-live copies; a variable *dies*
//! (is satisfied) once `c` copies have been accessed, and dead variables
//! stop contending for modules.
//!
//! * **Stage 1** — clusters interleave their (up to `2c−1`) requests,
//!   one per phase in rotation, for a bounded number of phases. The
//!   memory-map lemma guarantees most requests die here; the protocol
//!   *measures* the leftovers (experiment E10 checks the `≤ n/(2c−1)`
//!   claim).
//! * **Stage 2** — each cluster dedicates itself to one leftover variable
//!   at a time; on the 2DMOT, `Θ(log n)` copy requests are pipelined per
//!   phase to amortize the tree latency.
//!
//! The protocol is generic over a [`PhaseExecutor`] — the thing that
//! resolves one phase's module contention and prices it. The DMMPC
//! executor charges one time unit per phase; the 2DMOT executor routes
//! every packet through the cycle-level network simulator.

use memdist::{Clusters, MemoryMap};
use pram_machine::StepCost;

/// One copy-access attempt issued in a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyAttempt {
    /// Index into the step's request list.
    pub req: usize,
    /// The variable being accessed.
    pub var: usize,
    /// Which of its `2c−1` copies.
    pub copy: usize,
    /// Contention unit (module on a DMMPC; column on the 2DMOT).
    pub module: usize,
    /// Grid row of the copy (2DMOT leaf placement; 0 on a DMMPC).
    pub row: usize,
    /// Issuing processor (determines the source root on the 2DMOT).
    pub src: usize,
}

/// Outcome of one phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// `success[i]` — whether `attempts[i]` reached its module.
    pub success: Vec<bool>,
    /// What this phase cost.
    pub cost: StepCost,
}

/// Resolves one phase of copy attempts against the machine's interconnect.
pub trait PhaseExecutor {
    /// Execute the attempts; each contention unit serves at most
    /// `pipeline` of them.
    fn execute(&mut self, attempts: &[CopyAttempt], pipeline: usize) -> PhaseResult;
}

/// Per-step protocol statistics (one row of E4/E5/E10 per step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Stage-1 phases executed.
    pub stage1_phases: u64,
    /// Stage-2 phases executed.
    pub stage2_phases: u64,
    /// Total network cycles (on cycle-level executors).
    pub cycles: u64,
    /// Total messages/hops.
    pub messages: u64,
    /// Requests still live when stage 1 ended.
    pub stage1_leftover: usize,
    /// Copy attempts that lost a contention race.
    pub killed_attempts: u64,
    /// Copies actually accessed.
    pub copies_accessed: u64,
}

impl ProtocolStats {
    /// Total phases across both stages.
    pub fn phases(&self) -> u64 {
        self.stage1_phases + self.stage2_phases
    }
}

/// Placement of copies on the machine: contention unit and grid row,
/// derived from the memory map.
pub trait CopyPlacement {
    /// `(module, row)` of copy `copy` of variable `var` under `map`.
    fn place(&self, map: &MemoryMap, var: usize, copy: usize) -> (usize, usize);
}

/// DMMPC placement: the map's module, no grid row.
#[derive(Debug, Clone, Copy)]
pub struct FlatPlacement;

impl CopyPlacement for FlatPlacement {
    fn place(&self, map: &MemoryMap, var: usize, copy: usize) -> (usize, usize) {
        (map.module_of(var, copy), 0)
    }
}

/// 2DMOT leaf placement: the map's module is the **column** (the contention
/// unit, per Theorem 3); the row is a deterministic hash — it spreads
/// storage but does not affect contention.
#[derive(Debug, Clone, Copy)]
pub struct GridPlacement {
    /// Grid side.
    pub side: usize,
}

impl CopyPlacement for GridPlacement {
    fn place(&self, map: &MemoryMap, var: usize, copy: usize) -> (usize, usize) {
        let col = map.module_of(var, copy);
        let row = (simrng::mix64(((var as u64) << 20) | copy as u64) % self.side as u64) as usize;
        (col, row)
    }
}

/// Run the two-stage protocol for one P-RAM step.
///
/// * `requests[i] = (processor, variable)` — deduplicated, one per
///   requesting processor;
/// * returns, per request, the list of copy indices accessed (`≥ c`, so a
///   write quorum / read majority is always available), plus statistics.
#[allow(clippy::too_many_arguments)] // the protocol's full parameter list, documented above
pub fn run_protocol<E: PhaseExecutor>(
    requests: &[(usize, usize)],
    clusters: &Clusters,
    c: usize,
    r: usize,
    map: &MemoryMap,
    placement: &impl CopyPlacement,
    exec: &mut E,
    stage1_phases: usize,
    stage2_pipeline: usize,
) -> (Vec<Vec<usize>>, ProtocolStats) {
    let mut accessed: Vec<Vec<usize>> = vec![Vec::with_capacity(c); requests.len()];
    let mut stats = ProtocolStats::default();
    if requests.is_empty() {
        return (accessed, stats);
    }

    // Requests of each cluster, plus a rotating cursor for stage-1
    // interleaving.
    let mut by_cluster: Vec<Vec<usize>> = vec![Vec::new(); clusters.count()];
    for (i, &(proc, _)) in requests.iter().enumerate() {
        by_cluster[clusters.cluster_of(proc)].push(i);
    }
    let mut cursor: Vec<usize> = vec![0; clusters.count()];
    let live = |acc: &Vec<Vec<usize>>, i: usize| acc[i].len() < c;

    let mut attempts: Vec<CopyAttempt> = Vec::new();
    let mut run_phase = |accessed: &mut Vec<Vec<usize>>,
                         cursor: &mut Vec<usize>,
                         stats: &mut ProtocolStats,
                         exec: &mut E,
                         pipeline: usize|
     -> bool {
        attempts.clear();
        for (k, reqs) in by_cluster.iter().enumerate() {
            if reqs.is_empty() {
                continue;
            }
            // Rotate to this cluster's next live request.
            let mut chosen = None;
            for off in 0..reqs.len() {
                let i = reqs[(cursor[k] + off) % reqs.len()];
                if live(accessed, i) {
                    chosen = Some(i);
                    cursor[k] = (cursor[k] + off + 1) % reqs.len();
                    break;
                }
            }
            let Some(i) = chosen else { continue };
            let (_, var) = requests[i];
            // One cluster member per live copy.
            let members: Vec<usize> = clusters
                .members(clusters.cluster_of(requests[i].0))
                .collect();
            let mut member = 0usize;
            for copy in 0..r {
                if accessed[i].contains(&copy) {
                    continue;
                }
                let (module, row) = placement.place(map, var, copy);
                attempts.push(CopyAttempt {
                    req: i,
                    var,
                    copy,
                    module,
                    row,
                    src: members[member % members.len()],
                });
                member += 1;
            }
        }
        if attempts.is_empty() {
            return false; // everything dead
        }
        let result = exec.execute(&attempts, pipeline);
        debug_assert_eq!(result.success.len(), attempts.len());
        stats.cycles += result.cost.cycles;
        stats.messages += result.cost.messages;
        for (a, &ok) in attempts.iter().zip(&result.success) {
            if ok {
                stats.copies_accessed += 1;
                // Record even past c: extra accessed copies strengthen the
                // quorum at no additional cost.
                accessed[a.req].push(a.copy);
            } else {
                stats.killed_attempts += 1;
            }
        }
        true
    };

    // Stage 1: bounded, serialized module service.
    for _ in 0..stage1_phases {
        if !run_phase(&mut accessed, &mut cursor, &mut stats, exec, 1) {
            break;
        }
        stats.stage1_phases += 1;
    }
    stats.stage1_leftover = (0..requests.len()).filter(|&i| live(&accessed, i)).count();

    // Stage 2: run to completion with pipelining. Termination: every phase
    // with work serves at least one attempt (the first per module), so at
    // most c·|requests| further phases occur; guard generously.
    let guard = 4 * c as u64 * requests.len() as u64 + 16;
    while run_phase(
        &mut accessed,
        &mut cursor,
        &mut stats,
        exec,
        stage2_pipeline,
    ) {
        stats.stage2_phases += 1;
        assert!(
            stats.stage2_phases <= guard,
            "stage 2 failed to make progress (protocol bug)"
        );
    }

    debug_assert!(accessed.iter().all(|a| a.len() >= c));
    (accessed, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::BipartiteExec;
    use memdist::MemoryMap;

    fn run(
        n: usize,
        m: usize,
        modules: usize,
        c: usize,
        requests: &[(usize, usize)],
    ) -> (Vec<Vec<usize>>, ProtocolStats) {
        let r = 2 * c - 1;
        let map = MemoryMap::random(m, modules, r, 42);
        let clusters = Clusters::new(n, r);
        let mut exec = BipartiteExec::new(modules);
        run_protocol(
            requests,
            &clusters,
            c,
            r,
            &map,
            &FlatPlacement,
            &mut exec,
            4,
            1,
        )
    }

    #[test]
    fn all_requests_reach_quorum() {
        let n = 16;
        let requests: Vec<(usize, usize)> = (0..n).map(|p| (p, p * 3)).collect();
        let (accessed, stats) = run(n, 64, 64, 3, &requests);
        for (i, a) in accessed.iter().enumerate() {
            assert!(a.len() >= 3, "request {i} accessed only {:?}", a);
            // All copies distinct.
            let set: std::collections::HashSet<_> = a.iter().collect();
            assert_eq!(set.len(), a.len());
        }
        assert!(stats.copies_accessed >= (3 * n) as u64);
    }

    #[test]
    fn empty_step_costs_nothing() {
        let (accessed, stats) = run(8, 32, 32, 2, &[]);
        assert!(accessed.is_empty());
        assert_eq!(stats.phases(), 0);
    }

    #[test]
    fn single_request_finishes_in_one_phase() {
        // One variable, c=2, r=3 distinct modules: all three copies hit
        // distinct modules in phase 1.
        let (accessed, stats) = run(8, 32, 32, 2, &[(0, 5)]);
        assert_eq!(accessed[0].len(), 3);
        assert_eq!(stats.phases(), 1);
        assert_eq!(stats.stage1_leftover, 0);
    }

    #[test]
    fn hot_module_forces_stage2() {
        // A congested map: every variable's copies in modules 0..r. With
        // many requests, stage 1's budget cannot clear them all.
        let c = 3;
        let r = 5;
        let n = 20;
        let map = MemoryMap::congested(64, 64, r);
        let clusters = Clusters::new(n, r);
        let mut exec = BipartiteExec::new(64);
        let requests: Vec<(usize, usize)> = (0..n).map(|p| (p, p)).collect();
        let (accessed, stats) = run_protocol(
            &requests,
            &clusters,
            c,
            r,
            &map,
            &FlatPlacement,
            &mut exec,
            2,
            1,
        );
        assert!(
            accessed.iter().all(|a| a.len() >= c),
            "protocol still completes"
        );
        assert!(
            stats.stage1_leftover > 0,
            "congestion must leave stage-1 leftovers"
        );
        assert!(stats.stage2_phases > 0);
        assert!(stats.killed_attempts > 0);
    }

    #[test]
    fn deterministic() {
        let requests: Vec<(usize, usize)> = (0..12).map(|p| (p, (p * 7) % 50)).collect();
        let a = run(12, 50, 64, 3, &requests);
        let b = run(12, 50, 64, 3, &requests);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn good_map_needs_few_phases() {
        // Fine granularity: modules >> n means phases stay near the
        // minimum even with every processor requesting.
        let n = 32;
        let requests: Vec<(usize, usize)> = (0..n).map(|p| (p, p * 11)).collect();
        let (_, stats) = run(n, 512, 512, 3, &requests);
        // r=5-member clusters, ~7 clusters, each with ≤5 requests: the
        // protocol interleaves them; phase count should be well under the
        // serial bound of n.
        assert!(
            stats.phases() < n as u64,
            "phases {} too high",
            stats.phases()
        );
    }
}
