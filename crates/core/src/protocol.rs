//! The two-stage cluster access protocol (Upfal & Wigderson 1987, as
//! organized by Luccio, Pietracaprina & Pucci 1990 and adopted by the
//! paper's Theorems 2 and 3).
//!
//! Processors form clusters of `2c−1`. To access a variable, the cluster
//! assigns one member to each of its still-live copies; a variable *dies*
//! (is satisfied) once `c` copies have been accessed, and dead variables
//! stop contending for modules.
//!
//! * **Stage 1** — clusters interleave their (up to `2c−1`) requests,
//!   one per phase in rotation, for a bounded number of phases. The
//!   memory-map lemma guarantees most requests die here; the protocol
//!   *measures* the leftovers (experiment E10 checks the `≤ n/(2c−1)`
//!   claim).
//! * **Stage 2** — each cluster dedicates itself to one leftover variable
//!   at a time; on the 2DMOT, `Θ(log n)` copy requests are pipelined per
//!   phase to amortize the tree latency.
//!
//! The protocol is generic over a [`PhaseExecutor`] — the thing that
//! resolves one phase's module contention and prices it. The DMMPC
//! executor charges one time unit per phase; the 2DMOT executor routes
//! every packet through the cycle-level network simulator.
//!
//! ## The flat data plane
//!
//! All per-step state lives in a caller-owned [`ProtocolWorkspace`]
//! (DESIGN.md §7): the attempt batch, the outcome buffer the executor
//! writes into, per-request accessed/dead **copy bitmasks** (a bit test
//! instead of the old `accessed[i].contains(&copy)` linear scan), flat
//! stride-`r` quorum lists (replacing per-request `Vec`s), and a CSR
//! per-cluster request index. A scheme reuses one workspace across every
//! step, so the steady-state protocol path performs **zero heap
//! allocations** — verified by `tests/alloc_steady_state.rs`.

use memdist::{Clusters, MemoryMap};
use pram_machine::StepCost;

/// One copy-access attempt issued in a phase.
///
/// Fields are `u32`: a phase batch streams thousands of attempts through
/// the executor per step, and halving the struct (24 vs 48 bytes) is a
/// measured win on the memory-bound issue/serve loops. Every field
/// indexes an in-machine entity (request slot, variable, module, grid
/// coordinate, processor), all of which fit comfortably.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyAttempt {
    /// Index into the step's request list.
    pub req: u32,
    /// The variable being accessed.
    pub var: u32,
    /// Which of its `2c−1` copies.
    pub copy: u32,
    /// Contention unit (module on a DMMPC; column on the 2DMOT).
    pub module: u32,
    /// Grid row of the copy (2DMOT leaf placement; 0 on a DMMPC).
    pub row: u32,
    /// Issuing processor (determines the source root on the 2DMOT).
    pub src: u32,
}

/// What happened to one copy attempt in a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The attempt reached its module; the copy was accessed.
    Served,
    /// The attempt lost a transient race (module contention, queue
    /// overflow, dropped message) — the protocol retries it next phase.
    Killed,
    /// The attempt hit a **permanent** fault (dead module, dead link):
    /// retrying can never succeed, so the protocol writes the copy off.
    Dead,
}

/// Resolves one phase of copy attempts against the machine's interconnect.
///
/// The executor writes what happened to each attempt into the
/// caller-owned `outcome` buffer (clearing it first, then pushing exactly
/// `attempts.len()` entries) and returns what the phase cost. The caller
/// reuses the buffer across phases, so a steady-state phase allocates
/// nothing.
pub trait PhaseExecutor {
    /// Execute the attempts; each contention unit serves at most
    /// `pipeline` of them. `outcome[i]` reports what happened to
    /// `attempts[i]`.
    fn execute(
        &mut self,
        attempts: &[CopyAttempt],
        pipeline: usize,
        outcome: &mut Vec<AttemptOutcome>,
    ) -> StepCost;

    /// Whether this executor can lose work for reasons other than
    /// contention (fault injection: dead modules, dead links, message
    /// drops). On a `false` executor the protocol's progress guarantee
    /// holds, so exceeding the stage-2 budget is a protocol bug and
    /// panics; on a `true` executor it is an expected degraded outcome
    /// and the step aborts gracefully instead.
    fn lossy(&self) -> bool {
        false
    }
}

/// Per-step protocol statistics (one row of E4/E5/E10 per step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Stage-1 phases executed.
    pub stage1_phases: u64,
    /// Stage-2 phases executed.
    pub stage2_phases: u64,
    /// Total network cycles (on cycle-level executors).
    pub cycles: u64,
    /// Total messages/hops.
    pub messages: u64,
    /// Network cycles spent in stage 1 (stage 2 = `cycles - stage1_cycles`).
    pub stage1_cycles: u64,
    /// Messages sent in stage 1 (stage 2 = `messages - stage1_messages`).
    pub stage1_messages: u64,
    /// Requests still live when stage 1 ended.
    pub stage1_leftover: usize,
    /// Copy attempts that lost a contention race.
    pub killed_attempts: u64,
    /// Copy attempts that hit a permanent fault (dead module or link) and
    /// were written off rather than retried.
    pub dead_attempts: u64,
    /// Requests that finished the step below their `c`-copy quorum —
    /// nonzero only under fault injection (or a guard abort): every copy
    /// they could still try was dead.
    pub failed_requests: usize,
    /// Copies actually accessed.
    pub copies_accessed: u64,
}

impl ProtocolStats {
    /// Total phases across both stages.
    pub fn phases(&self) -> u64 {
        self.stage1_phases + self.stage2_phases
    }

    /// Fold another step's stats into this accumulator (field-wise sums;
    /// `stage1_leftover` and `failed_requests` saturate rather than wrap).
    pub fn accumulate(&mut self, other: &ProtocolStats) {
        self.stage1_phases += other.stage1_phases;
        self.stage2_phases += other.stage2_phases;
        self.cycles += other.cycles;
        self.messages += other.messages;
        self.stage1_cycles += other.stage1_cycles;
        self.stage1_messages += other.stage1_messages;
        self.stage1_leftover = self.stage1_leftover.saturating_add(other.stage1_leftover);
        self.killed_attempts += other.killed_attempts;
        self.dead_attempts += other.dead_attempts;
        self.failed_requests = self.failed_requests.saturating_add(other.failed_requests);
        self.copies_accessed += other.copies_accessed;
    }
}

/// Placement of copies on the machine: contention unit and grid row,
/// derived from the memory map.
pub trait CopyPlacement {
    /// `(module, row)` of copy `copy` of variable `var` under `map`.
    fn place(&self, map: &MemoryMap, var: usize, copy: usize) -> (usize, usize);
}

/// DMMPC placement: the map's module, no grid row.
#[derive(Debug, Clone, Copy)]
pub struct FlatPlacement;

impl CopyPlacement for FlatPlacement {
    fn place(&self, map: &MemoryMap, var: usize, copy: usize) -> (usize, usize) {
        (map.module_of(var, copy), 0)
    }
}

/// 2DMOT leaf placement: the map's module is the **column** (the contention
/// unit, per Theorem 3); the row is a deterministic hash — it spreads
/// storage but does not affect contention.
#[derive(Debug, Clone, Copy)]
pub struct GridPlacement {
    /// Grid side.
    pub side: usize,
}

impl CopyPlacement for GridPlacement {
    fn place(&self, map: &MemoryMap, var: usize, copy: usize) -> (usize, usize) {
        let col = map.module_of(var, copy);
        let row = (simrng::mix64(((var as u64) << 20) | copy as u64) % self.side as u64) as usize;
        (col, row)
    }
}

/// Caller-owned, step-reusable state of [`run_protocol`]: every buffer
/// the protocol's hot path touches, sized once and recycled across steps
/// so the steady state allocates nothing.
///
/// After a step, the quorums live here: [`accessed`](Self::accessed)
/// returns the copy indices each request reached, in service order —
/// what the old API returned as a fresh `Vec<Vec<usize>>` per step.
#[derive(Debug, Default)]
pub struct ProtocolWorkspace {
    /// Requests in the prepared step.
    len: usize,
    /// Copies per variable (the stride of `accessed`).
    r: usize,
    /// `u64` words per request in the copy bitmasks.
    words: usize,
    /// The phase's attempt batch (built fresh each phase, capacity kept).
    attempts: Vec<CopyAttempt>,
    /// The executor's outcome buffer (`outcome[i]` ↔ `attempts[i]`).
    outcome: Vec<AttemptOutcome>,
    /// Per-request accessed-copy bitmask (`len × words`).
    accessed_mask: Vec<u64>,
    /// Per-request written-off-copy bitmask (`len × words`).
    dead_mask: Vec<u64>,
    /// Flat stride-`r` accessed-copy lists, gated by `accessed_len`.
    accessed: Vec<usize>,
    /// Copies accessed per request.
    accessed_len: Vec<u32>,
    /// Copies written off per request.
    dead_count: Vec<u32>,
    /// CSR offsets: cluster `k`'s requests are
    /// `cluster_reqs[cluster_start[k]..cluster_start[k+1]]`.
    cluster_start: Vec<u32>,
    /// Stage-1 rotation cursor per cluster.
    cluster_cursor: Vec<u32>,
    /// Request indices grouped by cluster (CSR payload).
    cluster_reqs: Vec<u32>,
    /// Counting-sort scratch for the CSR fill.
    fill: Vec<u32>,
    /// Per-step placement cache, stride `r`: copy placements are
    /// deterministic in `(var, copy)`, so they are computed once when a
    /// request first issues and replayed from here on every retry.
    place_module: Vec<u32>,
    place_row: Vec<u32>,
    /// Whether request `i`'s placements are cached yet this step.
    placed: Vec<bool>,
}

impl ProtocolWorkspace {
    /// An empty workspace; buffers grow to steady-state capacity over the
    /// first step and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size every buffer for a step of `len` requests with `r` copies per
    /// variable over `nclusters` clusters, and reset the per-step state.
    /// Allocates only while growing past the largest step seen so far.
    fn prepare(&mut self, len: usize, r: usize, nclusters: usize) {
        self.len = len;
        self.r = r;
        self.words = r.div_ceil(64).max(1);
        self.attempts.clear();
        self.outcome.clear();
        self.accessed_mask.clear();
        self.accessed_mask.resize(len * self.words, 0);
        self.dead_mask.clear();
        self.dead_mask.resize(len * self.words, 0);
        // `accessed` needs no reset: reads are gated by `accessed_len`.
        self.accessed.resize(len * r, 0);
        self.accessed_len.clear();
        self.accessed_len.resize(len, 0);
        self.dead_count.clear();
        self.dead_count.resize(len, 0);
        self.cluster_start.clear();
        self.cluster_start.resize(nclusters + 1, 0);
        self.cluster_cursor.clear();
        self.cluster_cursor.resize(nclusters, 0);
        self.cluster_reqs.clear();
        self.cluster_reqs.resize(len, 0);
        self.fill.clear();
        self.fill.resize(nclusters, 0);
        // The placement cache needs no reset: reads are gated by `placed`.
        self.place_module.resize(len * r, 0);
        self.place_row.resize(len * r, 0);
        self.placed.clear();
        self.placed.resize(len, false);
    }

    /// Requests in the last prepared step.
    pub fn requests(&self) -> usize {
        self.len
    }

    /// Copy indices request `i` accessed in the last step, in service
    /// order (`≥ c` on a fault-free machine; possibly short under fault
    /// injection).
    pub fn accessed(&self, i: usize) -> &[usize] {
        debug_assert!(i < self.len);
        &self.accessed[i * self.r..i * self.r + self.accessed_len[i] as usize]
    }
}

/// The protocol's per-step view over a prepared workspace: disjoint
/// mutable borrows of every buffer, so phase execution can update them
/// while the rotation logic reads them.
struct StepState<'a, P: CopyPlacement> {
    requests: &'a [(usize, usize)],
    clusters: &'a Clusters,
    c: usize,
    r: usize,
    words: usize,
    map: &'a MemoryMap,
    placement: &'a P,
    attempts: &'a mut Vec<CopyAttempt>,
    outcome: &'a mut Vec<AttemptOutcome>,
    accessed_mask: &'a mut [u64],
    dead_mask: &'a mut [u64],
    accessed: &'a mut [usize],
    accessed_len: &'a mut [u32],
    dead_count: &'a mut [u32],
    cluster_start: &'a [u32],
    cluster_cursor: &'a mut [u32],
    cluster_reqs: &'a [u32],
    place_module: &'a mut [u32],
    place_row: &'a mut [u32],
    placed: &'a mut [bool],
}

impl<P: CopyPlacement> StepState<'_, P> {
    /// A request keeps contending while it is below quorum AND still has
    /// an untried, not-written-off copy to attempt. Requests that exhaust
    /// their viable copies below `c` are *failed* — they stop contending
    /// (and are counted at the end), instead of spinning on dead modules
    /// forever. O(1): a copy is never both accessed and written off, so
    /// the untried viable copies are exactly `r - accessed - dead`.
    fn live(&self, i: usize) -> bool {
        self.accessed_len[i] < self.c as u32
            && self.accessed_len[i] + self.dead_count[i] < self.r as u32
    }

    /// Issue and execute one phase; `false` when no live request remains.
    // lint: hot
    fn run_phase<E: PhaseExecutor>(
        &mut self,
        exec: &mut E,
        stats: &mut ProtocolStats,
        pipeline: usize,
    ) -> bool {
        // Total phases so far — rotates the member↔copy assignment below.
        let phase = stats.stage1_phases + stats.stage2_phases;
        self.attempts.clear();
        for k in 0..self.clusters.count() {
            let reqs = &self.cluster_reqs
                [self.cluster_start[k] as usize..self.cluster_start[k + 1] as usize];
            if reqs.is_empty() {
                continue;
            }
            // Rotate to this cluster's next live request.
            let mut chosen = None;
            for off in 0..reqs.len() {
                let i = reqs[(self.cluster_cursor[k] as usize + off) % reqs.len()] as usize;
                if self.live(i) {
                    chosen = Some(i);
                    self.cluster_cursor[k] =
                        ((self.cluster_cursor[k] as usize + off + 1) % reqs.len()) as u32;
                    break;
                }
            }
            let Some(i) = chosen else { continue };
            let (_, var) = self.requests[i];
            // Placements are deterministic in (var, copy): compute them
            // once, on the request's first issue, and replay the cache on
            // every retry phase.
            if !self.placed[i] {
                self.placed[i] = true;
                for copy in 0..self.r {
                    let (module, row) = self.placement.place(self.map, var, copy);
                    self.place_module[i * self.r + copy] = module as u32;
                    self.place_row[i * self.r + copy] = row as u32;
                }
            }
            // One cluster member per live copy. The assignment rotates
            // with the phase counter: a copy retried in a later phase is
            // issued by a *different* cluster member, so a route blocked
            // by a dead link for one source is retried around the fault
            // from the others (the dynamic-reassignment discipline of the
            // fault-tolerant P-RAM literature) instead of re-issuing the
            // identical doomed attempt forever. Cluster members are a
            // contiguous processor range, so the rotation is pure index
            // arithmetic — no member list is materialized.
            let members = self
                .clusters
                .members(self.clusters.cluster_of(self.requests[i].0));
            let mlen = members.len();
            let mut member = phase as usize;
            let mut issue = |copy: usize, member: usize| {
                self.attempts.push(CopyAttempt {
                    req: i as u32,
                    var: var as u32,
                    copy: copy as u32,
                    module: self.place_module[i * self.r + copy],
                    row: self.place_row[i * self.r + copy],
                    src: (members.start + member % mlen) as u32,
                });
            };
            if self.words == 1 {
                // Fast path (r ≤ 64, every configured scheme): one busy
                // word, iterate set bits of its complement.
                let busy = self.accessed_mask[i] | self.dead_mask[i];
                let all = if self.r == 64 {
                    u64::MAX
                } else {
                    (1u64 << self.r) - 1
                };
                let mut free = !busy & all;
                while free != 0 {
                    let copy = free.trailing_zeros() as usize;
                    free &= free - 1;
                    issue(copy, member);
                    member += 1;
                }
            } else {
                for copy in 0..self.r {
                    let w = i * self.words + copy / 64;
                    let bit = 1u64 << (copy % 64);
                    if (self.accessed_mask[w] | self.dead_mask[w]) & bit != 0 {
                        continue;
                    }
                    issue(copy, member);
                    member += 1;
                }
            }
        }
        if self.attempts.is_empty() {
            return false; // everything done (or written off)
        }
        let cost = exec.execute(self.attempts, pipeline, self.outcome);
        debug_assert_eq!(self.outcome.len(), self.attempts.len());
        stats.cycles += cost.cycles;
        stats.messages += cost.messages;
        for (a, &out) in self.attempts.iter().zip(self.outcome.iter()) {
            let (req, copy) = (a.req as usize, a.copy as usize);
            match out {
                AttemptOutcome::Served => {
                    stats.copies_accessed += 1;
                    // Record even past c: extra accessed copies strengthen
                    // the quorum at no additional cost.
                    self.accessed[req * self.r + self.accessed_len[req] as usize] = copy;
                    self.accessed_len[req] += 1;
                    self.accessed_mask[req * self.words + copy / 64] |= 1 << (copy % 64);
                }
                AttemptOutcome::Killed => stats.killed_attempts += 1,
                AttemptOutcome::Dead => {
                    stats.dead_attempts += 1;
                    self.dead_mask[req * self.words + copy / 64] |= 1 << (copy % 64);
                    self.dead_count[req] += 1;
                }
            }
        }
        true
    }
}

/// Run the two-stage protocol for one P-RAM step.
///
/// * `requests[i] = (processor, variable)` — deduplicated, one per
///   requesting processor;
/// * `ws` — the caller-owned workspace; after the call,
///   [`ProtocolWorkspace::accessed`] lists, per request, the copy indices
///   accessed. On a fault-free machine every request reaches `≥ c`
///   copies, so a write quorum / read majority is always available; under
///   fault injection an executor may report attempts [`AttemptOutcome::Dead`],
///   and a request whose viable copies run out below `c` ends short-quorum
///   (counted in [`ProtocolStats::failed_requests`] — the caller degrades
///   to best-effort over whatever was accessed).
///
/// The hot path is allocation-free in the steady state: every buffer
/// lives in `ws` and is recycled across steps.
#[allow(clippy::too_many_arguments)] // the protocol's full parameter list, documented above
pub fn run_protocol<E: PhaseExecutor>(
    requests: &[(usize, usize)],
    clusters: &Clusters,
    c: usize,
    r: usize,
    map: &MemoryMap,
    placement: &impl CopyPlacement,
    exec: &mut E,
    stage1_phases: usize,
    stage2_pipeline: usize,
    ws: &mut ProtocolWorkspace,
) -> ProtocolStats {
    let mut stats = ProtocolStats::default();
    ws.prepare(requests.len(), r, clusters.count());
    if requests.is_empty() {
        return stats;
    }

    // Requests of each cluster, as a counting-sorted CSR index (request
    // order within a cluster matches insertion order, exactly as the old
    // per-cluster Vec pushes did).
    for &(proc, _) in requests {
        ws.fill[clusters.cluster_of(proc)] += 1;
    }
    let mut sum = 0u32;
    for (k, count) in ws.fill.iter_mut().enumerate() {
        ws.cluster_start[k] = sum;
        sum += *count;
        *count = ws.cluster_start[k];
    }
    ws.cluster_start[clusters.count()] = sum;
    for (i, &(proc, _)) in requests.iter().enumerate() {
        let slot = &mut ws.fill[clusters.cluster_of(proc)];
        ws.cluster_reqs[*slot as usize] = i as u32;
        *slot += 1;
    }

    let mut state = StepState {
        requests,
        clusters,
        c,
        r,
        words: ws.words,
        map,
        placement,
        attempts: &mut ws.attempts,
        outcome: &mut ws.outcome,
        accessed_mask: &mut ws.accessed_mask,
        dead_mask: &mut ws.dead_mask,
        accessed: &mut ws.accessed,
        accessed_len: &mut ws.accessed_len,
        dead_count: &mut ws.dead_count,
        cluster_start: &ws.cluster_start,
        cluster_cursor: &mut ws.cluster_cursor,
        cluster_reqs: &ws.cluster_reqs,
        place_module: &mut ws.place_module,
        place_row: &mut ws.place_row,
        placed: &mut ws.placed,
    };

    // Stage 1: bounded, serialized module service.
    for _ in 0..stage1_phases {
        if !state.run_phase(exec, &mut stats, 1) {
            break;
        }
        stats.stage1_phases += 1;
    }
    stats.stage1_leftover = (0..requests.len()).filter(|&i| state.live(i)).count();
    // Per-stage attribution seam (DESIGN.md §10): everything counted so
    // far belongs to stage 1; stage 2 is the difference at the end.
    stats.stage1_cycles = stats.cycles;
    stats.stage1_messages = stats.messages;

    // Stage 2: run to completion with pipelining. Termination: on a
    // fault-free machine every phase with work serves at least one attempt
    // (the first per module), so at most c·|requests| further phases
    // occur and exceeding the generous guard below is a protocol bug —
    // panic, exactly as before fault injection existed. Only a `lossy()`
    // executor (fault injection: message drops can stall progress
    // indefinitely) is allowed to abort the step instead: the leftover
    // requests simply end short-quorum and are counted as failed below,
    // the honest degraded outcome.
    let guard = 4 * c as u64 * requests.len() as u64 + 16;
    while state.run_phase(exec, &mut stats, stage2_pipeline) {
        stats.stage2_phases += 1;
        if stats.stage2_phases > guard {
            assert!(
                exec.lossy(),
                "stage 2 failed to make progress (protocol bug)"
            );
            break;
        }
    }

    stats.failed_requests = (0..requests.len())
        .filter(|&i| ws.accessed_len[i] < c as u32)
        .count();
    debug_assert!(
        stats.failed_requests == 0 || exec.lossy(),
        "a fault-free run must reach quorum on every request"
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::BipartiteExec;
    use memdist::MemoryMap;

    /// Run one protocol step in a fresh workspace; returns the quorums as
    /// owned lists (test convenience — production callers read them out
    /// of their long-lived workspace).
    fn run_step<E: PhaseExecutor>(
        requests: &[(usize, usize)],
        clusters: &Clusters,
        c: usize,
        r: usize,
        map: &MemoryMap,
        exec: &mut E,
        stage1_phases: usize,
    ) -> (Vec<Vec<usize>>, ProtocolStats) {
        let mut ws = ProtocolWorkspace::new();
        let stats = run_protocol(
            requests,
            clusters,
            c,
            r,
            map,
            &FlatPlacement,
            exec,
            stage1_phases,
            1,
            &mut ws,
        );
        let accessed = (0..requests.len())
            .map(|i| ws.accessed(i).to_vec())
            .collect();
        (accessed, stats)
    }

    fn run(
        n: usize,
        m: usize,
        modules: usize,
        c: usize,
        requests: &[(usize, usize)],
    ) -> (Vec<Vec<usize>>, ProtocolStats) {
        let r = 2 * c - 1;
        let map = MemoryMap::random(m, modules, r, 42);
        let clusters = Clusters::new(n, r);
        let mut exec = BipartiteExec::new(modules);
        run_step(requests, &clusters, c, r, &map, &mut exec, 4)
    }

    #[test]
    fn all_requests_reach_quorum() {
        let n = 16;
        let requests: Vec<(usize, usize)> = (0..n).map(|p| (p, p * 3)).collect();
        let (accessed, stats) = run(n, 64, 64, 3, &requests);
        for (i, a) in accessed.iter().enumerate() {
            assert!(a.len() >= 3, "request {i} accessed only {:?}", a);
            // All copies distinct.
            let set: std::collections::HashSet<_> = a.iter().collect();
            assert_eq!(set.len(), a.len());
        }
        assert!(stats.copies_accessed >= (3 * n) as u64);
    }

    #[test]
    fn empty_step_costs_nothing() {
        let (accessed, stats) = run(8, 32, 32, 2, &[]);
        assert!(accessed.is_empty());
        assert_eq!(stats.phases(), 0);
    }

    #[test]
    fn single_request_finishes_in_one_phase() {
        // One variable, c=2, r=3 distinct modules: all three copies hit
        // distinct modules in phase 1.
        let (accessed, stats) = run(8, 32, 32, 2, &[(0, 5)]);
        assert_eq!(accessed[0].len(), 3);
        assert_eq!(stats.phases(), 1);
        assert_eq!(stats.stage1_leftover, 0);
    }

    #[test]
    fn hot_module_forces_stage2() {
        // A congested map: every variable's copies in modules 0..r. With
        // many requests, stage 1's budget cannot clear them all.
        let c = 3;
        let r = 5;
        let n = 20;
        let map = MemoryMap::congested(64, 64, r);
        let clusters = Clusters::new(n, r);
        let mut exec = BipartiteExec::new(64);
        let requests: Vec<(usize, usize)> = (0..n).map(|p| (p, p)).collect();
        let (accessed, stats) = run_step(&requests, &clusters, c, r, &map, &mut exec, 2);
        assert!(
            accessed.iter().all(|a| a.len() >= c),
            "protocol still completes"
        );
        assert!(
            stats.stage1_leftover > 0,
            "congestion must leave stage-1 leftovers"
        );
        assert!(stats.stage2_phases > 0);
        assert!(stats.killed_attempts > 0);
    }

    /// Executor decorator marking every attempt at a module in `dead` as
    /// permanently faulted (the shape `cr-faults`' FaultyExec takes).
    struct DeadModules<E> {
        inner: E,
        dead: Vec<bool>,
    }

    impl<E: PhaseExecutor> PhaseExecutor for DeadModules<E> {
        fn execute(
            &mut self,
            attempts: &[CopyAttempt],
            pipeline: usize,
            outcome: &mut Vec<AttemptOutcome>,
        ) -> StepCost {
            let cost = self.inner.execute(attempts, pipeline, outcome);
            for (a, out) in attempts.iter().zip(outcome.iter_mut()) {
                if self.dead[a.module as usize] {
                    *out = AttemptOutcome::Dead;
                }
            }
            cost
        }

        fn lossy(&self) -> bool {
            self.dead.iter().any(|&d| d)
        }
    }

    #[test]
    fn dead_modules_are_written_off_not_retried() {
        // r = 5, c = 3 over 16 modules; kill 2 modules. Every request still
        // has ≥ 3 live copies, so every quorum completes — and the phase
        // count stays bounded because dead copies are not retried.
        let (m, modules, c) = (64usize, 16usize, 3usize);
        let r = 2 * c - 1;
        let map = MemoryMap::random(m, modules, r, 7);
        let clusters = Clusters::new(8, r);
        let mut dead = vec![false; modules];
        dead[0] = true;
        dead[5] = true;
        let mut exec = DeadModules {
            inner: BipartiteExec::new(modules),
            dead,
        };
        let requests: Vec<(usize, usize)> = (0..8).map(|p| (p, p * 7)).collect();
        let (accessed, stats) = run_step(&requests, &clusters, c, r, &map, &mut exec, 4);
        for (i, a) in accessed.iter().enumerate() {
            let faulty = map
                .copies(requests[i].1)
                .iter()
                .filter(|&&md| md == 0 || md == 5)
                .count();
            assert!(
                a.len() >= c.min(r - faulty),
                "request {i}: accessed {a:?} with {faulty} dead copies"
            );
            // No dead module was ever recorded as accessed.
            for &cp in a {
                let md = map.module_of(requests[i].1, cp);
                assert!(md != 0 && md != 5);
            }
        }
        assert_eq!(stats.failed_requests, 0, "≥ c live copies everywhere");
        // Dead attempts happen once per (request, dead copy), never more.
        let total_dead_copies: usize = requests
            .iter()
            .map(|&(_, v)| {
                map.copies(v)
                    .iter()
                    .filter(|&&md| md == 0 || md == 5)
                    .count()
            })
            .sum();
        assert!(stats.dead_attempts as usize <= total_dead_copies);
    }

    /// Executor where one *source processor* is cut off (every attempt it
    /// issues is killed) — the shape of a per-source link fault on the
    /// 2DMOT. Transient from the protocol's point of view: the same copy
    /// can succeed from a different member.
    struct SourceBlocked {
        inner: BipartiteExec,
        blocked_src: usize,
    }

    impl PhaseExecutor for SourceBlocked {
        fn execute(
            &mut self,
            attempts: &[CopyAttempt],
            pipeline: usize,
            outcome: &mut Vec<AttemptOutcome>,
        ) -> StepCost {
            let cost = self.inner.execute(attempts, pipeline, outcome);
            for (a, out) in attempts.iter().zip(outcome.iter_mut()) {
                if a.src as usize == self.blocked_src {
                    *out = AttemptOutcome::Killed;
                }
            }
            cost
        }

        fn lossy(&self) -> bool {
            true
        }
    }

    #[test]
    fn member_rotation_routes_around_a_blocked_source() {
        // c = 2, r = 3: clusters {0,1,2}, {3,4,5}. Processor 0 can never
        // deliver an attempt. Because the member↔copy assignment rotates
        // per phase, every copy is eventually issued by processors 1 or 2
        // and every request still reaches quorum — in a bounded number of
        // phases, not by burning the stage-2 guard.
        let (m, modules, c) = (32usize, 16usize, 2usize);
        let r = 2 * c - 1;
        let map = MemoryMap::random(m, modules, r, 5);
        let clusters = Clusters::new(6, r);
        let mut exec = SourceBlocked {
            inner: BipartiteExec::new(modules),
            blocked_src: 0,
        };
        let requests: Vec<(usize, usize)> = (0..6).map(|p| (p, p * 5)).collect();
        let (accessed, stats) = run_step(&requests, &clusters, c, r, &map, &mut exec, 4);
        assert!(
            accessed.iter().all(|a| a.len() >= c),
            "rotation must route around the blocked source: {accessed:?}"
        );
        assert_eq!(stats.failed_requests, 0);
        let guard = 4 * c as u64 * requests.len() as u64 + 16;
        assert!(
            stats.phases() < guard / 2,
            "phases {} should be far below the guard {guard}",
            stats.phases()
        );
    }

    #[test]
    fn all_copies_dead_fails_request_and_terminates() {
        // Every module dead: no request can access anything; the protocol
        // must terminate immediately with every request failed.
        let (m, modules, c) = (32usize, 8usize, 2usize);
        let r = 2 * c - 1;
        let map = MemoryMap::random(m, modules, r, 3);
        let clusters = Clusters::new(4, r);
        let mut exec = DeadModules {
            inner: BipartiteExec::new(modules),
            dead: vec![true; modules],
        };
        let requests: Vec<(usize, usize)> = (0..4).map(|p| (p, p)).collect();
        let (accessed, stats) = run_step(&requests, &clusters, c, r, &map, &mut exec, 4);
        assert!(accessed.iter().all(|a| a.is_empty()));
        assert_eq!(stats.failed_requests, 4);
        assert_eq!(stats.dead_attempts, (4 * r) as u64);
        // One discovery phase per copy at most — no spinning.
        assert!(
            stats.phases() <= (r + 4) as u64,
            "phases {}",
            stats.phases()
        );
    }

    #[test]
    fn deterministic() {
        let requests: Vec<(usize, usize)> = (0..12).map(|p| (p, (p * 7) % 50)).collect();
        let a = run(12, 50, 64, 3, &requests);
        let b = run(12, 50, 64, 3, &requests);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn workspace_reuse_is_equivalent_to_fresh() {
        // The same step through one recycled workspace and through fresh
        // workspaces must agree — buffer reuse is invisible.
        let requests: Vec<(usize, usize)> = (0..12).map(|p| (p, (p * 7) % 50)).collect();
        let map = MemoryMap::random(50, 64, 5, 42);
        let clusters = Clusters::new(12, 5);
        let mut exec = BipartiteExec::new(64);
        let mut ws = ProtocolWorkspace::new();
        let mut reused = Vec::new();
        for _ in 0..3 {
            let stats = run_protocol(
                &requests,
                &clusters,
                3,
                5,
                &map,
                &FlatPlacement,
                &mut exec,
                4,
                1,
                &mut ws,
            );
            let acc: Vec<Vec<usize>> = (0..requests.len())
                .map(|i| ws.accessed(i).to_vec())
                .collect();
            reused.push((acc, stats));
        }
        // Shrinking steps must also recycle cleanly: a 2-request step
        // after a 12-request step sees correctly reset state.
        let small: Vec<(usize, usize)> = (0..2).map(|p| (p, p + 30)).collect();
        let stats = run_protocol(
            &small,
            &clusters,
            3,
            5,
            &map,
            &FlatPlacement,
            &mut exec,
            4,
            1,
            &mut ws,
        );
        assert_eq!(stats.failed_requests, 0);
        assert_eq!(ws.requests(), 2);
        for (acc, stats) in &reused {
            assert_eq!(*acc, reused[0].0);
            assert_eq!(*stats, reused[0].1);
            assert!(acc.iter().all(|a| a.len() >= 3));
        }
    }

    #[test]
    fn good_map_needs_few_phases() {
        // Fine granularity: modules >> n means phases stay near the
        // minimum even with every processor requesting.
        let n = 32;
        let requests: Vec<(usize, usize)> = (0..n).map(|p| (p, p * 11)).collect();
        let (_, stats) = run(n, 512, 512, 3, &requests);
        // r=5-member clusters, ~7 clusters, each with ≤5 requests: the
        // protocol interleaves them; phase count should be well under the
        // serial bound of n.
        assert!(
            stats.phases() < n as u64,
            "phases {} too high",
            stats.phases()
        );
    }
}
