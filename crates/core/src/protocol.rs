//! The two-stage cluster access protocol (Upfal & Wigderson 1987, as
//! organized by Luccio, Pietracaprina & Pucci 1990 and adopted by the
//! paper's Theorems 2 and 3).
//!
//! Processors form clusters of `2c−1`. To access a variable, the cluster
//! assigns one member to each of its still-live copies; a variable *dies*
//! (is satisfied) once `c` copies have been accessed, and dead variables
//! stop contending for modules.
//!
//! * **Stage 1** — clusters interleave their (up to `2c−1`) requests,
//!   one per phase in rotation, for a bounded number of phases. The
//!   memory-map lemma guarantees most requests die here; the protocol
//!   *measures* the leftovers (experiment E10 checks the `≤ n/(2c−1)`
//!   claim).
//! * **Stage 2** — each cluster dedicates itself to one leftover variable
//!   at a time; on the 2DMOT, `Θ(log n)` copy requests are pipelined per
//!   phase to amortize the tree latency.
//!
//! The protocol is generic over a [`PhaseExecutor`] — the thing that
//! resolves one phase's module contention and prices it. The DMMPC
//! executor charges one time unit per phase; the 2DMOT executor routes
//! every packet through the cycle-level network simulator.

use memdist::{Clusters, MemoryMap};
use pram_machine::StepCost;

/// One copy-access attempt issued in a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyAttempt {
    /// Index into the step's request list.
    pub req: usize,
    /// The variable being accessed.
    pub var: usize,
    /// Which of its `2c−1` copies.
    pub copy: usize,
    /// Contention unit (module on a DMMPC; column on the 2DMOT).
    pub module: usize,
    /// Grid row of the copy (2DMOT leaf placement; 0 on a DMMPC).
    pub row: usize,
    /// Issuing processor (determines the source root on the 2DMOT).
    pub src: usize,
}

/// What happened to one copy attempt in a phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttemptOutcome {
    /// The attempt reached its module; the copy was accessed.
    Served,
    /// The attempt lost a transient race (module contention, queue
    /// overflow, dropped message) — the protocol retries it next phase.
    Killed,
    /// The attempt hit a **permanent** fault (dead module, dead link):
    /// retrying can never succeed, so the protocol writes the copy off.
    Dead,
}

/// Outcome of one phase.
#[derive(Debug, Clone)]
pub struct PhaseResult {
    /// `outcome[i]` — what happened to `attempts[i]`.
    pub outcome: Vec<AttemptOutcome>,
    /// What this phase cost.
    pub cost: StepCost,
}

/// Resolves one phase of copy attempts against the machine's interconnect.
pub trait PhaseExecutor {
    /// Execute the attempts; each contention unit serves at most
    /// `pipeline` of them.
    fn execute(&mut self, attempts: &[CopyAttempt], pipeline: usize) -> PhaseResult;

    /// Whether this executor can lose work for reasons other than
    /// contention (fault injection: dead modules, dead links, message
    /// drops). On a `false` executor the protocol's progress guarantee
    /// holds, so exceeding the stage-2 budget is a protocol bug and
    /// panics; on a `true` executor it is an expected degraded outcome
    /// and the step aborts gracefully instead.
    fn lossy(&self) -> bool {
        false
    }
}

/// Per-step protocol statistics (one row of E4/E5/E10 per step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Stage-1 phases executed.
    pub stage1_phases: u64,
    /// Stage-2 phases executed.
    pub stage2_phases: u64,
    /// Total network cycles (on cycle-level executors).
    pub cycles: u64,
    /// Total messages/hops.
    pub messages: u64,
    /// Requests still live when stage 1 ended.
    pub stage1_leftover: usize,
    /// Copy attempts that lost a contention race.
    pub killed_attempts: u64,
    /// Copy attempts that hit a permanent fault (dead module or link) and
    /// were written off rather than retried.
    pub dead_attempts: u64,
    /// Requests that finished the step below their `c`-copy quorum —
    /// nonzero only under fault injection (or a guard abort): every copy
    /// they could still try was dead.
    pub failed_requests: usize,
    /// Copies actually accessed.
    pub copies_accessed: u64,
}

impl ProtocolStats {
    /// Total phases across both stages.
    pub fn phases(&self) -> u64 {
        self.stage1_phases + self.stage2_phases
    }
}

/// Placement of copies on the machine: contention unit and grid row,
/// derived from the memory map.
pub trait CopyPlacement {
    /// `(module, row)` of copy `copy` of variable `var` under `map`.
    fn place(&self, map: &MemoryMap, var: usize, copy: usize) -> (usize, usize);
}

/// DMMPC placement: the map's module, no grid row.
#[derive(Debug, Clone, Copy)]
pub struct FlatPlacement;

impl CopyPlacement for FlatPlacement {
    fn place(&self, map: &MemoryMap, var: usize, copy: usize) -> (usize, usize) {
        (map.module_of(var, copy), 0)
    }
}

/// 2DMOT leaf placement: the map's module is the **column** (the contention
/// unit, per Theorem 3); the row is a deterministic hash — it spreads
/// storage but does not affect contention.
#[derive(Debug, Clone, Copy)]
pub struct GridPlacement {
    /// Grid side.
    pub side: usize,
}

impl CopyPlacement for GridPlacement {
    fn place(&self, map: &MemoryMap, var: usize, copy: usize) -> (usize, usize) {
        let col = map.module_of(var, copy);
        let row = (simrng::mix64(((var as u64) << 20) | copy as u64) % self.side as u64) as usize;
        (col, row)
    }
}

/// Run the two-stage protocol for one P-RAM step.
///
/// * `requests[i] = (processor, variable)` — deduplicated, one per
///   requesting processor;
/// * returns, per request, the list of copy indices accessed, plus
///   statistics. On a fault-free machine every request reaches `≥ c`
///   copies, so a write quorum / read majority is always available; under
///   fault injection an executor may report attempts [`AttemptOutcome::Dead`],
///   and a request whose viable copies run out below `c` ends short-quorum
///   (counted in [`ProtocolStats::failed_requests`] — the caller degrades
///   to best-effort over whatever was accessed).
#[allow(clippy::too_many_arguments)] // the protocol's full parameter list, documented above
pub fn run_protocol<E: PhaseExecutor>(
    requests: &[(usize, usize)],
    clusters: &Clusters,
    c: usize,
    r: usize,
    map: &MemoryMap,
    placement: &impl CopyPlacement,
    exec: &mut E,
    stage1_phases: usize,
    stage2_pipeline: usize,
) -> (Vec<Vec<usize>>, ProtocolStats) {
    let mut accessed: Vec<Vec<usize>> = vec![Vec::with_capacity(c); requests.len()];
    let mut stats = ProtocolStats::default();
    if requests.is_empty() {
        return (accessed, stats);
    }

    // Requests of each cluster, plus a rotating cursor for stage-1
    // interleaving.
    let mut by_cluster: Vec<Vec<usize>> = vec![Vec::new(); clusters.count()];
    for (i, &(proc, _)) in requests.iter().enumerate() {
        by_cluster[clusters.cluster_of(proc)].push(i);
    }
    let mut cursor: Vec<usize> = vec![0; clusters.count()];
    // Copies written off per request (attempts that came back Dead) —
    // flat `request * r + copy` plus a per-request count, one allocation
    // each for the whole step.
    let mut dead: Vec<bool> = vec![false; r * requests.len()];
    let mut dead_count: Vec<usize> = vec![0; requests.len()];
    // A request keeps contending while it is below quorum AND still has an
    // untried, not-written-off copy to attempt. Requests that exhaust their
    // viable copies below `c` are *failed* — they stop contending (and are
    // counted at the end), instead of spinning on dead modules forever.
    // O(1): a copy is never both accessed and written off, so the untried
    // viable copies are exactly `r - accessed - dead`.
    let live = |acc: &Vec<Vec<usize>>, dc: &Vec<usize>, i: usize| {
        acc[i].len() < c && acc[i].len() + dc[i] < r
    };

    let mut attempts: Vec<CopyAttempt> = Vec::new();
    let mut run_phase = |accessed: &mut Vec<Vec<usize>>,
                         dead: &mut Vec<bool>,
                         dead_count: &mut Vec<usize>,
                         cursor: &mut Vec<usize>,
                         stats: &mut ProtocolStats,
                         exec: &mut E,
                         pipeline: usize|
     -> bool {
        // Total phases so far — rotates the member↔copy assignment below.
        let phase = stats.stage1_phases + stats.stage2_phases;
        attempts.clear();
        for (k, reqs) in by_cluster.iter().enumerate() {
            if reqs.is_empty() {
                continue;
            }
            // Rotate to this cluster's next live request.
            let mut chosen = None;
            for off in 0..reqs.len() {
                let i = reqs[(cursor[k] + off) % reqs.len()];
                if live(accessed, dead_count, i) {
                    chosen = Some(i);
                    cursor[k] = (cursor[k] + off + 1) % reqs.len();
                    break;
                }
            }
            let Some(i) = chosen else { continue };
            let (_, var) = requests[i];
            // One cluster member per live copy. The assignment rotates
            // with the phase counter: a copy retried in a later phase is
            // issued by a *different* cluster member, so a route blocked
            // by a dead link for one source is retried around the fault
            // from the others (the dynamic-reassignment discipline of the
            // fault-tolerant P-RAM literature) instead of re-issuing the
            // identical doomed attempt forever.
            let members: Vec<usize> = clusters
                .members(clusters.cluster_of(requests[i].0))
                .collect();
            let mut member = phase as usize;
            for copy in 0..r {
                if accessed[i].contains(&copy) || dead[i * r + copy] {
                    continue;
                }
                let (module, row) = placement.place(map, var, copy);
                attempts.push(CopyAttempt {
                    req: i,
                    var,
                    copy,
                    module,
                    row,
                    src: members[member % members.len()],
                });
                member += 1;
            }
        }
        if attempts.is_empty() {
            return false; // everything done (or written off)
        }
        let result = exec.execute(&attempts, pipeline);
        debug_assert_eq!(result.outcome.len(), attempts.len());
        stats.cycles += result.cost.cycles;
        stats.messages += result.cost.messages;
        for (a, &out) in attempts.iter().zip(&result.outcome) {
            match out {
                AttemptOutcome::Served => {
                    stats.copies_accessed += 1;
                    // Record even past c: extra accessed copies strengthen
                    // the quorum at no additional cost.
                    accessed[a.req].push(a.copy);
                }
                AttemptOutcome::Killed => stats.killed_attempts += 1,
                AttemptOutcome::Dead => {
                    stats.dead_attempts += 1;
                    dead[a.req * r + a.copy] = true;
                    dead_count[a.req] += 1;
                }
            }
        }
        true
    };

    // Stage 1: bounded, serialized module service.
    for _ in 0..stage1_phases {
        if !run_phase(
            &mut accessed,
            &mut dead,
            &mut dead_count,
            &mut cursor,
            &mut stats,
            exec,
            1,
        ) {
            break;
        }
        stats.stage1_phases += 1;
    }
    stats.stage1_leftover = (0..requests.len())
        .filter(|&i| live(&accessed, &dead_count, i))
        .count();

    // Stage 2: run to completion with pipelining. Termination: on a
    // fault-free machine every phase with work serves at least one attempt
    // (the first per module), so at most c·|requests| further phases
    // occur and exceeding the generous guard below is a protocol bug —
    // panic, exactly as before fault injection existed. Only a `lossy()`
    // executor (fault injection: message drops can stall progress
    // indefinitely) is allowed to abort the step instead: the leftover
    // requests are written off as failed, the honest degraded outcome.
    let guard = 4 * c as u64 * requests.len() as u64 + 16;
    while run_phase(
        &mut accessed,
        &mut dead,
        &mut dead_count,
        &mut cursor,
        &mut stats,
        exec,
        stage2_pipeline,
    ) {
        stats.stage2_phases += 1;
        if stats.stage2_phases > guard {
            assert!(
                exec.lossy(),
                "stage 2 failed to make progress (protocol bug)"
            );
            dead.iter_mut().for_each(|x| *x = true);
            dead_count.iter_mut().for_each(|x| *x = r);
            break;
        }
    }

    stats.failed_requests = accessed.iter().filter(|a| a.len() < c).count();
    debug_assert!(
        stats.failed_requests == 0 || exec.lossy(),
        "a fault-free run must reach quorum on every request"
    );
    (accessed, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executors::BipartiteExec;
    use memdist::MemoryMap;

    fn run(
        n: usize,
        m: usize,
        modules: usize,
        c: usize,
        requests: &[(usize, usize)],
    ) -> (Vec<Vec<usize>>, ProtocolStats) {
        let r = 2 * c - 1;
        let map = MemoryMap::random(m, modules, r, 42);
        let clusters = Clusters::new(n, r);
        let mut exec = BipartiteExec::new(modules);
        run_protocol(
            requests,
            &clusters,
            c,
            r,
            &map,
            &FlatPlacement,
            &mut exec,
            4,
            1,
        )
    }

    #[test]
    fn all_requests_reach_quorum() {
        let n = 16;
        let requests: Vec<(usize, usize)> = (0..n).map(|p| (p, p * 3)).collect();
        let (accessed, stats) = run(n, 64, 64, 3, &requests);
        for (i, a) in accessed.iter().enumerate() {
            assert!(a.len() >= 3, "request {i} accessed only {:?}", a);
            // All copies distinct.
            let set: std::collections::HashSet<_> = a.iter().collect();
            assert_eq!(set.len(), a.len());
        }
        assert!(stats.copies_accessed >= (3 * n) as u64);
    }

    #[test]
    fn empty_step_costs_nothing() {
        let (accessed, stats) = run(8, 32, 32, 2, &[]);
        assert!(accessed.is_empty());
        assert_eq!(stats.phases(), 0);
    }

    #[test]
    fn single_request_finishes_in_one_phase() {
        // One variable, c=2, r=3 distinct modules: all three copies hit
        // distinct modules in phase 1.
        let (accessed, stats) = run(8, 32, 32, 2, &[(0, 5)]);
        assert_eq!(accessed[0].len(), 3);
        assert_eq!(stats.phases(), 1);
        assert_eq!(stats.stage1_leftover, 0);
    }

    #[test]
    fn hot_module_forces_stage2() {
        // A congested map: every variable's copies in modules 0..r. With
        // many requests, stage 1's budget cannot clear them all.
        let c = 3;
        let r = 5;
        let n = 20;
        let map = MemoryMap::congested(64, 64, r);
        let clusters = Clusters::new(n, r);
        let mut exec = BipartiteExec::new(64);
        let requests: Vec<(usize, usize)> = (0..n).map(|p| (p, p)).collect();
        let (accessed, stats) = run_protocol(
            &requests,
            &clusters,
            c,
            r,
            &map,
            &FlatPlacement,
            &mut exec,
            2,
            1,
        );
        assert!(
            accessed.iter().all(|a| a.len() >= c),
            "protocol still completes"
        );
        assert!(
            stats.stage1_leftover > 0,
            "congestion must leave stage-1 leftovers"
        );
        assert!(stats.stage2_phases > 0);
        assert!(stats.killed_attempts > 0);
    }

    /// Executor decorator marking every attempt at a module in `dead` as
    /// permanently faulted (the shape `cr-faults`' FaultyExec takes).
    struct DeadModules<E> {
        inner: E,
        dead: Vec<bool>,
    }

    impl<E: PhaseExecutor> PhaseExecutor for DeadModules<E> {
        fn execute(&mut self, attempts: &[CopyAttempt], pipeline: usize) -> PhaseResult {
            let mut res = self.inner.execute(attempts, pipeline);
            for (a, out) in attempts.iter().zip(res.outcome.iter_mut()) {
                if self.dead[a.module] {
                    *out = AttemptOutcome::Dead;
                }
            }
            res
        }

        fn lossy(&self) -> bool {
            self.dead.iter().any(|&d| d)
        }
    }

    #[test]
    fn dead_modules_are_written_off_not_retried() {
        // r = 5, c = 3 over 16 modules; kill 2 modules. Every request still
        // has ≥ 3 live copies, so every quorum completes — and the phase
        // count stays bounded because dead copies are not retried.
        let (m, modules, c) = (64usize, 16usize, 3usize);
        let r = 2 * c - 1;
        let map = MemoryMap::random(m, modules, r, 7);
        let clusters = Clusters::new(8, r);
        let mut dead = vec![false; modules];
        dead[0] = true;
        dead[5] = true;
        let mut exec = DeadModules {
            inner: BipartiteExec::new(modules),
            dead,
        };
        let requests: Vec<(usize, usize)> = (0..8).map(|p| (p, p * 7)).collect();
        let (accessed, stats) = run_protocol(
            &requests,
            &clusters,
            c,
            r,
            &map,
            &FlatPlacement,
            &mut exec,
            4,
            1,
        );
        for (i, a) in accessed.iter().enumerate() {
            let faulty = map
                .copies(requests[i].1)
                .iter()
                .filter(|&&md| md == 0 || md == 5)
                .count();
            assert!(
                a.len() >= c.min(r - faulty),
                "request {i}: accessed {a:?} with {faulty} dead copies"
            );
            // No dead module was ever recorded as accessed.
            for &cp in a {
                let md = map.module_of(requests[i].1, cp);
                assert!(md != 0 && md != 5);
            }
        }
        assert_eq!(stats.failed_requests, 0, "≥ c live copies everywhere");
        // Dead attempts happen once per (request, dead copy), never more.
        let total_dead_copies: usize = requests
            .iter()
            .map(|&(_, v)| {
                map.copies(v)
                    .iter()
                    .filter(|&&md| md == 0 || md == 5)
                    .count()
            })
            .sum();
        assert!(stats.dead_attempts as usize <= total_dead_copies);
    }

    /// Executor where one *source processor* is cut off (every attempt it
    /// issues is killed) — the shape of a per-source link fault on the
    /// 2DMOT. Transient from the protocol's point of view: the same copy
    /// can succeed from a different member.
    struct SourceBlocked {
        inner: BipartiteExec,
        blocked_src: usize,
    }

    impl PhaseExecutor for SourceBlocked {
        fn execute(&mut self, attempts: &[CopyAttempt], pipeline: usize) -> PhaseResult {
            let mut res = self.inner.execute(attempts, pipeline);
            for (a, out) in attempts.iter().zip(res.outcome.iter_mut()) {
                if a.src == self.blocked_src {
                    *out = AttemptOutcome::Killed;
                }
            }
            res
        }

        fn lossy(&self) -> bool {
            true
        }
    }

    #[test]
    fn member_rotation_routes_around_a_blocked_source() {
        // c = 2, r = 3: clusters {0,1,2}, {3,4,5}. Processor 0 can never
        // deliver an attempt. Because the member↔copy assignment rotates
        // per phase, every copy is eventually issued by processors 1 or 2
        // and every request still reaches quorum — in a bounded number of
        // phases, not by burning the stage-2 guard.
        let (m, modules, c) = (32usize, 16usize, 2usize);
        let r = 2 * c - 1;
        let map = MemoryMap::random(m, modules, r, 5);
        let clusters = Clusters::new(6, r);
        let mut exec = SourceBlocked {
            inner: BipartiteExec::new(modules),
            blocked_src: 0,
        };
        let requests: Vec<(usize, usize)> = (0..6).map(|p| (p, p * 5)).collect();
        let (accessed, stats) = run_protocol(
            &requests,
            &clusters,
            c,
            r,
            &map,
            &FlatPlacement,
            &mut exec,
            4,
            1,
        );
        assert!(
            accessed.iter().all(|a| a.len() >= c),
            "rotation must route around the blocked source: {accessed:?}"
        );
        assert_eq!(stats.failed_requests, 0);
        let guard = 4 * c as u64 * requests.len() as u64 + 16;
        assert!(
            stats.phases() < guard / 2,
            "phases {} should be far below the guard {guard}",
            stats.phases()
        );
    }

    #[test]
    fn all_copies_dead_fails_request_and_terminates() {
        // Every module dead: no request can access anything; the protocol
        // must terminate immediately with every request failed.
        let (m, modules, c) = (32usize, 8usize, 2usize);
        let r = 2 * c - 1;
        let map = MemoryMap::random(m, modules, r, 3);
        let clusters = Clusters::new(4, r);
        let mut exec = DeadModules {
            inner: BipartiteExec::new(modules),
            dead: vec![true; modules],
        };
        let requests: Vec<(usize, usize)> = (0..4).map(|p| (p, p)).collect();
        let (accessed, stats) = run_protocol(
            &requests,
            &clusters,
            c,
            r,
            &map,
            &FlatPlacement,
            &mut exec,
            4,
            1,
        );
        assert!(accessed.iter().all(|a| a.is_empty()));
        assert_eq!(stats.failed_requests, 4);
        assert_eq!(stats.dead_attempts, (4 * r) as u64);
        // One discovery phase per copy at most — no spinning.
        assert!(
            stats.phases() <= (r + 4) as u64,
            "phases {}",
            stats.phases()
        );
    }

    #[test]
    fn deterministic() {
        let requests: Vec<(usize, usize)> = (0..12).map(|p| (p, (p * 7) % 50)).collect();
        let a = run(12, 50, 64, 3, &requests);
        let b = run(12, 50, 64, 3, &requests);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn good_map_needs_few_phases() {
        // Fine granularity: modules >> n means phases stay near the
        // minimum even with every processor requesting.
        let n = 32;
        let requests: Vec<(usize, usize)> = (0..n).map(|p| (p, p * 11)).collect();
        let (_, stats) = run(n, 512, 512, 3, &requests);
        // r=5-member clusters, ~7 clusters, each with ≤5 requests: the
        // protocol interleaves them; phase count should be well under the
        // serial bound of n.
        assert!(
            stats.phases() < n as u64,
            "phases {} too high",
            stats.phases()
        );
    }
}
