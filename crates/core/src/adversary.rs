//! The counting argument of **Theorem 1**, as an executable adversary.
//!
//! Theorem 1's proof observes: if `n` variables have *all* their updated
//! copies inside a set `S` of modules, then a P-RAM step writing those
//! variables takes time `≥ n/|S|` (each module answers O(1) requests per
//! time unit). The redundancy lower bound follows by counting how small an
//! `S` must exist.
//!
//! This module plays the adversary against a concrete memory map: find a
//! small module set `S` that fully contains the copies of at least `n`
//! variables, and report the forced step time `n/|S|`. For a random map
//! with redundancy `r`, `m` variables and `M` modules the expected value is
//! `≈ (n/M)·(m/n)^{1/r}`:
//!
//! * MPC (`M = n`): `(m/n)^{1/r} = n^{(k−1)/r}` — **polynomial** unless
//!   `r = Ω(log n)`;
//! * DMMPC (`M = n^{1+ε}`): `n^{(k−1)/r − ε}` — **constant** once
//!   `r ≥ (k−1)/ε`, the paper's constant redundancy.
//!
//! Experiment E3 sweeps `r` and `ε` and tabulates the cliff.

use memdist::MemoryMap;

/// Result of one adversarial construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBoundReport {
    /// Requests in the attacking step (`n`).
    pub n: usize,
    /// Modules in the machine.
    pub modules: usize,
    /// Redundancy of the map.
    pub r: usize,
    /// Size of the module set the adversary confined the step to.
    pub module_set: usize,
    /// Variables found whose copies all lie in that set (`≥ n`).
    pub confined_vars: usize,
    /// The forced step time, `n / module_set` (in module-service rounds).
    pub forced_time: f64,
    /// Theorem 1's analytic prediction `(n/M)·(m/n)^{1/r}` for a random
    /// map, for comparison.
    pub predicted_time: f64,
}

/// Find an adversarial write step against `map`: `n` variables whose
/// copies concentrate in as few modules as possible.
///
/// Strategy: order modules by copy load (descending); for growing prefixes
/// `S` count the variables fully contained in `S`; take the smallest
/// prefix containing ≥ `n` variables. This matches the counting argument's
/// expectation on random maps and is exact on adversarially bad maps.
pub fn concentration_adversary(map: &MemoryMap, n: usize) -> LowerBoundReport {
    let m = map.vars();
    let modules = map.modules();
    let r = map.redundancy();
    assert!(n >= 1 && n <= m, "need n <= m variables to attack with");

    // Modules sorted by descending load.
    let loads = map.module_loads();
    let mut order: Vec<usize> = (0..modules).collect();
    order.sort_by_key(|&md| std::cmp::Reverse(loads[md]));
    let mut rank = vec![0u32; modules];
    for (pos, &md) in order.iter().enumerate() {
        rank[md] = pos as u32;
    }

    // For each variable, the worst (largest) rank among its copies — it is
    // fully contained in the prefix of length worst_rank + 1.
    let mut worst_rank: Vec<u32> = (0..m)
        .map(|v| {
            map.copies(v)
                .iter()
                .map(|&md| rank[md as usize])
                .max()
                .unwrap()
        })
        .collect();
    worst_rank.sort_unstable();

    // The n-th smallest worst-rank gives the minimal prefix confining n
    // variables.
    let s = worst_rank[n - 1] as usize + 1;
    let confined = worst_rank.iter().take_while(|&&w| (w as usize) < s).count();

    let forced_time = n as f64 / s as f64;
    let predicted_time = (n as f64 / modules as f64) * (m as f64 / n as f64).powf(1.0 / r as f64);

    LowerBoundReport {
        n,
        modules,
        r,
        module_set: s,
        confined_vars: confined,
        forced_time,
        predicted_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn congested_map_is_maximally_attackable() {
        // All copies in r modules: n variables confined to r modules, so
        // the forced time is n/r — the worst case.
        let r = 3;
        let map = MemoryMap::congested(256, 64, r);
        let rep = concentration_adversary(&map, 32);
        assert_eq!(rep.module_set, r);
        assert!((rep.forced_time - 32.0 / 3.0).abs() < 1e-9);
        assert!(rep.confined_vars >= 32);
    }

    #[test]
    fn fine_granularity_blunts_the_attack() {
        // Same n, m, r; coarse M = n vs fine M = n^1.5: the forced time
        // collapses with granularity — Theorem 1's message.
        let n = 64;
        let m = 4096; // k = 2
        let r = 3;
        let coarse = concentration_adversary(&MemoryMap::random(m, 64, r, 1), n);
        let fine = concentration_adversary(&MemoryMap::random(m, 512, r, 1), n);
        assert!(
            coarse.forced_time > 2.0 * fine.forced_time,
            "coarse {} vs fine {}",
            coarse.forced_time,
            fine.forced_time
        );
    }

    #[test]
    fn more_redundancy_blunts_the_attack_on_mpc() {
        let n = 64;
        let m = 4096;
        let weak = concentration_adversary(&MemoryMap::random(m, 64, 2, 3), n);
        let strong = concentration_adversary(&MemoryMap::random(m, 64, 9, 3), n);
        assert!(
            weak.forced_time > strong.forced_time,
            "weak {} vs strong {}",
            weak.forced_time,
            strong.forced_time
        );
    }

    #[test]
    fn prediction_tracks_measurement_on_random_maps() {
        let n = 64;
        let m = 1 << 14;
        for (modules, r) in [(64usize, 2usize), (64, 4), (1024, 2), (1024, 4)] {
            let rep = concentration_adversary(&MemoryMap::random(m, modules, r, 9), n);
            let ratio = rep.forced_time / rep.predicted_time.max(1e-9);
            assert!(
                (0.2..5.0).contains(&ratio),
                "M={modules} r={r}: measured {} vs predicted {}",
                rep.forced_time,
                rep.predicted_time
            );
        }
    }

    #[test]
    fn confined_count_is_at_least_n() {
        let map = MemoryMap::random(512, 32, 3, 4);
        let rep = concentration_adversary(&map, 20);
        assert!(rep.confined_vars >= 20);
        assert!(
            rep.module_set >= map.redundancy(),
            "need at least r modules to confine"
        );
    }
}
