//! The four copy-based schemes, as concrete types.
//!
//! Each wraps a [`MajorityScheme`] with the right executor, placement, and
//! parameter regime, and exposes it as a [`SharedMemory`] plus diagnostics.

use crate::config::SchemeConfig;
use crate::executors::{BipartiteExec, MotExec};
use crate::majority::MajorityScheme;
use crate::protocol::{FlatPlacement, GridPlacement};
use models::params::pow2_at_least;
use models::PaperParams;
use pram_machine::{AccessResult, SharedMemory, Word};

macro_rules! delegate_shared_memory {
    ($ty:ident) => {
        impl SharedMemory for $ty {
            fn size(&self) -> usize {
                self.inner.size()
            }
            fn access(&mut self, reads: &[usize], writes: &[(usize, Word)]) -> AccessResult {
                self.inner.access(reads, writes)
            }
            fn poke(&mut self, addr: usize, value: Word) {
                self.inner.poke(addr, value)
            }
        }
    };
}

/// **Theorem 2** — the paper's constant-redundancy scheme on a DMMPC
/// (`K_{n,M}` with `M = n^{1+ε}` fine-grain modules, Lemma 2's constant
/// `c`). Expected measurement: `O(log n)` phases per step, redundancy flat
/// in `n`.
#[derive(Debug)]
pub struct HpDmmpc {
    inner: MajorityScheme<BipartiteExec, FlatPlacement>,
}

impl HpDmmpc {
    /// Build from a (fine-granularity) configuration.
    pub fn new(cfg: &SchemeConfig) -> Self {
        // Complete bipartite interconnect: unit latency, so stage-2
        // pipelining buys nothing — modules serve one request per phase.
        let cfg = cfg.with_pipeline(1);
        let exec = BipartiteExec::new(cfg.modules);
        HpDmmpc { inner: MajorityScheme::assemble(cfg, cfg.modules, exec, FlatPlacement) }
    }

    /// Convenience: fine-grain defaults for an `n`-processor program with
    /// `m` cells.
    pub fn for_pram(n: usize, m: usize) -> Self {
        Self::new(&SchemeConfig::for_pram(n, m))
    }

    /// The wrapped step engine (stats, map, config).
    pub fn scheme(&self) -> &MajorityScheme<BipartiteExec, FlatPlacement> {
        &self.inner
    }
}

delegate_shared_memory!(HpDmmpc);

impl std::ops::Deref for HpDmmpc {
    type Target = MajorityScheme<BipartiteExec, FlatPlacement>;
    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

/// **Upfal–Wigderson baseline** — majority rule on the coarse-grain MPC
/// (`M = n`, one module per processor, Lemma 1's `c = Θ(log m)`).
/// Expected measurement: redundancy grows with `m`; phases stay polylog
/// but each variable costs `Θ(log m)` copies of work.
#[derive(Debug)]
pub struct UwMpc {
    inner: MajorityScheme<BipartiteExec, FlatPlacement>,
}

impl UwMpc {
    /// Build from a coarse configuration (`modules == n`).
    pub fn new(cfg: &SchemeConfig) -> Self {
        assert_eq!(cfg.modules, cfg.n, "the MPC has one module per processor");
        let cfg = cfg.with_pipeline(1);
        let exec = BipartiteExec::new(cfg.modules);
        UwMpc { inner: MajorityScheme::assemble(cfg, cfg.modules, exec, FlatPlacement) }
    }

    /// Coarse-grain defaults for an `n`-processor program with `m` cells:
    /// Lemma 1's `c` (growing with `m`), clamped so `2c−1 ≤ n` modules can
    /// hold distinct copies.
    pub fn for_pram(n: usize, m: usize) -> Self {
        let c = PaperParams::c_lemma1(m, 8).min((n + 1) / 2).max(1);
        let p = PaperParams::explicit(n, m, n, 8, c);
        Self::new(&SchemeConfig::from_params(p, simrng::DEFAULT_SEED))
    }

    /// The wrapped step engine.
    pub fn scheme(&self) -> &MajorityScheme<BipartiteExec, FlatPlacement> {
        &self.inner
    }
}

delegate_shared_memory!(UwMpc);

impl std::ops::Deref for UwMpc {
    type Target = MajorityScheme<BipartiteExec, FlatPlacement>;
    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

/// **Theorem 3 / Fig. 8** — the paper's DMBDN scheme: a `√M × √M` 2DMOT
/// with the memory modules at the **leaves** and processors at the first
/// `n` coalesced roots. The contention unit is the column tree (`√M`
/// columns), so Lemma 2 gives constant redundancy; every phase is routed
/// through the cycle-level mesh. Expected measurement:
/// `O(log² n / log log n)` cycles per step, redundancy flat in `n`.
#[derive(Debug)]
pub struct Hp2dmotLeaves {
    inner: MajorityScheme<MotExec, GridPlacement>,
}

impl Hp2dmotLeaves {
    /// Build from a fine-granularity configuration; the grid side is the
    /// smallest power of two ≥ max(modules, n).
    pub fn new(cfg: &SchemeConfig) -> Self {
        let side = pow2_at_least(cfg.modules.max(cfg.n)).max(2);
        let cfg = cfg.with_modules(side);
        let exec = MotExec::leaves(side);
        Hp2dmotLeaves {
            inner: MajorityScheme::assemble(cfg, side, exec, GridPlacement { side }),
        }
    }

    /// Fine-grain defaults for an `n`-processor program with `m` cells.
    pub fn for_pram(n: usize, m: usize) -> Self {
        Self::new(&SchemeConfig::for_pram(n, m))
    }

    /// Grid side `√M`.
    pub fn side(&self) -> usize {
        self.inner.executor().side()
    }

    /// Switches introduced (`O(M)` — the Fig. 8 hardware budget).
    pub fn switches(&self) -> usize {
        self.inner.executor().switches()
    }

    /// The wrapped step engine.
    pub fn scheme(&self) -> &MajorityScheme<MotExec, GridPlacement> {
        &self.inner
    }
}

delegate_shared_memory!(Hp2dmotLeaves);

impl std::ops::Deref for Hp2dmotLeaves {
    type Target = MajorityScheme<MotExec, GridPlacement>;
    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

/// **Luccio–Pietracaprina–Pucci baseline** — 2DMOT with memory at the
/// **roots** (coalesced with the processors): same `O(log²n/log log n)`
/// time shape, but the module count stays `n`, so Lemma 1 forces
/// `Θ(log n)` redundancy. The contrast with [`Hp2dmotLeaves`] is the
/// paper's headline (experiments E5/E9).
#[derive(Debug)]
pub struct Lpp2dmot {
    inner: MajorityScheme<MotExec, FlatPlacement>,
}

impl Lpp2dmot {
    /// Build for an `n`-processor program with `m` cells. The grid is
    /// `pow2(n) × pow2(n)`; modules are the first `n` roots.
    pub fn for_pram(n: usize, m: usize) -> Self {
        let n2 = n.max(2);
        let c = PaperParams::c_lemma1(m, 8).min((n2 + 1) / 2).max(1);
        let p = PaperParams::explicit(n, m, n2, 8, c);
        let cfg = SchemeConfig::from_params(p, simrng::DEFAULT_SEED);
        let side = pow2_at_least(n2);
        let exec = MotExec::roots(side);
        Lpp2dmot { inner: MajorityScheme::assemble(cfg, n2, exec, FlatPlacement) }
    }

    /// Grid side.
    pub fn side(&self) -> usize {
        self.inner.executor().side()
    }

    /// The wrapped step engine.
    pub fn scheme(&self) -> &MajorityScheme<MotExec, FlatPlacement> {
        &self.inner
    }
}

delegate_shared_memory!(Lpp2dmot);

impl std::ops::Deref for Lpp2dmot {
    type Target = MajorityScheme<MotExec, FlatPlacement>;
    fn deref(&self) -> &Self::Target {
        &self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rng_from_seed, Rng};

    /// Randomized read/write steps against a flat reference memory.
    fn exercise<M: SharedMemory>(mem: &mut M, n: usize, m: usize, seed: u64, steps: usize) {
        let mut reference = vec![0i64; m];
        let mut rng = rng_from_seed(seed);
        for step in 0..steps {
            // Up to n distinct addresses split between reads and writes.
            let k = 1 + rng.index(n.min(m));
            let addrs = rng.sample_distinct(m as u64, k);
            let split = rng.index(k + 1);
            let reads: Vec<usize> = addrs[..split].iter().map(|&a| a as usize).collect();
            let writes: Vec<(usize, i64)> = addrs[split..]
                .iter()
                .map(|&a| (a as usize, (step * 1000 + a as usize) as i64))
                .collect();
            let result = mem.access(&reads, &writes);
            for (i, &a) in reads.iter().enumerate() {
                assert_eq!(result.read_values[i], reference[a], "step {step}, addr {a}");
            }
            for &(a, v) in &writes {
                reference[a] = v;
            }
        }
    }

    #[test]
    fn hp_dmmpc_linearizes() {
        let mut s = HpDmmpc::for_pram(16, 256);
        exercise(&mut s, 16, 256, 7, 60);
        let (tot, steps) = s.totals();
        assert_eq!(steps, 60);
        assert!(tot.phases > 0);
    }

    #[test]
    fn uw_mpc_linearizes() {
        let mut s = UwMpc::for_pram(16, 256);
        exercise(&mut s, 16, 256, 8, 60);
        assert_eq!(s.config().modules, 16);
    }

    #[test]
    fn hp_2dmot_leaves_linearizes() {
        let mut s = Hp2dmotLeaves::for_pram(8, 64);
        assert!(s.side() >= 8);
        exercise(&mut s, 8, 64, 9, 30);
        let rep = s.last_step();
        assert!(rep.cycles > 0, "2DMOT steps consume measured cycles");
    }

    #[test]
    fn lpp_2dmot_linearizes() {
        let mut s = Lpp2dmot::for_pram(8, 64);
        exercise(&mut s, 8, 64, 10, 30);
        assert!(s.last_step().cycles > 0);
    }

    #[test]
    fn poke_then_read_through_protocol() {
        let mut s = HpDmmpc::for_pram(8, 32);
        s.poke(5, 42);
        let r = s.access(&[5], &[]);
        assert_eq!(r.read_values, vec![42]);
    }

    #[test]
    fn hp_redundancy_constant_uw_grows() {
        let hp_small = HpDmmpc::for_pram(16, 16 * 16);
        let hp_big = HpDmmpc::for_pram(256, 256 * 256);
        assert_eq!(hp_small.redundancy(), hp_big.redundancy());
        let uw_small = UwMpc::for_pram(16, 16 * 16);
        let uw_big = UwMpc::for_pram(1 << 10, 1 << 20);
        assert!(uw_big.redundancy() > uw_small.redundancy());
    }

    #[test]
    #[should_panic(expected = "one module per processor")]
    fn uw_rejects_fine_grain_config() {
        let cfg = SchemeConfig::for_pram(16, 256);
        let _ = UwMpc::new(&cfg);
    }

    #[test]
    fn step_report_accumulates() {
        let mut s = HpDmmpc::for_pram(8, 64);
        s.access(&[1, 2], &[(3, 9)]);
        let one = s.last_step();
        assert_eq!(one.requests, 3);
        s.access(&[4], &[]);
        let (tot, steps) = s.totals();
        assert_eq!(steps, 2);
        assert_eq!(tot.requests, 4);
        assert!(tot.phases >= one.phases);
    }
}
