//! The four copy-based schemes, as concrete types.
//!
//! Each wraps a [`MajorityScheme`] with the right executor, placement, and
//! parameter regime, and exposes it uniformly through the [`Scheme`] trait
//! (plus a `scheme()` accessor to the wrapped engine for power users).
//! Construction goes through [`crate::SimBuilder`]; the `new`/`try_new`
//! constructors taking a [`SchemeConfig`] are the escape hatch for regimes
//! the builder does not expose.

use crate::config::SchemeConfig;
use crate::executors::{BipartiteExec, MotExec};
use crate::majority::{MajorityScheme, StepReport};
use crate::protocol::{FlatPlacement, GridPlacement};
use crate::scheme::{BuildError, Scheme, SchemeKind, SchemeParams};
use models::params::pow2_at_least;
use pram_machine::{AccessResult, SharedMemory, Word};

macro_rules! impl_scheme {
    ($ty:ident, $kind:expr) => {
        impl SharedMemory for $ty {
            fn size(&self) -> usize {
                self.inner.size()
            }
            fn access(&mut self, reads: &[usize], writes: &[(usize, Word)]) -> AccessResult {
                self.inner.access(reads, writes)
            }
            fn poke(&mut self, addr: usize, value: Word) {
                self.inner.poke(addr, value)
            }
        }

        impl Scheme for $ty {
            fn kind(&self) -> SchemeKind {
                $kind
            }
            fn redundancy(&self) -> f64 {
                self.inner.redundancy() as f64
            }
            fn modules(&self) -> usize {
                self.inner.config().modules
            }
            fn last_step(&self) -> StepReport {
                self.inner.last_step()
            }
            fn totals(&self) -> (StepReport, u64) {
                self.inner.totals()
            }
            fn params(&self) -> SchemeParams {
                let cfg = self.inner.config();
                SchemeParams {
                    kind: $kind,
                    n: cfg.n,
                    m: cfg.m,
                    modules: cfg.modules,
                    redundancy: cfg.redundancy() as f64,
                    seed: cfg.seed,
                }
            }
        }
    };
}

/// **Theorem 2** — the paper's constant-redundancy scheme on a DMMPC
/// (`K_{n,M}` with `M = n^{1+ε}` fine-grain modules, Lemma 2's constant
/// `c`). Expected measurement: `O(log n)` phases per step, redundancy flat
/// in `n`.
#[derive(Debug)]
pub struct HpDmmpc {
    inner: MajorityScheme<BipartiteExec, FlatPlacement>,
}

impl HpDmmpc {
    /// Build from a (fine-granularity) configuration.
    pub fn new(cfg: &SchemeConfig) -> Self {
        // Complete bipartite interconnect: unit latency, so stage-2
        // pipelining buys nothing — modules serve one request per phase.
        let cfg = cfg.with_pipeline(1);
        let exec = BipartiteExec::new(cfg.modules);
        HpDmmpc {
            inner: MajorityScheme::assemble(cfg, cfg.modules, exec, FlatPlacement),
        }
    }

    /// The wrapped step engine (stats, map, config).
    pub fn scheme(&self) -> &MajorityScheme<BipartiteExec, FlatPlacement> {
        &self.inner
    }
}

impl_scheme!(HpDmmpc, SchemeKind::HpDmmpc);

/// **Upfal–Wigderson baseline** — majority rule on the coarse-grain MPC
/// (`M = n`, one module per processor, Lemma 1's `c = Θ(log m)`).
/// Expected measurement: redundancy grows with `m`; phases stay polylog
/// but each variable costs `Θ(log m)` copies of work.
#[derive(Debug)]
pub struct UwMpc {
    inner: MajorityScheme<BipartiteExec, FlatPlacement>,
}

impl UwMpc {
    /// Build from a coarse configuration; the MPC is defined with one
    /// module per processor, so `cfg.modules` must equal `cfg.n`.
    pub fn try_new(cfg: &SchemeConfig) -> Result<Self, BuildError> {
        if cfg.modules != cfg.n {
            return Err(BuildError::NotOneModulePerProcessor {
                n: cfg.n,
                modules: cfg.modules,
            });
        }
        let cfg = cfg.with_pipeline(1);
        let exec = BipartiteExec::new(cfg.modules);
        Ok(UwMpc {
            inner: MajorityScheme::assemble(cfg, cfg.modules, exec, FlatPlacement),
        })
    }

    /// Panicking variant of [`UwMpc::try_new`].
    pub fn new(cfg: &SchemeConfig) -> Self {
        Self::try_new(cfg).expect("the MPC has one module per processor")
    }

    /// The wrapped step engine.
    pub fn scheme(&self) -> &MajorityScheme<BipartiteExec, FlatPlacement> {
        &self.inner
    }
}

impl_scheme!(UwMpc, SchemeKind::UwMpc);

/// **Theorem 3 / Fig. 8** — the paper's DMBDN scheme: a `√M × √M` 2DMOT
/// with the memory modules at the **leaves** and processors at the first
/// `n` coalesced roots. The contention unit is the column tree (`√M`
/// columns), so Lemma 2 gives constant redundancy; every phase is routed
/// through the cycle-level mesh. Expected measurement:
/// `O(log² n / log log n)` cycles per step, redundancy flat in `n`.
#[derive(Debug)]
pub struct Hp2dmotLeaves {
    inner: MajorityScheme<MotExec, GridPlacement>,
}

impl Hp2dmotLeaves {
    /// The grid side this scheme derives from a configuration: the
    /// smallest power of two ≥ max(modules, n). Named so external
    /// composers (the fault layer rebuilds this scheme around a decorated
    /// executor) derive the identical geometry.
    pub fn side_for(cfg: &SchemeConfig) -> usize {
        pow2_at_least(cfg.modules.max(cfg.n)).max(2)
    }

    /// Build from a fine-granularity configuration; the grid side is
    /// [`Self::side_for`].
    pub fn new(cfg: &SchemeConfig) -> Self {
        let side = Self::side_for(cfg);
        let cfg = cfg.with_modules(side);
        let exec = MotExec::leaves(side);
        Hp2dmotLeaves {
            inner: MajorityScheme::assemble(cfg, side, exec, GridPlacement { side }),
        }
    }

    /// Grid side `√M`.
    pub fn side(&self) -> usize {
        self.inner.executor().side()
    }

    /// Switches introduced (`O(M)` — the Fig. 8 hardware budget).
    pub fn switches(&self) -> usize {
        self.inner.executor().switches()
    }

    /// The wrapped step engine.
    pub fn scheme(&self) -> &MajorityScheme<MotExec, GridPlacement> {
        &self.inner
    }
}

impl_scheme!(Hp2dmotLeaves, SchemeKind::Hp2dmotLeaves);

/// **Luccio–Pietracaprina–Pucci baseline** — 2DMOT with memory at the
/// **roots** (coalesced with the processors): same `O(log²n/log log n)`
/// time shape, but the module count stays `n`, so Lemma 1 forces
/// `Θ(log n)` redundancy. The contrast with [`Hp2dmotLeaves`] is the
/// paper's headline (experiments E5/E9).
#[derive(Debug)]
pub struct Lpp2dmot {
    inner: MajorityScheme<MotExec, FlatPlacement>,
}

impl Lpp2dmot {
    /// The grid side this scheme derives from a configuration (see
    /// [`Hp2dmotLeaves::side_for`] for why this is a named function).
    pub fn side_for(cfg: &SchemeConfig) -> usize {
        pow2_at_least(cfg.modules.max(2))
    }

    /// Build from a coarse configuration: the modules are the first
    /// `cfg.modules` roots of a `pow2(modules) × pow2(modules)` grid.
    pub fn try_new(cfg: &SchemeConfig) -> Result<Self, BuildError> {
        if cfg.modules < cfg.redundancy() {
            return Err(BuildError::TooFewModules {
                kind: SchemeKind::Lpp2dmot,
                modules: cfg.modules,
                required: cfg.redundancy(),
            });
        }
        let side = Self::side_for(cfg);
        let exec = MotExec::roots(side);
        Ok(Lpp2dmot {
            inner: MajorityScheme::assemble(*cfg, cfg.modules, exec, FlatPlacement),
        })
    }

    /// Grid side.
    pub fn side(&self) -> usize {
        self.inner.executor().side()
    }

    /// The wrapped step engine.
    pub fn scheme(&self) -> &MajorityScheme<MotExec, FlatPlacement> {
        &self.inner
    }
}

impl_scheme!(Lpp2dmot, SchemeKind::Lpp2dmot);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::SimBuilder;
    use simrng::{rng_from_seed, Rng};

    fn build(kind: SchemeKind, n: usize, m: usize) -> Box<dyn Scheme> {
        SimBuilder::new(n, m).kind(kind).build().unwrap()
    }

    /// Randomized read/write steps against a flat reference memory.
    fn exercise(mem: &mut dyn Scheme, n: usize, m: usize, seed: u64, steps: usize) {
        let mut reference = vec![0i64; m];
        let mut rng = rng_from_seed(seed);
        for step in 0..steps {
            // Up to n distinct addresses split between reads and writes.
            let k = 1 + rng.index(n.min(m));
            let addrs = rng.sample_distinct(m as u64, k);
            let split = rng.index(k + 1);
            let reads: Vec<usize> = addrs[..split].iter().map(|&a| a as usize).collect();
            let writes: Vec<(usize, i64)> = addrs[split..]
                .iter()
                .map(|&a| (a as usize, (step * 1000 + a as usize) as i64))
                .collect();
            let result = mem.access(&reads, &writes);
            for (i, &a) in reads.iter().enumerate() {
                assert_eq!(result.read_values[i], reference[a], "step {step}, addr {a}");
            }
            for &(a, v) in &writes {
                reference[a] = v;
            }
        }
    }

    #[test]
    fn hp_dmmpc_linearizes() {
        let mut s = build(SchemeKind::HpDmmpc, 16, 256);
        exercise(s.as_mut(), 16, 256, 7, 60);
        let (tot, steps) = s.totals();
        assert_eq!(steps, 60);
        assert!(tot.phases > 0);
    }

    #[test]
    fn uw_mpc_linearizes() {
        let mut s = build(SchemeKind::UwMpc, 16, 256);
        exercise(s.as_mut(), 16, 256, 8, 60);
        assert_eq!(s.modules(), 16);
    }

    #[test]
    fn hp_2dmot_leaves_linearizes() {
        let mut s = build(SchemeKind::Hp2dmotLeaves, 8, 64);
        assert!(s.modules() >= 8, "grid side covers the processors");
        exercise(s.as_mut(), 8, 64, 9, 30);
        let rep = s.last_step();
        assert!(rep.cycles > 0, "2DMOT steps consume measured cycles");
    }

    #[test]
    fn lpp_2dmot_linearizes() {
        let mut s = build(SchemeKind::Lpp2dmot, 8, 64);
        exercise(s.as_mut(), 8, 64, 10, 30);
        assert!(s.last_step().cycles > 0);
    }

    #[test]
    fn poke_then_read_through_protocol() {
        let mut s = build(SchemeKind::HpDmmpc, 8, 32);
        s.poke(5, 42);
        let r = s.access(&[5], &[]);
        assert_eq!(r.read_values, vec![42]);
    }

    #[test]
    fn hp_redundancy_constant_uw_grows() {
        let hp_small = build(SchemeKind::HpDmmpc, 16, 16 * 16);
        let hp_big = build(SchemeKind::HpDmmpc, 256, 256 * 256);
        assert_eq!(hp_small.redundancy(), hp_big.redundancy());
        let uw_small = build(SchemeKind::UwMpc, 16, 16 * 16);
        let uw_big = build(SchemeKind::UwMpc, 1 << 10, 1 << 20);
        assert!(uw_big.redundancy() > uw_small.redundancy());
    }

    #[test]
    fn uw_rejects_fine_grain_config() {
        let cfg = SchemeConfig::for_pram(16, 256);
        let err = UwMpc::try_new(&cfg).unwrap_err();
        assert!(
            matches!(err, BuildError::NotOneModulePerProcessor { n: 16, .. }),
            "{err}"
        );
    }

    #[test]
    fn lpp_side_is_pow2_over_modules() {
        let s = SimBuilder::new(8, 64)
            .kind(SchemeKind::Lpp2dmot)
            .build()
            .unwrap();
        assert_eq!(s.modules(), 8);
        let cfg = SchemeConfig::coarse_for_pram(24, 64);
        let lpp = Lpp2dmot::try_new(&cfg).unwrap();
        assert_eq!(lpp.side(), 32);
    }

    #[test]
    fn step_report_accumulates() {
        let mut s = build(SchemeKind::HpDmmpc, 8, 64);
        s.access(&[1, 2], &[(3, 9)]);
        let one = s.last_step();
        assert_eq!(one.requests, 3);
        s.access(&[4], &[]);
        let (tot, steps) = s.totals();
        assert_eq!(steps, 2);
        assert_eq!(tot.requests, 4);
        assert!(tot.phases >= one.phases);
    }
}
