//! Majority-rule shared memory over any phase executor: the step engine
//! shared by the UW-MPC, HP-DMMPC, HP-2DMOT and LPP-2DMOT schemes.
//!
//! One [`pram_machine::SharedMemory::access`] call = one P-RAM step:
//!
//! 1. the (deduplicated) reads and writes become the step's request list,
//!    assigned to processors in order;
//! 2. the two-stage cluster protocol accesses `≥ c` copies of every
//!    requested variable (the timing is whatever the executor measures);
//! 3. reads take the max-timestamp value over their quorum — correct,
//!    because any read quorum intersects every earlier write quorum;
//! 4. writes stamp their quorum with the step number.

use crate::config::SchemeConfig;
use crate::protocol::{
    run_protocol, CopyPlacement, PhaseExecutor, ProtocolStats, ProtocolWorkspace,
};
use memdist::{Clusters, MemoryMap, ReplicatedStore};
use pram_machine::{AccessResult, SharedMemory, StepCost, Word};

/// Per-step report (the measurable object of experiments E4/E5/E10).
///
/// Derives `Eq` so determinism properties ("same seed, same workload,
/// byte-identical totals") are directly assertable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepReport {
    /// Distinct variables accessed this step.
    pub requests: usize,
    /// Protocol phases (stage 1 + stage 2) plus the combining charge.
    pub phases: u64,
    /// Network cycles consumed (cycle-level executors) or phases (flat).
    pub cycles: u64,
    /// Messages / link-hops.
    pub messages: u64,
    /// Protocol detail.
    pub protocol: ProtocolStats,
}

/// A majority-rule scheme: memory map + replicated store + cluster
/// protocol, parameterized by the interconnect's [`PhaseExecutor`] and
/// [`CopyPlacement`].
///
/// Owns the [`ProtocolWorkspace`] its steps run in (plus the request
/// assembly buffer), so the per-step data plane reuses one set of
/// buffers for the scheme's whole lifetime (DESIGN.md §7).
#[derive(Debug)]
pub struct MajorityScheme<E, P> {
    cfg: SchemeConfig,
    map: MemoryMap,
    store: ReplicatedStore,
    clusters: Clusters,
    exec: E,
    placement: P,
    step: u64,
    last: StepReport,
    total: StepReport,
    steps: u64,
    ws: ProtocolWorkspace,
    requests: Vec<(usize, usize)>,
}

impl<E: PhaseExecutor, P: CopyPlacement> MajorityScheme<E, P> {
    /// Assemble a scheme. `map_modules` is the universe the memory map is
    /// drawn over (the contention units: `M` on a DMMPC, `√M` columns on
    /// the 2DMOT); `placement` maps `(var, copy)` to the physical location.
    pub fn assemble(cfg: SchemeConfig, map_modules: usize, exec: E, placement: P) -> Self {
        let r = cfg.redundancy();
        assert!(
            map_modules >= r,
            "need at least r modules for distinct copies"
        );
        let map = MemoryMap::random(cfg.m, map_modules, r, cfg.seed);
        let store = ReplicatedStore::new(&map);
        let clusters = Clusters::new(cfg.n.max(1), r);
        MajorityScheme {
            cfg,
            map,
            store,
            clusters,
            exec,
            placement,
            step: 0,
            last: StepReport::default(),
            total: StepReport::default(),
            steps: 0,
            ws: ProtocolWorkspace::new(),
            requests: Vec::new(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &SchemeConfig {
        &self.cfg
    }

    /// The memory map (for expansion checks and adversaries).
    pub fn map(&self) -> &MemoryMap {
        &self.map
    }

    /// The executor (for interconnect-specific diagnostics).
    pub fn executor(&self) -> &E {
        &self.exec
    }

    /// Report for the most recent step.
    pub fn last_step(&self) -> StepReport {
        self.last
    }

    /// Accumulated totals and the number of shared steps executed.
    pub fn totals(&self) -> (StepReport, u64) {
        (self.total, self.steps)
    }

    /// Redundancy in force.
    pub fn redundancy(&self) -> usize {
        self.cfg.redundancy()
    }

    /// Storage blowup versus the simulated P-RAM: copies per variable.
    pub fn memory_blowup(&self) -> usize {
        self.cfg.redundancy()
    }
}

impl<E: PhaseExecutor, P: CopyPlacement> SharedMemory for MajorityScheme<E, P> {
    fn size(&self) -> usize {
        self.cfg.m
    }

    fn access(&mut self, reads: &[usize], writes: &[(usize, Word)]) -> AccessResult {
        let total = reads.len() + writes.len();
        assert!(
            total <= self.cfg.n.max(1),
            "a P-RAM step issues at most one request per processor ({} > n = {})",
            total,
            self.cfg.n
        );
        // Requests: reads first, then writes; processor i issues request i
        // (the front end already deduplicated and combined). The assembly
        // buffer is reused across steps.
        self.requests.clear();
        self.requests.extend(
            reads
                .iter()
                .copied()
                .chain(writes.iter().map(|&(a, _)| a))
                .enumerate(),
        );

        let proto = run_protocol(
            &self.requests,
            &self.clusters,
            self.cfg.c,
            self.cfg.redundancy(),
            &self.map,
            &self.placement,
            &mut self.exec,
            self.cfg.stage1_phases,
            self.cfg.stage2_pipeline,
            &mut self.ws,
        );

        // Reads observe the pre-step state: extract before applying writes.
        // On a fault-free machine every request holds a full `c`-quorum;
        // under fault injection a request may end below quorum (its viable
        // copies ran out) — reads then degrade to best-effort over the
        // copies actually reached, and a read with nothing reachable
        // returns 0 (the cell is lost; the fault layer counts these).
        let read_values: Vec<Word> = reads
            .iter()
            .enumerate()
            .map(|(i, &var)| {
                let quorum = self.ws.accessed(i);
                if quorum.is_empty() {
                    0
                } else {
                    self.store.read_majority(var, quorum)
                }
            })
            .collect();

        self.step += 1;
        for (j, &(var, value)) in writes.iter().enumerate() {
            let quorum = self.ws.accessed(reads.len() + j);
            debug_assert!(quorum.len() >= self.cfg.c || proto.failed_requests > 0);
            self.store.write_quorum(var, quorum, value, self.step);
        }

        let report = StepReport {
            requests: total,
            phases: proto.phases() + self.cfg.combine_phases,
            cycles: proto.cycles,
            messages: proto.messages,
            protocol: proto,
        };
        self.last = report;
        self.total.requests += report.requests;
        self.total.phases += report.phases;
        self.total.cycles += report.cycles;
        self.total.messages += report.messages;
        self.total.protocol.accumulate(&report.protocol);
        self.steps += 1;

        AccessResult {
            read_values,
            cost: StepCost {
                phases: report.phases,
                cycles: report.cycles.max(report.phases),
                messages: report.messages,
            },
        }
    }

    fn poke(&mut self, addr: usize, value: Word) {
        // Initialization path: write all copies, outside step accounting.
        self.step += 1;
        self.store.write_all(addr, value, self.step);
    }
}
