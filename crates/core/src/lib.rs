//! `cr-core` — the paper's contribution: deterministic P-RAM simulation
//! schemes with constant redundancy, plus every baseline they are measured
//! against.
//!
//! All schemes implement the object-safe [`Scheme`] trait (a supertrait of
//! [`pram_machine::SharedMemory`] plus uniform diagnostics), so any P-RAM
//! program from `pram-machine` runs on any of them unmodified; equality
//! with the ideal memory's results is the end-to-end faithfulness test.
//! Construct any scheme with [`SimBuilder`]:
//!
//! ```
//! use cr_core::{Scheme, SchemeKind, SimBuilder};
//!
//! let mut scheme = SimBuilder::new(8, 64).kind(SchemeKind::Hp2dmotLeaves).build().unwrap();
//! scheme.access(&[], &[(0, 9)]);
//! assert_eq!(scheme.access(&[0], &[]).read_values, vec![9]);
//! ```
//!
//! | Scheme | Model | Redundancy | Time/step | Paper artifact |
//! |--------|-------|-----------|-----------|----------------|
//! | [`UwMpc`] | MPC (`M = n`) | `2c−1`, `c = Θ(log m)` | `O(log n ·…)` phases | Upfal–Wigderson baseline |
//! | [`HpDmmpc`] | DMMPC (`M = n^{1+ε}`) | **`Θ(1)`** | `O(log n)` phases | **Theorem 2** |
//! | [`Hp2dmotLeaves`] | DMBDN, `√M×√M` 2DMOT, memory at leaves | **`Θ(1)`** | `O(log²n/log log n)` cycles | **Theorem 3 / Fig. 8** |
//! | [`Lpp2dmot`] | DMBDN, 2DMOT, memory at roots | `Θ(log n)` | `O(log²n/log log n)` cycles | Luccio et al. baseline |
//! | [`HashedDmmpc`] | DMMPC | 1 (no copies) | expected `O(log n/log log n)` | Mehlhorn–Vishkin probabilistic baseline |
//! | [`IdaShared`] | DMMPC | blowup `d/b = Θ(1)` | `Θ(log n)` work/access | Schuster/Rabin alternative |
//!
//! The [`adversary`] module implements the counting argument behind
//! Theorem 1 (the redundancy lower bound) as an executable attack.

pub mod adversary;
pub mod clock;
pub mod config;
mod congestion;
pub mod executors;
pub mod hashed;
pub mod ida_scheme;
pub mod majority;
pub mod protocol;
pub mod scheme;
pub mod schemes;

pub use adversary::{concentration_adversary, LowerBoundReport};
pub use clock::{SimClock, Tick};
pub use config::SchemeConfig;
pub use hashed::HashedDmmpc;
pub use ida_scheme::IdaShared;
pub use majority::{MajorityScheme, StepReport};
pub use scheme::{BuildError, FaultTotals, Scheme, SchemeKind, SchemeParams, SimBuilder};
pub use schemes::{Hp2dmotLeaves, HpDmmpc, Lpp2dmot, UwMpc};
