//! Flat per-step module-congestion counter shared by the protocol-free
//! schemes (`hashed`, `ida`).
//!
//! A step's time on these schemes is the maximum number of requests any
//! one module serves. Counting that with a per-step `HashMap` was worth
//! 6–10 allocations per step; this counter keeps one flat `load` array
//! (indexed by module id) plus the list of touched modules, so a step
//! is touch → finish with zero allocations, and the all-zero-on-entry
//! invariant of `load` is restored by `finish` itself.

/// Reusable max-requests-per-module counter over a fixed module universe.
#[derive(Debug)]
pub(crate) struct CongestionCounter {
    /// Per-module request count of the current step.
    load: Vec<u64>,
    /// Modules touched this step (the indices of `load` to read and
    /// zero).
    touched: Vec<usize>,
}

impl CongestionCounter {
    /// A counter over `modules` modules, all idle.
    pub(crate) fn new(modules: usize) -> Self {
        CongestionCounter {
            load: vec![0; modules],
            touched: Vec::new(),
        }
    }

    /// Charge one request to `module`.
    pub(crate) fn touch(&mut self, module: usize) {
        if self.load[module] == 0 {
            self.touched.push(module);
        }
        self.load[module] += 1;
    }

    /// The step's congestion (max load over the touched modules; 0 when
    /// nothing was touched), resetting the counter for the next step.
    pub(crate) fn finish(&mut self) -> u64 {
        let max = self.touched.iter().map(|&md| self.load[md]).max();
        for &md in &self.touched {
            self.load[md] = 0;
        }
        self.touched.clear();
        max.unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let mut c = CongestionCounter::new(4);
        assert_eq!(c.finish(), 0);
        for md in [0, 1, 1, 3, 1, 0] {
            c.touch(md);
        }
        assert_eq!(c.finish(), 3);
        // The reset restored the all-zero invariant.
        c.touch(2);
        assert_eq!(c.finish(), 1);
    }
}
