//! A minimal, dependency-free micro-benchmark harness exposing the subset
//! of the Criterion API this workspace's benches use.
//!
//! The build environment has no network access, so the real crates.io
//! `criterion` cannot be fetched; this shim keeps the `benches/` targets
//! compiling and producing useful wall-clock numbers with the same source
//! code. Swap the `[workspace.dependencies]` entry back to the crates.io
//! crate to get statistical rigor, plots, and regression detection.
//!
//! Supported surface: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`], [`Bencher::iter_batched`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.

use std::time::{Duration, Instant};

/// Opaque-value hint: prevents the optimizer from deleting the benchmarked
/// computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim runs one setup per
/// iteration regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Passed to the closure given to `bench_function`; drives the timing loop.
pub struct Bencher {
    samples: usize,
    /// Mean nanoseconds per iteration, filled in by the timing loop.
    mean_ns: f64,
}

impl Bencher {
    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.mean_ns = duration_ns(start.elapsed()) / self.samples as f64;
    }

    /// Time `routine` with per-iteration inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.mean_ns = duration_ns(total) / self.samples as f64;
    }
}

fn duration_ns(d: Duration) -> f64 {
    d.as_secs_f64() * 1e9
}

fn report(name: &str, mean_ns: f64, samples: usize) {
    let (value, unit) = if mean_ns >= 1e9 {
        (mean_ns / 1e9, "s")
    } else if mean_ns >= 1e6 {
        (mean_ns / 1e6, "ms")
    } else if mean_ns >= 1e3 {
        (mean_ns / 1e3, "us")
    } else {
        (mean_ns, "ns")
    };
    println!("{name:<40} {value:>10.2} {unit}/iter  ({samples} samples)");
}

/// The harness entry point: owns default settings and runs benchmarks.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Default number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(name.as_ref(), b.mean_ns, b.samples);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            samples: self.sample_size,
            mean_ns: 0.0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, name.as_ref()),
            b.mean_ns,
            b.samples,
        );
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Collect benchmark functions under one runner, Criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the named groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(3)
            .bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn group_batched() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("sum", |b| {
            b.iter_batched(
                || vec![1u64; 64],
                |v| v.iter().sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
        g.finish();
    }
}
