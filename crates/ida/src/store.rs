//! Schuster's IDA-backed shared memory.
//!
//! The `m` variables are grouped into blocks of `b/4` variables (each
//! variable is four GF(2¹⁶) symbols), every block is recoded into `d`
//! shares, and share `i` of a block lives in a distinct memory module.
//! Accesses use quorums of `w = (d+b)/2` shares with version stamps:
//!
//! * **write**: read a quorum, recover the block at its newest version,
//!   modify the variable, re-encode, and write the new shares (with version
//!   + 1) to a quorum;
//! * **read**: read a quorum; two quorums intersect in
//!   `2·(d+b)/2 − d = b` shares, so at least `b` of the touched shares
//!   carry the newest version — exactly enough to decode.
//!
//! Storage blowup is `d/b` (constant); work per access is `Θ(d)` share
//! touches, i.e. `Θ(log n)` — the trade-off the paper points out.

use crate::codec::{symbols_to_word, word_to_symbols, DecodeCache, IdaCode};

/// Reusable scratch threaded through the store's read/write path — the
/// IDA analogue of `cr-core`'s `ProtocolWorkspace`. Owned by the caller
/// (one per scheme/session), it carries the decode-matrix cache and every
/// buffer an access touches, so a warm store performs **zero heap
/// allocations per access** (asserted by `tests/alloc_steady_state.rs`).
#[derive(Debug, Clone, Default)]
pub struct IdaWorkspace {
    /// Decode matrices keyed by share-index set (see [`DecodeCache`]).
    cache: DecodeCache,
    /// Share indices the quorum touched, in deterministic probe order.
    touched: Vec<usize>,
    /// The touched shares carrying the newest version.
    current: Vec<(usize, galois::Gf16)>,
    /// Decoded block data (then mutated in place by writes).
    data: Vec<galois::Gf16>,
    /// Re-encoded shares (write path).
    enc: Vec<galois::Gf16>,
}

impl IdaWorkspace {
    /// An empty workspace; buffers grow to steady-state capacity over the
    /// first access and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode-matrix cache statistics `(cached_sets, hits, misses)` —
    /// E15/E16 diagnostics and test hooks.
    pub fn cache_stats(&self) -> (usize, u64, u64) {
        (self.cache.len(), self.cache.hits(), self.cache.misses())
    }
}

/// Cost of one access, for the E8 experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdaAccessStats {
    /// Shares read or written.
    pub shares_touched: u64,
    /// Distinct memory modules contacted.
    pub modules_touched: u64,
    /// Field operations spent encoding/decoding (symbol multiplies).
    pub field_ops: u64,
}

impl IdaAccessStats {
    fn add(&mut self, other: IdaAccessStats) {
        self.shares_touched += other.shares_touched;
        self.modules_touched += other.modules_touched;
        self.field_ops += other.field_ops;
    }
}

/// One dispersed block: `d` shares, each `(value, version)`.
#[derive(Debug, Clone)]
struct Block {
    shares: Vec<(galois::Gf16, u64)>,
    /// Rotation offset so successive writes hit different stale shares.
    write_rotation: usize,
}

/// The IDA-backed shared memory.
#[derive(Debug, Clone)]
pub struct SchusterStore {
    code: IdaCode,
    vars: usize,
    vars_per_block: usize,
    modules: usize,
    module_stride: usize,
    blocks: Vec<Block>,
    total_stats: IdaAccessStats,
    /// Workspace backing the convenience (`read`/`write`) entry points.
    /// The flat data plane threads its own via [`Self::read_in`] /
    /// [`Self::write_in`]; this one stays untouched there.
    scratch: Option<Box<IdaWorkspace>>,
}

impl SchusterStore {
    /// A store for `vars` variables across `modules` modules with a
    /// `b`-of-`d` code. `b` must be a multiple of 4 (4 symbols per word)
    /// and `d ≤ modules` (shares of one block must live in distinct
    /// modules); `d + b` must be even so the quorum size is integral.
    pub fn new(vars: usize, modules: usize, b: usize, d: usize) -> Self {
        assert!(
            b >= 4 && b.is_multiple_of(4),
            "b must be a positive multiple of 4"
        );
        assert!(
            (d + b).is_multiple_of(2),
            "d + b must be even for integral quorums"
        );
        assert!(
            d <= modules,
            "a block's {d} shares need distinct modules, only {modules} exist"
        );
        let code = IdaCode::new(b, d);
        let vars_per_block = b / 4;
        let nblocks = vars.div_ceil(vars_per_block);
        // All-zero data encodes to all-zero shares (linearity), version 0.
        let blocks = (0..nblocks)
            .map(|_| Block {
                shares: vec![(galois::Gf16::ZERO, 0); d],
                write_rotation: 0,
            })
            .collect();
        let module_stride = (modules / d).max(1);
        SchusterStore {
            code,
            vars,
            vars_per_block,
            modules,
            module_stride,
            blocks,
            total_stats: IdaAccessStats::default(),
            scratch: None,
        }
    }

    /// Precompute every decode matrix a healthy (fault-free) store can
    /// need into `ws`'s cache, so steady-state traffic never pays a cold
    /// inversion — not even on a write-rotation offset it has yet to
    /// meet. A healthy access touches shares `0..q`; the newest-version
    /// shares within that quorum are the last write's rotated window
    /// `[s, s+q) mod d` (or every touched share on a never-written
    /// block), so the decode sets are exactly: the first `b` of `0..q`,
    /// and for each rotation `s` the first `b` of `[0, q) ∩ [s, s+q)`.
    /// That is at most `d + 1` inversions, once per workspace.
    ///
    /// Post-fault quorums shift to surviving shares and are cached on
    /// first encounter instead.
    pub fn prewarm_decode(&self, ws: &mut IdaWorkspace) {
        let d = self.code.d();
        let b = self.code.b();
        let q = self.quorum();
        let mut idx: Vec<usize> = Vec::with_capacity(b);
        // Never-written block: every touched share is at version 0.
        idx.extend(0..b);
        self.code.warm_decode(&idx, &mut ws.cache);
        for s in 0..d {
            idx.clear();
            for i in 0..q {
                // Is touched share i inside the window [s, s+q) mod d?
                if (i + d - s) % d < q {
                    idx.push(i);
                    if idx.len() == b {
                        break;
                    }
                }
            }
            debug_assert_eq!(idx.len(), b, "quorum intersection holds b shares");
            self.code.warm_decode(&idx, &mut ws.cache);
        }
    }

    /// Number of variables.
    pub fn size(&self) -> usize {
        self.vars
    }

    /// Quorum size `(d+b)/2`.
    pub fn quorum(&self) -> usize {
        (self.code.d() + self.code.b()) / 2
    }

    /// Shares per block `d`.
    pub fn shares(&self) -> usize {
        self.code.d()
    }

    /// Variables stored per block (`b/4`).
    pub fn vars_per_block(&self) -> usize {
        self.vars_per_block
    }

    /// Storage blowup `d/b`.
    pub fn blowup(&self) -> f64 {
        self.code.blowup()
    }

    /// Cumulative access statistics.
    pub fn total_stats(&self) -> IdaAccessStats {
        self.total_stats
    }

    /// The module holding share `i` of block `blk`.
    pub fn module_of_share(&self, blk: usize, i: usize) -> usize {
        share_module(blk, i, self.module_stride, self.modules)
    }

    fn locate(&self, v: usize) -> (usize, usize) {
        assert!(v < self.vars, "variable {v} out of range");
        (v / self.vars_per_block, v % self.vars_per_block)
    }

    /// Recover a block's current data from a quorum of its shares,
    /// excluding any modules flagged in `unavailable` (an empty slice
    /// means every module is up). On success the data symbols are left in
    /// `ws.data` and `(newest_version, stats)` is returned; `None` if no
    /// quorum is reachable. Allocation-free once `ws` is warm.
    fn recover_into(
        &self,
        blk: usize,
        unavailable: &[bool],
        ws: &mut IdaWorkspace,
    ) -> Option<(u64, IdaAccessStats)> {
        let d = self.code.d();
        let q = self.quorum();
        let block = &self.blocks[blk];
        // Touch the first q available shares (deterministic order).
        ws.touched.clear();
        for i in 0..d {
            if !unavailable
                .get(self.module_of_share(blk, i))
                .copied()
                .unwrap_or(false)
            {
                ws.touched.push(i);
                if ws.touched.len() == q {
                    break;
                }
            }
        }
        if ws.touched.len() < q {
            return None; // too many modules down: no quorum
        }
        let newest = ws.touched.iter().map(|&i| block.shares[i].1).max().unwrap();
        ws.current.clear();
        ws.current.extend(
            ws.touched
                .iter()
                .filter(|&&i| block.shares[i].1 == newest)
                .map(|&i| (i, block.shares[i].0)),
        );
        debug_assert!(
            ws.current.len() >= self.code.b(),
            "quorum intersection must contain b current shares"
        );
        if !self
            .code
            .decode_into(&ws.current, &mut ws.cache, &mut ws.data)
        {
            return None;
        }
        let stats = IdaAccessStats {
            shares_touched: q as u64,
            modules_touched: q as u64,
            field_ops: (self.code.b() * self.code.b()) as u64, // decode matrix-vector
        };
        Some((newest, stats))
    }

    /// Read variable `v` (convenience; uses the store's own workspace).
    pub fn read(&mut self, v: usize) -> (i64, IdaAccessStats) {
        self.read_with_unavailable(v, &[])
            .expect("all modules available")
    }

    /// Read with some modules unavailable (fault injection), through the
    /// store's own workspace: `None` when no quorum survives.
    pub fn read_with_unavailable(
        &mut self,
        v: usize,
        unavailable: &[bool],
    ) -> Option<(i64, IdaAccessStats)> {
        let mut ws = self.scratch.take().unwrap_or_default();
        let r = self.read_in(v, unavailable, &mut ws);
        self.scratch = Some(ws);
        r
    }

    /// Read variable `v` over a caller-owned workspace — the flat data
    /// plane's entry point. `unavailable[j]` excludes module `j` from the
    /// quorum (an empty slice means every module is up); `None` when no
    /// quorum survives.
    // lint: hot
    pub fn read_in(
        &mut self,
        v: usize,
        unavailable: &[bool],
        ws: &mut IdaWorkspace,
    ) -> Option<(i64, IdaAccessStats)> {
        let (blk, off) = self.locate(v);
        let (_ver, stats) = self.recover_into(blk, unavailable, ws)?;
        self.total_stats.add(stats);
        Some((symbols_to_word(&ws.data[off * 4..off * 4 + 4]), stats))
    }

    /// Write variable `v` (convenience; uses the store's own workspace).
    pub fn write(&mut self, v: usize, value: i64) -> IdaAccessStats {
        self.write_with_unavailable(v, value, &[])
            .expect("all modules available")
    }

    /// Write with some modules unavailable, through the store's own
    /// workspace; `None` when no quorum survives.
    pub fn write_with_unavailable(
        &mut self,
        v: usize,
        value: i64,
        unavailable: &[bool],
    ) -> Option<IdaAccessStats> {
        let mut ws = self.scratch.take().unwrap_or_default();
        let r = self.write_in(v, value, unavailable, &mut ws);
        self.scratch = Some(ws);
        r
    }

    /// Write variable `v` over a caller-owned workspace — the flat data
    /// plane's entry point; `None` when no quorum survives.
    // lint: hot
    pub fn write_in(
        &mut self,
        v: usize,
        value: i64,
        unavailable: &[bool],
        ws: &mut IdaWorkspace,
    ) -> Option<IdaAccessStats> {
        let (blk, off) = self.locate(v);
        let (ver, mut stats) = self.recover_into(blk, unavailable, ws)?;
        ws.data[off * 4..off * 4 + 4].copy_from_slice(&word_to_symbols(value));
        self.code.encode_into(&ws.data, &mut ws.enc);
        stats.field_ops += (self.code.d() * self.code.b()) as u64;
        // Write a quorum of shares at version+1, starting at a rotating
        // offset so staleness spreads across share indices.
        let d = self.code.d();
        let q = self.quorum();
        // Locals: `module_of_share` needs `&self`, which the `&mut`
        // block borrow below forbids — `share_module` is the shared
        // formula both paths go through.
        let (stride, modules) = (self.module_stride, self.modules);
        let block = &mut self.blocks[blk];
        let start = block.write_rotation;
        block.write_rotation = (block.write_rotation + 1) % d;
        let mut written = 0;
        for k in 0..d {
            let i = (start + k) % d;
            let module = share_module(blk, i, stride, modules);
            if unavailable.get(module).copied().unwrap_or(false) {
                continue;
            }
            block.shares[i] = (ws.enc[i], ver + 1);
            written += 1;
            if written == q {
                break;
            }
        }
        if written < q {
            return None;
        }
        stats.shares_touched += q as u64;
        stats.modules_touched += q as u64;
        self.total_stats.add(stats);
        Some(stats)
    }
}

/// Share placement — the one formula mapping `(block, share_index)` to a
/// module. `SchusterStore::module_of_share` and the write path (which
/// cannot call it through `&self` while holding the block `&mut`) both
/// route through here, so reads and writes cannot drift apart.
#[inline]
fn share_module(blk: usize, i: usize, stride: usize, modules: usize) -> usize {
    (blk + i * stride) % modules
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rng_from_seed, Rng};

    fn store() -> SchusterStore {
        // b=8 (2 vars/block), d=12, 32 modules.
        SchusterStore::new(64, 32, 8, 12)
    }

    #[test]
    fn fresh_store_reads_zero() {
        let mut s = store();
        for v in [0usize, 1, 17, 63] {
            assert_eq!(s.read(v).0, 0);
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = store();
        s.write(5, 123456789);
        s.write(4, -42); // same block as 5
        assert_eq!(s.read(5).0, 123456789);
        assert_eq!(s.read(4).0, -42);
        assert_eq!(s.read(6).0, 0); // different block untouched
    }

    #[test]
    fn repeated_writes_latest_wins() {
        let mut s = store();
        for i in 0..40 {
            s.write(9, i * 1000);
            assert_eq!(s.read(9).0, i * 1000, "iteration {i}");
        }
    }

    #[test]
    fn quorum_cost_is_d_plus_b_ish() {
        let mut s = store();
        let (_, rstats) = s.read(0);
        assert_eq!(rstats.shares_touched, 10); // (12+8)/2
        let wstats = s.write(0, 1);
        // write = recover quorum + write quorum
        assert_eq!(wstats.shares_touched, 20);
    }

    #[test]
    fn blowup_is_constant() {
        let s = store();
        assert!((s.blowup() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn survives_module_failures_up_to_margin() {
        let mut s = store();
        s.write(10, 777);
        // (d - q) = 2 modules may die with a quorum still guaranteed.
        let mut dead = vec![false; 32];
        // Kill the first two modules of variable 10's block.
        let blk = 10 / 2;
        dead[s.module_of_share(blk, 0)] = true;
        dead[s.module_of_share(blk, 1)] = true;
        let got = s.read_with_unavailable(10, &dead).expect("quorum survives");
        assert_eq!(got.0, 777);
    }

    #[test]
    fn too_many_failures_lose_quorum() {
        let mut s = store();
        s.write(10, 777);
        let blk = 10 / 2;
        let mut dead = vec![false; 32];
        for i in 0..3 {
            // d - q + 1 = 3 failures: quorum impossible.
            dead[s.module_of_share(blk, i)] = true;
        }
        assert!(s.read_with_unavailable(10, &dead).is_none());
    }

    #[test]
    fn randomized_against_reference() {
        let mut s = SchusterStore::new(128, 64, 8, 12);
        let mut reference = vec![0i64; 128];
        let mut rng = rng_from_seed(99);
        for _ in 0..500 {
            let v = rng.index(128);
            if rng.chance(0.5) {
                let val = rng.next_u64() as i64;
                s.write(v, val);
                reference[v] = val;
            } else {
                assert_eq!(s.read(v).0, reference[v]);
            }
        }
    }

    #[test]
    fn distinct_modules_per_block() {
        let s = SchusterStore::new(64, 32, 8, 12);
        for blk in 0..32 {
            let mods: std::collections::HashSet<usize> =
                (0..12).map(|i| s.module_of_share(blk, i)).collect();
            assert_eq!(mods.len(), 12, "block {blk} shares collide in a module");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn bad_b_rejected() {
        let _ = SchusterStore::new(16, 16, 6, 10);
    }

    #[test]
    fn workspace_path_equals_convenience_path() {
        let mut a = store();
        let mut b = store();
        let mut ws = IdaWorkspace::new();
        b.prewarm_decode(&mut ws);
        let mut rng = rng_from_seed(0x1DA);
        for _ in 0..300 {
            let v = rng.index(64);
            if rng.chance(0.5) {
                let val = rng.next_u64() as i64;
                assert_eq!(a.write(v, val), b.write_in(v, val, &[], &mut ws).unwrap());
            } else {
                assert_eq!(a.read(v), b.read_in(v, &[], &mut ws).unwrap());
            }
        }
        assert_eq!(a.total_stats(), b.total_stats());
    }

    #[test]
    fn prewarm_covers_all_healthy_decode_sets() {
        // After prewarm, fault-free traffic — across every write-rotation
        // offset — never misses the decode-matrix cache again.
        let mut s = store();
        let mut ws = IdaWorkspace::new();
        s.prewarm_decode(&mut ws);
        let (sets, _, warm_misses) = ws.cache_stats();
        assert!(sets >= 2, "prewarm cached the healthy decode sets");
        let mut rng = rng_from_seed(0x1DB);
        // > d writes per block so the rotation wraps.
        for step in 0..600 {
            let v = rng.index(64);
            if rng.chance(0.6) {
                s.write_in(v, step as i64, &[], &mut ws).unwrap();
            } else {
                s.read_in(v, &[], &mut ws).unwrap();
            }
        }
        let (_, hits, misses) = ws.cache_stats();
        assert_eq!(misses, warm_misses, "healthy traffic never inverts");
        assert!(hits > 0);
    }

    #[test]
    fn faulted_quorums_cache_on_first_encounter() {
        let mut s = store();
        let mut ws = IdaWorkspace::new();
        s.prewarm_decode(&mut ws);
        s.write_in(10, 777, &[], &mut ws).unwrap();
        let blk = 10 / 2;
        let mut dead = vec![false; 32];
        dead[s.module_of_share(blk, 0)] = true;
        dead[s.module_of_share(blk, 1)] = true;
        let got = s.read_in(10, &dead, &mut ws).expect("quorum survives");
        assert_eq!(got.0, 777);
        let (_, _, misses) = ws.cache_stats();
        // The shifted quorum was new once...
        s.read_in(10, &dead, &mut ws).unwrap();
        let (_, _, misses2) = ws.cache_stats();
        assert_eq!(misses2, misses, "...and cached thereafter");
    }
}
