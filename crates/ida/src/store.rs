//! Schuster's IDA-backed shared memory.
//!
//! The `m` variables are grouped into blocks of `b/4` variables (each
//! variable is four GF(2¹⁶) symbols), every block is recoded into `d`
//! shares, and share `i` of a block lives in a distinct memory module.
//! Accesses use quorums of `w = (d+b)/2` shares with version stamps:
//!
//! * **write**: read a quorum, recover the block at its newest version,
//!   modify the variable, re-encode, and write the new shares (with version
//!   + 1) to a quorum;
//! * **read**: read a quorum; two quorums intersect in
//!   `2·(d+b)/2 − d = b` shares, so at least `b` of the touched shares
//!   carry the newest version — exactly enough to decode.
//!
//! Storage blowup is `d/b` (constant); work per access is `Θ(d)` share
//! touches, i.e. `Θ(log n)` — the trade-off the paper points out.

use crate::codec::{symbols_to_word, word_to_symbols, DecodeCache, IdaCode};

/// Reusable scratch threaded through the store's read/write path — the
/// IDA analogue of `cr-core`'s `ProtocolWorkspace`. Owned by the caller
/// (one per scheme/session), it carries the decode-matrix cache and every
/// buffer an access touches, so a warm store performs **zero heap
/// allocations per access** (asserted by `tests/alloc_steady_state.rs`).
#[derive(Debug, Clone, Default)]
pub struct IdaWorkspace {
    /// Decode matrices keyed by share-index set (see [`DecodeCache`]).
    cache: DecodeCache,
    /// Share indices the quorum touched, in deterministic probe order.
    touched: Vec<usize>,
    /// The touched shares carrying the newest version.
    current: Vec<(usize, galois::Gf16)>,
    /// Decoded block data (then mutated in place by writes).
    data: Vec<galois::Gf16>,
    /// Re-encoded shares (write path).
    enc: Vec<galois::Gf16>,
}

impl IdaWorkspace {
    /// An empty workspace; buffers grow to steady-state capacity over the
    /// first access and are reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decode-matrix cache statistics `(cached_sets, hits, misses)` —
    /// E15/E16 diagnostics and test hooks.
    pub fn cache_stats(&self) -> (usize, u64, u64) {
        (self.cache.len(), self.cache.hits(), self.cache.misses())
    }

    /// Share indices the most recent access's quorum touched, in
    /// deterministic probe order. The congestion accounting above the
    /// store reads this instead of re-deriving the quorum — the store
    /// already walked it. A failed access (no quorum) leaves the shares
    /// it probed before giving up, which is exactly what a lost access
    /// is charged for.
    pub fn touched(&self) -> &[usize] {
        &self.touched
    }
}

/// Cost of one access, for the E8 experiment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdaAccessStats {
    /// Shares read or written.
    pub shares_touched: u64,
    /// Distinct memory modules contacted.
    pub modules_touched: u64,
    /// Field operations spent encoding/decoding (symbol multiplies).
    pub field_ops: u64,
}

impl IdaAccessStats {
    fn add(&mut self, other: IdaAccessStats) {
        self.shares_touched += other.shares_touched;
        self.modules_touched += other.modules_touched;
        self.field_ops += other.field_ops;
    }
}

/// One dispersed block: `d` shares, values and version stamps kept in
/// separate arrays so the hot version scan (find the newest stamp in a
/// quorum) walks a dense `u64` slice instead of striding over pairs.
#[derive(Debug, Clone)]
struct Block {
    vals: Vec<galois::Gf16>,
    vers: Vec<u64>,
    /// Rotation offset so successive writes hit different stale shares.
    write_rotation: usize,
    /// Plaintext mirror: the block's data as of version [`Self::data_ver`]
    /// (writes record what they encoded; all-zero at version 0 matches the
    /// all-zero shares). When a quorum's newest version equals `data_ver`
    /// *and* carries enough current shares to decode, the decode's result
    /// is already known bit-for-bit — shares at version `v` are exactly
    /// `enc(data_v)` and the code is lossless — so the hot path serves
    /// from the mirror instead of running the matrix product. Stale or
    /// ahead-of-quorum mirrors (possible only under faults) fail the
    /// version check and fall back to a real decode, preserving fault
    /// semantics exactly.
    data: Vec<galois::Gf16>,
    /// Version the mirror reflects.
    data_ver: u64,
}

/// The IDA-backed shared memory.
#[derive(Debug, Clone)]
pub struct SchusterStore {
    code: IdaCode,
    vars: usize,
    vars_per_block: usize,
    /// `⌊2³² / vars_per_block⌋` — `locate`'s division runs as a multiply
    /// plus one fixup (the divisor is a runtime value the compiler can't
    /// strength-reduce, and `locate` runs once per access).
    vpb_recip: u64,
    modules: usize,
    module_stride: usize,
    blocks: Vec<Block>,
    total_stats: IdaAccessStats,
    /// Workspace backing the convenience (`read`/`write`) entry points.
    /// The flat data plane threads its own via [`Self::read_in`] /
    /// [`Self::write_in`]; this one stays untouched there.
    scratch: Option<Box<IdaWorkspace>>,
}

impl SchusterStore {
    /// A store for `vars` variables across `modules` modules with a
    /// `b`-of-`d` code. `b` must be a multiple of 4 (4 symbols per word)
    /// and `d ≤ modules` (shares of one block must live in distinct
    /// modules); `d + b` must be even so the quorum size is integral.
    pub fn new(vars: usize, modules: usize, b: usize, d: usize) -> Self {
        assert!(
            b >= 4 && b.is_multiple_of(4),
            "b must be a positive multiple of 4"
        );
        assert!(
            (d + b).is_multiple_of(2),
            "d + b must be even for integral quorums"
        );
        assert!(
            d <= modules,
            "a block's {d} shares need distinct modules, only {modules} exist"
        );
        assert!(
            vars <= u32::MAX as usize,
            "locate's reciprocal needs v < 2^32"
        );
        let code = IdaCode::new(b, d);
        let vars_per_block = b / 4;
        let nblocks = vars.div_ceil(vars_per_block);
        // All-zero data encodes to all-zero shares (linearity), version 0.
        let blocks = (0..nblocks)
            .map(|_| Block {
                vals: vec![galois::Gf16::ZERO; d],
                vers: vec![0; d],
                write_rotation: 0,
                data: vec![galois::Gf16::ZERO; b],
                data_ver: 0,
            })
            .collect();
        let module_stride = (modules / d).max(1);
        SchusterStore {
            code,
            vars,
            vars_per_block,
            vpb_recip: (1u64 << 32) / vars_per_block as u64,
            modules,
            module_stride,
            blocks,
            total_stats: IdaAccessStats::default(),
            scratch: None,
        }
    }

    /// Precompute every decode matrix a healthy (fault-free) store can
    /// need into `ws`'s cache, so steady-state traffic never pays a cold
    /// inversion — not even on a write-rotation offset it has yet to
    /// meet. A healthy access touches shares `0..q`; the newest-version
    /// shares within that quorum are the last write's rotated window
    /// `[s, s+q) mod d` (or every touched share on a never-written
    /// block), so the decode sets are exactly: the first `b` of `0..q`,
    /// and for each rotation `s` the first `b` of `[0, q) ∩ [s, s+q)`.
    /// That is at most `d + 1` inversions, once per workspace.
    ///
    /// Post-fault quorums shift to surviving shares and are cached on
    /// first encounter instead.
    pub fn prewarm_decode(&self, ws: &mut IdaWorkspace) {
        let d = self.code.d();
        let b = self.code.b();
        let q = self.quorum();
        let mut idx: Vec<usize> = Vec::with_capacity(b);
        // Never-written block: every touched share is at version 0.
        idx.extend(0..b);
        self.code.warm_decode(&idx, &mut ws.cache);
        for s in 0..d {
            idx.clear();
            for i in 0..q {
                // Is touched share i inside the window [s, s+q) mod d?
                if (i + d - s) % d < q {
                    idx.push(i);
                    if idx.len() == b {
                        break;
                    }
                }
            }
            debug_assert_eq!(idx.len(), b, "quorum intersection holds b shares");
            self.code.warm_decode(&idx, &mut ws.cache);
        }
    }

    /// Number of variables.
    pub fn size(&self) -> usize {
        self.vars
    }

    /// Quorum size `(d+b)/2`.
    pub fn quorum(&self) -> usize {
        (self.code.d() + self.code.b()) / 2
    }

    /// Shares per block `d`.
    pub fn shares(&self) -> usize {
        self.code.d()
    }

    /// Variables stored per block (`b/4`).
    pub fn vars_per_block(&self) -> usize {
        self.vars_per_block
    }

    /// Storage blowup `d/b`.
    pub fn blowup(&self) -> f64 {
        self.code.blowup()
    }

    /// Cumulative access statistics.
    pub fn total_stats(&self) -> IdaAccessStats {
        self.total_stats
    }

    /// The module holding share `i` of block `blk`.
    pub fn module_of_share(&self, blk: usize, i: usize) -> usize {
        share_module(blk, i, self.module_stride, self.modules)
    }

    // lint: hot
    #[inline]
    fn locate(&self, v: usize) -> (usize, usize) {
        assert!(v < self.vars, "variable {v} out of range");
        // Reciprocal multiply: the estimate is `⌊v/vpb⌋` or one less
        // (error < v/2³² < 1), so a single fixup makes it exact.
        let mut blk = ((v as u64 * self.vpb_recip) >> 32) as usize;
        let mut off = v - blk * self.vars_per_block;
        if off >= self.vars_per_block {
            blk += 1;
            off -= self.vars_per_block;
        }
        debug_assert_eq!(
            (blk, off),
            (v / self.vars_per_block, v % self.vars_per_block)
        );
        (blk, off)
    }

    /// Gather a quorum of block `blk`'s shares into `ws.touched`,
    /// excluding any modules flagged in `unavailable` (an empty slice
    /// means every module is up — the fast path, which skips all
    /// share→module arithmetic because the first `q` shares are the
    /// quorum by construction). Returns `(newest version stamp, number
    /// of touched shares at that version)`, or `None` if no quorum is
    /// reachable. The share *values* are not copied out here — the
    /// mirror fast path never needs them; a decode fetches them with
    /// [`Self::fill_current`]. Allocation-free once `ws` is warm.
    // lint: hot
    fn gather_quorum(
        &self,
        blk: usize,
        unavailable: &[bool],
        ws: &mut IdaWorkspace,
    ) -> Option<(u64, usize)> {
        let d = self.code.d();
        let q = self.quorum();
        let block = &self.blocks[blk];
        // Touch the first q available shares (deterministic order).
        ws.touched.clear();
        if unavailable.is_empty() {
            ws.touched.extend(0..q);
        } else {
            for i in 0..d {
                if !unavailable
                    .get(self.module_of_share(blk, i))
                    .copied()
                    .unwrap_or(false)
                {
                    ws.touched.push(i);
                    if ws.touched.len() == q {
                        break;
                    }
                }
            }
            if ws.touched.len() < q {
                return None; // too many modules down: no quorum
            }
        }
        let mut newest = 0u64;
        let mut n_current = 0usize;
        for &i in &ws.touched {
            let v = block.vers[i];
            if v > newest {
                newest = v;
                n_current = 1;
            } else if v == newest {
                n_current += 1;
            }
        }
        debug_assert!(
            n_current >= self.code.b(),
            "quorum intersection must contain b current shares"
        );
        Some((newest, n_current))
    }

    /// Copy the touched shares carrying `newest` into `ws.current` — the
    /// decode path's input, split out of [`Self::gather_quorum`] so the
    /// mirror fast path skips the copies.
    // lint: hot
    fn fill_current(&self, blk: usize, newest: u64, ws: &mut IdaWorkspace) {
        let block = &self.blocks[blk];
        ws.current.clear();
        ws.current.extend(
            ws.touched
                .iter()
                .filter(|&&i| block.vers[i] == newest)
                .map(|&i| (i, block.vals[i])),
        );
    }

    /// Per-quorum access cost for the E8 cost model. The read path's
    /// partial decode computes only 4 of the `b` output symbols, but the
    /// model keeps charging the full `b × b` product — the counters are
    /// a deterministic output surface and describe the *scheme*, not the
    /// kernel shortcut.
    fn quorum_stats(&self) -> IdaAccessStats {
        let q = self.quorum() as u64;
        IdaAccessStats {
            shares_touched: q,
            modules_touched: q,
            field_ops: (self.code.b() * self.code.b()) as u64, // decode matrix-vector
        }
    }

    /// Read variable `v` (convenience; uses the store's own workspace).
    pub fn read(&mut self, v: usize) -> (i64, IdaAccessStats) {
        self.read_with_unavailable(v, &[])
            .expect("all modules available")
    }

    /// Read with some modules unavailable (fault injection), through the
    /// store's own workspace: `None` when no quorum survives.
    pub fn read_with_unavailable(
        &mut self,
        v: usize,
        unavailable: &[bool],
    ) -> Option<(i64, IdaAccessStats)> {
        let mut ws = self.scratch.take().unwrap_or_default();
        let r = self.read_in(v, unavailable, &mut ws);
        self.scratch = Some(ws);
        r
    }

    /// Read variable `v` over a caller-owned workspace — the flat data
    /// plane's entry point. `unavailable[j]` excludes module `j` from the
    /// quorum (an empty slice means every module is up); `None` when no
    /// quorum survives.
    // lint: hot
    pub fn read_in(
        &mut self,
        v: usize,
        unavailable: &[bool],
        ws: &mut IdaWorkspace,
    ) -> Option<(i64, IdaAccessStats)> {
        let (blk, off) = self.locate(v);
        let (newest, n_current) = self.gather_quorum(blk, unavailable, ws)?;
        let block = &self.blocks[blk];
        let word = if block.data_ver == newest && n_current >= self.code.b() {
            // The plaintext mirror is at the quorum's version and the
            // quorum could decode (≥ b current shares): the decode's
            // output is the mirror, bit-for-bit. Serve it directly.
            symbols_to_word(&block.data[off * 4..off * 4 + 4])
        } else {
            // A read needs one variable = 4 symbols: decode just those
            // rows.
            self.fill_current(blk, newest, ws);
            let mut w = [galois::Gf16::ZERO; 4];
            if !self
                .code
                .decode_rows_into(&ws.current, &mut ws.cache, off * 4, &mut w)
            {
                return None;
            }
            symbols_to_word(&w)
        };
        let stats = self.quorum_stats();
        self.total_stats.add(stats);
        Some((word, stats))
    }

    /// Write variable `v` (convenience; uses the store's own workspace).
    pub fn write(&mut self, v: usize, value: i64) -> IdaAccessStats {
        self.write_with_unavailable(v, value, &[])
            .expect("all modules available")
    }

    /// Write with some modules unavailable, through the store's own
    /// workspace; `None` when no quorum survives.
    pub fn write_with_unavailable(
        &mut self,
        v: usize,
        value: i64,
        unavailable: &[bool],
    ) -> Option<IdaAccessStats> {
        let mut ws = self.scratch.take().unwrap_or_default();
        let r = self.write_in(v, value, unavailable, &mut ws);
        self.scratch = Some(ws);
        r
    }

    /// Write variable `v` over a caller-owned workspace — the flat data
    /// plane's entry point; `None` when no quorum survives.
    // lint: hot
    pub fn write_in(
        &mut self,
        v: usize,
        value: i64,
        unavailable: &[bool],
        ws: &mut IdaWorkspace,
    ) -> Option<IdaAccessStats> {
        let (blk, off) = self.locate(v);
        let (ver, n_current) = self.gather_quorum(blk, unavailable, ws)?;
        // A write re-encodes the whole block: recover its data, from the
        // plaintext mirror when it matches the quorum's version (and the
        // quorum could decode — same condition under which the decode
        // below succeeds), via the full decode otherwise.
        if self.blocks[blk].data_ver == ver && n_current >= self.code.b() {
            ws.data.clear();
            ws.data.extend_from_slice(&self.blocks[blk].data);
        } else {
            self.fill_current(blk, ver, ws);
            if !self
                .code
                .decode_into(&ws.current, &mut ws.cache, &mut ws.data)
            {
                return None;
            }
        }
        let mut stats = self.quorum_stats();
        ws.data[off * 4..off * 4 + 4].copy_from_slice(&word_to_symbols(value));
        self.code.encode_into(&ws.data, &mut ws.enc);
        stats.field_ops += (self.code.d() * self.code.b()) as u64;
        // Write a quorum of shares at version+1, starting at a rotating
        // offset so staleness spreads across share indices.
        let d = self.code.d();
        let q = self.quorum();
        // Locals: `module_of_share` needs `&self`, which the `&mut`
        // block borrow below forbids — `share_module` is the shared
        // formula both paths go through.
        let (stride, modules) = (self.module_stride, self.modules);
        let block = &mut self.blocks[blk];
        let start = block.write_rotation;
        block.write_rotation = if block.write_rotation + 1 == d {
            0
        } else {
            block.write_rotation + 1
        };
        if unavailable.is_empty() {
            // Fast path: every module is up, so the rotated window
            // [start, start+q) is written as-is — no module arithmetic.
            for k in 0..q {
                let i = if start + k >= d {
                    start + k - d
                } else {
                    start + k
                };
                block.vals[i] = ws.enc[i];
                block.vers[i] = ver + 1;
            }
        } else {
            let mut written = 0;
            for k in 0..d {
                let i = if start + k >= d {
                    start + k - d
                } else {
                    start + k
                };
                let module = share_module(blk, i, stride, modules);
                if unavailable.get(module).copied().unwrap_or(false) {
                    continue;
                }
                block.vals[i] = ws.enc[i];
                block.vers[i] = ver + 1;
                written += 1;
                if written == q {
                    break;
                }
            }
            if written < q {
                return None;
            }
        }
        // Record what this version's shares encode (a failed write above
        // leaves the mirror at its old version, so a later quorum that
        // still resolves to the old version keeps matching it).
        block.data.copy_from_slice(&ws.data);
        block.data_ver = ver + 1;
        stats.shares_touched += q as u64;
        stats.modules_touched += q as u64;
        self.total_stats.add(stats);
        Some(stats)
    }
}

/// Share placement — the one formula mapping `(block, share_index)` to a
/// module. `SchusterStore::module_of_share` and the write path (which
/// cannot call it through `&self` while holding the block `&mut`) both
/// route through here, so reads and writes cannot drift apart.
#[inline]
fn share_module(blk: usize, i: usize, stride: usize, modules: usize) -> usize {
    (blk + i * stride) % modules
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rng_from_seed, Rng};

    fn store() -> SchusterStore {
        // b=8 (2 vars/block), d=12, 32 modules.
        SchusterStore::new(64, 32, 8, 12)
    }

    #[test]
    fn fresh_store_reads_zero() {
        let mut s = store();
        for v in [0usize, 1, 17, 63] {
            assert_eq!(s.read(v).0, 0);
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let mut s = store();
        s.write(5, 123456789);
        s.write(4, -42); // same block as 5
        assert_eq!(s.read(5).0, 123456789);
        assert_eq!(s.read(4).0, -42);
        assert_eq!(s.read(6).0, 0); // different block untouched
    }

    #[test]
    fn repeated_writes_latest_wins() {
        let mut s = store();
        for i in 0..40 {
            s.write(9, i * 1000);
            assert_eq!(s.read(9).0, i * 1000, "iteration {i}");
        }
    }

    #[test]
    fn quorum_cost_is_d_plus_b_ish() {
        let mut s = store();
        let (_, rstats) = s.read(0);
        assert_eq!(rstats.shares_touched, 10); // (12+8)/2
        let wstats = s.write(0, 1);
        // write = recover quorum + write quorum
        assert_eq!(wstats.shares_touched, 20);
    }

    #[test]
    fn blowup_is_constant() {
        let s = store();
        assert!((s.blowup() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn survives_module_failures_up_to_margin() {
        let mut s = store();
        s.write(10, 777);
        // (d - q) = 2 modules may die with a quorum still guaranteed.
        let mut dead = vec![false; 32];
        // Kill the first two modules of variable 10's block.
        let blk = 10 / 2;
        dead[s.module_of_share(blk, 0)] = true;
        dead[s.module_of_share(blk, 1)] = true;
        let got = s.read_with_unavailable(10, &dead).expect("quorum survives");
        assert_eq!(got.0, 777);
    }

    #[test]
    fn too_many_failures_lose_quorum() {
        let mut s = store();
        s.write(10, 777);
        let blk = 10 / 2;
        let mut dead = vec![false; 32];
        for i in 0..3 {
            // d - q + 1 = 3 failures: quorum impossible.
            dead[s.module_of_share(blk, i)] = true;
        }
        assert!(s.read_with_unavailable(10, &dead).is_none());
    }

    #[test]
    fn randomized_against_reference() {
        let mut s = SchusterStore::new(128, 64, 8, 12);
        let mut reference = vec![0i64; 128];
        let mut rng = rng_from_seed(99);
        for _ in 0..500 {
            let v = rng.index(128);
            if rng.chance(0.5) {
                let val = rng.next_u64() as i64;
                s.write(v, val);
                reference[v] = val;
            } else {
                assert_eq!(s.read(v).0, reference[v]);
            }
        }
    }

    #[test]
    fn mirror_and_decode_paths_agree_under_changing_masks() {
        // Alternate healthy and faulted phases so accesses keep crossing
        // between the plaintext-mirror fast path and the real decode
        // (stale-mirror) path; every read must match a plain reference.
        let mut s = SchusterStore::new(128, 64, 8, 12);
        let mut ws = IdaWorkspace::new();
        s.prewarm_decode(&mut ws);
        let mut reference = vec![0i64; 128];
        let mut rng = rng_from_seed(0x3148);
        let healthy = vec![false; 64];
        for round in 0..40 {
            // New mask each round: up to d - q = 2 dead modules.
            let mut dead = vec![false; 64];
            let ndead = rng.index(3);
            for m in rng.sample_distinct(64, ndead) {
                dead[m as usize] = true;
            }
            for step in 0..50 {
                let mask: &[bool] = if step % 2 == 0 { &dead } else { &healthy };
                let v = rng.index(128);
                if rng.chance(0.5) {
                    let val = rng.next_u64() as i64;
                    if s.write_in(v, val, mask, &mut ws).is_some() {
                        reference[v] = val;
                    }
                } else if let Some((got, _)) = s.read_in(v, mask, &mut ws) {
                    assert_eq!(got, reference[v], "round {round} step {step} var {v}");
                }
            }
        }
    }

    #[test]
    fn distinct_modules_per_block() {
        let s = SchusterStore::new(64, 32, 8, 12);
        for blk in 0..32 {
            let mods: std::collections::HashSet<usize> =
                (0..12).map(|i| s.module_of_share(blk, i)).collect();
            assert_eq!(mods.len(), 12, "block {blk} shares collide in a module");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of 4")]
    fn bad_b_rejected() {
        let _ = SchusterStore::new(16, 16, 6, 10);
    }

    #[test]
    fn workspace_path_equals_convenience_path() {
        let mut a = store();
        let mut b = store();
        let mut ws = IdaWorkspace::new();
        b.prewarm_decode(&mut ws);
        let mut rng = rng_from_seed(0x1DA);
        for _ in 0..300 {
            let v = rng.index(64);
            if rng.chance(0.5) {
                let val = rng.next_u64() as i64;
                assert_eq!(a.write(v, val), b.write_in(v, val, &[], &mut ws).unwrap());
            } else {
                assert_eq!(a.read(v), b.read_in(v, &[], &mut ws).unwrap());
            }
        }
        assert_eq!(a.total_stats(), b.total_stats());
    }

    #[test]
    fn prewarm_covers_all_healthy_decode_sets() {
        // After prewarm, fault-free traffic — across every write-rotation
        // offset — never misses the decode-matrix cache again.
        let mut s = store();
        let mut ws = IdaWorkspace::new();
        s.prewarm_decode(&mut ws);
        let (sets, _, warm_misses) = ws.cache_stats();
        assert!(sets >= 2, "prewarm cached the healthy decode sets");
        let mut rng = rng_from_seed(0x1DB);
        // > d writes per block so the rotation wraps.
        for step in 0..600 {
            let v = rng.index(64);
            if rng.chance(0.6) {
                s.write_in(v, step as i64, &[], &mut ws).unwrap();
            } else {
                s.read_in(v, &[], &mut ws).unwrap();
            }
        }
        let (_, hits, misses) = ws.cache_stats();
        assert_eq!(misses, warm_misses, "healthy traffic never inverts");
        assert!(hits > 0);
    }

    #[test]
    fn faulted_quorums_cache_on_first_encounter() {
        let mut s = store();
        let mut ws = IdaWorkspace::new();
        s.prewarm_decode(&mut ws);
        s.write_in(10, 777, &[], &mut ws).unwrap();
        let blk = 10 / 2;
        let mut dead = vec![false; 32];
        dead[s.module_of_share(blk, 0)] = true;
        dead[s.module_of_share(blk, 1)] = true;
        let got = s.read_in(10, &dead, &mut ws).expect("quorum survives");
        assert_eq!(got.0, 777);
        let (_, _, misses) = ws.cache_stats();
        // The shifted quorum was new once...
        s.read_in(10, &dead, &mut ws).unwrap();
        let (_, _, misses2) = ws.cache_stats();
        assert_eq!(misses2, misses, "...and cached thereafter");
    }
}
