//! The `b → d` dispersal codec (Rabin 1989), plus the decode-matrix
//! cache the flat data plane runs on.

use galois::{Gf16, Matrix, PreparedMatrix};
use simrng::DetHashMap;

/// Decode matrices cached by share-index set, with the scratch the cold
/// path inverts over.
///
/// Decoding needs the inverse of the `b × b` encode submatrix picked out
/// by the quorum's share indices. That inverse depends only on the *set*
/// of indices — not the data — and a store under a fixed unavailability
/// mask revisits a handful of sets forever (one per write-rotation
/// offset). The cache keys each inverse by the set's membership bitmask
/// and computes it at most once; steady-state decodes are a hash lookup
/// plus one `b × b` matrix–vector product, with zero allocations.
///
/// Cached inverses are stored *prepared* ([`PreparedMatrix`]): expanded
/// into nibble-product tables at insertion time, so every warm decode
/// runs the SIMD-friendly table kernel instead of scalar log/exp
/// multiplies. Preparation happens only on the (rare) cold path, never
/// per decode, and changes no result — the table product is
/// bit-identical to the scalar one (see `galois::kernels`).
///
/// Sizing: the healthy store touches at most `d + 1` distinct sets and a
/// faulted one a few more, so the table effectively never fills. The
/// [`CACHE_CAP`] clear-on-overflow bound only guards pathological
/// callers (adversarial quorum churn); eviction can never change a
/// decode result, only its cost. Share indices `≥ 128` fall back to the
/// uncached inversion path (they cannot occur with `d = Θ(log n)`).
#[derive(Debug, Clone, Default)]
pub struct DecodeCache {
    // FNV-keyed (simrng::hash): cache iteration and clear order can
    // never depend on process entropy.
    inverses: DetHashMap<u128, PreparedMatrix>,
    hits: u64,
    misses: u64,
    /// Selected encode rows (cold path input).
    sub: Matrix,
    /// Gauss–Jordan working copy.
    scratch: Matrix,
    /// Cold-path inverse before it is stored (or used directly when the
    /// index set is uncacheable).
    inv: Matrix,
    /// The quorum's first `b` `(index, value)` pairs, sorted by index
    /// (the cache's canonical quorum order).
    sel: Vec<(usize, Gf16)>,
    /// Share values of the canonicalized quorum.
    vals: Vec<Gf16>,
    /// Share indices of the canonicalized quorum.
    idx: Vec<usize>,
}

/// Cached inverses before a clear-on-overflow (see [`DecodeCache`]).
const CACHE_CAP: usize = 4096;

impl DecodeCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes served from a cached inverse.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Decodes (or warms) that had to invert.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct share-index sets currently cached.
    pub fn len(&self) -> usize {
        self.inverses.len()
    }

    /// Whether no inverse has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.inverses.is_empty()
    }

    /// Membership bitmask of an index set; `None` when an index does not
    /// fit the key (uncacheable — cold path every time).
    fn mask_of(idx: &[usize]) -> Option<u128> {
        let mut mask = 0u128;
        for &i in idx {
            if i >= 128 {
                return None;
            }
            mask |= 1u128 << i;
        }
        Some(mask)
    }

    /// Ensure the inverse for `idx` (rows of `enc`) is cached; on an
    /// uncacheable set, leave it in `self.inv`. Returns the mask key.
    fn ensure(&mut self, enc: &Matrix, idx: &[usize]) -> Option<u128> {
        let mask = Self::mask_of(idx);
        if let Some(mask) = mask {
            if self.inverses.contains_key(&mask) {
                self.hits += 1;
                return Some(mask);
            }
        }
        self.misses += 1;
        enc.select_rows_into(idx, &mut self.sub);
        let ok = self.sub.invert_into(&mut self.scratch, &mut self.inv);
        assert!(ok, "Vandermonde rows are independent");
        if let Some(mask) = mask {
            if self.inverses.len() >= CACHE_CAP {
                self.inverses.clear();
            }
            self.inverses
                .insert(mask, PreparedMatrix::from_matrix(&self.inv));
        }
        mask
    }
}

/// An information-dispersal code: `b` data symbols recoded into `d ≥ b`
/// share symbols via a `d × b` Vandermonde matrix; **any** `b` shares
/// recover the data (every `b × b` submatrix of a Vandermonde matrix with
/// distinct evaluation points is invertible).
#[derive(Debug, Clone)]
pub struct IdaCode {
    b: usize,
    d: usize,
    enc: Matrix,
    /// The encode matrix expanded into nibble tables once at
    /// construction — every encode thereafter runs the table kernel.
    prep: PreparedMatrix,
}

impl IdaCode {
    /// A `b`-of-`d` code. Requires `1 ≤ b ≤ d ≤ 65535`.
    pub fn new(b: usize, d: usize) -> Self {
        assert!(b >= 1 && b <= d && d <= 65535, "need 1 <= b <= d <= 65535");
        let enc = Matrix::vandermonde(d, b);
        let prep = PreparedMatrix::from_matrix(&enc);
        IdaCode { b, d, enc, prep }
    }

    /// Data symbols per block.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Share symbols per block.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Storage blowup `d/b` — constant by construction.
    pub fn blowup(&self) -> f64 {
        self.d as f64 / self.b as f64
    }

    /// Encode `b` data symbols into `d` shares.
    pub fn encode(&self, data: &[Gf16]) -> Vec<Gf16> {
        assert_eq!(data.len(), self.b);
        self.enc.mul_vec(data)
    }

    /// Encode into a caller-owned buffer (resized to `d` in place): the
    /// allocation-free twin of [`encode`](Self::encode).
    pub fn encode_into(&self, data: &[Gf16], out: &mut Vec<Gf16>) {
        assert_eq!(data.len(), self.b);
        out.clear();
        out.resize(self.d, Gf16::ZERO);
        self.prep.mul_vec_into(data, out);
    }

    /// Recover the data from any `≥ b` shares given as `(share_index,
    /// value)` pairs with distinct indices; the first `b` are used.
    /// Returns `None` if fewer than `b` shares are provided.
    pub fn decode(&self, shares: &[(usize, Gf16)]) -> Option<Vec<Gf16>> {
        if shares.len() < self.b {
            return None;
        }
        let idx: Vec<usize> = shares.iter().take(self.b).map(|&(i, _)| i).collect();
        debug_assert!(idx.iter().all(|&i| i < self.d), "share index out of range");
        let sub = self.enc.select_rows(&idx);
        let inv = sub.inverse().expect("Vandermonde rows are independent");
        let vals: Vec<Gf16> = shares.iter().take(self.b).map(|&(_, v)| v).collect();
        Some(inv.mul_vec(&vals))
    }

    /// [`decode`](Self::decode) over a [`DecodeCache`] and a caller-owned
    /// output buffer: identical results, but a warm decode performs no
    /// inversion and no allocation. Returns `false` if fewer than `b`
    /// shares are provided.
    ///
    /// The cache is keyed by the *set* of the first `b` share indices, so
    /// the quorum is canonicalized by sorting those `b` pairs by index
    /// before decoding. The recovered data is exactly [`decode`]'s:
    /// permuting the selected rows permutes the inverse identically
    /// (`(PS)⁻¹(Pv) = S⁻¹v`), and GF(2¹⁶) arithmetic is exact.
    pub fn decode_into(
        &self,
        shares: &[(usize, Gf16)],
        cache: &mut DecodeCache,
        out: &mut Vec<Gf16>,
    ) -> bool {
        let Some(mask) = self.prepare_quorum(shares, cache) else {
            return false;
        };
        out.clear();
        out.resize(self.b, Gf16::ZERO);
        match mask {
            Some(mask) => cache.inverses[&mask].mul_vec_into(&cache.vals, out),
            None => cache.inv.mul_vec_into(&cache.vals, out),
        }
        true
    }

    /// Decode only data symbols `row_start..row_start + out.len()` — the
    /// read path's shortcut: one variable needs 4 of the block's `b`
    /// symbols, and the prepared inverse can produce exactly those rows.
    /// Results are bit-identical to the corresponding slice of
    /// [`decode_into`]'s output; returns `false` if fewer than `b` shares
    /// are provided.
    // lint: hot
    pub fn decode_rows_into(
        &self,
        shares: &[(usize, Gf16)],
        cache: &mut DecodeCache,
        row_start: usize,
        out: &mut [Gf16],
    ) -> bool {
        assert!(row_start + out.len() <= self.b, "rows out of range");
        let Some(mask) = self.prepare_quorum(shares, cache) else {
            return false;
        };
        match mask {
            Some(mask) => cache.inverses[&mask].mul_rows_into(&cache.vals, row_start, out),
            None => {
                // Uncacheable set (share index ≥ 128): scalar partial
                // product over the freshly inverted matrix.
                for (k, o) in out.iter_mut().enumerate() {
                    let mut acc = Gf16::ZERO;
                    for (j, &v) in cache.vals.iter().enumerate() {
                        acc = acc + cache.inv[(row_start + k, j)].mul(v);
                    }
                    *o = acc;
                }
            }
        }
        true
    }

    /// Canonicalize the quorum (first `b` pairs, sorted by index) into
    /// `cache.{idx,vals}` and ensure its decode matrix exists. Returns
    /// `None` when fewer than `b` shares are provided; otherwise the
    /// cache key (`None` inside means uncacheable — inverse left in
    /// `cache.inv`).
    #[allow(clippy::option_option)] // outer: quorum viability, inner: cacheability
    fn prepare_quorum(
        &self,
        shares: &[(usize, Gf16)],
        cache: &mut DecodeCache,
    ) -> Option<Option<u128>> {
        if shares.len() < self.b {
            return None;
        }
        cache.sel.clear();
        cache.sel.extend_from_slice(&shares[..self.b]);
        cache.sel.sort_unstable_by_key(|&(i, _)| i);
        cache.idx.clear();
        cache.vals.clear();
        for &(i, v) in &cache.sel {
            debug_assert!(i < self.d, "share index out of range");
            cache.idx.push(i);
            cache.vals.push(v);
        }
        // Split the cache borrow: `ensure` mutates, then the inverse and
        // the gathered values are read side by side.
        let idx = std::mem::take(&mut cache.idx);
        let mask = cache.ensure(&self.enc, &idx);
        cache.idx = idx;
        Some(mask)
    }

    /// Precompute (and cache) the decode matrix for one share-index set —
    /// the store's construction-time warm-up, so steady-state traffic
    /// never pays a cold inversion.
    pub fn warm_decode(&self, idx: &[usize], cache: &mut DecodeCache) {
        assert_eq!(idx.len(), self.b, "a decode set has exactly b indices");
        cache.ensure(&self.enc, idx);
    }
}

/// Pack a machine word into four GF(2¹⁶) symbols (little-endian 16-bit
/// limbs).
pub fn word_to_symbols(w: i64) -> [Gf16; 4] {
    let u = w as u64;
    [
        Gf16((u & 0xFFFF) as u16),
        Gf16(((u >> 16) & 0xFFFF) as u16),
        Gf16(((u >> 32) & 0xFFFF) as u16),
        Gf16(((u >> 48) & 0xFFFF) as u16),
    ]
}

/// Inverse of [`word_to_symbols`].
pub fn symbols_to_word(s: &[Gf16]) -> i64 {
    debug_assert_eq!(s.len(), 4);
    let u = (s[0].0 as u64)
        | ((s[1].0 as u64) << 16)
        | ((s[2].0 as u64) << 32)
        | ((s[3].0 as u64) << 48);
    u as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rng_from_seed, Rng};

    #[test]
    fn roundtrip_any_b_shares() {
        let code = IdaCode::new(4, 9);
        let data: Vec<Gf16> = [11u16, 22, 33, 44].iter().map(|&x| Gf16(x)).collect();
        let shares = code.encode(&data);
        assert_eq!(shares.len(), 9);
        let mut rng = rng_from_seed(5);
        for _ in 0..30 {
            let pick = rng.sample_distinct(9, 4);
            let quorum: Vec<(usize, Gf16)> = pick
                .iter()
                .map(|&i| (i as usize, shares[i as usize]))
                .collect();
            assert_eq!(code.decode(&quorum).unwrap(), data);
        }
    }

    #[test]
    fn too_few_shares_fails() {
        let code = IdaCode::new(4, 8);
        let data = vec![Gf16(1); 4];
        let shares = code.encode(&data);
        let quorum: Vec<(usize, Gf16)> = (0..3).map(|i| (i, shares[i])).collect();
        assert!(code.decode(&quorum).is_none());
    }

    #[test]
    fn b_equals_d_is_a_permutation_code() {
        let code = IdaCode::new(3, 3);
        let data: Vec<Gf16> = [7u16, 8, 9].iter().map(|&x| Gf16(x)).collect();
        let shares = code.encode(&data);
        let quorum: Vec<(usize, Gf16)> = shares.iter().copied().enumerate().collect();
        assert_eq!(code.decode(&quorum).unwrap(), data);
        assert!((code.blowup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn corrupted_share_changes_decode() {
        // IDA is an erasure code, not an error-correcting one: a silently
        // corrupted share in the quorum yields wrong data. (The schemes use
        // version stamps, not decoding, for consistency.)
        let code = IdaCode::new(4, 8);
        let data: Vec<Gf16> = [5u16, 6, 7, 8].iter().map(|&x| Gf16(x)).collect();
        let shares = code.encode(&data);
        let mut quorum: Vec<(usize, Gf16)> = (0..4).map(|i| (i, shares[i])).collect();
        quorum[2].1 = quorum[2].1 + Gf16::ONE;
        assert_ne!(code.decode(&quorum).unwrap(), data);
    }

    #[test]
    fn word_symbol_roundtrip_extremes() {
        for w in [0i64, 1, -1, i64::MAX, i64::MIN, 0x0123_4567_89AB_CDEF] {
            assert_eq!(symbols_to_word(&word_to_symbols(w)), w);
        }
    }

    #[test]
    fn randomized_roundtrip() {
        // Random data blocks and random quorums, reproducible from the seed.
        let mut rng = rng_from_seed(0xC0DEC);
        let code = IdaCode::new(8, 12);
        for case in 0..64 {
            let data: Vec<Gf16> = (0..8).map(|_| Gf16(rng.next_u64() as u16)).collect();
            let shares = code.encode(&data);
            let pick = rng.sample_distinct(12, 8);
            let quorum: Vec<(usize, Gf16)> = pick
                .iter()
                .map(|&i| (i as usize, shares[i as usize]))
                .collect();
            assert_eq!(
                code.decode(&quorum).unwrap(),
                data,
                "case {case}, quorum {pick:?}"
            );
        }
    }

    /// Property: for random data and random quorums — including post-fault
    /// quorums drawn only from surviving share indices — `decode_into`
    /// over the cache equals the cold-path `decode`, on both the first
    /// (inverting) and every subsequent (cached) encounter of a set.
    #[test]
    fn cached_decode_matches_cold_decode_randomized() {
        let mut rng = rng_from_seed(0xCAC4E);
        let code = IdaCode::new(8, 12);
        let mut cache = DecodeCache::new();
        let mut out = Vec::new();
        for case in 0..256 {
            let data: Vec<Gf16> = (0..8).map(|_| Gf16(rng.next_u64() as u16)).collect();
            let shares = code.encode(&data);
            // Kill up to d - b = 4 share indices, then draw the quorum
            // from the survivors (the store's post-fault situation).
            let ndead = rng.index(5);
            let dead = rng.sample_distinct(12, ndead);
            let alive: Vec<usize> = (0..12).filter(|&i| !dead.contains(&(i as u64))).collect();
            let pick = rng.sample_distinct(alive.len() as u64, 8);
            let quorum: Vec<(usize, Gf16)> = pick
                .iter()
                .map(|&k| (alive[k as usize], shares[alive[k as usize]]))
                .collect();
            let cold = code.decode(&quorum).expect("b shares suffice");
            assert!(code.decode_into(&quorum, &mut cache, &mut out));
            assert_eq!(out, cold, "case {case} (cold or first cached)");
            assert_eq!(out, data, "case {case} recovers the data");
            // Second decode of the same set must come from the cache.
            let hits = cache.hits();
            assert!(code.decode_into(&quorum, &mut cache, &mut out));
            assert_eq!(out, cold, "case {case} (cache hit)");
            assert_eq!(cache.hits(), hits + 1, "case {case} hit the cache");
        }
        assert!(!cache.is_empty());
        assert!(cache.hits() >= 256, "every second decode hit the cache");
    }

    /// Property: `decode_rows_into` equals the matching slice of the full
    /// decode, for every (start, len) and for both cacheable and
    /// uncacheable quorums, healthy or post-fault.
    #[test]
    fn partial_decode_matches_full_decode() {
        let mut rng = rng_from_seed(0x9A47);
        let code = IdaCode::new(8, 12);
        let mut cache = DecodeCache::new();
        let mut full = Vec::new();
        for case in 0..64 {
            let data: Vec<Gf16> = (0..8).map(|_| Gf16(rng.next_u64() as u16)).collect();
            let shares = code.encode(&data);
            let ndead = rng.index(5);
            let dead = rng.sample_distinct(12, ndead);
            let alive: Vec<usize> = (0..12).filter(|&i| !dead.contains(&(i as u64))).collect();
            let pick = rng.sample_distinct(alive.len() as u64, 8);
            let quorum: Vec<(usize, Gf16)> = pick
                .iter()
                .map(|&k| (alive[k as usize], shares[alive[k as usize]]))
                .collect();
            assert!(code.decode_into(&quorum, &mut cache, &mut full));
            for start in 0..8 {
                for len in 0..=(8 - start) {
                    let mut part = vec![Gf16::ZERO; len];
                    assert!(code.decode_rows_into(&quorum, &mut cache, start, &mut part));
                    assert_eq!(
                        part,
                        &full[start..start + len],
                        "case {case} rows {start}+{len}"
                    );
                }
            }
        }
    }

    /// Share indices ≥ 128 don't fit the cache key: both decode entry
    /// points must still produce the data via the uncached inverse.
    #[test]
    fn uncacheable_quorum_decodes_on_both_entry_points() {
        let code = IdaCode::new(4, 130);
        let data: Vec<Gf16> = [21u16, 22, 23, 24].iter().map(|&x| Gf16(x)).collect();
        let shares = code.encode(&data);
        let idx = [0usize, 64, 128, 129];
        let quorum: Vec<(usize, Gf16)> = idx.iter().map(|&i| (i, shares[i])).collect();
        let mut cache = DecodeCache::new();
        let mut out = Vec::new();
        assert!(code.decode_into(&quorum, &mut cache, &mut out));
        assert_eq!(out, data);
        assert!(cache.is_empty(), "uncacheable sets are never stored");
        for start in 0..4 {
            for len in 0..=(4 - start) {
                let mut part = vec![Gf16::ZERO; len];
                assert!(code.decode_rows_into(&quorum, &mut cache, start, &mut part));
                assert_eq!(part, &data[start..start + len], "rows {start}+{len}");
            }
        }
    }

    #[test]
    fn warm_decode_precomputes_the_set() {
        let code = IdaCode::new(4, 9);
        let mut cache = DecodeCache::new();
        code.warm_decode(&[1, 3, 4, 7], &mut cache);
        assert_eq!(cache.len(), 1);
        let data: Vec<Gf16> = [5u16, 6, 7, 8].iter().map(|&x| Gf16(x)).collect();
        let shares = code.encode(&data);
        let quorum: Vec<(usize, Gf16)> =
            [1usize, 3, 4, 7].iter().map(|&i| (i, shares[i])).collect();
        let mut out = Vec::new();
        assert!(code.decode_into(&quorum, &mut cache, &mut out));
        assert_eq!(out, data);
        assert_eq!(cache.hits(), 1, "the warmed set is a hit");
    }

    #[test]
    fn encode_into_matches_encode() {
        let code = IdaCode::new(4, 9);
        let data: Vec<Gf16> = [11u16, 22, 33, 44].iter().map(|&x| Gf16(x)).collect();
        let mut out = Vec::new();
        code.encode_into(&data, &mut out);
        assert_eq!(out, code.encode(&data));
        // Reuse does not disturb the result.
        code.encode_into(&data, &mut out);
        assert_eq!(out, code.encode(&data));
    }

    #[test]
    fn too_few_shares_fail_decode_into() {
        let code = IdaCode::new(4, 8);
        let mut cache = DecodeCache::new();
        let mut out = vec![Gf16(9)];
        assert!(!code.decode_into(&[(0, Gf16(1))], &mut cache, &mut out));
    }

    #[test]
    fn randomized_word_roundtrip() {
        let mut rng = rng_from_seed(0x303D);
        for _ in 0..256 {
            let w = rng.next_u64() as i64;
            assert_eq!(symbols_to_word(&word_to_symbols(w)), w, "w={w}");
        }
    }
}
