//! The `b → d` dispersal codec (Rabin 1989).

use galois::{Gf16, Matrix};

/// An information-dispersal code: `b` data symbols recoded into `d ≥ b`
/// share symbols via a `d × b` Vandermonde matrix; **any** `b` shares
/// recover the data (every `b × b` submatrix of a Vandermonde matrix with
/// distinct evaluation points is invertible).
#[derive(Debug, Clone)]
pub struct IdaCode {
    b: usize,
    d: usize,
    enc: Matrix,
}

impl IdaCode {
    /// A `b`-of-`d` code. Requires `1 ≤ b ≤ d ≤ 65535`.
    pub fn new(b: usize, d: usize) -> Self {
        assert!(b >= 1 && b <= d && d <= 65535, "need 1 <= b <= d <= 65535");
        IdaCode {
            b,
            d,
            enc: Matrix::vandermonde(d, b),
        }
    }

    /// Data symbols per block.
    pub fn b(&self) -> usize {
        self.b
    }

    /// Share symbols per block.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Storage blowup `d/b` — constant by construction.
    pub fn blowup(&self) -> f64 {
        self.d as f64 / self.b as f64
    }

    /// Encode `b` data symbols into `d` shares.
    pub fn encode(&self, data: &[Gf16]) -> Vec<Gf16> {
        assert_eq!(data.len(), self.b);
        self.enc.mul_vec(data)
    }

    /// Recover the data from any `≥ b` shares given as `(share_index,
    /// value)` pairs with distinct indices; the first `b` are used.
    /// Returns `None` if fewer than `b` shares are provided.
    pub fn decode(&self, shares: &[(usize, Gf16)]) -> Option<Vec<Gf16>> {
        if shares.len() < self.b {
            return None;
        }
        let idx: Vec<usize> = shares.iter().take(self.b).map(|&(i, _)| i).collect();
        debug_assert!(idx.iter().all(|&i| i < self.d), "share index out of range");
        let sub = self.enc.select_rows(&idx);
        let inv = sub.inverse().expect("Vandermonde rows are independent");
        let vals: Vec<Gf16> = shares.iter().take(self.b).map(|&(_, v)| v).collect();
        Some(inv.mul_vec(&vals))
    }
}

/// Pack a machine word into four GF(2¹⁶) symbols (little-endian 16-bit
/// limbs).
pub fn word_to_symbols(w: i64) -> [Gf16; 4] {
    let u = w as u64;
    [
        Gf16((u & 0xFFFF) as u16),
        Gf16(((u >> 16) & 0xFFFF) as u16),
        Gf16(((u >> 32) & 0xFFFF) as u16),
        Gf16(((u >> 48) & 0xFFFF) as u16),
    ]
}

/// Inverse of [`word_to_symbols`].
pub fn symbols_to_word(s: &[Gf16]) -> i64 {
    debug_assert_eq!(s.len(), 4);
    let u = (s[0].0 as u64)
        | ((s[1].0 as u64) << 16)
        | ((s[2].0 as u64) << 32)
        | ((s[3].0 as u64) << 48);
    u as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::{rng_from_seed, Rng};

    #[test]
    fn roundtrip_any_b_shares() {
        let code = IdaCode::new(4, 9);
        let data: Vec<Gf16> = [11u16, 22, 33, 44].iter().map(|&x| Gf16(x)).collect();
        let shares = code.encode(&data);
        assert_eq!(shares.len(), 9);
        let mut rng = rng_from_seed(5);
        for _ in 0..30 {
            let pick = rng.sample_distinct(9, 4);
            let quorum: Vec<(usize, Gf16)> = pick
                .iter()
                .map(|&i| (i as usize, shares[i as usize]))
                .collect();
            assert_eq!(code.decode(&quorum).unwrap(), data);
        }
    }

    #[test]
    fn too_few_shares_fails() {
        let code = IdaCode::new(4, 8);
        let data = vec![Gf16(1); 4];
        let shares = code.encode(&data);
        let quorum: Vec<(usize, Gf16)> = (0..3).map(|i| (i, shares[i])).collect();
        assert!(code.decode(&quorum).is_none());
    }

    #[test]
    fn b_equals_d_is_a_permutation_code() {
        let code = IdaCode::new(3, 3);
        let data: Vec<Gf16> = [7u16, 8, 9].iter().map(|&x| Gf16(x)).collect();
        let shares = code.encode(&data);
        let quorum: Vec<(usize, Gf16)> = shares.iter().copied().enumerate().collect();
        assert_eq!(code.decode(&quorum).unwrap(), data);
        assert!((code.blowup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn corrupted_share_changes_decode() {
        // IDA is an erasure code, not an error-correcting one: a silently
        // corrupted share in the quorum yields wrong data. (The schemes use
        // version stamps, not decoding, for consistency.)
        let code = IdaCode::new(4, 8);
        let data: Vec<Gf16> = [5u16, 6, 7, 8].iter().map(|&x| Gf16(x)).collect();
        let shares = code.encode(&data);
        let mut quorum: Vec<(usize, Gf16)> = (0..4).map(|i| (i, shares[i])).collect();
        quorum[2].1 = quorum[2].1 + Gf16::ONE;
        assert_ne!(code.decode(&quorum).unwrap(), data);
    }

    #[test]
    fn word_symbol_roundtrip_extremes() {
        for w in [0i64, 1, -1, i64::MAX, i64::MIN, 0x0123_4567_89AB_CDEF] {
            assert_eq!(symbols_to_word(&word_to_symbols(w)), w);
        }
    }

    #[test]
    fn randomized_roundtrip() {
        // Random data blocks and random quorums, reproducible from the seed.
        let mut rng = rng_from_seed(0xC0DEC);
        let code = IdaCode::new(8, 12);
        for case in 0..64 {
            let data: Vec<Gf16> = (0..8).map(|_| Gf16(rng.next_u64() as u16)).collect();
            let shares = code.encode(&data);
            let pick = rng.sample_distinct(12, 8);
            let quorum: Vec<(usize, Gf16)> = pick
                .iter()
                .map(|&i| (i as usize, shares[i as usize]))
                .collect();
            assert_eq!(
                code.decode(&quorum).unwrap(),
                data,
                "case {case}, quorum {pick:?}"
            );
        }
    }

    #[test]
    fn randomized_word_roundtrip() {
        let mut rng = rng_from_seed(0x303D);
        for _ in 0..256 {
            let w = rng.next_u64() as i64;
            assert_eq!(symbols_to_word(&word_to_symbols(w)), w, "w={w}");
        }
    }
}
