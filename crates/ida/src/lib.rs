//! Rabin's information dispersal algorithm (IDA) and Schuster's
//! constant-space shared-memory scheme built on it (paper §1).
//!
//! > "This scheme uses the information dispersal-recovery method suggested
//! > by Rabin (1989), whereby a file of b elements of a finite field is
//! > recoded into a file of d > b elements from the same field, with the
//! > property that any b of the elements of the latter permit the recovery
//! > of the original file. The shared memory is subdivided into m/b blocks
//! > of size b, and data are stored in recoded form. [...] to access a
//! > variable it is sufficient to access (d+b)/2 terms of its block. By
//! > choosing b and d both Θ(log n), memory size increases only by a
//! > constant factor, although as many as Θ(log n) variables may have to be
//! > processed per variable accessed."
//!
//! * [`codec::IdaCode`] — the `b → d` Vandermonde recoding with
//!   any-`b`-of-`d` recovery;
//! * [`store::SchusterStore`] — the shared memory: blocks dispersed across
//!   modules, `(d+b)/2`-share quorums with version stamps (two such quorums
//!   intersect in ≥ `b` shares, which is exactly what recovery needs).

pub mod codec;
pub mod store;

pub use codec::{DecodeCache, IdaCode};
pub use store::{IdaAccessStats, IdaWorkspace, SchusterStore};

/// Parameter choice for an `n`-processor machine: `b = Θ(log n)` rounded to
/// a multiple of 4 (one 64-bit word = four GF(2¹⁶) symbols) and `d = 3b/2`
/// (memory blowup 1.5, a constant).
pub fn params_for_n(n: usize) -> (usize, usize) {
    let b = (((n.max(2) as f64).log2().ceil() as usize).div_ceil(4) * 4).max(4);
    let d = b + b / 2;
    (b, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_scale_logarithmically() {
        let (b1, d1) = params_for_n(16);
        let (b2, d2) = params_for_n(1 << 16);
        assert!(b2 > b1);
        assert_eq!(b1 % 4, 0);
        assert_eq!(b2 % 4, 0);
        // Constant blowup.
        assert!((d1 as f64 / b1 as f64 - 1.5).abs() < 1e-9);
        assert!((d2 as f64 / b2 as f64 - 1.5).abs() < 1e-9);
        // Quorum size is integral.
        assert_eq!((d1 + b1) % 2, 0);
        assert_eq!((d2 + b2) % 2, 0);
    }
}
