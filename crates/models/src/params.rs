//! The paper's parameter conventions, computed in one place.
//!
//! Every experiment and scheme derives its constants from a
//! [`PaperParams`]: processor count `n`, memory exponent `k` (`m = n^k`),
//! granularity exponent `ε` (`M = n^{1+ε}`), expansion slack `b`, and the
//! copy parameter `c` (redundancy `r = 2c − 1`).
//!
//! Two regimes for `c`:
//!
//! * **Lemma 1** (Upfal & Wigderson 1987; used by the UW-MPC and LPP-2DMOT
//!   baselines): `c = Θ(log m / log b)` with `b > 4` — redundancy grows
//!   with the memory size.
//! * **Lemma 2** (this paper; used by the DMMPC and 2DMOT schemes):
//!   `c > (bk − ε)/(ε(b − 2))` with `b > 2` — a **constant**.

/// Smallest power of two `≥ x`.
pub fn pow2_at_least(x: usize) -> usize {
    x.max(1).next_power_of_two()
}

/// Smallest even power of two `≥ x` (so its square root is a power of two).
pub fn even_pow2_at_least(x: usize) -> usize {
    let mut p = pow2_at_least(x);
    if !p.trailing_zeros().is_multiple_of(2) {
        p *= 2;
    }
    p
}

/// `⌈n^e⌉` computed in floating point, clamped to at least 1.
pub fn ipow_ceil(n: usize, e: f64) -> usize {
    ((n as f64).powf(e)).ceil().max(1.0) as usize
}

/// All derived parameters for one machine configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperParams {
    /// Number of P-RAM processors.
    pub n: usize,
    /// Shared-memory size `m`.
    pub m: usize,
    /// Number of memory modules `M`.
    pub modules: usize,
    /// Expansion slack `b` of the memory-map lemma in force.
    pub b: usize,
    /// Copy parameter: a write updates `c` copies, a read collects `c`.
    pub c: usize,
}

impl PaperParams {
    /// Fine-granularity configuration per the paper: `m = ⌈n^k⌉`,
    /// `M = ⌈n^{1+ε}⌉` rounded to an **even power of two** (so the 2DMOT
    /// grid side `√M` is a power of two), `c` from **Lemma 2**.
    ///
    /// Panics unless `n ≥ 2`, `k > 1`, `0 < ε ≤ k − 1` (more modules than
    /// cells makes no sense), `b > 2`.
    pub fn fine_grain(n: usize, k: f64, eps: f64, b: usize) -> Self {
        assert!(n >= 2, "n must be at least 2");
        assert!(
            k > 1.0,
            "k must exceed 1 (k=1 is the trivial no-contention case)"
        );
        assert!(eps > 0.0, "fine granularity means eps > 0");
        assert!(eps <= k - 1.0 + 1e-9, "cannot have more modules than cells");
        assert!(b > 2, "Lemma 2 needs b > 2");
        let m = ipow_ceil(n, k);
        let modules = even_pow2_at_least(ipow_ceil(n, 1.0 + eps)).min(even_pow2_at_least(m));
        let c = Self::c_lemma2(k, eps, b);
        PaperParams {
            n,
            m,
            modules,
            b,
            c,
        }
    }

    /// Coarse-granularity configuration (MPC; `M = n`), `c` from
    /// **Lemma 1**: `c = Θ(log m / log b)`, `b > 4`.
    pub fn coarse_grain(n: usize, k: f64, b: usize) -> Self {
        assert!(n >= 2, "n must be at least 2");
        assert!(k > 1.0, "k must exceed 1");
        assert!(b > 4, "Lemma 1 needs b > 4");
        let m = ipow_ceil(n, k);
        let c = Self::c_lemma1(m, b);
        PaperParams {
            n,
            m,
            modules: n,
            b,
            c,
        }
    }

    /// Fully explicit configuration (escape hatch for sweeps and tests).
    pub fn explicit(n: usize, m: usize, modules: usize, b: usize, c: usize) -> Self {
        assert!(n >= 1 && m >= 1 && modules >= 1);
        assert!(c >= 1);
        assert!(
            modules >= 2 * c - 1,
            "need at least r = 2c-1 = {} modules to hold distinct copies, got {}",
            2 * c - 1,
            modules
        );
        PaperParams {
            n,
            m,
            modules,
            b,
            c,
        }
    }

    /// Lemma 2's constant: smallest integer `c > (bk − ε)/(ε(b − 2))`.
    pub fn c_lemma2(k: f64, eps: f64, b: usize) -> usize {
        let bound = (b as f64 * k - eps) / (eps * (b as f64 - 2.0));
        (bound.floor() as usize + 1).max(2)
    }

    /// Lemma 1's parameter: `c = Θ(log m / log b)` (`b > 4`).
    pub fn c_lemma1(m: usize, b: usize) -> usize {
        let c = ((m.max(2) as f64).ln() / (b as f64).ln()).ceil() as usize;
        c.max(2)
    }

    /// Herley & Bilardi's redundancy `Θ(log m / log log m)` — the analytic
    /// comparator row of experiment E9 (see DESIGN.md §5 on why this
    /// baseline is modeled rather than constructed).
    pub fn r_herley_bilardi(m: usize) -> usize {
        let lm = (m.max(4) as f64).log2();
        (lm / lm.log2()).ceil() as usize
    }

    /// Redundancy `r = 2c − 1`.
    pub fn redundancy(&self) -> usize {
        2 * self.c - 1
    }

    /// Number of processor clusters, `⌈n / (2c−1)⌉`.
    pub fn clusters(&self) -> usize {
        self.n.div_ceil(self.redundancy())
    }

    /// Memory granularity `g = ⌈m·r / M⌉` **of the simulating machine**
    /// (each of the `m` variables stores `r` copies across `M` modules).
    pub fn granularity(&self) -> usize {
        (self.m * self.redundancy()).div_ceil(self.modules)
    }

    /// The granularity exponent `ε` implied by `modules = n^{1+ε}`.
    pub fn epsilon(&self) -> f64 {
        ((self.modules as f64).ln() / (self.n as f64).ln()) - 1.0
    }

    /// The memory exponent `k` implied by `m = n^k`.
    pub fn k(&self) -> f64 {
        (self.m as f64).ln() / (self.n as f64).ln()
    }

    /// Theorem 1's lower bound on redundancy for simulating a step in time
    /// `h`: `r = Ω((k−1)·log n / (ε·log n + log h))`. Returns the bound's
    /// value (up to its implicit constant, which we take as 1).
    pub fn theorem1_lower_bound(&self, h: f64) -> f64 {
        let ln_n = (self.n as f64).ln();
        let k = self.k();
        let eps = self.epsilon().max(0.0);
        ((k - 1.0) * ln_n / (eps * ln_n + h.ln().max(1.0))).max(0.0)
    }

    /// Grid side of a `√M × √M` 2DMOT housing these modules at its leaves.
    /// `modules` must be an even power of two (as produced by
    /// [`PaperParams::fine_grain`]).
    pub fn mot_side(&self) -> usize {
        let side = (self.modules as f64).sqrt().round() as usize;
        assert_eq!(
            side * side,
            self.modules,
            "modules must be a perfect square"
        );
        assert!(side.is_power_of_two(), "grid side must be a power of two");
        side
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pow2_helpers() {
        assert_eq!(pow2_at_least(1), 1);
        assert_eq!(pow2_at_least(5), 8);
        assert_eq!(even_pow2_at_least(5), 16);
        assert_eq!(even_pow2_at_least(16), 16);
        assert_eq!(even_pow2_at_least(17), 64);
        assert_eq!(even_pow2_at_least(1), 1);
        assert_eq!(even_pow2_at_least(2), 4);
    }

    #[test]
    fn lemma2_constant_matches_formula() {
        // k=2, eps=0.5, b=4: (8 - 0.5)/(0.5*2) = 7.5 -> c = 8
        assert_eq!(PaperParams::c_lemma2(2.0, 0.5, 4), 8);
        // k=2, eps=1, b=4: (8-1)/(1*2) = 3.5 -> c = 4
        assert_eq!(PaperParams::c_lemma2(2.0, 1.0, 4), 4);
        // Constant in n — that is the whole point.
        let p16 = PaperParams::fine_grain(16, 2.0, 0.5, 4);
        let p1024 = PaperParams::fine_grain(1024, 2.0, 0.5, 4);
        assert_eq!(p16.c, p1024.c);
    }

    #[test]
    fn lemma1_constant_grows_with_m() {
        let c_small = PaperParams::c_lemma1(1 << 8, 8);
        let c_big = PaperParams::c_lemma1(1 << 24, 8);
        assert!(c_big > c_small);
    }

    #[test]
    fn fine_grain_derivations() {
        let p = PaperParams::fine_grain(64, 2.0, 0.5, 4);
        assert_eq!(p.m, 4096);
        // n^{1.5} = 512 -> even power of two >= 512 is 1024
        assert_eq!(p.modules, 1024);
        assert_eq!(p.redundancy(), 2 * p.c - 1);
        assert_eq!(p.mot_side(), 32);
        assert!(p.epsilon() > 0.5); // rounding up only increases granularity
    }

    #[test]
    fn coarse_grain_is_mpc() {
        let p = PaperParams::coarse_grain(64, 2.0, 8);
        assert_eq!(p.modules, 64);
        assert!(p.redundancy() >= 3);
    }

    #[test]
    fn theorem1_bound_constant_when_fine() {
        // Fine granularity: bound ~ (k-1)/eps regardless of n.
        let small = PaperParams::fine_grain(64, 2.0, 0.5, 4).theorem1_lower_bound(64.0);
        let large = PaperParams::fine_grain(4096, 2.0, 0.5, 4).theorem1_lower_bound(144.0);
        assert!(
            (small - large).abs() < 1.5,
            "bound should stay ~constant: {small} vs {large}"
        );
        // Coarse granularity (eps = 0): bound grows like log n / log h.
        let coarse_small = PaperParams::explicit(64, 4096, 64, 8, 5).theorem1_lower_bound(36.0);
        let coarse_large =
            PaperParams::explicit(1 << 14, 1 << 28, 1 << 14, 8, 10).theorem1_lower_bound(196.0);
        assert!(coarse_large > coarse_small);
    }

    #[test]
    fn herley_bilardi_growth() {
        assert!(PaperParams::r_herley_bilardi(1 << 30) > PaperParams::r_herley_bilardi(1 << 10));
    }

    #[test]
    #[should_panic(expected = "at least r")]
    fn explicit_rejects_too_few_modules() {
        let _ = PaperParams::explicit(8, 64, 4, 4, 3); // r=5 > 4 modules
    }

    #[test]
    fn clusters_cover_processors() {
        let p = PaperParams::fine_grain(100, 2.0, 0.5, 4);
        assert!(p.clusters() * p.redundancy() >= p.n);
    }

    #[test]
    fn granularity_counts_copies() {
        let p = PaperParams::explicit(4, 16, 8, 4, 2);
        // 16 vars * 3 copies = 48 slots over 8 modules = 6 each
        assert_eq!(p.granularity(), 6);
    }
}
