//! Machine-model descriptors for the five models the paper discusses.
//!
//! | Figure | Model | Struct |
//! |--------|-------|--------|
//! | Fig. 1 | P-RAM (n processors, m shared cells, unit access) | [`PramModel`] |
//! | Fig. 2 | MPC — module parallel computer, complete graph `K_n`, one module per processor | [`MpcModel`] |
//! | Fig. 3 | BDN — bounded-degree network | [`BdnModel`] |
//! | Fig. 5 | DMMPC — distributed-memory MPC, complete bipartite `K_{n,M}` | [`DmmpcModel`] |
//! | Fig. 6 | DMBDN — distributed-memory bounded-degree network with switches | [`DmbdnModel`] |
//!
//! These structs carry the structural parameters (processor count, module
//! count, granularity, interconnect degree) and validate the models'
//! defining constraints. The simulation schemes in `cr-core` are each pinned
//! to one of these models; the E1 experiment prints this table.
//!
//! The crate also hosts [`params::PaperParams`], the single source of truth
//! for the paper's parameter conventions (`n`, `k`, `ε`, `b`, `c`, `r`).

pub mod params;

pub use params::PaperParams;

/// Structural facts common to all machine models.
pub trait MachineModel {
    /// Human-readable model name as used in the paper.
    fn name(&self) -> &'static str;
    /// Number of RAM processors, `n`.
    fn processors(&self) -> usize;
    /// Total shared-memory cells, `m`.
    fn memory_cells(&self) -> usize;
    /// Number of independently accessible memory modules, `M`.
    fn modules(&self) -> usize;
    /// Memory granularity `g = m/M` (cells per module), rounded up.
    fn granularity(&self) -> usize {
        self.memory_cells().div_ceil(self.modules().max(1))
    }
    /// Maximum vertex degree of the interconnection, as a function of the
    /// model size (the quantity the BDN model requires to be `O(1)`).
    fn max_degree(&self) -> usize;
    /// Whether the interconnect degree is bounded by a constant independent
    /// of the machine size.
    fn bounded_degree(&self) -> bool;
    /// Non-processor switching nodes introduced by the interconnect.
    fn switch_nodes(&self) -> usize {
        0
    }
    /// Check the model's defining structural constraints.
    fn validate(&self) -> Result<(), String>;
}

/// Fig. 1 — the ideal P-RAM: `n` processors, `m` cells, O(1) access.
/// Not physically realizable for large `n`; the reference model that every
/// scheme simulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PramModel {
    /// Processor count.
    pub n: usize,
    /// Shared cells.
    pub m: usize,
}

impl MachineModel for PramModel {
    fn name(&self) -> &'static str {
        "P-RAM"
    }
    fn processors(&self) -> usize {
        self.n
    }
    fn memory_cells(&self) -> usize {
        self.m
    }
    fn modules(&self) -> usize {
        1 // one monolithic memory with unbounded ports
    }
    fn max_degree(&self) -> usize {
        self.n // everyone touches the shared memory
    }
    fn bounded_degree(&self) -> bool {
        false
    }
    fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("P-RAM needs at least one processor".into());
        }
        if self.m == 0 {
            return Err("P-RAM needs at least one memory cell".into());
        }
        Ok(())
    }
}

/// Fig. 2 — MPC: `n` processors each owning a module of `m/n` cells,
/// interconnected by the complete graph `K_n` (Mehlhorn & Vishkin 1984, as
/// restricted by Alt et al. 1987).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MpcModel {
    /// Processor (= module) count.
    pub n: usize,
    /// Total shared cells; each module stores `m/n`.
    pub m: usize,
}

impl MachineModel for MpcModel {
    fn name(&self) -> &'static str {
        "MPC"
    }
    fn processors(&self) -> usize {
        self.n
    }
    fn memory_cells(&self) -> usize {
        self.m
    }
    fn modules(&self) -> usize {
        self.n
    }
    fn max_degree(&self) -> usize {
        self.n.saturating_sub(1) // K_n
    }
    fn bounded_degree(&self) -> bool {
        false // the complete graph needs unbounded fan-in/out — Fig. 3's motivation
    }
    fn validate(&self) -> Result<(), String> {
        if self.n == 0 {
            return Err("MPC needs at least one processor".into());
        }
        if self.m < self.n {
            return Err(format!(
                "MPC with m={} < n={} has empty modules",
                self.m, self.n
            ));
        }
        Ok(())
    }
}

/// Fig. 3 — BDN: `n` processor/module pairs, each linked to O(1) others.
/// The degree bound is the model's defining constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BdnModel {
    /// Processor (= module) count.
    pub n: usize,
    /// Total shared cells.
    pub m: usize,
    /// The constant degree bound of the interconnect.
    pub degree: usize,
}

impl MachineModel for BdnModel {
    fn name(&self) -> &'static str {
        "BDN"
    }
    fn processors(&self) -> usize {
        self.n
    }
    fn memory_cells(&self) -> usize {
        self.m
    }
    fn modules(&self) -> usize {
        self.n
    }
    fn max_degree(&self) -> usize {
        self.degree
    }
    fn bounded_degree(&self) -> bool {
        true
    }
    fn validate(&self) -> Result<(), String> {
        if self.degree < 2 {
            return Err("a connected BDN needs degree >= 2".into());
        }
        if self.n == 0 {
            return Err("BDN needs at least one processor".into());
        }
        Ok(())
    }
}

/// Fig. 5 — DMMPC: `n` processors and `M = ⌈m/g⌉` *separate* memory modules
/// interconnected by the complete bipartite graph `K_{n,M}` (paper §2).
/// Decoupling modules from processors is what enables fine granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmmpcModel {
    /// Processor count.
    pub n: usize,
    /// Total shared cells.
    pub m: usize,
    /// Module count `M` (the paper's fine-granularity condition is
    /// `M = n^{1+ε}`, `ε > 0`).
    pub modules: usize,
}

impl DmmpcModel {
    /// The granularity exponent `ε` such that `M = n^{1+ε}` (meaningful for
    /// `n ≥ 2`).
    pub fn epsilon(&self) -> f64 {
        ((self.modules as f64).ln() / (self.n as f64).ln()) - 1.0
    }
}

impl MachineModel for DmmpcModel {
    fn name(&self) -> &'static str {
        "DMMPC"
    }
    fn processors(&self) -> usize {
        self.n
    }
    fn memory_cells(&self) -> usize {
        self.m
    }
    fn modules(&self) -> usize {
        self.modules
    }
    fn max_degree(&self) -> usize {
        self.n.max(self.modules) // K_{n,M}
    }
    fn bounded_degree(&self) -> bool {
        false
    }
    fn validate(&self) -> Result<(), String> {
        if self.n == 0 || self.modules == 0 {
            return Err("DMMPC needs processors and modules".into());
        }
        if self.modules < self.n {
            return Err(format!(
                "DMMPC with M={} < n={} is coarser than the MPC it generalizes",
                self.modules, self.n
            ));
        }
        Ok(())
    }
}

/// Fig. 6 — DMBDN: `n` processors and `M` modules joined by a
/// bounded-degree network that may contain `O(m)` extra *switch* nodes
/// (paper §3). The 2DMOT instantiations are the concrete cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmbdnModel {
    /// Processor count.
    pub n: usize,
    /// Total shared cells.
    pub m: usize,
    /// Module count.
    pub modules: usize,
    /// Switch (dummy-processor) count of the interconnect.
    pub switches: usize,
    /// Degree bound of the interconnect.
    pub degree: usize,
}

impl MachineModel for DmbdnModel {
    fn name(&self) -> &'static str {
        "DMBDN"
    }
    fn processors(&self) -> usize {
        self.n
    }
    fn memory_cells(&self) -> usize {
        self.m
    }
    fn modules(&self) -> usize {
        self.modules
    }
    fn max_degree(&self) -> usize {
        self.degree
    }
    fn bounded_degree(&self) -> bool {
        true
    }
    fn switch_nodes(&self) -> usize {
        self.switches
    }
    fn validate(&self) -> Result<(), String> {
        if self.degree < 2 {
            return Err("a connected DMBDN needs degree >= 2".into());
        }
        // The model admits O(m) additional switches; flag gross violations
        // (the paper's objection to hiding unbounded hardware).
        if self.switches > 8 * self.m.max(self.n) {
            return Err(format!(
                "DMBDN with {} switches for m={} hides more than O(m) hardware",
                self.switches, self.m
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pram_validates() {
        assert!(PramModel { n: 8, m: 64 }.validate().is_ok());
        assert!(PramModel { n: 0, m: 64 }.validate().is_err());
        assert!(PramModel { n: 8, m: 0 }.validate().is_err());
        assert!(!PramModel { n: 8, m: 64 }.bounded_degree());
    }

    #[test]
    fn mpc_granularity_is_coarse() {
        let mpc = MpcModel {
            n: 16,
            m: 16 * 16 * 16,
        };
        assert!(mpc.validate().is_ok());
        assert_eq!(mpc.granularity(), 256); // m/n = n^2 — the van Neumann bottleneck
        assert_eq!(mpc.max_degree(), 15);
        assert!(!mpc.bounded_degree());
        assert!(MpcModel { n: 8, m: 4 }.validate().is_err());
    }

    #[test]
    fn bdn_degree_bound() {
        assert!(BdnModel {
            n: 64,
            m: 4096,
            degree: 4
        }
        .validate()
        .is_ok());
        assert!(BdnModel {
            n: 64,
            m: 4096,
            degree: 1
        }
        .validate()
        .is_err());
    }

    #[test]
    fn dmmpc_epsilon_recovered() {
        // n=16, M=n^{1.5}=64
        let d = DmmpcModel {
            n: 16,
            m: 256,
            modules: 64,
        };
        assert!(d.validate().is_ok());
        assert!((d.epsilon() - 0.5).abs() < 1e-9);
        assert_eq!(d.granularity(), 4);
        assert!(DmmpcModel {
            n: 16,
            m: 256,
            modules: 8
        }
        .validate()
        .is_err());
    }

    #[test]
    fn dmbdn_switch_budget() {
        let ok = DmbdnModel {
            n: 16,
            m: 4096,
            modules: 64,
            switches: 128,
            degree: 4,
        };
        assert!(ok.validate().is_ok());
        assert_eq!(ok.switch_nodes(), 128);
        let bad = DmbdnModel {
            n: 16,
            m: 64,
            modules: 64,
            switches: 1 << 20,
            degree: 4,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn granularity_rounds_up() {
        let d = DmmpcModel {
            n: 4,
            m: 10,
            modules: 4,
        };
        assert_eq!(d.granularity(), 3);
    }
}
