//! Empirical verification of the memory-map expansion property.
//!
//! **Lemma 1** (Upfal & Wigderson) / **Lemma 2** (the paper): for a good
//! map, *any* set of `q ≤ n/(2c−1)` live variables has its live copies in
//! at least `(2c−1)q/b` distinct modules. A variable is *live* while fewer
//! than `c` of its `2c−1` copies have been accessed, so an adversary gets to
//! choose up to `c−1` already-dead copies per variable, leaving `c` live
//! copies placed as unhelpfully as possible.
//!
//! Exact verification is a covering problem exponential in `q`; per
//! DESIGN.md §5 we provide
//!
//! * [`min_live_spread_exhaustive`] — ground truth for small instances
//!   (every choice of live copies enumerated);
//! * [`min_live_spread_greedy`] — a concentration heuristic playing the
//!   adversary on large instances (its result *upper-bounds* the true
//!   minimum spread, i.e. over-estimates the adversary's power never,
//!   under-estimates it possibly — so a greedy pass that stays above the
//!   bound is evidence, and the protocol phase counts in E4/E5 are the
//!   corroborating measurement);
//! * [`check_sampled`] — a sampling driver over random live sets.

use crate::map::{MemoryMap, VarId};
use simrng::Rng;

/// Distinct modules covered by the given live copies
/// (`live[i] = (variable, live copy indices)`).
pub fn live_spread(map: &MemoryMap, live: &[(VarId, Vec<usize>)]) -> usize {
    let mut seen = vec![false; map.modules()];
    let mut count = 0;
    for (v, copies) in live {
        for &i in copies {
            let md = map.module_of(*v, i);
            if !seen[md] {
                seen[md] = true;
                count += 1;
            }
        }
    }
    count
}

/// Exact minimum spread over **all** adversarial choices of `c` live copies
/// per variable. Cost is `C(r, c)^q`; intended for `q·r` tiny (tests, E2's
/// ground-truth column).
pub fn min_live_spread_exhaustive(map: &MemoryMap, vars: &[VarId], c: usize) -> usize {
    let r = map.redundancy();
    assert!(c <= r);
    let choices: Vec<Vec<usize>> = combinations(r, c);
    let mut best = usize::MAX;
    let mut selected: Vec<usize> = Vec::with_capacity(vars.len());

    #[allow(clippy::too_many_arguments)] // explicit search-frame state
    fn recurse(
        map: &MemoryMap,
        vars: &[VarId],
        choices: &[Vec<usize>],
        selected: &mut Vec<usize>,
        covered: &mut Vec<u32>,
        depth: usize,
        spread: usize,
        best: &mut usize,
    ) {
        if spread >= *best {
            return; // cannot improve
        }
        if depth == vars.len() {
            *best = spread;
            return;
        }
        let v = vars[depth];
        for (ci, choice) in choices.iter().enumerate() {
            let mut added = Vec::new();
            let mut new_spread = spread;
            for &i in choice {
                let md = map.module_of(v, i);
                if covered[md] == 0 {
                    new_spread += 1;
                }
                covered[md] += 1;
                added.push(md);
            }
            selected.push(ci);
            recurse(
                map,
                vars,
                choices,
                selected,
                covered,
                depth + 1,
                new_spread,
                best,
            );
            selected.pop();
            for md in added {
                covered[md] -= 1;
            }
        }
    }

    let mut covered = vec![0u32; map.modules()];
    recurse(
        map,
        vars,
        &choices,
        &mut selected,
        &mut covered,
        0,
        0,
        &mut best,
    );
    best
}

/// Greedy adversary: iteratively keep, for each variable, the `c` copies
/// whose modules are most shared with other variables in the set, then
/// count the union. Two refinement rounds bias the choice toward the
/// already-selected module set.
pub fn min_live_spread_greedy(map: &MemoryMap, vars: &[VarId], c: usize) -> usize {
    let r = map.redundancy();
    assert!(c <= r);
    // Round 0 scores: global popularity of each module within the set.
    let mut score = vec![0u32; map.modules()];
    for &v in vars {
        for &md in map.copies(v) {
            score[md as usize] += 1;
        }
    }

    let mut kept: Vec<Vec<usize>> = Vec::with_capacity(vars.len());
    for round in 0..3 {
        kept.clear();
        let mut covered = vec![false; map.modules()];
        for &v in vars {
            let mods = map.copies(v);
            let mut idx: Vec<usize> = (0..r).collect();
            // Prefer popular / already-covered modules.
            idx.sort_by_key(|&i| {
                let md = mods[i] as usize;
                let cov_bonus = if covered[md] { 1_000_000u32 } else { 0 };
                std::cmp::Reverse(score[md] + cov_bonus)
            });
            idx.truncate(c);
            for &i in &idx {
                covered[mods[i] as usize] = true;
            }
            kept.push(idx);
        }
        if round < 2 {
            // Re-score using only the kept copies.
            score.iter_mut().for_each(|s| *s = 0);
            for (j, &v) in vars.iter().enumerate() {
                for &i in &kept[j] {
                    score[map.module_of(v, i)] += 1;
                }
            }
        }
    }

    let live: Vec<(VarId, Vec<usize>)> = vars.iter().copied().zip(kept).collect();
    live_spread(map, &live)
}

/// Result of a sampled expansion check (one row of experiment E2).
#[derive(Debug, Clone, Copy)]
pub struct ExpansionReport {
    /// Live-set size tested.
    pub q: usize,
    /// Number of random live sets sampled.
    pub samples: usize,
    /// The lemma's requirement `(2c−1)·q / b`.
    pub required: f64,
    /// Worst (smallest) spread the greedy adversary achieved.
    pub worst_spread: usize,
    /// `worst_spread / required` — ≥ 1 means the property held on every
    /// sample.
    pub worst_ratio: f64,
    /// Whether every sample satisfied the lemma's bound.
    pub satisfied: bool,
}

/// Sample `samples` random live sets of size `q` and report the worst
/// greedy-adversary spread against the lemma bound `(2c−1)q/b`.
pub fn check_sampled(
    map: &MemoryMap,
    c: usize,
    b: usize,
    q: usize,
    samples: usize,
    rng: &mut impl Rng,
) -> ExpansionReport {
    assert!(q >= 1 && q <= map.vars());
    let required = (map.redundancy() * q) as f64 / b as f64;
    let mut worst = usize::MAX;
    for _ in 0..samples {
        let vars: Vec<VarId> = rng
            .sample_distinct(map.vars() as u64, q)
            .into_iter()
            .map(|x| x as usize)
            .collect();
        let spread = min_live_spread_greedy(map, &vars, c);
        worst = worst.min(spread);
    }
    ExpansionReport {
        q,
        samples,
        required,
        worst_spread: worst,
        worst_ratio: worst as f64 / required.max(f64::MIN_POSITIVE),
        satisfied: (worst as f64) >= required,
    }
}

/// All `C(r, c)` ways to choose `c` live copy indices out of `r`.
fn combinations(r: usize, c: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut cur = Vec::with_capacity(c);
    fn go(start: usize, r: usize, c: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if cur.len() == c {
            out.push(cur.clone());
            return;
        }
        for i in start..r {
            if r - i < c - cur.len() {
                break;
            }
            cur.push(i);
            go(i + 1, r, c, cur, out);
            cur.pop();
        }
    }
    go(0, r, c, &mut cur, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use simrng::rng_from_seed;

    #[test]
    fn combinations_count() {
        assert_eq!(combinations(5, 3).len(), 10);
        assert_eq!(combinations(3, 3).len(), 1);
        assert_eq!(combinations(4, 1).len(), 4);
    }

    #[test]
    fn live_spread_counts_distinct_modules() {
        let map = MemoryMap::striped(10, 8, 3); // stride 2: v's copies at v, v+2, v+4 (mod 8)
        let spread = live_spread(&map, &[(0, vec![0, 1]), (2, vec![0, 1])]);
        // var 0 copies 0,1 -> modules 0,2 ; var 2 copies 0,1 -> modules 2,4
        assert_eq!(spread, 3);
    }

    #[test]
    fn congested_map_has_no_expansion() {
        let r = 5;
        let c = 3;
        let map = MemoryMap::congested(100, 64, r);
        let vars: Vec<VarId> = (0..10).collect();
        // All copies in modules 0..5, so spread can never exceed r.
        let spread = min_live_spread_greedy(&map, &vars, c);
        assert!(spread <= r);
        // With b = 4, requirement is 5*10/4 = 12.5 > 5: property fails.
        let mut rng = rng_from_seed(0);
        let rep = check_sampled(&map, c, 4, 10, 5, &mut rng);
        assert!(!rep.satisfied);
    }

    #[test]
    fn exhaustive_matches_or_beats_greedy() {
        // Greedy is an upper bound on the true minimum spread.
        let map = MemoryMap::random(32, 16, 3, 5);
        let vars: Vec<VarId> = vec![1, 4, 9, 20];
        let exact = min_live_spread_exhaustive(&map, &vars, 2);
        let greedy = min_live_spread_greedy(&map, &vars, 2);
        assert!(exact <= greedy, "exact {exact} > greedy {greedy}");
        assert!(
            exact >= 2,
            "distinct-module maps give at least c spread for one var"
        );
    }

    #[test]
    fn random_map_fine_granularity_expands() {
        // n = 16 procs, M = 64 modules (eps = 0.5 at n=16), m = 256 vars,
        // c = 3, b = 4, q = n/(2c-1) = 3: requirement 3.75.
        let map = MemoryMap::random(256, 64, 5, 7);
        let mut rng = rng_from_seed(42);
        let rep = check_sampled(&map, 3, 4, 3, 50, &mut rng);
        assert!(
            rep.satisfied,
            "random fine-grain map should expand: {rep:?}"
        );
        assert!(rep.worst_ratio >= 1.0);
    }

    #[test]
    fn single_variable_spread_is_c() {
        let map = MemoryMap::random(16, 32, 5, 3);
        let exact = min_live_spread_exhaustive(&map, &[7], 3);
        // One variable with distinct-module copies: any c live copies
        // occupy exactly c modules.
        assert_eq!(exact, 3);
    }

    #[test]
    fn greedy_spread_bounded_by_full_footprint() {
        let map = MemoryMap::random(64, 32, 5, 9);
        let vars: Vec<VarId> = (0..8).collect();
        let g = min_live_spread_greedy(&map, &vars, 3);
        let all: Vec<(VarId, Vec<usize>)> = vars.iter().map(|&v| (v, (0..5).collect())).collect();
        assert!(g <= live_spread(&map, &all));
    }
}
