//! The replicated copy store: timestamped values with quorum access.
//!
//! Majority rule (Thomas 1979; Gifford 1979; Upfal & Wigderson 1987): each
//! variable has `r = 2c−1` copies; a write stamps `≥ c` of them with a fresh
//! timestamp; a read collects `≥ c` and takes the value with the newest
//! stamp. Any two `c`-subsets of a `(2c−1)`-set intersect, so the read quorum
//! always contains an up-to-date copy.

use crate::map::{MemoryMap, VarId};

/// The value type stored in shared memory (matches the P-RAM word).
pub type Value = i64;

/// Copies of all variables: `(value, timestamp)` per copy, laid out flat as
/// `var * r + copy_index` — interleaved, so one quorum access touches one
/// contiguous run of memory instead of two parallel arrays (the store is
/// the step engine's largest random-access surface; halving its cache
/// misses is a measured win on E15's DMMPC path).
#[derive(Debug, Clone)]
pub struct ReplicatedStore {
    r: usize,
    slots: Vec<(Value, u64)>,
}

impl ReplicatedStore {
    /// Zero-initialized copies for all of `map`'s variables. Timestamp 0
    /// with value 0 is the consistent initial state.
    pub fn new(map: &MemoryMap) -> Self {
        let slots = map.vars() * map.redundancy();
        ReplicatedStore {
            r: map.redundancy(),
            slots: vec![(0, 0); slots],
        }
    }

    /// Copies per variable.
    #[inline]
    pub fn redundancy(&self) -> usize {
        self.r
    }

    /// Number of variables.
    #[inline]
    pub fn vars(&self) -> usize {
        self.slots.len() / self.r
    }

    /// Write one copy.
    #[inline]
    pub fn write_copy(&mut self, v: VarId, copy: usize, value: Value, ts: u64) {
        debug_assert!(copy < self.r);
        self.slots[v * self.r + copy] = (value, ts);
    }

    /// Read one copy: `(value, timestamp)`.
    #[inline]
    pub fn read_copy(&self, v: VarId, copy: usize) -> (Value, u64) {
        debug_assert!(copy < self.r);
        self.slots[v * self.r + copy]
    }

    /// Write `value` with stamp `ts` to the given copy indices (the write
    /// quorum the protocol managed to reach — the caller enforces `≥ c`).
    pub fn write_quorum(&mut self, v: VarId, copies: &[usize], value: Value, ts: u64) {
        for &i in copies {
            self.write_copy(v, i, value, ts);
        }
    }

    /// Majority read over the given copy indices: the value with the
    /// newest timestamp. The caller enforces that `copies` is a legal read
    /// quorum (`≥ c` copies).
    pub fn read_majority(&self, v: VarId, copies: &[usize]) -> Value {
        let mut best_ts = 0u64;
        let mut best_val = 0;
        let mut first = true;
        for &i in copies {
            let (val, ts) = self.read_copy(v, i);
            if first || ts > best_ts {
                best_ts = ts;
                best_val = val;
                first = false;
            }
        }
        assert!(!first, "read quorum must be non-empty");
        best_val
    }

    /// The newest timestamp any copy of `v` carries (diagnostics/tests).
    pub fn newest_stamp(&self, v: VarId) -> u64 {
        (0..self.r).map(|i| self.read_copy(v, i).1).max().unwrap()
    }

    /// Direct full-quorum write touching **all** copies — used only for
    /// initialization (`poke`) outside step accounting.
    pub fn write_all(&mut self, v: VarId, value: Value, ts: u64) {
        for i in 0..self.r {
            self.write_copy(v, i, value, ts);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::map::MemoryMap;
    use simrng::{rng_from_seed, Rng};

    fn store(m: usize, r: usize) -> ReplicatedStore {
        let map = MemoryMap::random(m, 4 * r, r, 0);
        ReplicatedStore::new(&map)
    }

    #[test]
    fn initial_state_consistent() {
        let s = store(4, 5);
        assert_eq!(s.read_majority(2, &[0, 1, 2]), 0);
        assert_eq!(s.newest_stamp(2), 0);
    }

    #[test]
    fn quorum_intersection_guarantees_freshness() {
        // r = 5, c = 3: write to copies {0,1,2}, read from {2,3,4} —
        // they intersect in copy 2, which carries the new stamp.
        let mut s = store(2, 5);
        s.write_quorum(0, &[0, 1, 2], 42, 7);
        assert_eq!(s.read_majority(0, &[2, 3, 4]), 42);
        // A *sub-quorum* read that misses the write quorum sees stale data:
        // this is exactly why c copies are required.
        assert_eq!(s.read_majority(0, &[3, 4]), 0);
    }

    #[test]
    fn newer_stamp_wins_regardless_of_order() {
        let mut s = store(1, 5);
        s.write_quorum(0, &[0, 1, 2], 1, 1);
        s.write_quorum(0, &[2, 3, 4], 2, 2);
        // Copy 0 still holds (1, ts=1); copy 3 holds (2, ts=2).
        assert_eq!(s.read_majority(0, &[0, 3, 4]), 2);
        assert_eq!(s.read_majority(0, &[0, 1, 2]), 2); // via copy 2
    }

    #[test]
    fn write_all_initialization() {
        let mut s = store(3, 3);
        s.write_all(1, 99, 1);
        for i in 0..3 {
            assert_eq!(s.read_copy(1, i), (99, 1));
        }
    }

    /// Randomized check of the majority-rule invariant: any interleaving of
    /// c-quorum writes and c-quorum reads (monotone timestamps) is
    /// linearizable — every read returns the latest completed write.
    #[test]
    fn randomized_quorum_linearizability() {
        let r = 7;
        let c = 4;
        let mut s = store(1, r);
        let mut rng = rng_from_seed(1234);
        let mut latest: Value = 0;
        for step in 1..500u64 {
            let quorum: Vec<usize> = rng
                .sample_distinct(r as u64, c)
                .into_iter()
                .map(|x| x as usize)
                .collect();
            if rng.chance(0.5) {
                latest = step as Value * 10;
                s.write_quorum(0, &quorum, latest, step);
            } else {
                assert_eq!(s.read_majority(0, &quorum), latest, "at step {step}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_quorum_rejected() {
        let s = store(1, 3);
        let _ = s.read_majority(0, &[]);
    }
}
