//! Processor clusters.
//!
//! All the deterministic protocols organize the `n` processors into
//! `⌈n/(2c−1)⌉` clusters of (up to) `2c−1` processors. Within a cluster the
//! processors cooperate: when accessing a variable, each cluster member is
//! responsible for one of its `2c−1` copies.

/// A partition of processors `0..n` into fixed-size contiguous clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Clusters {
    n: usize,
    size: usize,
}

impl Clusters {
    /// Partition `n` processors into clusters of `size` (the last cluster
    /// may be smaller).
    pub fn new(n: usize, size: usize) -> Self {
        assert!(n >= 1 && size >= 1);
        Clusters { n, size }
    }

    /// Number of clusters.
    #[inline]
    pub fn count(&self) -> usize {
        self.n.div_ceil(self.size)
    }

    /// Cluster of processor `p`.
    #[inline]
    pub fn cluster_of(&self, p: usize) -> usize {
        debug_assert!(p < self.n);
        p / self.size
    }

    /// Processors in cluster `k`.
    #[inline]
    pub fn members(&self, k: usize) -> std::ops::Range<usize> {
        let start = k * self.size;
        start..((start + self.size).min(self.n))
    }

    /// Nominal cluster size (`2c−1` in the protocols).
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Total processors.
    #[inline]
    pub fn processors(&self) -> usize {
        self.n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_partition() {
        let c = Clusters::new(12, 3);
        assert_eq!(c.count(), 4);
        assert_eq!(c.members(0), 0..3);
        assert_eq!(c.members(3), 9..12);
        assert_eq!(c.cluster_of(7), 2);
    }

    #[test]
    fn ragged_tail() {
        let c = Clusters::new(10, 3);
        assert_eq!(c.count(), 4);
        assert_eq!(c.members(3), 9..10);
    }

    #[test]
    fn every_processor_in_its_cluster() {
        let c = Clusters::new(23, 5);
        for p in 0..23 {
            assert!(c.members(c.cluster_of(p)).contains(&p));
        }
    }

    #[test]
    fn singleton_clusters() {
        let c = Clusters::new(4, 1);
        assert_eq!(c.count(), 4);
        assert_eq!(c.members(2), 2..3);
    }
}
