//! The memory map: which module holds each copy of each variable.
//!
//! The papers' maps are non-constructive (shown to exist by the
//! probabilistic method); following DESIGN.md §5 we instantiate seeded
//! pseudo-random maps and verify the needed expansion property empirically
//! (see [`crate::expansion`]). Degenerate map families are provided as
//! adversarial controls for the experiments.

use simrng::{rng_from_seed, Rng};

/// A shared-memory variable index, `0 .. m`.
pub type VarId = usize;
/// A memory-module index, `0 .. M`.
pub type ModuleId = usize;

/// How a map was generated (recorded for experiment provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapKind {
    /// Copies of each variable drawn uniformly without replacement —
    /// the instantiation of the papers' random map.
    Random,
    /// Copy `i` of variable `v` in module `(v + i·stride) mod M` — a
    /// structured map that looks balanced but has poor expansion for
    /// correlated variable sets (adversarial control).
    Striped,
    /// All copies of every variable crowded into the first `r` modules —
    /// the worst possible map (adversarial control; expansion fails
    /// maximally).
    Congested,
    /// Copy `i` of variable `v` in module `(aᵢ·v + bᵢ) mod p mod M` for
    /// per-copy random affine functions over a prime field — a
    /// **constructive** map in the spirit of the paper's conclusion (each
    /// processor computes placements from `2r` coefficients instead of
    /// storing an `O(m·r·log M)`-bit table). Pairwise-independent per
    /// copy, but *not* proven to satisfy the lemmas — E2 measures it.
    Affine,
}

/// Placement of `r` copies of each of `m` variables among `M` modules.
///
/// Stored flat: copy `i` of variable `v` is `copy_module[v*r + i]`. For a
/// valid map the `r` modules of one variable are pairwise distinct (copies
/// in the same module would not survive that module's unavailability and
/// would not add access bandwidth).
#[derive(Debug, Clone)]
pub struct MemoryMap {
    m: usize,
    modules: usize,
    r: usize,
    kind: MapKind,
    copy_module: Vec<u32>,
}

impl MemoryMap {
    /// Uniform random map (the paper's existence proof instantiated): the
    /// `r` copies of each variable land in `r` distinct uniform modules.
    pub fn random(m: usize, modules: usize, r: usize, seed: u64) -> Self {
        assert!(
            r >= 1 && r <= modules,
            "need r <= M distinct modules per variable"
        );
        let mut rng = rng_from_seed(seed);
        let mut copy_module = Vec::with_capacity(m * r);
        for _ in 0..m {
            for mod_id in rng.sample_distinct(modules as u64, r) {
                copy_module.push(mod_id as u32);
            }
        }
        MemoryMap {
            m,
            modules,
            r,
            kind: MapKind::Random,
            copy_module,
        }
    }

    /// Striped map: copy `i` of `v` in module `(v + i·stride) mod M`, with
    /// `stride = ⌊M/r⌋` so a variable's copies are distinct and evenly
    /// spaced.
    pub fn striped(m: usize, modules: usize, r: usize) -> Self {
        assert!(r >= 1 && r <= modules);
        let stride = (modules / r).max(1);
        let mut copy_module = Vec::with_capacity(m * r);
        for v in 0..m {
            for i in 0..r {
                copy_module.push(((v + i * stride) % modules) as u32);
            }
        }
        let map = MemoryMap {
            m,
            modules,
            r,
            kind: MapKind::Striped,
            copy_module,
        };
        debug_assert!(map.validate().is_ok());
        map
    }

    /// Constructive affine map: copy `i` of `v` lands in
    /// `(aᵢ·v + bᵢ) mod p mod M` with `p = 2⁶¹ − 1` and seeded random odd
    /// `aᵢ`, `bᵢ`. Collisions among a variable's copies are resolved by
    /// linear probing to the next free module, keeping the map valid; the
    /// probe offset is itself a deterministic function of `(v, i)`, so the
    /// map remains computable from the `2r` coefficients alone.
    pub fn affine(m: usize, modules: usize, r: usize, seed: u64) -> Self {
        assert!(
            r >= 1 && r <= modules,
            "need r <= M distinct modules per variable"
        );
        const P: u128 = (1u128 << 61) - 1;
        let mut rng = rng_from_seed(seed);
        let coeffs: Vec<(u128, u128)> = (0..r)
            .map(|_| {
                (
                    ((rng.next_u64() | 1) as u128) % P,
                    (rng.next_u64() as u128) % P,
                )
            })
            .collect();
        let mut copy_module = Vec::with_capacity(m * r);
        let mut taken: Vec<u32> = Vec::with_capacity(r);
        for v in 0..m {
            taken.clear();
            for &(a, b) in &coeffs {
                let mut md = (((a * (v as u128 + 1) + b) % P) % modules as u128) as u32;
                while taken.contains(&md) {
                    md = (md + 1) % modules as u32; // deterministic probe
                }
                taken.push(md);
                copy_module.push(md);
            }
        }
        MemoryMap {
            m,
            modules,
            r,
            kind: MapKind::Affine,
            copy_module,
        }
    }

    /// Worst-case map: every variable's copies sit in modules `0..r`.
    pub fn congested(m: usize, modules: usize, r: usize) -> Self {
        assert!(r >= 1 && r <= modules);
        let mut copy_module = Vec::with_capacity(m * r);
        for _ in 0..m {
            for i in 0..r {
                copy_module.push(i as u32);
            }
        }
        MemoryMap {
            m,
            modules,
            r,
            kind: MapKind::Congested,
            copy_module,
        }
    }

    /// Number of variables `m`.
    #[inline]
    pub fn vars(&self) -> usize {
        self.m
    }

    /// Number of modules `M`.
    #[inline]
    pub fn modules(&self) -> usize {
        self.modules
    }

    /// Copies per variable `r`.
    #[inline]
    pub fn redundancy(&self) -> usize {
        self.r
    }

    /// Provenance of this map.
    #[inline]
    pub fn kind(&self) -> MapKind {
        self.kind
    }

    /// Module holding copy `i` of variable `v`.
    #[inline]
    pub fn module_of(&self, v: VarId, i: usize) -> ModuleId {
        debug_assert!(i < self.r);
        self.copy_module[v * self.r + i] as ModuleId
    }

    /// The modules of all `r` copies of `v`.
    #[inline]
    pub fn copies(&self, v: VarId) -> &[u32] {
        &self.copy_module[v * self.r..(v + 1) * self.r]
    }

    /// Per-module count of copy slots (storage-balance histogram).
    pub fn module_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.modules];
        for &md in &self.copy_module {
            loads[md as usize] += 1;
        }
        loads
    }

    /// Structural validation: each variable's copies occupy distinct
    /// modules within range.
    pub fn validate(&self) -> Result<(), String> {
        if self.copy_module.len() != self.m * self.r {
            return Err("copy table has wrong size".into());
        }
        let mut seen = vec![usize::MAX; self.modules];
        for v in 0..self.m {
            for &md in self.copies(v) {
                let md = md as usize;
                if md >= self.modules {
                    return Err(format!(
                        "variable {v} has a copy in nonexistent module {md}"
                    ));
                }
                if seen[md] == v {
                    return Err(format!("variable {v} has two copies in module {md}"));
                }
                seen[md] = v;
            }
        }
        Ok(())
    }

    /// Bits required by the address look-up table each processor must store
    /// (`O(m·r·log M)`) — the figure the paper's conclusion laments.
    pub fn lookup_table_bits(&self) -> u128 {
        let log_m = (self.modules.max(2) as f64).log2().ceil() as u128;
        (self.m as u128) * (self.r as u128) * log_m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_map_is_valid_and_deterministic() {
        let a = MemoryMap::random(100, 32, 5, 1);
        let b = MemoryMap::random(100, 32, 5, 1);
        let c = MemoryMap::random(100, 32, 5, 2);
        assert!(a.validate().is_ok());
        assert_eq!(a.copy_module, b.copy_module);
        assert_ne!(a.copy_module, c.copy_module);
        assert_eq!(a.kind(), MapKind::Random);
    }

    #[test]
    fn random_map_full_redundancy_equals_modules() {
        let map = MemoryMap::random(10, 7, 7, 3);
        assert!(map.validate().is_ok());
        for v in 0..10 {
            let mut mods: Vec<u32> = map.copies(v).to_vec();
            mods.sort_unstable();
            assert_eq!(mods, (0..7).collect::<Vec<u32>>());
        }
    }

    #[test]
    fn striped_map_valid_and_spaced() {
        let map = MemoryMap::striped(50, 16, 4);
        assert!(map.validate().is_ok());
        assert_eq!(map.module_of(0, 0), 0);
        assert_eq!(map.module_of(0, 1), 4);
        assert_eq!(map.module_of(1, 0), 1);
    }

    #[test]
    fn congested_map_detected_invalid_only_if_duplicated() {
        let map = MemoryMap::congested(20, 16, 3);
        // Structurally valid (copies are in distinct modules 0,1,2) but
        // pathologically concentrated.
        assert!(map.validate().is_ok());
        let loads = map.module_loads();
        assert_eq!(loads[0], 20);
        assert_eq!(loads[3], 0);
    }

    #[test]
    fn module_loads_sum_to_all_copies() {
        let map = MemoryMap::random(64, 16, 3, 9);
        let loads = map.module_loads();
        assert_eq!(loads.iter().sum::<usize>(), 64 * 3);
    }

    #[test]
    fn random_map_roughly_balanced() {
        let (m, modules, r) = (2000, 64, 5);
        let map = MemoryMap::random(m, modules, r, 11);
        let loads = map.module_loads();
        let mean = (m * r / modules) as f64;
        for &l in &loads {
            assert!(
                (l as f64) < 2.0 * mean && (l as f64) > 0.4 * mean,
                "load {l} too far from mean {mean}"
            );
        }
    }

    #[test]
    fn lookup_table_bits_formula() {
        let map = MemoryMap::random(1 << 10, 1 << 6, 3, 0);
        assert_eq!(map.lookup_table_bits(), 1024 * 3 * 6);
    }

    #[test]
    #[should_panic(expected = "r <= M")]
    fn too_much_redundancy_rejected() {
        let _ = MemoryMap::random(4, 3, 5, 0);
    }

    #[test]
    fn affine_map_valid_and_deterministic() {
        let a = MemoryMap::affine(500, 64, 5, 3);
        let b = MemoryMap::affine(500, 64, 5, 3);
        let c = MemoryMap::affine(500, 64, 5, 4);
        assert!(a.validate().is_ok());
        assert_eq!(a.copies(17), b.copies(17));
        assert_ne!(a.copy_module, c.copy_module);
        assert_eq!(a.kind(), MapKind::Affine);
    }

    #[test]
    fn affine_map_roughly_balanced() {
        let (m, modules, r) = (2000, 64, 5);
        let map = MemoryMap::affine(m, modules, r, 11);
        let loads = map.module_loads();
        let mean = (m * r / modules) as f64;
        for &l in &loads {
            assert!(
                (l as f64) < 2.5 * mean && (l as f64) > 0.3 * mean,
                "load {l} too far from mean {mean}"
            );
        }
    }

    #[test]
    fn affine_map_probing_keeps_copies_distinct() {
        // Tiny module count forces probe collisions; validity must hold.
        let map = MemoryMap::affine(64, 5, 5, 7);
        assert!(map.validate().is_ok());
    }
}
