//! Replicated memory distribution — the substrate behind every
//! copy-based simulation scheme (Upfal–Wigderson majority rule, as tightened
//! by the paper's Lemma 2).
//!
//! * [`map::MemoryMap`] — where the `r = 2c−1` copies of each of the `m`
//!   variables live among the `M` modules;
//! * [`store::ReplicatedStore`] — the copies themselves: `(value,
//!   timestamp)` pairs with quorum writes and majority (max-timestamp)
//!   reads;
//! * [`expansion::*`] — empirical verification of the expansion property
//!   the protocols rely on (Lemma 1 / Lemma 2);
//! * [`cluster::Clusters`] — the protocols' processor clusters of size
//!   `2c−1`.
//!
//! The correctness core is the *quorum intersection* argument (Thomas 1979,
//! Gifford 1979): any two `c`-subsets of `2c−1` copies intersect, so a read
//! that collects `c` copies always sees at least one copy carrying the most
//! recent write, identified by its timestamp.

pub mod cluster;
pub mod expansion;
pub mod map;
pub mod store;

pub use cluster::Clusters;
pub use expansion::{
    check_sampled, min_live_spread_exhaustive, min_live_spread_greedy, ExpansionReport,
};
pub use map::{MapKind, MemoryMap, ModuleId, VarId};
pub use store::{ReplicatedStore, Value};
