//! A deterministic, cycle-level message-passing network simulator.
//!
//! This is the substrate under the 2DMOT crate: nodes connected by directed
//! unit-capacity, unit-latency links, each node holding a FIFO queue.
//! Behavior (routing, consumption, reply generation) is supplied by the
//! [`Behavior`] trait; the engine provides timing, link arbitration,
//! queueing, and statistics.
//!
//! ## Timing model
//!
//! Per cycle:
//! 1. every occupied link delivers its packet into the destination node's
//!    queue (packets arriving at a **full** queue are dropped and reported —
//!    this is the "collision kill" of the deterministic 2DMOT protocols);
//! 2. every node scans its queue in FIFO order and, for each packet, asks
//!    the behavior to [`Route`] it: a forward claims the target link if it
//!    is free this cycle (one packet per link per cycle — otherwise the
//!    packet stalls in place), a consume removes the packet (optionally
//!    spawning a reply, enqueued for the next cycle), a discard drops it.
//!
//! A packet therefore moves at most one hop per cycle, and contention for a
//! link serializes traffic — latency and congestion are *emergent*, which is
//! what makes the 2DMOT experiments measurements rather than formulas.
//!
//! Everything is deterministic: nodes are processed in index order and
//! queues are FIFO.

use std::collections::VecDeque;

/// Node index in a [`Topology`].
pub type NodeId = usize;
/// Directed-edge index in a [`Topology`].
pub type EdgeId = usize;

/// A directed multigraph with per-node out-edge lists.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    out: Vec<Vec<EdgeId>>,
    edges: Vec<(NodeId, NodeId)>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a node; returns its id (dense, starting at 0).
    pub fn add_node(&mut self) -> NodeId {
        self.out.push(Vec::new());
        self.out.len() - 1
    }

    /// Add `count` nodes; returns the id of the first.
    pub fn add_nodes(&mut self, count: usize) -> NodeId {
        let first = self.out.len();
        for _ in 0..count {
            self.out.push(Vec::new());
        }
        first
    }

    /// Add a directed edge `from → to`; returns its id.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> EdgeId {
        assert!(
            from < self.out.len() && to < self.out.len(),
            "endpoints must exist"
        );
        let id = self.edges.len();
        self.edges.push((from, to));
        self.out[from].push(id);
        id
    }

    /// Add a pair of directed edges (full-duplex link); returns
    /// `(forward, backward)`.
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId) -> (EdgeId, EdgeId) {
        (self.add_edge(a, b), self.add_edge(b, a))
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.out.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Out-edges of a node.
    pub fn out_edges(&self, n: NodeId) -> &[EdgeId] {
        &self.out[n]
    }

    /// `(from, to)` of an edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e]
    }

    /// Maximum total degree (in + out) over all nodes — the quantity the
    /// BDN/DMBDN models bound.
    pub fn max_degree(&self) -> usize {
        let mut deg = vec![0usize; self.nodes()];
        for &(a, b) in &self.edges {
            deg[a] += 1;
            deg[b] += 1;
        }
        deg.into_iter().max().unwrap_or(0)
    }
}

/// Why the engine dropped a packet (reported through the `on_drop`
/// callback of [`Engine::run_until_quiet`]).
///
/// The distinction matters to protocols: a queue-full kill is *transient*
/// (the same packet can be retried next phase and may get through), while a
/// dead link is a *permanent* fault — retrying the **same route** can never
/// succeed, so the protocol should either reroute (retry from a different
/// source) or write the request off instead of spinning on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// Arrived at a node whose queue was full (the deterministic 2DMOT
    /// protocols' "collision kill").
    QueueFull,
    /// Tried to traverse a link marked dead via [`Engine::fail_link`].
    DeadLink,
}

/// What a node does with a packet this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Route {
    /// Send over the given out-edge (must belong to the current node). If
    /// the link is already claimed this cycle the packet stalls in the
    /// queue and is retried next cycle.
    Forward(EdgeId),
    /// Final delivery at this node; [`Behavior::consume`] runs and may
    /// spawn a reply.
    Consume,
    /// Remove the packet silently (counted in [`RunStats::discarded`]).
    Discard,
}

/// Node behavior: pure routing decisions plus consumption.
pub trait Behavior<T> {
    /// Decide what `node` does with `packet`.
    fn route(&mut self, node: NodeId, packet: &mut T, topo: &Topology) -> Route;

    /// Handle a consumed packet; optionally return a reply packet to be
    /// enqueued at this node on the next cycle.
    fn consume(&mut self, node: NodeId, packet: T, topo: &Topology) -> Option<T>;
}

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Per-node queue capacity for packets arriving over links; arrivals
    /// beyond this are dropped (collision kill). Locally spawned/injected
    /// packets are exempt (they model state already at the node).
    pub queue_capacity: usize,
    /// Hard cycle limit — exceeded means livelock; `run_until_quiet`
    /// panics, since every protocol here must drain.
    pub max_cycles: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_capacity: 4,
            max_cycles: 1_000_000,
        }
    }
}

/// Statistics of one engine run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Cycles elapsed until quiescence.
    pub cycles: u64,
    /// Packets consumed (final deliveries).
    pub delivered: u64,
    /// Link-hops traversed (total link utilization).
    pub hops: u64,
    /// Packets dropped on arrival at a full queue.
    pub dropped: u64,
    /// Packets dropped because they were routed onto a dead link
    /// (fault injection via [`Engine::fail_link`]).
    pub link_faulted: u64,
    /// Packets discarded by behavior choice.
    pub discarded: u64,
    /// Largest queue occupancy observed at any node.
    pub max_queue: usize,
}

/// The cycle engine. Owns transient state (queues, link slots); borrows a
/// topology and a behavior per run.
///
/// Work per cycle is proportional to the number of *active* nodes and
/// occupied links, not to the size of the network — large, mostly idle
/// meshes simulate cheaply.
#[derive(Debug)]
pub struct Engine<T> {
    queues: Vec<VecDeque<T>>,
    /// Packet in flight on each edge, delivered at the start of next cycle.
    links: Vec<Option<T>>,
    /// Edges with an in-flight packet.
    occupied: Vec<EdgeId>,
    /// Nodes with a non-empty queue (kept duplicate-free via `is_active`).
    active: Vec<NodeId>,
    is_active: Vec<bool>,
    /// Edges marked dead by fault injection; forwarding onto one drops the
    /// packet (reported with [`DropReason::DeadLink`]).
    dead_links: Vec<bool>,
    cfg: EngineConfig,
    /// Scratch pools, recycled every cycle so a steady-state run allocates
    /// nothing: the delivery list ping-pongs with `occupied`, the round
    /// list with `active`, the kept-queue with each node's queue, and
    /// `spawn_scratch` holds replies spawned mid-cycle.
    arrive_scratch: Vec<EdgeId>,
    round_scratch: Vec<NodeId>,
    kept_scratch: VecDeque<T>,
    spawn_scratch: Vec<(NodeId, T)>,
}

impl<T> Engine<T> {
    /// An engine sized for `topo`.
    pub fn new(topo: &Topology, cfg: EngineConfig) -> Self {
        Engine {
            queues: (0..topo.nodes()).map(|_| VecDeque::new()).collect(),
            links: (0..topo.edge_count()).map(|_| None).collect(),
            occupied: Vec::new(),
            active: Vec::new(),
            is_active: vec![false; topo.nodes()],
            dead_links: vec![false; topo.edge_count()],
            cfg,
            arrive_scratch: Vec::new(),
            round_scratch: Vec::new(),
            kept_scratch: VecDeque::new(),
            spawn_scratch: Vec::new(),
        }
    }

    /// Mark a directed edge as permanently dead: any packet routed onto it
    /// is dropped and reported with [`DropReason::DeadLink`].
    pub fn fail_link(&mut self, e: EdgeId) {
        self.dead_links[e] = true;
    }

    /// Number of edges currently marked dead.
    pub fn dead_link_count(&self) -> usize {
        self.dead_links.iter().filter(|&&d| d).count()
    }

    fn mark_active(&mut self, node: NodeId) {
        if !self.is_active[node] {
            self.is_active[node] = true;
            self.active.push(node);
        }
    }

    /// Inject a packet directly into a node's queue (bypasses capacity:
    /// models work originating at the node).
    pub fn inject(&mut self, node: NodeId, packet: T) {
        self.queues[node].push_back(packet);
        self.mark_active(node);
    }

    /// Run until no packet remains queued or in flight. Returns statistics;
    /// dropped packets are handed to `on_drop` with the [`DropReason`] so
    /// protocols can mark the corresponding requests failed (transiently
    /// for queue overflows, permanently for dead links).
    ///
    /// Panics when `max_cycles` is exceeded (a protocol bug, not a
    /// condition to handle).
    pub fn run_until_quiet<B: Behavior<T>>(
        &mut self,
        topo: &Topology,
        behavior: &mut B,
        mut on_drop: impl FnMut(T, DropReason),
    ) -> RunStats {
        let mut stats = RunStats::default();
        let mut spawned = std::mem::take(&mut self.spawn_scratch);
        debug_assert!(spawned.is_empty());

        while !self.occupied.is_empty() || !self.active.is_empty() {
            if stats.cycles >= self.cfg.max_cycles {
                self.spawn_scratch = spawned;
                panic!(
                    "network did not quiesce within {} cycles (protocol livelock)",
                    self.cfg.max_cycles
                );
            }
            stats.cycles += 1;

            // 1. Deliver in-flight packets (deterministic order). The
            //    delivery list ping-pongs with `occupied` so neither is
            //    reallocated in the steady state.
            let mut arriving =
                std::mem::replace(&mut self.occupied, std::mem::take(&mut self.arrive_scratch));
            arriving.sort_unstable();
            for e in arriving.drain(..) {
                if let Some(p) = self.links[e].take() {
                    let (_, to) = topo.endpoints(e);
                    if self.queues[to].len() >= self.cfg.queue_capacity {
                        stats.dropped += 1;
                        on_drop(p, DropReason::QueueFull);
                    } else {
                        self.queues[to].push_back(p);
                        stats.max_queue = stats.max_queue.max(self.queues[to].len());
                        self.mark_active(to);
                    }
                }
            }
            self.arrive_scratch = arriving;

            // 2. Per active node (in index order), route queued packets.
            //    One packet per out-edge per cycle; stalled packets keep
            //    their FIFO position.
            let mut round =
                std::mem::replace(&mut self.active, std::mem::take(&mut self.round_scratch));
            round.sort_unstable();
            for &node in &round {
                self.is_active[node] = false;
            }
            for node in round.drain(..) {
                if self.queues[node].is_empty() {
                    continue;
                }
                // Drain the node's queue into the kept-scratch deque, then
                // swap the (now empty, capacity intact) queue buffer back
                // into the scratch slot — FIFO order is preserved and no
                // deque is reallocated.
                let mut q = std::mem::take(&mut self.queues[node]);
                let mut kept = std::mem::take(&mut self.kept_scratch);
                debug_assert!(kept.is_empty());
                while let Some(mut p) = q.pop_front() {
                    match behavior.route(node, &mut p, topo) {
                        Route::Forward(e) => {
                            debug_assert_eq!(topo.endpoints(e).0, node, "edge must leave node");
                            if self.dead_links[e] {
                                stats.link_faulted += 1;
                                on_drop(p, DropReason::DeadLink);
                            } else if self.links[e].is_none() {
                                self.links[e] = Some(p);
                                self.occupied.push(e);
                                stats.hops += 1;
                            } else {
                                kept.push_back(p); // stalled: link busy this cycle
                            }
                        }
                        Route::Consume => {
                            stats.delivered += 1;
                            if let Some(reply) = behavior.consume(node, p, topo) {
                                spawned.push((node, reply));
                            }
                        }
                        Route::Discard => {
                            stats.discarded += 1;
                        }
                    }
                }
                if !kept.is_empty() {
                    self.mark_active(node);
                }
                self.queues[node] = kept;
                self.kept_scratch = q;
            }
            self.round_scratch = round;

            // 3. Enqueue replies spawned this cycle (visible next cycle).
            for (node, p) in spawned.drain(..) {
                self.queues[node].push_back(p);
                stats.max_queue = stats.max_queue.max(self.queues[node].len());
                self.mark_active(node);
            }
        }
        self.spawn_scratch = spawned;
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A packet that walks toward `dest` along a path graph.
    #[derive(Debug, Clone)]
    struct WalkPacket {
        dest: NodeId,
        id: usize,
    }

    /// Routes greedily along the single out-edge of a path graph.
    struct LineBehavior {
        consumed: Vec<usize>,
    }

    impl Behavior<WalkPacket> for LineBehavior {
        fn route(&mut self, node: NodeId, p: &mut WalkPacket, topo: &Topology) -> Route {
            if node == p.dest {
                Route::Consume
            } else {
                Route::Forward(topo.out_edges(node)[0])
            }
        }
        fn consume(&mut self, _node: NodeId, p: WalkPacket, _t: &Topology) -> Option<WalkPacket> {
            self.consumed.push(p.id);
            None
        }
    }

    fn line(k: usize) -> Topology {
        let mut t = Topology::new();
        t.add_nodes(k);
        for i in 0..k - 1 {
            t.add_edge(i, i + 1);
        }
        t
    }

    #[test]
    fn unit_latency_per_hop() {
        let topo = line(5); // 0 -> 1 -> 2 -> 3 -> 4
        let mut eng = Engine::new(&topo, EngineConfig::default());
        eng.inject(0, WalkPacket { dest: 4, id: 1 });
        let mut b = LineBehavior { consumed: vec![] };
        let stats = eng.run_until_quiet(&topo, &mut b, |_, _| {});
        assert_eq!(b.consumed, vec![1]);
        assert_eq!(stats.hops, 4);
        // 4 hops at 1 cycle each + the consume cycle.
        assert_eq!(stats.cycles, 5);
        assert_eq!(stats.delivered, 1);
    }

    #[test]
    fn link_contention_serializes() {
        let topo = line(3);
        let mut eng = Engine::new(&topo, EngineConfig::default());
        for id in 0..4 {
            eng.inject(0, WalkPacket { dest: 2, id });
        }
        let mut b = LineBehavior { consumed: vec![] };
        let stats = eng.run_until_quiet(&topo, &mut b, |_, _| {});
        assert_eq!(b.consumed.len(), 4);
        // FIFO order preserved.
        assert_eq!(b.consumed, vec![0, 1, 2, 3]);
        // Pipeline: first arrives after 2 hops (+consume), one more each cycle.
        assert!(
            stats.cycles >= 6,
            "4 packets over a shared link must serialize"
        );
        assert_eq!(stats.hops, 8);
    }

    #[test]
    fn queue_overflow_drops_and_reports() {
        // Two sources feed one sink whose queue holds 1 packet.
        let mut topo = Topology::new();
        let s0 = topo.add_node();
        let s1 = topo.add_node();
        let sink = topo.add_node();
        topo.add_edge(s0, sink);
        topo.add_edge(s1, sink);
        let mut eng = Engine::new(
            &topo,
            EngineConfig {
                queue_capacity: 1,
                max_cycles: 100,
            },
        );
        eng.inject(s0, WalkPacket { dest: sink, id: 10 });
        eng.inject(s1, WalkPacket { dest: sink, id: 11 });
        let mut b = LineBehavior { consumed: vec![] };
        let mut dropped = Vec::new();
        let stats = eng.run_until_quiet(&topo, &mut b, |p, r| dropped.push((p.id, r)));
        // Both arrive in the same cycle at a capacity-1 queue: one dies.
        assert_eq!(stats.dropped, 1);
        assert_eq!(dropped.len(), 1);
        assert_eq!(dropped[0].1, DropReason::QueueFull);
        assert_eq!(b.consumed.len(), 1);
    }

    /// The queue-full "collision kill" path: dropped packets are counted
    /// and reported, and the engine stays deterministic afterward — the
    /// same injection pattern on the same engine reproduces the same drops,
    /// deliveries, and cycle count.
    #[test]
    fn queue_overflow_is_counted_and_engine_stays_deterministic() {
        // Four sources feed one sink whose queue holds 2 packets.
        let mut topo = Topology::new();
        let sources: Vec<NodeId> = (0..4).map(|_| topo.add_node()).collect();
        let sink = topo.add_node();
        for &s in &sources {
            topo.add_edge(s, sink);
        }
        let mut eng = Engine::new(
            &topo,
            EngineConfig {
                queue_capacity: 2,
                max_cycles: 100,
            },
        );
        let run = |eng: &mut Engine<WalkPacket>| {
            for (id, &s) in sources.iter().enumerate() {
                eng.inject(s, WalkPacket { dest: sink, id });
            }
            let mut b = LineBehavior { consumed: vec![] };
            let mut dropped = Vec::new();
            let stats = eng.run_until_quiet(&topo, &mut b, |p, r| {
                assert_eq!(r, DropReason::QueueFull);
                dropped.push(p.id);
            });
            (stats, b.consumed, dropped)
        };
        let (s1, c1, d1) = run(&mut eng);
        // All four arrive in the same cycle; capacity 2 kills exactly two,
        // and every packet is accounted for exactly once.
        assert_eq!(s1.dropped, 2);
        assert_eq!(d1.len(), 2);
        assert_eq!(c1.len() + d1.len(), 4);
        // A drained engine is reusable and bit-deterministic: same batch,
        // same outcome.
        let (s2, c2, d2) = run(&mut eng);
        assert_eq!(s2.dropped, s1.dropped);
        assert_eq!(s2.cycles, s1.cycles);
        assert_eq!(c2, c1);
        assert_eq!(d2, d1);
    }

    #[test]
    fn dead_link_drops_at_forward_time() {
        let topo = line(4); // 0 -> 1 -> 2 -> 3
        let mut eng = Engine::new(&topo, EngineConfig::default());
        // Kill the 1 -> 2 edge: packets die when node 1 tries to forward.
        eng.fail_link(1);
        assert_eq!(eng.dead_link_count(), 1);
        eng.inject(0, WalkPacket { dest: 3, id: 7 });
        let mut b = LineBehavior { consumed: vec![] };
        let mut dropped = Vec::new();
        let stats = eng.run_until_quiet(&topo, &mut b, |p, r| dropped.push((p.id, r)));
        assert!(b.consumed.is_empty());
        assert_eq!(stats.link_faulted, 1);
        assert_eq!(stats.dropped, 0);
        assert_eq!(dropped, vec![(7, DropReason::DeadLink)]);
        // Only the 0 -> 1 hop was traversed.
        assert_eq!(stats.hops, 1);
    }

    #[test]
    fn consume_can_spawn_reply() {
        // 0 <-> 1; a request 0->1 spawns a reply 1->0.
        let mut topo = Topology::new();
        let a = topo.add_node();
        let bnode = topo.add_node();
        let (fwd, back) = topo.add_duplex(a, bnode);

        #[derive(Debug)]
        struct ReqRep {
            is_reply: bool,
        }
        struct RB {
            replies_received: usize,
            fwd: EdgeId,
            back: EdgeId,
            a: NodeId,
            b: NodeId,
        }
        impl Behavior<ReqRep> for RB {
            fn route(&mut self, node: NodeId, p: &mut ReqRep, _t: &Topology) -> Route {
                match (node, p.is_reply) {
                    (n, false) if n == self.a => Route::Forward(self.fwd),
                    (n, false) if n == self.b => Route::Consume,
                    (n, true) if n == self.b => Route::Forward(self.back),
                    (n, true) if n == self.a => Route::Consume,
                    _ => unreachable!(),
                }
            }
            fn consume(&mut self, node: NodeId, p: ReqRep, _t: &Topology) -> Option<ReqRep> {
                if p.is_reply {
                    self.replies_received += 1;
                    None
                } else {
                    debug_assert_eq!(node, self.b);
                    Some(ReqRep { is_reply: true })
                }
            }
        }

        let mut eng = Engine::new(&topo, EngineConfig::default());
        eng.inject(a, ReqRep { is_reply: false });
        let mut b = RB {
            replies_received: 0,
            fwd,
            back,
            a,
            b: bnode,
        };
        let stats = eng.run_until_quiet(&topo, &mut b, |_, _| {});
        assert_eq!(b.replies_received, 1);
        assert_eq!(stats.delivered, 2); // request + reply
        assert_eq!(stats.hops, 2);
    }

    #[test]
    #[should_panic(expected = "livelock")]
    fn livelock_detected() {
        // A packet that forwards around a 2-cycle forever.
        let mut topo = Topology::new();
        let a = topo.add_node();
        let b = topo.add_node();
        topo.add_duplex(a, b);
        struct Spin;
        impl Behavior<u32> for Spin {
            fn route(&mut self, node: NodeId, _p: &mut u32, topo: &Topology) -> Route {
                Route::Forward(topo.out_edges(node)[0])
            }
            fn consume(&mut self, _n: NodeId, _p: u32, _t: &Topology) -> Option<u32> {
                None
            }
        }
        let mut eng = Engine::new(
            &topo,
            EngineConfig {
                queue_capacity: 4,
                max_cycles: 50,
            },
        );
        eng.inject(a, 0);
        let _ = eng.run_until_quiet(&topo, &mut Spin, |_, _| {});
    }

    #[test]
    fn topology_accessors() {
        let mut t = Topology::new();
        let n0 = t.add_node();
        let n1 = t.add_node();
        let e = t.add_edge(n0, n1);
        assert_eq!(t.nodes(), 2);
        assert_eq!(t.edge_count(), 1);
        assert_eq!(t.endpoints(e), (n0, n1));
        assert_eq!(t.out_edges(n0), &[e]);
        assert_eq!(t.max_degree(), 1);
        let first = t.add_nodes(3);
        assert_eq!(first, 2);
        assert_eq!(t.nodes(), 5);
    }

    #[test]
    fn distinct_out_edges_move_in_same_cycle() {
        // One node fans out to two sinks; both packets leave in cycle 1.
        let mut topo = Topology::new();
        let src = topo.add_node();
        let s1 = topo.add_node();
        let s2 = topo.add_node();
        let e1 = topo.add_edge(src, s1);
        let e2 = topo.add_edge(src, s2);

        struct Fan {
            e1: EdgeId,
            e2: EdgeId,
            src: NodeId,
            got: usize,
        }
        impl Behavior<usize> for Fan {
            fn route(&mut self, node: NodeId, p: &mut usize, _t: &Topology) -> Route {
                if node == self.src {
                    Route::Forward(if *p == 0 { self.e1 } else { self.e2 })
                } else {
                    Route::Consume
                }
            }
            fn consume(&mut self, _n: NodeId, _p: usize, _t: &Topology) -> Option<usize> {
                self.got += 1;
                None
            }
        }

        let mut eng = Engine::new(&topo, EngineConfig::default());
        eng.inject(src, 0);
        eng.inject(src, 1);
        let mut b = Fan {
            e1,
            e2,
            src,
            got: 0,
        };
        let stats = eng.run_until_quiet(&topo, &mut b, |_, _| {});
        assert_eq!(b.got, 2);
        // Both depart cycle 1, arrive cycle 2, consumed cycle 2.
        assert_eq!(stats.cycles, 2);
    }
}
