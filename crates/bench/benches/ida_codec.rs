//! Benchmarks for Rabin dispersal encode/decode and the Schuster store
//! (experiment E8's cost model).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois::Gf16;
use ida::{DecodeCache, IdaCode, SchusterStore};

fn bench_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("ida_codec");
    for (b, d) in [(8usize, 12usize), (16, 24), (32, 48)] {
        let code = IdaCode::new(b, d);
        let data: Vec<Gf16> = (0..b as u16).map(|x| Gf16(x.wrapping_mul(2027))).collect();
        let shares = code.encode(&data);
        let quorum: Vec<(usize, Gf16)> = (0..b).map(|i| (d - 1 - i, shares[d - 1 - i])).collect();
        g.bench_function(format!("encode_b{b}_d{d}"), |bch| {
            bch.iter(|| code.encode(black_box(&data)))
        });
        g.bench_function(format!("decode_b{b}_d{d}"), |bch| {
            bch.iter(|| code.decode(black_box(&quorum)).unwrap())
        });
        // The flat data plane's path: warm decode-matrix cache, reusable
        // buffers — measures the per-access win over the cold decode.
        let mut cache = DecodeCache::new();
        let mut out = Vec::new();
        code.decode_into(&quorum, &mut cache, &mut out);
        g.bench_function(format!("decode_cached_b{b}_d{d}"), |bch| {
            bch.iter(|| {
                code.decode_into(black_box(&quorum), &mut cache, &mut out);
                out[0]
            })
        });
        g.bench_function(format!("encode_into_b{b}_d{d}"), |bch| {
            let mut enc = Vec::new();
            bch.iter(|| {
                code.encode_into(black_box(&data), &mut enc);
                enc[0]
            })
        });
    }
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("schuster_store");
    let mut store = SchusterStore::new(1024, 64, 8, 12);
    g.bench_function("write", |bch| {
        let mut v = 0usize;
        bch.iter(|| {
            v = (v + 7) % 1024;
            store.write(v, v as i64)
        })
    });
    let mut store2 = SchusterStore::new(1024, 64, 8, 12);
    g.bench_function("read", |bch| {
        let mut v = 0usize;
        bch.iter(|| {
            v = (v + 13) % 1024;
            store2.read(v)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_codec, bench_store);
criterion_main!(benches);
