//! Benchmarks for 2DMOT routing throughput and the native tree primitives
//! (experiments E5, E12).

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use mot::{primitives, MotNetwork, MotRequest, MotTopology};

fn bench_routing(c: &mut Criterion) {
    let mut g = c.benchmark_group("mot_routing");
    g.sample_size(20);
    for side in [16usize, 64] {
        let mut net: MotNetwork<usize> = MotNetwork::new(side);
        let make_reqs = |k: usize| -> Vec<MotRequest<usize>> {
            (0..k)
                .map(|i| MotRequest {
                    to_root: false,
                    src_root: (i * 3) % side,
                    row: (i * 5) % side,
                    col: (i * 7) % side,
                    payload: i,
                })
                .collect()
        };
        g.bench_function(format!("batch16_side{side}"), |bch| {
            bch.iter_batched(
                || make_reqs(16),
                |reqs| net.route_batch(black_box(reqs), 4, |_, _, _| {}),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_primitives(c: &mut Criterion) {
    let mut g = c.benchmark_group("mot_primitives");
    g.sample_size(20);
    for side in [64usize, 256] {
        let mot = MotTopology::new(side);
        let a: Vec<i64> = (0..side * side).map(|i| (i % 17) as i64 - 8).collect();
        let x: Vec<i64> = (0..side).map(|j| j as i64).collect();
        g.bench_function(format!("matvec_side{side}"), |bch| {
            bch.iter(|| primitives::matvec(&mot, black_box(&a), black_box(&x)))
        });
    }
    g.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("mot_build");
    g.sample_size(10);
    for side in [64usize, 128] {
        g.bench_function(format!("topology_side{side}"), |bch| {
            bch.iter(|| MotTopology::new(black_box(side)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_routing, bench_primitives, bench_build);
criterion_main!(benches);
