//! Benchmarks for memory-map generation, expansion checking, and the
//! replicated store (experiment E2's machinery).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use memdist::{check_sampled, min_live_spread_greedy, MemoryMap, ReplicatedStore};
use simrng::rng_from_seed;

fn bench_maps(c: &mut Criterion) {
    let mut g = c.benchmark_group("memdist");
    g.sample_size(20);
    g.bench_function("map_random_m4096_r7", |bch| {
        bch.iter(|| MemoryMap::random(4096, 512, 7, black_box(1)))
    });

    let map = MemoryMap::random(4096, 512, 7, 1);
    let vars: Vec<usize> = (0..9).map(|i| i * 31).collect();
    g.bench_function("greedy_spread_q9", |bch| {
        bch.iter(|| min_live_spread_greedy(&map, black_box(&vars), 4))
    });

    g.bench_function("check_sampled_20", |bch| {
        let mut rng = rng_from_seed(2);
        bch.iter(|| check_sampled(&map, 4, 4, 9, 20, &mut rng))
    });
    g.finish();
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("replicated_store");
    let map = MemoryMap::random(4096, 512, 7, 1);
    let mut store = ReplicatedStore::new(&map);
    let quorum = [0usize, 2, 4, 6];
    g.bench_function("write_quorum_c4", |bch| {
        let mut ts = 0u64;
        bch.iter(|| {
            ts += 1;
            store.write_quorum(black_box(17), &quorum, 42, ts)
        })
    });
    g.bench_function("read_majority_c4", |bch| {
        bch.iter(|| store.read_majority(black_box(17), &quorum))
    });
    g.finish();
}

criterion_group!(benches, bench_maps, bench_store);
criterion_main!(benches);
