//! Microbenchmarks for GF(2^16) field arithmetic (substrate of the IDA
//! scheme, experiment E8).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois::{Gf16, Matrix};

fn bench_field(c: &mut Criterion) {
    let mut g = c.benchmark_group("galois");
    let a = Gf16(0x1234);
    let b = Gf16(0xBEEF);
    g.bench_function("mul", |bch| bch.iter(|| black_box(a).mul(black_box(b))));
    g.bench_function("inv", |bch| bch.iter(|| black_box(a).inv()));
    g.bench_function("pow", |bch| bch.iter(|| black_box(a).pow(black_box(12345))));
    g.finish();
}

fn bench_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("galois_matrix");
    let m = Matrix::vandermonde(24, 16);
    let v: Vec<Gf16> = (1..=16).map(Gf16).collect();
    g.bench_function("vandermonde_24x16_mul_vec", |bch| {
        bch.iter(|| m.mul_vec(black_box(&v)))
    });
    let sq = Matrix::vandermonde(16, 16);
    g.bench_function("invert_16x16", |bch| bch.iter(|| sq.inverse().unwrap()));
    g.finish();
}

criterion_group!(benches, bench_field, bench_matrix);
criterion_main!(benches);
