//! Microbenchmarks for GF(2^16) field arithmetic (substrate of the IDA
//! scheme, experiment E8).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use galois::{Gf16, Matrix};

fn bench_field(c: &mut Criterion) {
    let mut g = c.benchmark_group("galois");
    let a = Gf16(0x1234);
    let b = Gf16(0xBEEF);
    g.bench_function("mul", |bch| bch.iter(|| black_box(a).mul(black_box(b))));
    g.bench_function("inv", |bch| bch.iter(|| black_box(a).inv()));
    g.bench_function("pow", |bch| bch.iter(|| black_box(a).pow(black_box(12345))));
    g.finish();
}

/// Slice kernels: the dispatched path (SIMD where the CPU has it,
/// scalar otherwise) against the always-scalar oracle, across the row
/// lengths the IDA codec actually touches (64 = one small stripe,
/// 1024 = E15 acceptance point, 4096 = headroom).
fn bench_slice_kernels(c: &mut Criterion) {
    use galois::kernels::{gf_mul_slice_scalar, gf_mulacc_slice_scalar};
    use galois::{active_path, gf_mul_slice, gf_mulacc_slice, MulTable};

    let mut g = c.benchmark_group("galois_slice");
    let tbl = MulTable::new(Gf16(0x2BEE));
    for &len in &[64usize, 1024, 4096] {
        let src: Vec<Gf16> = (0..len)
            .map(|i| Gf16((i as u16).wrapping_mul(257)))
            .collect();
        let mut dst = src.clone();
        let path = active_path().label();
        g.bench_function(format!("mul_slice/{path}/{len}"), |bch| {
            bch.iter(|| {
                gf_mul_slice(black_box(&mut dst), black_box(&tbl));
                black_box(dst[0])
            })
        });
        g.bench_function(format!("mul_slice/scalar/{len}"), |bch| {
            bch.iter(|| {
                gf_mul_slice_scalar(black_box(&mut dst), black_box(&tbl));
                black_box(dst[0])
            })
        });
        g.bench_function(format!("mulacc_slice/{path}/{len}"), |bch| {
            bch.iter(|| {
                gf_mulacc_slice(black_box(&mut dst), black_box(&src), black_box(&tbl));
                black_box(dst[0])
            })
        });
        g.bench_function(format!("mulacc_slice/scalar/{len}"), |bch| {
            bch.iter(|| {
                gf_mulacc_slice_scalar(black_box(&mut dst), black_box(&src), black_box(&tbl));
                black_box(dst[0])
            })
        });
    }
    g.finish();
}

fn bench_matrix(c: &mut Criterion) {
    let mut g = c.benchmark_group("galois_matrix");
    let m = Matrix::vandermonde(24, 16);
    let v: Vec<Gf16> = (1..=16).map(Gf16).collect();
    g.bench_function("vandermonde_24x16_mul_vec", |bch| {
        bch.iter(|| m.mul_vec(black_box(&v)))
    });
    let sq = Matrix::vandermonde(16, 16);
    g.bench_function("invert_16x16", |bch| bch.iter(|| sq.inverse().unwrap()));
    // The table-prepared form the IDA hot path actually runs: rows
    // pre-expanded to MulTables, output written into a caller buffer.
    let prepared = galois::PreparedMatrix::from_matrix(&m);
    let mut out = vec![Gf16(0); prepared.rows()];
    g.bench_function("vandermonde_24x16_prepared_mul_vec_into", |bch| {
        bch.iter(|| {
            prepared.mul_vec_into(black_box(&v), black_box(&mut out));
            black_box(out[0])
        })
    });
    g.finish();
}

criterion_group!(benches, bench_field, bench_slice_kernels, bench_matrix);
criterion_main!(benches);
