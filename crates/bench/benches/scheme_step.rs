//! Whole-scheme benchmarks: one uniform P-RAM step per iteration
//! (experiments E4, E5, E8, E11 — the per-table regeneration is in the
//! `repro` binary; these measure the simulator's own speed).
//!
//! The whole zoo is driven through `Box<dyn Scheme>`: adding a scheme to
//! [`SchemeKind::ALL`] adds its benchmark.

use cr_core::{SchemeKind, SimBuilder};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use simrng::rng_from_seed;

fn step_inputs(n: usize, m: usize, seed: u64) -> (Vec<usize>, Vec<(usize, i64)>) {
    let mut rng = rng_from_seed(seed);
    let p = workloads::uniform(n, m, 0.3, &mut rng);
    (p.reads, p.writes)
}

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheme_step");
    g.sample_size(20);

    for (i, kind) in SchemeKind::ALL.into_iter().enumerate() {
        // The cycle-level 2DMOT schemes route every packet through the
        // mesh; keep their instances small enough to iterate.
        let n = match kind {
            SchemeKind::Hp2dmotLeaves | SchemeKind::Lpp2dmot => 16,
            _ => 64,
        };
        let m = n * n;
        let mut scheme = SimBuilder::new(n, m)
            .kind(kind)
            .build()
            .expect("default regimes are feasible");
        g.bench_function(format!("{}_n{n}", kind.name()), |bch| {
            bch.iter_batched(
                || step_inputs(n, m, 11 + i as u64),
                |(r, w)| scheme.access(&r, &w),
                BatchSize::SmallInput,
            )
        });
    }

    g.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
