//! Whole-scheme benchmarks: one uniform P-RAM step per iteration
//! (experiments E4, E5, E8, E11 — the per-table regeneration is in the
//! `repro` binary; these measure the simulator's own speed).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use cr_core::{HashedDmmpc, Hp2dmotLeaves, HpDmmpc, IdaShared, UwMpc};
use pram_machine::SharedMemory;
use simrng::rng_from_seed;

fn step_inputs(n: usize, m: usize, seed: u64) -> (Vec<usize>, Vec<(usize, i64)>) {
    let mut rng = rng_from_seed(seed);
    let p = workloads::uniform(n, m, 0.3, &mut rng);
    (p.reads, p.writes)
}

fn bench_schemes(c: &mut Criterion) {
    let n = 64;
    let m = n * n;
    let mut g = c.benchmark_group("scheme_step");
    g.sample_size(20);

    let mut hp = HpDmmpc::for_pram(n, m);
    g.bench_function("hp_dmmpc_n64", |bch| {
        bch.iter_batched(
            || step_inputs(n, m, 11),
            |(r, w)| hp.access(&r, &w),
            BatchSize::SmallInput,
        )
    });

    let mut uw = UwMpc::for_pram(n, m);
    g.bench_function("uw_mpc_n64", |bch| {
        bch.iter_batched(
            || step_inputs(n, m, 12),
            |(r, w)| uw.access(&r, &w),
            BatchSize::SmallInput,
        )
    });

    let n_mot = 16;
    let m_mot = n_mot * n_mot;
    let mut hpm = Hp2dmotLeaves::for_pram(n_mot, m_mot);
    g.bench_function("hp_2dmot_n16", |bch| {
        bch.iter_batched(
            || step_inputs(n_mot, m_mot, 13),
            |(r, w)| hpm.access(&r, &w),
            BatchSize::SmallInput,
        )
    });

    let mut hashed = HashedDmmpc::new(n, m, 512, 14);
    g.bench_function("hashed_dmmpc_n64", |bch| {
        bch.iter_batched(
            || step_inputs(n, m, 14),
            |(r, w)| hashed.access(&r, &w),
            BatchSize::SmallInput,
        )
    });

    let mut ida_mem = IdaShared::for_pram(n, m);
    g.bench_function("ida_n64", |bch| {
        bch.iter_batched(
            || step_inputs(n, m, 15),
            |(r, w)| ida_mem.access(&r, &w),
            BatchSize::SmallInput,
        )
    });

    g.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
