//! `loadgen` — the TCP load generator behind `repro loadgen`.
//!
//! Opens `sessions` concurrent sessions spread across `conns` TCP
//! connections against a running `repro serve` instance, drives each
//! through `steps` workload steps in batched `STEP` commands, and reports
//! sustained steps/sec plus the server's own merged p50/p99 step latency
//! (`INFO`). All sessions are opened before the first step and stay open
//! until after the measurement — the concurrency is held, not peak-burst.

use cr_core::SchemeKind;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Barrier;
use std::time::Instant;

/// What a load-generation run drives.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Server address (`repro serve`'s `--addr`).
    pub addr: String,
    /// Concurrent sessions to hold open.
    pub sessions: usize,
    /// TCP connections (client threads) to spread them over.
    pub conns: usize,
    /// Steps per session.
    pub steps: u64,
    /// Steps per `STEP`/`STEPN` command.
    pub batch: u64,
    /// Commands kept in flight per connection. `1` is classic ping-pong
    /// `STEP`; above that, each connection writes windows of `STEPN`
    /// frames in one burst and then collects the replies in order —
    /// the pipelining the server's deferred-flush write path and the
    /// shards' drain loops are built for.
    pub pipeline: usize,
    /// Scheme every session runs.
    pub scheme: SchemeKind,
    /// Per-session processors.
    pub n: usize,
    /// Per-session memory cells.
    pub m: usize,
    /// Base seed (session i gets a mixed derivative).
    pub seed: u64,
    /// Static module-fault fraction injected at `OPEN` (0 = none).
    /// Masked faults are exactly what the verification plane is built to
    /// certify: a `--faults` run should still scrape `violations=0`.
    pub faults: f64,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            addr: "127.0.0.1:7077".to_string(),
            sessions: 1024,
            conns: 8,
            steps: 32,
            batch: 8,
            pipeline: 1,
            scheme: SchemeKind::HpDmmpc,
            n: 16,
            m: 64,
            seed: simrng::DEFAULT_SEED,
            faults: 0.0,
        }
    }
}

impl LoadgenConfig {
    /// The CI-sized subset (`--quick`).
    pub fn quick(mut self) -> Self {
        self.sessions = 64;
        self.conns = 4;
        self.steps = 8;
        self
    }
}

/// What a run measured.
#[derive(Debug, Clone)]
pub struct LoadgenReport {
    /// Scheme name served.
    pub scheme: &'static str,
    /// Sessions held open through the window.
    pub sessions: usize,
    /// Connections used.
    pub conns: usize,
    /// Commands kept in flight per connection (1 = ping-pong).
    pub pipeline: usize,
    /// Server shard count (from `INFO`).
    pub shards: usize,
    /// Total steps driven.
    pub steps: u64,
    /// Wall-clock of the stepping window (seconds).
    pub elapsed_sec: f64,
    /// Sustained client-observed throughput.
    pub steps_per_sec: f64,
    /// Server-side median step latency (µs).
    pub p50_us: f64,
    /// Server-side 99th-percentile step latency (µs).
    pub p99_us: f64,
}

impl LoadgenReport {
    /// One JSON row, `repro --json-out` compatible.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"experiment\":\"loadgen\",\"scheme\":\"{}\",\"sessions\":{},",
                "\"conns\":{},\"pipeline\":{},\"shards\":{},\"steps\":{},",
                "\"steps_per_sec\":{:.2},\"p50_us\":{:.2},\"p99_us\":{:.2}}}"
            ),
            self.scheme,
            self.sessions,
            self.conns,
            self.pipeline,
            self.shards,
            self.steps,
            self.steps_per_sec,
            self.p50_us,
            self.p99_us,
        )
    }

    /// Human summary for the terminal.
    pub fn render(&self) -> String {
        format!(
            "loadgen: {} sessions ({}) over {} conns{} against {} shards:\n\
             {} steps in {:.2}s = {:.0} steps/sec sustained; \
             server p50 {:.1}us, p99 {:.1}us per step",
            self.sessions,
            self.scheme,
            self.conns,
            if self.pipeline > 1 {
                format!(" (pipeline {})", self.pipeline)
            } else {
                String::new()
            },
            self.shards,
            self.steps,
            self.elapsed_sec,
            self.steps_per_sec,
            self.p50_us,
            self.p99_us,
        )
    }
}

struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    fn connect(addr: &str) -> Result<Conn, String> {
        let stream =
            TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream.set_nodelay(true).ok();
        Ok(Conn {
            reader: BufReader::new(
                stream
                    .try_clone()
                    .map_err(|e| format!("clone stream: {e}"))?,
            ),
            writer: stream,
        })
    }

    fn roundtrip(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("send: {e}"))?;
        let mut reply = String::new();
        self.reader
            .read_line(&mut reply)
            .map_err(|e| format!("recv: {e}"))?;
        let reply = reply.trim_end().to_string();
        if reply.starts_with("OK") {
            Ok(reply)
        } else {
            Err(format!("server replied: {reply} (to: {line})"))
        }
    }

    /// Write a pre-framed window of commands in one burst, then read one
    /// reply line per command. The server replies strictly in request
    /// order, so no reply-to-request matching is needed; every reply
    /// must be `OK`.
    fn pipeline_window(&mut self, frames: &str, replies: usize) -> Result<Vec<String>, String> {
        self.writer
            .write_all(frames.as_bytes())
            .map_err(|e| format!("send window: {e}"))?;
        let mut out = Vec::with_capacity(replies);
        for i in 0..replies {
            let mut reply = String::new();
            self.reader
                .read_line(&mut reply)
                .map_err(|e| format!("recv window reply {i}: {e}"))?;
            let reply = reply.trim_end().to_string();
            if !reply.starts_with("OK") {
                return Err(format!("server replied: {reply} (in a pipelined window)"));
            }
            out.push(reply);
        }
        Ok(out)
    }

    /// Round-trip a command whose reply header announces `lines=K`
    /// payload lines (`INFO`, `METRICS`, `EVENTS`); drains exactly K.
    fn roundtrip_multi(&mut self, line: &str) -> Result<(String, Vec<String>), String> {
        let header = self.roundtrip(line)?;
        let count: usize = reply_field(&header, "lines")
            .and_then(|v| v.parse().ok())
            .ok_or_else(|| format!("no lines= in: {header}"))?;
        let mut payload = Vec::with_capacity(count);
        for _ in 0..count {
            let mut l = String::new();
            self.reader
                .read_line(&mut l)
                .map_err(|e| format!("recv payload: {e}"))?;
            payload.push(l.trim_end().to_string());
        }
        Ok((header, payload))
    }
}

/// One-shot scrape of a multi-line verb (`METRICS`, `EVENTS [sid]`,
/// `INFO`) against a running server: returns the header line and the
/// payload lines it announced. Behind `repro metrics` / `repro events`.
pub fn scrape(addr: &str, command: &str) -> Result<(String, Vec<String>), String> {
    Conn::connect(addr)?.roundtrip_multi(command)
}

/// One-shot scrape of a single-line verb (`VERIFY [sid]`, `STATS`,
/// `TRACE`) against a running server: returns the `OK ...` reply line.
/// Behind `repro verify`.
pub fn scrape_line(addr: &str, command: &str) -> Result<String, String> {
    Conn::connect(addr)?.roundtrip(command)
}

/// Pull `key=value` out of a reply line.
pub fn reply_field<'a>(reply: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("{key}=");
    reply
        .split_ascii_whitespace()
        .find_map(|tok| tok.strip_prefix(tag.as_str()))
}

/// Run the load. Connections open their session share, rendezvous at a
/// barrier (so the full concurrency exists before any step), drive
/// batched steps to completion, then `CLOSE` every session they opened —
/// a close that fails proves the session was evicted mid-run (the
/// measurement was not at the claimed concurrency), and closing keeps
/// repeated runs against one long-lived server from pinning abandoned
/// sessions until their TTL.
pub fn run(cfg: &LoadgenConfig) -> Result<LoadgenReport, String> {
    let conns = cfg.conns.max(1).min(cfg.sessions.max(1));
    let batch = cfg.batch.clamp(1, cfg.steps.max(1));
    let barrier = Barrier::new(conns);
    let results: Vec<Result<(u64, f64), String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let barrier = &barrier;
                scope.spawn(move || -> Result<(u64, f64), String> {
                    // Setup must not early-return: every thread has to
                    // reach the barrier or a single failed connect would
                    // leave its siblings waiting forever.
                    let setup = (|| -> Result<(Conn, Vec<String>), String> {
                        let mut conn = Conn::connect(&cfg.addr)?;
                        // This thread's slice of the session count.
                        let mine = cfg.sessions / conns + usize::from(c < cfg.sessions % conns);
                        let mut sids = Vec::with_capacity(mine);
                        for i in 0..mine {
                            let seed = cfg
                                .seed
                                .wrapping_add(simrng::mix64((c * cfg.sessions + i) as u64));
                            let faults = if cfg.faults > 0.0 {
                                format!(" faults={}", cfg.faults)
                            } else {
                                String::new()
                            };
                            let reply = conn.roundtrip(&format!(
                                "OPEN {} {} {} seed={seed}{faults}",
                                cfg.n,
                                cfg.m,
                                cfg.scheme.name()
                            ))?;
                            let sid = reply_field(&reply, "sid")
                                .ok_or_else(|| format!("no sid in: {reply}"))?;
                            sids.push(sid.to_string());
                        }
                        Ok((conn, sids))
                    })();
                    barrier.wait(); // every session everywhere is open
                    let (mut conn, sids) = setup?;
                    let t0 = Instant::now();
                    let mut steps = 0u64;
                    let mut left = cfg.steps;
                    let window = cfg.pipeline.max(1);
                    let mut frames = String::new();
                    while left > 0 {
                        let burst = batch.min(left);
                        if window == 1 {
                            for sid in &sids {
                                let reply =
                                    conn.roundtrip(&format!("STEP {sid} uniform {burst}"))?;
                                steps += reply_field(&reply, "executed")
                                    .and_then(|v| v.parse::<u64>().ok())
                                    .ok_or_else(|| format!("no executed in: {reply}"))?;
                            }
                        } else {
                            for chunk in sids.chunks(window) {
                                frames.clear();
                                for sid in chunk {
                                    frames.push_str(&format!("STEPN {sid} {burst}\n"));
                                }
                                for reply in conn.pipeline_window(&frames, chunk.len())? {
                                    steps += reply_field(&reply, "executed")
                                        .and_then(|v| v.parse::<u64>().ok())
                                        .ok_or_else(|| format!("no executed in: {reply}"))?;
                                }
                            }
                        }
                        left -= burst;
                    }
                    let elapsed = t0.elapsed().as_secs_f64();
                    // Post-measurement cleanup doubling as the liveness
                    // proof: every session this thread opened must still
                    // close cleanly.
                    for sid in &sids {
                        conn.roundtrip(&format!("CLOSE {sid}"))
                            .map_err(|e| format!("session {sid} did not survive the run: {e}"))?;
                    }
                    Ok((steps, elapsed))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("client thread panicked".into()))
            })
            .collect()
    });

    let mut steps = 0u64;
    // The measurement window is the slowest connection's stepping phase
    // (all of them started together at the barrier).
    let mut elapsed = 0f64;
    for r in results {
        let (s, e) = r?;
        steps += s;
        elapsed = elapsed.max(e);
    }
    let elapsed = elapsed.max(1e-9);
    // One more connection reads the merged server-side view. Note the
    // histogram behind p50/p99 covers the server's lifetime — against a
    // fresh server (CI smoke, benches) that is exactly this run.
    let mut conn = Conn::connect(&cfg.addr)?;
    let (info, _per_shard) = conn.roundtrip_multi("INFO")?;
    let get = |key: &str| -> Result<f64, String> {
        reply_field(&info, key)
            .and_then(|v| v.parse::<f64>().ok())
            .ok_or_else(|| format!("no {key} in: {info}"))
    };
    Ok(LoadgenReport {
        scheme: cfg.scheme.name(),
        sessions: cfg.sessions,
        conns,
        pipeline: cfg.pipeline.max(1),
        shards: get("shards")? as usize,
        steps,
        elapsed_sec: elapsed,
        steps_per_sec: steps as f64 / elapsed,
        p50_us: get("p50us")?,
        p99_us: get("p99us")?,
    })
}
