//! `pram-bench` — the reproduction harness.
//!
//! One module per experiment (E1–E12, per DESIGN.md §4); each returns its
//! rendered tables as a `String` so the `repro` binary, the integration
//! tests, and EXPERIMENTS.md all see identical output.
//!
//! The Criterion benches (in `benches/`) cover the micro level: field
//! arithmetic, IDA codec, mesh routing, map operations, and whole scheme
//! steps.

pub mod experiments;

pub use experiments::*;

/// Experiment registry: `(id, description, runner)`.
pub fn registry() -> Vec<(&'static str, &'static str, fn(u64) -> String)> {
    vec![
        ("models", "E1: machine models (Figs. 1,2,3,5,6)", experiments::model_zoo::run),
        ("expansion", "E2: memory-map expansion (Lemmas 1-2)", experiments::expansion::run),
        ("lowerbound", "E3: Theorem 1 granularity/redundancy lower bound", experiments::lowerbound::run),
        ("dmmpc", "E4: Theorem 2 - DMMPC phases vs n", experiments::dmmpc::run),
        ("mot", "E5: Theorem 3 - 2DMOT cycles vs n (vs LPP baseline)", experiments::motsim::run),
        ("crossbar", "E6: Fig. 7 crossbar vs Fig. 8 leaves hardware", experiments::crossbar::run),
        ("area", "E7: VLSI area model", experiments::area::run),
        ("ida", "E8: Schuster/Rabin IDA alternative", experiments::ida_exp::run),
        ("redundancy", "E9: redundancy-vs-n comparison (headline)", experiments::redundancy::run),
        ("stages", "E10: two-stage protocol structure", experiments::stages::run),
        ("hashing", "E11: probabilistic hashing baseline", experiments::hashing::run),
        ("matvec", "E12: native 2DMOT matrix-vector product", experiments::matvec::run),
        ("programs", "End-to-end: P-RAM programs through every scheme", experiments::programs_e2e::run),
    ]
}
