//! `pram-bench` — the reproduction harness.
//!
//! One module per experiment (E1–E13, per DESIGN.md §4); each takes a
//! [`RunCtx`] and returns its rendered tables as a `String`, so the
//! `repro` binary and the integration tests see identical output.
//!
//! Experiments that sweep the scheme zoo (`sweep`, `programs`) drive every
//! scheme through `Vec<Box<dyn cr_core::Scheme>>` and honor
//! [`RunCtx::schemes`] — that is what `repro --scheme <name>` filters.
//!
//! The Criterion benches (in `benches/`) cover the micro level: field
//! arithmetic, IDA codec, mesh routing, map operations, and whole scheme
//! steps.

pub mod experiments;
pub mod loadgen;

pub use experiments::*;

use cr_core::SchemeKind;
use cr_faults::Placement;

/// Everything an experiment run needs to know.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Seed for every randomized ingredient (maps, workloads).
    pub seed: u64,
    /// Which schemes the zoo-sweeping experiments cover, in order.
    pub schemes: Vec<SchemeKind>,
    /// Restrict the fault experiment (E14) to one fault fraction instead
    /// of its default sweep, and print the full per-scheme `FaultReport`s
    /// (`repro --faults <f>`).
    pub fault_fraction: Option<f64>,
    /// Fault placement strategy for E14 (`repro --fault-mode <mode>`).
    pub fault_placement: Placement,
    /// Worker threads for the parallel sweep driver (`repro --threads N`);
    /// sweep points are seed-isolated, so only wall-clock timing (not any
    /// deterministic counter) depends on this.
    pub threads: usize,
    /// Shrink sweeping experiments to a CI-sized subset (`repro --quick`).
    pub quick: bool,
}

impl RunCtx {
    /// A context covering the full scheme zoo.
    pub fn seeded(seed: u64) -> Self {
        RunCtx {
            seed,
            schemes: SchemeKind::ALL.to_vec(),
            fault_fraction: None,
            fault_placement: Placement::Random,
            threads: 1,
            quick: false,
        }
    }

    /// Set the parallel sweep driver's worker-thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Shrink sweeping experiments to their CI-sized subset.
    pub fn with_quick(mut self, quick: bool) -> Self {
        self.quick = quick;
        self
    }

    /// Restrict the zoo-sweeping experiments to `schemes`.
    pub fn with_schemes(mut self, schemes: Vec<SchemeKind>) -> Self {
        self.schemes = schemes;
        self
    }

    /// Pin the fault experiment to one fraction and placement.
    pub fn with_faults(mut self, fraction: f64, placement: Placement) -> Self {
        self.fault_fraction = Some(fraction);
        self.fault_placement = placement;
        self
    }
}

/// The `name — description` lines `repro --list` prints for `--scheme`.
pub fn scheme_list_lines() -> Vec<String> {
    SchemeKind::ALL
        .iter()
        .map(|kind| format!("{:<12} — {}", kind.name(), kind.describe()))
        .collect()
}

/// An experiment entry point.
pub type Runner = fn(&RunCtx) -> String;

/// Experiment registry: `(id, description, runner)`.
pub fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        (
            "models",
            "E1: machine models (Figs. 1,2,3,5,6)",
            experiments::model_zoo::run,
        ),
        (
            "expansion",
            "E2: memory-map expansion (Lemmas 1-2)",
            experiments::expansion::run,
        ),
        (
            "lowerbound",
            "E3: Theorem 1 granularity/redundancy lower bound",
            experiments::lowerbound::run,
        ),
        (
            "dmmpc",
            "E4: Theorem 2 - DMMPC phases vs n",
            experiments::dmmpc::run,
        ),
        (
            "mot",
            "E5: Theorem 3 - 2DMOT cycles vs n (vs LPP baseline)",
            experiments::motsim::run,
        ),
        (
            "crossbar",
            "E6: Fig. 7 crossbar vs Fig. 8 leaves hardware",
            experiments::crossbar::run,
        ),
        ("area", "E7: VLSI area model", experiments::area::run),
        (
            "ida",
            "E8: Schuster/Rabin IDA alternative",
            experiments::ida_exp::run,
        ),
        (
            "redundancy",
            "E9: redundancy-vs-n comparison (headline)",
            experiments::redundancy::run,
        ),
        (
            "stages",
            "E10: two-stage protocol structure",
            experiments::stages::run,
        ),
        (
            "hashing",
            "E11: probabilistic hashing baseline",
            experiments::hashing::run,
        ),
        (
            "matvec",
            "E12: native 2DMOT matrix-vector product",
            experiments::matvec::run,
        ),
        (
            "sweep",
            "E13: uniform steps through the whole scheme zoo",
            experiments::sweep::run,
        ),
        (
            "faults",
            "E14: fault injection - what constant redundancy buys",
            experiments::faults::run,
        ),
        (
            "throughput",
            "E15: data-plane throughput (steps/sec across the zoo)",
            experiments::throughput::run,
        ),
        (
            "serve",
            "E16: serving throughput (sessions x shards over cr-serve)",
            experiments::serve::run,
        ),
        (
            // Not "verify": that word is the scrape subcommand (`repro
            // verify`), which main() dispatches before experiment ids.
            "verify-overhead",
            "E17: verification overhead (verify=off/ring/full over cr-serve)",
            experiments::verify_overhead::run,
        ),
        (
            "programs",
            "End-to-end: P-RAM programs through every scheme",
            experiments::programs_e2e::run,
        ),
    ]
}
