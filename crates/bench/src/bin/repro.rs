//! `repro` — regenerate every experiment table (DESIGN.md §4).
//!
//! ```text
//! repro all                      # every experiment, in order
//! repro dmmpc mot                # selected experiments
//! repro --seed 7 all             # override the seed
//! repro --scheme hp-2dmot sweep  # restrict zoo sweeps to one scheme
//! repro --faults 0.1 --scheme hp-dmmpc
//!                                # E14 at one fault fraction, full report
//! repro --faults 0.25 --fault-mode adversarial faults
//! repro --list                   # list experiment ids and scheme names
//! ```

use cr_core::SchemeKind;
use cr_faults::Placement;
use pram_bench::{registry, scheme_list_lines, RunCtx};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = simrng::DEFAULT_SEED;
    let mut schemes: Vec<SchemeKind> = Vec::new();
    let mut wanted: Vec<String> = Vec::new();
    let mut faults: Option<f64> = None;
    let mut fault_mode = Placement::Random;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a u64");
                    std::process::exit(2);
                });
            }
            "--scheme" => {
                i += 1;
                let name = args.get(i).cloned().unwrap_or_default();
                match name.parse::<SchemeKind>() {
                    Ok(kind) => schemes.push(kind),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--faults" => {
                i += 1;
                let f = args
                    .get(i)
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|f| (0.0..=1.0).contains(f))
                    .unwrap_or_else(|| {
                        eprintln!("--faults needs a fraction in [0, 1]");
                        std::process::exit(2);
                    });
                faults = Some(f);
            }
            "--fault-mode" => {
                i += 1;
                let name = args.get(i).cloned().unwrap_or_default();
                fault_mode = name.parse().unwrap_or_else(|e| {
                    eprintln!("{e}");
                    std::process::exit(2);
                });
            }
            "--list" => {
                println!("experiments:");
                for (id, desc, _) in registry() {
                    println!("  {id:<12} {desc}");
                }
                println!("schemes (for --scheme, repeatable):");
                for line in scheme_list_lines() {
                    println!("  {line}");
                }
                println!("fault modes (for --fault-mode): random, adversarial");
                return;
            }
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    // `repro --faults 0.1 --scheme hp-dmmpc` means: run the fault
    // experiment — no need to name it.
    if wanted.is_empty() && faults.is_some() {
        wanted.push("faults".to_string());
    }
    if wanted.is_empty() {
        eprintln!(
            "usage: repro [--seed S] [--scheme NAME]... [--faults F] \
             [--fault-mode random|adversarial] [--list] <experiment|all>..."
        );
        eprintln!("experiments:");
        for (id, desc, _) in registry() {
            eprintln!("  {id:<12} {desc}");
        }
        std::process::exit(2);
    }

    let mut ctx = RunCtx::seeded(seed);
    if !schemes.is_empty() {
        ctx = ctx.with_schemes(schemes);
    }
    // Placement applies to the E14 sweep whether or not the fraction is
    // pinned: `repro --fault-mode adversarial faults` runs the full sweep
    // under worst-case placement.
    ctx.fault_placement = fault_mode;
    ctx.fault_fraction = faults;

    let reg = registry();
    let run_all = wanted.iter().any(|w| w == "all");
    let mut matched = false;
    for (id, desc, runner) in &reg {
        if run_all || wanted.iter().any(|w| w == id) {
            matched = true;
            println!("================================================================");
            println!("{desc}   [seed {seed}]");
            println!("================================================================");
            println!("{}", runner(&ctx));
        }
    }
    if !matched {
        eprintln!("no experiment matched {wanted:?}; try --list");
        std::process::exit(2);
    }
}
