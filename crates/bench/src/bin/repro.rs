//! `repro` — regenerate every experiment table (DESIGN.md §4).
//!
//! ```text
//! repro all                      # every experiment, in order
//! repro dmmpc mot                # selected experiments
//! repro --seed 7 all             # override the seed
//! repro --scheme hp-2dmot sweep  # restrict zoo sweeps to one scheme
//! repro --list                   # list experiment ids and scheme names
//! ```

use cr_core::SchemeKind;
use pram_bench::{registry, RunCtx};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = simrng::DEFAULT_SEED;
    let mut schemes: Vec<SchemeKind> = Vec::new();
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--seed needs a u64");
                    std::process::exit(2);
                });
            }
            "--scheme" => {
                i += 1;
                let name = args.get(i).cloned().unwrap_or_default();
                match name.parse::<SchemeKind>() {
                    Ok(kind) => schemes.push(kind),
                    Err(e) => {
                        eprintln!("{e}");
                        std::process::exit(2);
                    }
                }
            }
            "--list" => {
                println!("experiments:");
                for (id, desc, _) in registry() {
                    println!("  {id:<12} {desc}");
                }
                println!("schemes (for --scheme, repeatable):");
                for kind in SchemeKind::ALL {
                    println!("  {:<12} {}", kind.name(), kind.describe());
                }
                return;
            }
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    if wanted.is_empty() {
        eprintln!("usage: repro [--seed S] [--scheme NAME]... [--list] <experiment|all>...");
        eprintln!("experiments:");
        for (id, desc, _) in registry() {
            eprintln!("  {id:<12} {desc}");
        }
        std::process::exit(2);
    }

    let mut ctx = RunCtx::seeded(seed);
    if !schemes.is_empty() {
        ctx = ctx.with_schemes(schemes);
    }

    let reg = registry();
    let run_all = wanted.iter().any(|w| w == "all");
    let mut matched = false;
    for (id, desc, runner) in &reg {
        if run_all || wanted.iter().any(|w| w == id) {
            matched = true;
            println!("================================================================");
            println!("{desc}   [seed {seed}]");
            println!("================================================================");
            println!("{}", runner(&ctx));
        }
    }
    if !matched {
        eprintln!("no experiment matched {wanted:?}; try --list");
        std::process::exit(2);
    }
}
