//! `repro` — regenerate every experiment table (DESIGN.md §4,
//! EXPERIMENTS.md).
//!
//! ```text
//! repro all            # every experiment, in order
//! repro dmmpc mot      # selected experiments
//! repro --seed 7 all   # override the seed
//! repro --list         # list experiment ids
//! ```

use pram_bench::registry;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = simrng::DEFAULT_SEED;
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a u64");
                        std::process::exit(2);
                    });
            }
            "--list" => {
                for (id, desc, _) in registry() {
                    println!("{id:<12} {desc}");
                }
                return;
            }
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    if wanted.is_empty() {
        eprintln!("usage: repro [--seed S] [--list] <experiment|all>...");
        eprintln!("experiments:");
        for (id, desc, _) in registry() {
            eprintln!("  {id:<12} {desc}");
        }
        std::process::exit(2);
    }

    let reg = registry();
    let run_all = wanted.iter().any(|w| w == "all");
    let mut matched = false;
    for (id, desc, runner) in &reg {
        if run_all || wanted.iter().any(|w| w == id) {
            matched = true;
            println!("================================================================");
            println!("{desc}   [seed {seed}]");
            println!("================================================================");
            println!("{}", runner(seed));
        }
    }
    if !matched {
        eprintln!("no experiment matched {wanted:?}; try --list");
        std::process::exit(2);
    }
}
